//! Deterministic per-packet fault injection.
//!
//! Real Arctic is engineered to be reliable, but the platform's whole
//! point is *exploring* scalable-SMP issues — including how protocols
//! behave when the fabric misbehaves. [`FaultModel`] perturbs traffic at
//! configurable parts-per-million rates: packet **drop**, **duplication**,
//! payload **corruption** (modelled as a CRC-failed frame the receiving
//! NIU discards), and **reordering** within a priority class.
//!
//! ## Determinism
//!
//! All randomness is consumed in [`crate::Network::inject`], which runs
//! exactly once per packet in the same global order under every run mode
//! and worker-thread count (the windowed parallel loop commits injections
//! in sorted `(cycle, node)` order — see the `voyager` run loop).
//! `Network::advance` draws nothing, so the probe clones the parallel
//! loop races ahead never touch the stream. A fault-injected run is
//! therefore bit-identical across 1/2/N threads and across reruns with
//! the same [`FaultParams::seed`].

use crate::packet::Packet;
use serde::{Deserialize, Serialize};
use sv_sim::rng::DetRng;

/// Scale of the fault-rate knobs: rates are parts per million, so the
/// model never touches floating point on the hot path.
pub const PPM: u32 = 1_000_000;

/// Fault-injection configuration. All rates are parts-per-million per
/// injected packet; the default is all-zero (a perfect network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultParams {
    /// Probability (ppm) a packet vanishes at injection.
    pub drop_ppm: u32,
    /// Probability (ppm) a packet is delivered twice.
    pub dup_ppm: u32,
    /// Probability (ppm) a packet arrives with a corrupt payload (the
    /// receiver sees a CRC-failed frame and discards it).
    pub corrupt_ppm: u32,
    /// Probability (ppm) a packet jumps its priority queue at every hop,
    /// overtaking earlier same-priority traffic.
    pub reorder_ppm: u32,
    /// Seed of the model's private split-mix stream.
    pub seed: u64,
}

impl Default for FaultParams {
    fn default() -> Self {
        FaultParams {
            drop_ppm: 0,
            dup_ppm: 0,
            corrupt_ppm: 0,
            reorder_ppm: 0,
            seed: 0xFA17_0001,
        }
    }
}

impl FaultParams {
    /// A drop-only configuration (the most common experiment knob).
    pub fn drops(ppm: u32, seed: u64) -> Self {
        FaultParams {
            drop_ppm: ppm,
            seed,
            ..FaultParams::default()
        }
    }

    /// Whether any fault rate is nonzero.
    pub fn enabled(&self) -> bool {
        self.drop_ppm | self.dup_ppm | self.corrupt_ppm | self.reorder_ppm != 0
    }
}

/// The fate the model assigns one injected packet. Faults compose: a
/// duplicated packet can also be corrupted, and both copies share the
/// corruption (it is the same mangled frame traversing the tree twice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultVerdict {
    /// Discard the packet at injection.
    pub drop: bool,
    /// Deliver two copies.
    pub duplicate: bool,
    /// Mark the payload corrupt.
    pub corrupt: bool,
    /// Queue-jump within the priority class at each hop.
    pub reorder: bool,
}

/// Per-link fault injector owned by the [`crate::Network`].
///
/// `Clone` is required so the network stays cloneable for the parallel
/// run loop's harvest probe; the probe's copy of the RNG is never
/// consumed (only `inject` draws, and probes are never injected into).
#[derive(Debug, Clone)]
pub struct FaultModel {
    params: FaultParams,
    rng: DetRng,
}

impl FaultModel {
    /// Build a model from its configuration.
    pub fn new(params: FaultParams) -> Self {
        FaultModel {
            params,
            rng: DetRng::new(params.seed),
        }
    }

    /// The configuration in force.
    pub fn params(&self) -> FaultParams {
        self.params
    }

    /// Decide the fate of the next injected packet. Always consumes
    /// exactly four draws so the stream position is a pure function of
    /// the injection count, independent of earlier verdicts.
    pub fn judge<P>(&mut self, _packet: &Packet<P>) -> FaultVerdict {
        let mut roll = |ppm: u32| self.rng.below(PPM as u64) < ppm as u64;
        FaultVerdict {
            drop: roll(self.params.drop_ppm),
            duplicate: roll(self.params.dup_ppm),
            corrupt: roll(self.params.corrupt_ppm),
            reorder: roll(self.params.reorder_ppm),
        }
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for FaultParams {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.drop_ppm);
        w.u32(self.dup_ppm);
        w.u32(self.corrupt_ppm);
        w.u32(self.reorder_ppm);
        w.u64(self.seed);
    }
}
impl StateLoad for FaultParams {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FaultParams {
            drop_ppm: r.u32()?,
            dup_ppm: r.u32()?,
            corrupt_ppm: r.u32()?,
            reorder_ppm: r.u32()?,
            seed: r.u64()?,
        })
    }
}

impl StateSave for FaultModel {
    /// The live RNG state is saved, not the seed: a restored model
    /// resumes mid-stream exactly where the original left off.
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.params);
        w.save(&self.rng);
    }
}
impl StateLoad for FaultModel {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FaultModel {
            params: r.load()?,
            rng: r.load()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Priority;

    fn pkt() -> Packet<u32> {
        Packet::new(0, 1, Priority::Low, 8, 0)
    }

    #[test]
    fn zero_rates_never_fault() {
        let mut m = FaultModel::new(FaultParams::default());
        assert!(!FaultParams::default().enabled());
        for _ in 0..1000 {
            assert_eq!(m.judge(&pkt()), FaultVerdict::default());
        }
    }

    #[test]
    fn full_rates_always_fault() {
        let p = FaultParams {
            drop_ppm: PPM,
            dup_ppm: PPM,
            corrupt_ppm: PPM,
            reorder_ppm: PPM,
            seed: 7,
        };
        let mut m = FaultModel::new(p);
        let v = m.judge(&pkt());
        assert!(v.drop && v.duplicate && v.corrupt && v.reorder);
    }

    #[test]
    fn rates_are_approximately_honored() {
        let mut m = FaultModel::new(FaultParams::drops(100_000, 42)); // 10%
        let n = 100_000;
        let dropped = (0..n).filter(|_| m.judge(&pkt()).drop).count();
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "drop fraction {frac}");
    }

    #[test]
    fn same_seed_same_verdict_stream() {
        let p = FaultParams {
            drop_ppm: 50_000,
            dup_ppm: 50_000,
            corrupt_ppm: 50_000,
            reorder_ppm: 50_000,
            seed: 99,
        };
        let run = || {
            let mut m = FaultModel::new(p);
            (0..200).map(|_| m.judge(&pkt())).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        assert!(p.enabled());
    }
}
