//! Contention-free reference network.
//!
//! [`IdealNetwork`] delivers every packet after a fixed latency plus its
//! own serialization time, with no queueing anywhere. It is *not* used by
//! the main experiments — it exists so ablations can separate NIU-side
//! costs from network-side costs, and so tests have an analytically exact
//! baseline.

use crate::network::LinkParams;
use crate::packet::Packet;
use sv_sim::{EventQueue, Time};

/// A network with infinite internal bandwidth: per-packet latency is
/// `fixed_latency_ns + serialize_ns(wire_bytes)` and packets never queue
/// (not even at the source).
#[derive(Debug, Clone)]
pub struct IdealNetwork<P> {
    /// Fixed latency ns.
    pub fixed_latency_ns: u64,
    /// Timing/geometry parameters.
    pub params: LinkParams,
    nodes: usize,
    events: EventQueue<Packet<P>>,
    delivered: Vec<(Time, Packet<P>)>,
    /// Whole-section dirty flag for delta snapshots; runtime bookkeeping,
    /// never serialized. Fresh and restored instances start dirty.
    dirty: bool,
}

impl<P> IdealNetwork<P> {
    /// An ideal network over `nodes` endpoints.
    pub fn new(nodes: usize, fixed_latency_ns: u64, params: LinkParams) -> Self {
        IdealNetwork {
            fixed_latency_ns,
            params,
            nodes,
            events: EventQueue::new(),
            delivered: Vec::new(),
            dirty: true,
        }
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// True if anything changed since the last
    /// [`IdealNetwork::ckpt_clear_dirty`].
    pub fn ckpt_dirty(&self) -> bool {
        self.dirty
    }

    /// Forget the dirty mark.
    pub fn ckpt_clear_dirty(&mut self) {
        self.dirty = false;
    }

    /// Inject a packet; it will be delivered after the fixed pipe delay.
    pub fn inject(&mut self, now: Time, mut packet: Packet<P>) {
        assert!((packet.dst as usize) < self.nodes);
        packet.injected_at = now;
        self.dirty = true;
        let at = now.plus(self.fixed_latency_ns + self.params.serialize_ns(packet.wire_bytes));
        self.events.push(at, packet);
    }

    /// Time of the next delivery, if any.
    pub fn next_event_time(&self) -> Option<Time> {
        self.events.peek_time()
    }

    /// Move every packet due at or before `until` to the delivered list.
    pub fn advance(&mut self, until: Time) {
        while let Some(t) = self.events.peek_time() {
            if t > until {
                break;
            }
            let (t, p) = self.events.pop().expect("peeked");
            self.dirty = true;
            self.delivered.push((t, p));
        }
    }

    /// Drain delivered packets in delivery order.
    pub fn take_delivered(&mut self) -> Vec<(Time, Packet<P>)> {
        if !self.delivered.is_empty() {
            self.dirty = true;
        }
        std::mem::take(&mut self.delivered)
    }

    /// Drain delivered packets into a caller-owned buffer, in delivery
    /// order; both buffers keep their capacity (see
    /// [`crate::Network::drain_delivered_into`]).
    pub fn drain_delivered_into(&mut self, out: &mut Vec<(Time, Packet<P>)>) {
        if !self.delivered.is_empty() {
            self.dirty = true;
        }
        out.append(&mut self.delivered);
    }

    /// Conservative lookahead: the ideal pipe has no shared resources, so
    /// an injection at `t` affects exactly one delivery, at
    /// `t + fixed_latency_ns + serialize_ns(wire)`, which is at least
    /// this bound (every packet carries the header).
    pub fn lookahead_ns(&self) -> u64 {
        self.fixed_latency_ns + self.params.serialize_ns(crate::packet::PACKET_HEADER_BYTES)
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl<P: StateSave + Clone> StateSave for IdealNetwork<P> {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.fixed_latency_ns);
        w.save(&self.params);
        w.usize_(self.nodes);
        w.save(&self.events);
        w.save(&self.delivered);
    }
}
impl<P: StateLoad + Clone> StateLoad for IdealNetwork<P> {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let fixed_latency_ns = r.u64()?;
        let params: LinkParams = r.load()?;
        let at = r.offset();
        let nodes = r.usize_()?;
        if nodes == 0 || nodes > u16::MAX as usize + 1 {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        let net = IdealNetwork {
            fixed_latency_ns,
            params,
            nodes,
            events: r.load()?,
            delivered: r.load()?,
            dirty: true,
        };
        // Delivered packets are handed to the embedding machine, which
        // indexes its node array by `dst`; range-check every packet so a
        // forged snapshot cannot smuggle one past the `inject` assert.
        let bad = |p: &Packet<P>| (p.src as usize) >= net.nodes || (p.dst as usize) >= net.nodes;
        if net.delivered.iter().any(|(_, p)| bad(p)) {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        let mut probe = net.events.clone();
        while let Some((_, p)) = probe.pop() {
            if bad(&p) {
                return Err(SnapshotError::Corrupt { offset: at });
            }
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Priority;

    #[test]
    fn fixed_latency_plus_serialization() {
        let mut n = IdealNetwork::new(2, 500, LinkParams::default());
        n.inject(Time::ZERO, Packet::new(0, 1, Priority::Low, 88, ()));
        n.advance(Time::from_ns(10_000));
        let got = n.take_delivered();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0.ns(), 500 + 600);
    }

    #[test]
    fn no_contention_between_flows() {
        let mut n = IdealNetwork::new(3, 100, LinkParams::default());
        // Two packets to the same destination at the same instant arrive
        // at the same instant: the ideal network has no shared resources.
        n.inject(Time::ZERO, Packet::new(0, 2, Priority::Low, 88, 1u8));
        n.inject(Time::ZERO, Packet::new(1, 2, Priority::Low, 88, 2u8));
        n.advance(Time::from_ns(10_000));
        let got = n.take_delivered();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, got[1].0);
    }

    #[test]
    fn advance_respects_bound() {
        let mut n = IdealNetwork::new(2, 1000, LinkParams::default());
        n.inject(Time::ZERO, Packet::new(0, 1, Priority::High, 0, ()));
        n.advance(Time::from_ns(10));
        assert!(n.take_delivered().is_empty());
        assert!(n.next_event_time().is_some());
        n.advance(Time::from_ns(100_000));
        assert_eq!(n.take_delivered().len(), 1);
    }
}
