#![warn(missing_docs)]
//! # sv-arctic — simulator of the MIT Arctic network
//!
//! Arctic (Boughton, PCRCW'97) is the fat-tree interconnect of the StarT
//! project: 4×4 packet-routed switches wired as a 4-ary *n*-tree,
//! 160 MB/s per direction per link, packets of at most 96 bytes, and two
//! packet priorities (the property the StarT-Voyager NIU relies on for
//! deadlock-free request/response protocols).
//!
//! This crate models the network at packet granularity:
//!
//! - [`topology::FatTree`] builds the 4-ary n-tree and computes up*/down
//!   routes with a pluggable up-port selection policy (Arctic routed
//!   adaptively; we provide a deterministic hash policy and an
//!   occupancy-snapshot adaptive policy, both reproducible).
//! - [`network::Network`] is an event-driven queueing model: every directed
//!   link serializes packets at link bandwidth, per-priority output queues
//!   give high-priority packets dispatch preference, and per-hop router
//!   latency is charged on top.
//! - [`ideal::IdealNetwork`] is a contention-free constant-latency model
//!   used in ablations to isolate NIU costs from network costs.
//!
//! The payload type is generic: the NIU crate ships its structured message
//! format through the network without a serialization round-trip; only the
//! declared wire size participates in timing.
//!
//! ## Fidelity notes
//! Arctic's credit-based link-level flow control is modeled when a
//! [`network::QosParams`] is armed: every link carries per-virtual-channel
//! bounded buffers guarded by credit counters, upstream transmitters stall
//! on credit exhaustion, and credits return on downstream drain (priority
//! or round-robin arbitration at the output port, DESIGN.md §15). With QoS
//! unset the legacy abstraction remains: lossless queueing with unbounded
//! (but high-water-tracked) output buffers, bit-identical to prior
//! releases. CRC and physical encoding are out of scope.

pub mod fault;
pub mod ideal;
pub mod network;
pub mod packet;
pub mod topology;

pub use fault::{FaultModel, FaultParams, FaultVerdict};
pub use ideal::IdealNetwork;
pub use network::{
    LinkParams, LinkUsage, Network, NetworkStats, QosParams, VcArbitration, VcUsage,
};
pub use packet::{NodeId, Packet, Priority, MAX_PAYLOAD_BYTES, PACKET_HEADER_BYTES};
pub use topology::{FatTree, RoutingPolicy};
