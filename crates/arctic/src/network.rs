//! Event-driven packet-level network model.
//!
//! Every directed link of the fat tree is a serializing resource: a packet
//! occupies the link for `wire_bytes / bandwidth` and then spends the
//! per-hop `router_latency_ns` crossing into the next switch's output
//! stage. Each link keeps one output queue per virtual channel; in the
//! default (legacy) configuration there are two, mapped from `Priority`,
//! and whenever the link frees, the high-priority queue is drained
//! first — this is how Arctic's two-priority discipline keeps protocol
//! replies from queueing behind bulk requests.
//!
//! With [`QosParams`] armed the model adds credit-based flow control:
//! every `(link, vc)` input buffer holds [`QosParams::credits_per_vc`]
//! slots, an upstream link must hold a credit for the downstream buffer
//! before it may start transmitting, and the credit returns when the
//! downstream link drains the packet onward. A blocked VC registers
//! itself as a waiter on the starved downstream buffer and is re-polled
//! by the credit return — never by time-based retry — so the event count
//! stays linear in packets. Because up*/down* fat-tree routes induce an
//! acyclic link-dependency graph, the credit loop is deadlock-free at
//! any VC count, including one.
//!
//! The network runs its own internal event queue; the owning machine calls
//! [`Network::advance`] with an upper time bound and collects deliveries.

use crate::fault::{FaultModel, FaultParams};
use crate::packet::{NodeId, Packet};
use crate::topology::{FatTree, LinkId, RoutingPolicy};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use sv_sim::stats::{Counter, Summary};
use sv_sim::{EventQueue, Time};

/// Link timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Serialization cost as a rational `ns_num/ns_den` nanoseconds per
    /// byte. Arctic: 160 MB/s = 6.25 ns/B = 25/4.
    pub ns_per_byte_num: u64,
    /// Ns per byte den.
    pub ns_per_byte_den: u64,
    /// Fixed per-hop cost (switch traversal + wire propagation), ns.
    pub router_latency_ns: u64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            ns_per_byte_num: 25,
            ns_per_byte_den: 4,
            router_latency_ns: 60,
        }
    }
}

impl LinkParams {
    /// Serialization time of `bytes` on one link, rounded up to whole ns.
    #[inline]
    pub fn serialize_ns(&self, bytes: u32) -> u64 {
        (bytes as u64 * self.ns_per_byte_num).div_ceil(self.ns_per_byte_den)
    }

    /// Link bandwidth in MB/s (for reports).
    pub fn bandwidth_mb_s(&self) -> f64 {
        1e9 / (self.ns_per_byte_num as f64 / self.ns_per_byte_den as f64) / 1e6
    }
}

/// Output-port arbitration among a link's virtual channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcArbitration {
    /// Always scan VCs from 0 upward — VC 0 (the High class) wins every
    /// contested slot. This is the legacy two-priority discipline.
    Priority,
    /// Rotate the starting VC after every grant, so sustained traffic on
    /// one VC cannot starve another of link bandwidth.
    RoundRobin,
}

/// Virtual-channel / credit-flow-control configuration
/// (see `voyager::MachineBuilder::network_qos`).
///
/// The default — 2 VCs mapped from [`crate::Priority`], priority
/// arbitration — matches the legacy discipline in *ordering*, but armed
/// QoS additionally bounds every `(link, vc)` buffer at
/// `credits_per_vc` slots, so timing differs from the unarmed model
/// whenever a buffer would have overflowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosParams {
    /// Virtual channels per link. Packets map to `min(priority index,
    /// vcs-1)`: with 1 VC all traffic shares one buffer (the
    /// head-of-line-blocking baseline), with ≥2 the High class gets VC 0.
    pub vcs: u8,
    /// Input-buffer slots per `(link, vc)` — the credit pool an upstream
    /// transmitter draws on.
    pub credits_per_vc: u8,
    /// Output-port arbitration among VCs.
    pub arbitration: VcArbitration,
}

impl Default for QosParams {
    fn default() -> Self {
        QosParams {
            vcs: 2,
            credits_per_vc: 8,
            arbitration: VcArbitration::Priority,
        }
    }
}

/// One virtual channel of one link: its output queue, the credit pool
/// guarding its *input* buffer, and per-VC usage counters.
#[derive(Debug, Clone)]
struct VcState {
    /// Flight slots queued for transmission on this VC.
    queue: VecDeque<usize>,
    /// Free slots in this link's input buffer that upstream transmitters
    /// may still claim. Unused (held at 0) when QoS is unarmed.
    credits: u8,
    /// Upstream links whose head-of-queue is blocked waiting for one of
    /// this buffer's credits; each gets a Dispatch poke when a credit
    /// returns. Deduplicated, so bounded by the link count.
    waiters: Vec<LinkId>,
    /// When the head of `queue` first found the downstream pool empty;
    /// cleared (and accumulated into `stall_ns`) on the next grant.
    blocked_since: Option<Time>,
    /// Bytes transmitted from this VC.
    bytes: u64,
    /// Serialization time spent on this VC's packets, ns.
    busy_ns: u64,
    /// Deepest this VC's output queue has been.
    high_water: usize,
    /// Times the head of this VC found the downstream credit pool empty.
    stalls: u64,
    /// Total time heads of this VC spent credit-blocked, ns.
    stall_ns: u64,
}

impl VcState {
    fn new(credits: u8) -> Self {
        VcState {
            queue: VecDeque::new(),
            credits,
            waiters: Vec::new(),
            blocked_since: None,
            bytes: 0,
            busy_ns: 0,
            high_water: 0,
            stalls: 0,
            stall_ns: 0,
        }
    }
}

/// Per-link running state.
#[derive(Debug, Clone)]
struct LinkState {
    /// Time the transmitter frees.
    busy_until: Time,
    /// Per-VC output queues. Two in the legacy configuration (indexed by
    /// priority, 0 = high), [`QosParams::vcs`] when QoS is armed.
    vcs: Vec<VcState>,
    /// Whether a Dispatch event for this link is already pending — the
    /// dedup that keeps event count linear in packets regardless of
    /// queue depth.
    dispatch_scheduled: bool,
    /// Round-robin arbitration cursor: the VC scanned first at the next
    /// grant. Stays 0 under priority arbitration.
    rr_cursor: u8,
    /// High-water mark across all VC queues.
    high_water: usize,
    /// Bytes pushed through this link.
    bytes: u64,
    /// Time this link spent serializing packets, ns (occupancy numerator).
    busy_ns: u64,
}

impl LinkState {
    fn new(vcs: usize, credits: u8) -> Self {
        LinkState {
            busy_until: Time::ZERO,
            vcs: (0..vcs).map(|_| VcState::new(credits)).collect(),
            dispatch_scheduled: false,
            rr_cursor: 0,
            high_water: 0,
            bytes: 0,
            busy_ns: 0,
        }
    }

    fn queued(&self) -> usize {
        self.vcs.iter().map(|v| v.queue.len()).sum()
    }
}

/// A packet travelling its route.
#[derive(Debug, Clone)]
struct InFlight<P> {
    packet: Packet<P>,
    route: Vec<LinkId>,
    /// Index of the next link to traverse.
    hop: usize,
    /// Fault-injected overtaking: jump the priority queue at each hop.
    reorder: bool,
}

#[derive(Debug, Clone, Copy)]
enum NetEvent {
    /// The link may be able to start transmitting.
    Dispatch(LinkId),
    /// A packet finished traversing link `route[hop]` and arrives at the
    /// next queueing point (or its destination).
    Arrive { flight: usize },
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Packets injected.
    pub injected: Counter,
    /// Packets delivered.
    pub delivered: Counter,
    /// End-to-end packet latency (inject -> deliver), ns.
    pub latency: Summary,
    /// Total payload+header bytes delivered.
    pub bytes_delivered: u64,
    /// Highest output-queue occupancy seen on any link.
    pub max_link_queue: usize,
    /// Packets discarded at injection by the fault model.
    pub faults_dropped: Counter,
    /// Packets the fault model delivered twice.
    pub faults_duplicated: Counter,
    /// Packets whose payload the fault model mangled in flight.
    pub faults_corrupted: Counter,
    /// Packets the fault model let overtake their priority queue.
    pub faults_reordered: Counter,
    /// Times any VC head found its downstream credit pool empty (QoS
    /// armed only; each blocked episode counts once, not per retry).
    pub credit_stalls: Counter,
    /// Total time VC heads spent credit-blocked, ns (QoS armed only; a
    /// head still blocked when the run ends is not counted).
    pub credit_stall_ns: u64,
    /// End-to-end latency of [`crate::Priority::High`] packets, ns.
    pub latency_hi: Summary,
    /// End-to-end latency of [`crate::Priority::Low`] packets, ns.
    pub latency_lo: Summary,
}

/// The Arctic network simulator.
///
/// `P` is the structured payload type (opaque to the network). The model
/// is `Clone` so a conservative parallel run loop can advance a
/// throwaway copy ahead of the committed state to harvest a window's
/// deliveries (see `voyager`'s machine run loop).
#[derive(Debug, Clone)]
pub struct Network<P> {
    /// Fat-tree topology. Behind an [`Arc`] because the topology is
    /// immutable once built and the conservative parallel run loop
    /// clones the network once per execution window to harvest
    /// deliveries: sharing it keeps that clone proportional to mutable
    /// state (links, flights, events), not to the switch inventory.
    pub topology: std::sync::Arc<FatTree>,
    /// Timing/geometry parameters.
    pub params: LinkParams,
    /// Routing policy in force.
    pub policy: RoutingPolicy,
    /// Virtual-channel / credit configuration, when armed (see
    /// [`Network::set_qos`]). `None` runs the legacy two-priority model
    /// with unbounded buffers and no credit logic at all.
    qos: Option<QosParams>,
    links: Vec<LinkState>,
    flights: Vec<Option<InFlight<P>>>,
    free_slots: Vec<usize>,
    events: EventQueue<NetEvent>,
    delivered: Vec<(Time, Packet<P>)>,
    route_salt: u64,
    /// Fault injector, when configured (see [`Network::set_faults`]).
    fault: Option<FaultModel>,
    /// Running statistics.
    pub stats: NetworkStats,
    /// Whole-section dirty flag for delta snapshots: set by every
    /// mutating entry point. Runtime bookkeeping, never serialized; fresh
    /// and restored networks start conservatively dirty.
    dirty: bool,
}

impl<P> Network<P> {
    /// Build a network spanning `nodes` endpoints.
    pub fn new(nodes: usize, params: LinkParams, policy: RoutingPolicy) -> Self {
        let topology = std::sync::Arc::new(FatTree::build(nodes));
        let links = (0..topology.link_count())
            .map(|_| LinkState::new(2, 0))
            .collect();
        Network {
            topology,
            params,
            policy,
            qos: None,
            links,
            flights: Vec::new(),
            free_slots: Vec::new(),
            events: EventQueue::new(),
            delivered: Vec::new(),
            route_salt: 0,
            fault: None,
            stats: NetworkStats::default(),
            dirty: true,
        }
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> usize {
        self.topology.nodes
    }

    /// Install (or, with all-zero rates, remove) the fault injector.
    pub fn set_faults(&mut self, params: FaultParams) {
        self.dirty = true;
        self.fault = params.enabled().then(|| FaultModel::new(params));
    }

    /// Arm virtual channels with credit-based flow control. Rebuilds every
    /// link with `qos.vcs` channels of `qos.credits_per_vc` credits each,
    /// so this must run before any traffic is injected. Panics on a
    /// zero-VC or zero-credit configuration — the embedding builder
    /// rejects those with a typed error before they reach here.
    pub fn set_qos(&mut self, qos: QosParams) {
        assert!(qos.vcs > 0, "QosParams.vcs must be at least 1");
        assert!(
            qos.credits_per_vc > 0,
            "QosParams.credits_per_vc must be at least 1"
        );
        assert!(
            self.events.is_empty() && self.flights.iter().all(|f| f.is_none()),
            "set_qos must run before traffic"
        );
        self.dirty = true;
        self.qos = Some(qos);
        for link in &mut self.links {
            *link = LinkState::new(qos.vcs as usize, qos.credits_per_vc);
        }
    }

    /// The QoS configuration in force, if any.
    pub fn qos(&self) -> Option<QosParams> {
        self.qos
    }

    /// Credits currently on loan across all `(link, vc)` pools: each
    /// loaned credit is a packet occupying (or in transit toward) a
    /// downstream input buffer, so a quiescent network must report zero —
    /// the credit-conservation property the test suite pins. Always zero
    /// when QoS is unarmed.
    pub fn outstanding_credits(&self) -> u64 {
        let Some(q) = self.qos else { return 0 };
        self.links
            .iter()
            .flat_map(|l| l.vcs.iter())
            .map(|v| (q.credits_per_vc - v.credits) as u64)
            .sum()
    }

    /// True if anything (links, flights, fault RNG, stats) may have
    /// changed since the last [`Network::ckpt_clear_dirty`].
    pub fn ckpt_dirty(&self) -> bool {
        self.dirty
    }

    /// Forget the dirty mark — called when a checkpoint cut captures the
    /// current contents.
    pub fn ckpt_clear_dirty(&mut self) {
        self.dirty = false;
    }

    /// The fault configuration in force, if any.
    pub fn fault_params(&self) -> Option<FaultParams> {
        self.fault.as_ref().map(|f| f.params())
    }

    /// Inject a packet at time `now`. The packet begins queueing on the
    /// node's uplink immediately.
    ///
    /// All fault randomness is consumed here and only here: `inject`
    /// runs exactly once per packet in a deterministic global order
    /// under every run mode and thread count (`advance` draws nothing),
    /// which is what makes fault-injected runs thread-count-invariant —
    /// see [`crate::fault`].
    pub fn inject(&mut self, now: Time, mut packet: Packet<P>)
    where
        P: Clone,
    {
        assert_ne!(packet.src, packet.dst, "network cannot loop back to self");
        packet.injected_at = now;
        self.dirty = true;
        self.stats.injected.bump();
        let mut copies = 1usize;
        let mut reorder = false;
        if let Some(fm) = &mut self.fault {
            let v = fm.judge(&packet);
            if v.drop {
                self.stats.faults_dropped.bump();
                return;
            }
            if v.duplicate {
                self.stats.faults_duplicated.bump();
                copies = 2;
            }
            if v.corrupt {
                self.stats.faults_corrupted.bump();
                packet.corrupt = true;
            }
            if v.reorder {
                self.stats.faults_reordered.bump();
                reorder = true;
            }
        }
        for _ in 1..copies {
            self.launch(now, packet.clone(), reorder);
        }
        self.launch(now, packet, reorder);
    }

    /// Route one flight and start it queueing on the source uplink.
    fn launch(&mut self, now: Time, packet: Packet<P>, reorder: bool) {
        let salt = self.route_salt;
        self.route_salt = self.route_salt.wrapping_add(1);
        let (src, dst) = (packet.src, packet.dst);
        let policy = self.policy;
        let route = self.topology.route(src, dst, |level| {
            let per_packet_salt = match policy {
                RoutingPolicy::Fixed => return 0,
                RoutingPolicy::HashSpread => salt,
                RoutingPolicy::FlowHash => 0,
            };
            // Deterministic spread over (src, dst, [sequence,] level),
            // through a full avalanche finalizer (a weak mix here
            // collapses distinct flows onto one up port).
            let mut h = per_packet_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ ((src as u64) << 32)
                ^ ((dst as u64) << 16)
                ^ level as u64;
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            (h >> 32) as u32
        });
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.flights.push(None);
                self.flights.len() - 1
            }
        };
        self.flights[slot] = Some(InFlight {
            packet,
            route,
            hop: 0,
            reorder,
        });
        self.enqueue_on_link(now, slot);
    }

    /// VC a packet priority maps onto, given this network's channel count.
    #[inline]
    fn vc_of(&self, prio: crate::packet::Priority) -> usize {
        let nvcs = self.qos.map_or(2, |q| q.vcs as usize);
        prio.index().min(nvcs - 1)
    }

    /// Put flight `slot` on the output queue of its current link and poke
    /// the dispatcher.
    fn enqueue_on_link(&mut self, now: Time, slot: usize) {
        let (link_id, prio, reorder) = {
            let f = self.flights[slot].as_ref().expect("live flight");
            (f.route[f.hop], f.packet.priority, f.reorder)
        };
        let vc = self.vc_of(prio);
        let link = &mut self.links[link_id];
        if reorder {
            // Fault-injected overtaking: jump ahead of everything already
            // queued on this VC. Consumes no randomness — the verdict was
            // drawn once, at injection.
            link.vcs[vc].queue.push_front(slot);
        } else {
            link.vcs[vc].queue.push_back(slot);
        }
        let vq = link.vcs[vc].queue.len();
        if vq > link.vcs[vc].high_water {
            link.vcs[vc].high_water = vq;
        }
        let q = link.queued();
        if q > link.high_water {
            link.high_water = q;
            if q > self.stats.max_link_queue {
                self.stats.max_link_queue = q;
            }
        }
        if !link.dispatch_scheduled {
            link.dispatch_scheduled = true;
            let at = now.max_of(link.busy_until);
            self.events.push(at, NetEvent::Dispatch(link_id));
        }
    }

    /// Time of the next internal event, if any.
    pub fn next_event_time(&self) -> Option<Time> {
        self.events.peek_time()
    }

    /// Process all internal events with `time <= until`; deliveries are
    /// appended to an internal list retrieved with [`Network::take_delivered`].
    pub fn advance(&mut self, until: Time) {
        while let Some(t) = self.events.peek_time() {
            if t > until {
                break;
            }
            let (now, ev) = self.events.pop().expect("peeked");
            self.dirty = true;
            match ev {
                NetEvent::Dispatch(link_id) => self.dispatch(now, link_id),
                NetEvent::Arrive { flight } => self.arrive(now, flight),
            }
        }
    }

    fn dispatch(&mut self, now: Time, link_id: LinkId) {
        let link = &mut self.links[link_id];
        link.dispatch_scheduled = false;
        if link.busy_until > now {
            // Raced with a just-started transmission; retry when free.
            if link.queued() > 0 {
                link.dispatch_scheduled = true;
                self.events
                    .push(link.busy_until, NetEvent::Dispatch(link_id));
            }
            return;
        }
        // Pick a VC head to transmit. With every head credit-blocked this
        // returns None with the link subscribed to the starved downstream
        // pools — the credit return re-polls it, so no timed retry.
        let Some((slot, vc)) = self.grant(now, link_id) else {
            return;
        };
        let bytes = self.flights[slot]
            .as_ref()
            .expect("live flight")
            .packet
            .wire_bytes;
        let ser = self.params.serialize_ns(bytes);
        let link = &mut self.links[link_id];
        link.busy_until = now.plus(ser);
        link.bytes += bytes as u64;
        link.busy_ns += ser;
        link.vcs[vc].bytes += bytes as u64;
        link.vcs[vc].busy_ns += ser;
        let arrive_at = now.plus(ser + self.params.router_latency_ns);
        self.events
            .push(arrive_at, NetEvent::Arrive { flight: slot });
        if link.queued() > 0 {
            link.dispatch_scheduled = true;
            let free = link.busy_until;
            self.events.push(free, NetEvent::Dispatch(link_id));
        }
    }

    /// Pick the next flight this link may transmit, honoring VC
    /// arbitration order and (when QoS is armed) downstream credit
    /// availability. Reserves the downstream credit, returns the credit
    /// the granted packet itself held, and pays out stall accounting.
    fn grant(&mut self, now: Time, link_id: LinkId) -> Option<(usize, usize)> {
        let Some(qos) = self.qos else {
            // Legacy two-priority discipline: high first, no credit
            // logic anywhere on this path.
            let link = &mut self.links[link_id];
            for vc in 0..2 {
                if let Some(slot) = link.vcs[vc].queue.pop_front() {
                    return Some((slot, vc));
                }
            }
            return None;
        };
        let nvcs = qos.vcs as usize;
        let start = match qos.arbitration {
            VcArbitration::Priority => 0,
            VcArbitration::RoundRobin => self.links[link_id].rr_cursor as usize,
        };
        for i in 0..nvcs {
            let vc = (start + i) % nvcs;
            let Some(&slot) = self.links[link_id].vcs[vc].queue.front() else {
                continue;
            };
            // Transmitting moves the packet into the next link's input
            // buffer, so the grant must hold one of that buffer's
            // credits — unless this is the final hop (the destination
            // NIU imposes no credit bound on the network).
            let next = {
                let f = self.flights[slot].as_ref().expect("live flight");
                (f.hop + 1 < f.route.len()).then(|| f.route[f.hop + 1])
            };
            if let Some(next) = next {
                if self.links[next].vcs[vc].credits == 0 {
                    // Blocked: count the episode once, subscribe to the
                    // credit return, and offer the port to another VC.
                    let bvc = &mut self.links[link_id].vcs[vc];
                    if bvc.blocked_since.is_none() {
                        bvc.blocked_since = Some(now);
                        bvc.stalls += 1;
                        self.stats.credit_stalls.bump();
                    }
                    let waiters = &mut self.links[next].vcs[vc].waiters;
                    if !waiters.contains(&link_id) {
                        waiters.push(link_id);
                    }
                    continue;
                }
                self.links[next].vcs[vc].credits -= 1;
            }
            let gvc = &mut self.links[link_id].vcs[vc];
            if let Some(t0) = gvc.blocked_since.take() {
                let blocked = now.since(t0);
                gvc.stall_ns += blocked;
                self.stats.credit_stall_ns += blocked;
            }
            let popped = gvc.queue.pop_front();
            debug_assert_eq!(popped, Some(slot));
            // Departing frees the input-buffer slot this packet held
            // (hop 0 occupies the source NIU's own buffer, which is not
            // credit-bounded), returning a credit to this link's pool.
            if self.flights[slot].as_ref().expect("live flight").hop > 0 {
                self.credit_return(now, link_id, vc);
            }
            if qos.arbitration == VcArbitration::RoundRobin {
                self.links[link_id].rr_cursor = ((vc + 1) % nvcs) as u8;
            }
            return Some((slot, vc));
        }
        None
    }

    /// Return one credit to `(link, vc)` and poke every subscribed
    /// upstream waiter with a Dispatch event.
    fn credit_return(&mut self, now: Time, link_id: LinkId, vc: usize) {
        self.links[link_id].vcs[vc].credits += 1;
        let waiters = std::mem::take(&mut self.links[link_id].vcs[vc].waiters);
        for w in waiters {
            let wl = &mut self.links[w];
            if !wl.dispatch_scheduled {
                wl.dispatch_scheduled = true;
                let at = now.max_of(wl.busy_until);
                self.events.push(at, NetEvent::Dispatch(w));
            }
        }
    }

    fn arrive(&mut self, now: Time, slot: usize) {
        let done = {
            let f = self.flights[slot].as_mut().expect("live flight");
            f.hop += 1;
            f.hop >= f.route.len()
        };
        if done {
            let f = self.flights[slot].take().expect("live flight");
            self.free_slots.push(slot);
            self.stats.delivered.bump();
            self.stats.bytes_delivered += f.packet.wire_bytes as u64;
            let lat = now.since(f.packet.injected_at);
            self.stats.latency.record(lat);
            match f.packet.priority {
                crate::packet::Priority::High => self.stats.latency_hi.record(lat),
                crate::packet::Priority::Low => self.stats.latency_lo.record(lat),
            }
            self.delivered.push((now, f.packet));
        } else {
            self.enqueue_on_link(now, slot);
        }
    }

    /// Drain packets delivered since the last call, in delivery order.
    pub fn take_delivered(&mut self) -> Vec<(Time, Packet<P>)> {
        if !self.delivered.is_empty() {
            self.dirty = true;
        }
        std::mem::take(&mut self.delivered)
    }

    /// Drain delivered packets into a caller-owned buffer, in delivery
    /// order. Unlike [`Network::take_delivered`] this transfers nothing
    /// but the packets: both buffers keep their capacity, so a run loop
    /// polling every event cycle allocates nothing in the steady state.
    pub fn drain_delivered_into(&mut self, out: &mut Vec<(Time, Packet<P>)>) {
        if !self.delivered.is_empty() {
            self.dirty = true;
        }
        out.append(&mut self.delivered);
    }

    /// Whether any packets are still queued or in flight.
    pub fn quiescent(&self) -> bool {
        self.events.is_empty() && self.delivered.is_empty()
    }

    /// Minimum possible one-way latency for a `wire_bytes`-byte packet
    /// between `s` and `d` on an idle network (analytic; used by tests and
    /// the bench harness to sanity-check measurements).
    pub fn ideal_latency_ns(&self, s: NodeId, d: NodeId, wire_bytes: u32) -> u64 {
        let hops = self.topology.hop_count(s, d) as u64;
        hops * (self.params.serialize_ns(wire_bytes) + self.params.router_latency_ns)
    }

    /// Conservative lookahead: a packet injected at time `t` cannot
    /// change *any* delivery (its own or, through link contention,
    /// another packet's) earlier than `t + lookahead_ns()`.
    ///
    /// Justification: every route has at least two hops, so the injected
    /// packet itself delivers no earlier than two full
    /// `serialize + router` terms after injection. For it to perturb
    /// another packet it must win arbitration on some link L; if L is its
    /// first hop (the source's private uplink) the displaced packet still
    /// has L's serialization plus at least one further hop ahead of it,
    /// and if L is a later hop the injected packet first spent a full hop
    /// reaching L. Either way the earliest perturbed delivery is bounded
    /// below by two minimum hop times. Window-parallel execution relies
    /// on this bound; see `DESIGN.md`.
    pub fn lookahead_ns(&self) -> u64 {
        2 * (self.params.serialize_ns(crate::packet::PACKET_HEADER_BYTES)
            + self.params.router_latency_ns)
    }

    /// Minimum idle-network latency of any packet travelling between two
    /// *distinct* aligned height-`k` subtrees (see
    /// [`FatTree::subtree_of`]): such a route has at least
    /// `2 + 2k` hops, each costing at least a header serialization plus
    /// the router latency.
    ///
    /// This is the topology-derived synchronization slack a
    /// subtree-sharded parallel run loop gets to exploit: shards aligned
    /// to height-`k` subtrees cannot influence each other faster than
    /// this, so it bounds how often cross-shard deliveries can recur and
    /// grows with shard coarseness — while the *global* window safety
    /// bound stays [`Network::lookahead_ns`], pinned by same-leaf
    /// traffic that the centralized contention model must arbitrate.
    pub fn cross_subtree_latency_ns(&self, k: u32) -> u64 {
        self.topology.min_cross_subtree_hops(k) as u64
            * (self.params.serialize_ns(crate::packet::PACKET_HEADER_BYTES)
                + self.params.router_latency_ns)
    }

    /// Per-link usage snapshot for links that carried traffic, in link-id
    /// order (deterministic). Idle links are omitted to keep machine-wide
    /// snapshots proportional to activity, not topology size.
    pub fn link_usage(&self) -> Vec<LinkUsage> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.bytes > 0)
            .map(|(id, l)| LinkUsage {
                link: id,
                bytes: l.bytes,
                busy_ns: l.busy_ns,
                high_water: l.high_water as u64,
            })
            .collect()
    }

    /// Machine-wide per-VC usage, one row per VC index, aggregated over
    /// every link (links are symmetric in the fat tree, so the per-VC
    /// split is the interesting axis; the per-link split stays in
    /// [`Network::link_usage`]). Row count equals the armed VC count, or
    /// 2 (the legacy priority classes) when QoS is unarmed.
    pub fn vc_usage(&self) -> Vec<VcUsage> {
        let nvcs = self.qos.map_or(2, |q| q.vcs as usize);
        (0..nvcs)
            .map(|vc| {
                let mut u = VcUsage {
                    vc: vc as u64,
                    ..VcUsage::default()
                };
                for l in &self.links {
                    let v = &l.vcs[vc];
                    u.bytes += v.bytes;
                    u.busy_ns += v.busy_ns;
                    u.high_water = u.high_water.max(v.high_water as u64);
                    u.stalls += v.stalls;
                    u.stall_ns += v.stall_ns;
                }
                u
            })
            .collect()
    }
}

/// Per-VC usage record exported by [`Network::vc_usage`], aggregated
/// over all links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcUsage {
    /// Virtual-channel index (0 carries the High class).
    pub vc: u64,
    /// Bytes transmitted on this VC.
    pub bytes: u64,
    /// Serialization time spent on this VC, ns.
    pub busy_ns: u64,
    /// Deepest any single link's queue for this VC has been.
    pub high_water: u64,
    /// Credit-stall episodes charged to this VC.
    pub stalls: u64,
    /// Time this VC's heads spent credit-blocked, ns.
    pub stall_ns: u64,
}

/// Per-link usage record exported by [`Network::link_usage`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkUsage {
    /// Link id in the fat tree.
    pub link: usize,
    /// Bytes serialized onto the link.
    pub bytes: u64,
    /// Time spent serializing (occupancy numerator), ns.
    pub busy_ns: u64,
    /// Output-queue high-water mark.
    pub high_water: u64,
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for LinkParams {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.ns_per_byte_num);
        w.u64(self.ns_per_byte_den);
        w.u64(self.router_latency_ns);
    }
}
impl StateLoad for LinkParams {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let p = LinkParams {
            ns_per_byte_num: r.u64()?,
            ns_per_byte_den: r.u64()?,
            router_latency_ns: r.u64()?,
        };
        // A zero denominator would divide-by-zero in `serialize_ns`.
        if p.ns_per_byte_den == 0 {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        Ok(p)
    }
}

impl StateSave for VcArbitration {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            VcArbitration::Priority => 0,
            VcArbitration::RoundRobin => 1,
        });
    }
}
impl StateLoad for VcArbitration {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        Ok(match r.u8()? {
            0 => VcArbitration::Priority,
            1 => VcArbitration::RoundRobin,
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        })
    }
}

impl StateSave for QosParams {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(self.vcs);
        w.u8(self.credits_per_vc);
        w.save(&self.arbitration);
    }
}
impl StateLoad for QosParams {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let q = QosParams {
            vcs: r.u8()?,
            credits_per_vc: r.u8()?,
            arbitration: r.load()?,
        };
        // Zero VCs or zero credits would wedge every link forever; the
        // builder refuses them, so a snapshot carrying them is forged.
        if q.vcs == 0 || q.credits_per_vc == 0 {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        Ok(q)
    }
}

impl StateSave for VcState {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.queue);
        w.u8(self.credits);
        w.save(&self.waiters);
        w.save(&self.blocked_since);
        w.u64(self.bytes);
        w.u64(self.busy_ns);
        w.usize_(self.high_water);
        w.u64(self.stalls);
        w.u64(self.stall_ns);
    }
}
impl StateLoad for VcState {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(VcState {
            queue: r.load()?,
            credits: r.u8()?,
            waiters: r.load()?,
            blocked_since: r.load()?,
            bytes: r.u64()?,
            busy_ns: r.u64()?,
            high_water: r.usize_()?,
            stalls: r.u64()?,
            stall_ns: r.u64()?,
        })
    }
}

impl StateSave for LinkState {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.busy_until);
        w.save(&self.vcs);
        w.save(&self.dispatch_scheduled);
        w.u8(self.rr_cursor);
        w.usize_(self.high_water);
        w.u64(self.bytes);
        w.u64(self.busy_ns);
    }
}
impl StateLoad for LinkState {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(LinkState {
            busy_until: r.load()?,
            vcs: r.load()?,
            dispatch_scheduled: r.load()?,
            rr_cursor: r.u8()?,
            high_water: r.usize_()?,
            bytes: r.u64()?,
            busy_ns: r.u64()?,
        })
    }
}

impl<P: StateSave> StateSave for InFlight<P> {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.packet);
        w.save(&self.route);
        w.usize_(self.hop);
        w.save(&self.reorder);
    }
}
impl<P: StateLoad> StateLoad for InFlight<P> {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(InFlight {
            packet: r.load()?,
            route: r.load()?,
            hop: r.usize_()?,
            reorder: r.load()?,
        })
    }
}

impl StateSave for NetEvent {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            NetEvent::Dispatch(link) => {
                w.u8(0);
                w.usize_(*link);
            }
            NetEvent::Arrive { flight } => {
                w.u8(1);
                w.usize_(*flight);
            }
        }
    }
}
impl StateLoad for NetEvent {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        Ok(match r.u8()? {
            0 => NetEvent::Dispatch(r.usize_()?),
            1 => NetEvent::Arrive {
                flight: r.usize_()?,
            },
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        })
    }
}

impl StateSave for NetworkStats {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.injected);
        w.save(&self.delivered);
        w.save(&self.latency);
        w.u64(self.bytes_delivered);
        w.usize_(self.max_link_queue);
        w.save(&self.faults_dropped);
        w.save(&self.faults_duplicated);
        w.save(&self.faults_corrupted);
        w.save(&self.faults_reordered);
        w.save(&self.credit_stalls);
        w.u64(self.credit_stall_ns);
        w.save(&self.latency_hi);
        w.save(&self.latency_lo);
    }
}
impl StateLoad for NetworkStats {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(NetworkStats {
            injected: r.load()?,
            delivered: r.load()?,
            latency: r.load()?,
            bytes_delivered: r.u64()?,
            max_link_queue: r.usize_()?,
            faults_dropped: r.load()?,
            faults_duplicated: r.load()?,
            faults_corrupted: r.load()?,
            faults_reordered: r.load()?,
            credit_stalls: r.load()?,
            credit_stall_ns: r.u64()?,
            latency_hi: r.load()?,
            latency_lo: r.load()?,
        })
    }
}

impl<P: StateSave + Clone> StateSave for Network<P> {
    /// The topology is not serialized — it is a pure function of the node
    /// count, rebuilt by [`Network::new`] on restore.
    fn save(&self, w: &mut SnapWriter) {
        w.usize_(self.nodes());
        w.save(&self.params);
        w.save(&self.policy);
        w.save(&self.qos);
        w.save(&self.links);
        w.save(&self.flights);
        w.save(&self.free_slots);
        w.save(&self.events);
        w.save(&self.delivered);
        w.u64(self.route_salt);
        w.save(&self.fault);
        w.save(&self.stats);
    }
}
impl<P: StateLoad + Clone> StateLoad for Network<P> {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let nodes = r.usize_()?;
        // NodeId is u16; anything outside that range is a forged stream
        // (and would make FatTree::build attempt a giant allocation).
        if nodes == 0 || nodes > u16::MAX as usize + 1 {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        let params: LinkParams = r.load()?;
        let policy: RoutingPolicy = r.load()?;
        let qos: Option<QosParams> = r.load()?;
        let mut net = Network::new(nodes, params, policy);
        if let Some(q) = qos {
            net.set_qos(q);
        }
        let links_at = r.offset();
        let links: Vec<LinkState> = r.load()?;
        if links.len() != net.topology.link_count() {
            return Err(SnapshotError::Corrupt { offset: links_at });
        }
        net.links = links;
        let body_at = r.offset();
        net.flights = r.load()?;
        net.free_slots = r.load()?;
        net.events = r.load()?;
        net.delivered = r.load()?;
        net.route_salt = r.u64()?;
        net.fault = r.load()?;
        net.stats = r.load()?;
        net.validate_restored()
            .map_err(|()| SnapshotError::Corrupt { offset: body_at })?;
        Ok(net)
    }
}

impl<P> Network<P> {
    /// Cross-reference every slot index in a freshly restored network so
    /// a decodable-but-forged snapshot cannot make `advance` panic or
    /// index out of bounds later.
    fn validate_restored(&self) -> Result<(), ()> {
        let live = |slot: usize| matches!(self.flights.get(slot), Some(Some(_)));
        let nodes = self.topology.nodes;
        // Delivered packets are handed to the embedding machine, which
        // indexes its node array by `dst`.
        for (_, p) in &self.delivered {
            if (p.src as usize) >= nodes || (p.dst as usize) >= nodes {
                return Err(());
            }
        }
        for f in self.flights.iter().flatten() {
            if (f.packet.src as usize) >= nodes || (f.packet.dst as usize) >= nodes {
                return Err(());
            }
            if f.route.is_empty() || f.hop >= f.route.len() {
                return Err(());
            }
            if f.route.iter().any(|&l| l >= self.links.len()) {
                return Err(());
            }
        }
        for &slot in &self.free_slots {
            if slot >= self.flights.len() || self.flights[slot].is_some() {
                return Err(());
            }
        }
        let nvcs = self.qos.map_or(2, |q| q.vcs as usize);
        let max_credits = self.qos.map_or(0, |q| q.credits_per_vc);
        for link in &self.links {
            // Link layout must match the declared QoS geometry, and no
            // credit pool may exceed its capacity (an over-full pool
            // would let `outstanding_credits` underflow and a forged
            // surplus would overrun downstream buffers).
            if link.vcs.len() != nvcs || link.rr_cursor as usize >= nvcs {
                return Err(());
            }
            for v in &link.vcs {
                if v.credits > max_credits {
                    return Err(());
                }
                if v.queue.iter().any(|&slot| !live(slot)) {
                    return Err(());
                }
                if v.waiters.iter().any(|&w| w >= self.links.len()) {
                    return Err(());
                }
            }
        }
        let mut probe = self.events.clone();
        while let Some((_, ev)) = probe.pop() {
            match ev {
                NetEvent::Dispatch(l) => {
                    if l >= self.links.len() {
                        return Err(());
                    }
                }
                NetEvent::Arrive { flight } => {
                    if !live(flight) {
                        return Err(());
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Priority, PACKET_HEADER_BYTES};

    fn net(nodes: usize) -> Network<u32> {
        Network::new(nodes, LinkParams::default(), RoutingPolicy::HashSpread)
    }

    fn run_until_quiet(n: &mut Network<u32>) -> Vec<(Time, Packet<u32>)> {
        let mut out = Vec::new();
        while let Some(t) = n.next_event_time() {
            n.advance(t);
            out.extend(n.take_delivered());
        }
        out
    }

    #[test]
    fn snapshot_mid_flight_resumes_identically() {
        // Checkpoint a network with packets queued and in flight (faults
        // armed so the RNG is mid-stream) and check the restored copy
        // finishes the run with byte-identical deliveries and stats.
        let mut n = net(8);
        n.set_faults(FaultParams {
            drop_ppm: 50_000,
            dup_ppm: 50_000,
            corrupt_ppm: 50_000,
            reorder_ppm: 50_000,
            seed: 0xC4E0,
        });
        for i in 0..40u32 {
            let (s, d) = ((i % 8) as u16, ((i + 3) % 8) as u16);
            n.inject(
                Time::from_ns(i as u64 * 10),
                Packet::new(s, d, Priority::Low, 64, i),
            );
        }
        // Advance partway: leaves queued flights, pending events, and a
        // consumed RNG prefix.
        n.advance(Time::from_ns(900));
        let mut restored: Network<u32> = sv_sim::ckpt::roundtrip(&n).unwrap();
        // Keep injecting after the restore point on both copies.
        for i in 40..60u32 {
            let (s, d) = ((i % 8) as u16, ((i + 3) % 8) as u16);
            let p = Packet::new(s, d, Priority::Low, 64, i);
            n.inject(Time::from_ns(1000 + i as u64), p.clone());
            restored.inject(Time::from_ns(1000 + i as u64), p);
        }
        let a = run_until_quiet(&mut n);
        let b = run_until_quiet(&mut restored);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(format!("{:?}", n.stats), format!("{:?}", restored.stats));
        assert_eq!(
            format!("{:?}", n.link_usage()),
            format!("{:?}", restored.link_usage())
        );
    }

    #[test]
    fn snapshot_rejects_dangling_slot_references() {
        // Forge a snapshot whose free list points at a live flight.
        let mut n = net(2);
        n.inject(Time::ZERO, Packet::new(0, 1, Priority::Low, 8, 1u32));
        let mut w = sv_sim::ckpt::SnapWriter::new();
        n.save(&mut w);
        let good = w.finish();
        let mut r = sv_sim::ckpt::SnapReader::new(&good);
        assert!(Network::<u32>::load(&mut r).is_ok());
        // Re-save with a corrupted free list: flights has one live slot
        // (index 0) and the queues reference it, so claiming it free must
        // be rejected by cross-validation, not trusted.
        let mut w = sv_sim::ckpt::SnapWriter::new();
        w.usize_(n.nodes());
        w.save(&n.params);
        w.save(&n.policy);
        w.save(&n.qos);
        w.save(&n.links);
        w.save(&n.flights);
        w.save(&vec![0usize]); // forged free_slots
        w.save(&n.events);
        w.save(&n.delivered);
        w.u64(7);
        w.save(&n.fault);
        w.save(&n.stats);
        let bad = w.finish();
        let mut r = sv_sim::ckpt::SnapReader::new(&bad);
        assert!(matches!(
            Network::<u32>::load(&mut r),
            Err(sv_sim::ckpt::SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn single_packet_delivery_latency_matches_model() {
        let mut n = net(2);
        let p = Packet::new(0, 1, Priority::Low, 88, 7u32);
        n.inject(Time::ZERO, p);
        let got = run_until_quiet(&mut n);
        assert_eq!(got.len(), 1);
        let (t, p) = &got[0];
        assert_eq!(p.payload, 7);
        // 2 hops, each: serialize 96B at 6.25 ns/B = 600 ns + 60 ns router.
        assert_eq!(t.ns(), 2 * (600 + 60));
        assert_eq!(n.ideal_latency_ns(0, 1, 96), 1320);
        // Per-link occupancy: both traversed links serialized for 600 ns.
        let usage = n.link_usage();
        assert_eq!(usage.len(), 2);
        assert!(usage.iter().all(|u| u.busy_ns == 600 && u.bytes == 96));
    }

    #[test]
    fn serialization_throughput_bounds_stream() {
        // Stream many packets from 0 to 1: delivery spacing must equal the
        // serialization time of one packet (pipelined across the two hops).
        let mut n = net(2);
        for i in 0..50u32 {
            n.inject(Time::ZERO, Packet::new(0, 1, Priority::Low, 88, i));
        }
        let got = run_until_quiet(&mut n);
        assert_eq!(got.len(), 50);
        // In-order delivery for a single flow.
        for (i, (_, p)) in got.iter().enumerate() {
            assert_eq!(p.payload, i as u32);
        }
        let spacing = got[10].0.since(got[9].0);
        assert_eq!(spacing, 600, "spacing must equal per-link serialization");
        // Sustained goodput: 88 payload bytes per 600 ns ≈ 146.7 MB/s < 160.
        let t_first = got[0].0;
        let t_last = got.last().unwrap().0;
        let mbs = sv_sim::stats::mb_per_s(88 * 49, t_last.since(t_first));
        assert!((mbs - 146.6).abs() < 1.0, "{mbs}");
    }

    #[test]
    fn high_priority_overtakes_queued_low() {
        let mut n = net(2);
        // Fill the uplink with low-priority packets, then inject one high.
        for i in 0..10u32 {
            n.inject(Time::ZERO, Packet::new(0, 1, Priority::Low, 88, i));
        }
        n.inject(Time::from_ns(1), Packet::new(0, 1, Priority::High, 8, 999));
        let got = run_until_quiet(&mut n);
        let pos = got.iter().position(|(_, p)| p.payload == 999).unwrap();
        assert!(
            pos <= 2,
            "high-priority packet delivered at position {pos}, expected near-front"
        );
    }

    #[test]
    fn cross_traffic_contends_on_shared_downlink() {
        // Two senders to the same destination halve each other's goodput.
        let mut n = net(4);
        for i in 0..20u32 {
            n.inject(Time::ZERO, Packet::new(0, 3, Priority::Low, 88, i));
            n.inject(Time::ZERO, Packet::new(1, 3, Priority::Low, 88, 1000 + i));
        }
        let got = run_until_quiet(&mut n);
        assert_eq!(got.len(), 40);
        // Delivery timestamps mark packet *ends*, so rate over the span
        // from first to last delivery covers all but the first packet.
        let total_bytes: u64 = got.iter().skip(1).map(|(_, p)| p.wire_bytes as u64).sum();
        let span = got.last().unwrap().0.since(got[0].0);
        let mbs = sv_sim::stats::mb_per_s(total_bytes, span);
        // The shared switch->node link caps aggregate at one link bandwidth.
        assert!(mbs <= 161.0, "aggregate {mbs} MB/s exceeds link rate");
    }

    #[test]
    fn sixteen_node_all_pairs_delivers_everything() {
        let mut n = net(16);
        let mut expect = 0;
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s != d {
                    n.inject(
                        Time::ZERO,
                        Packet::new(s, d, Priority::Low, 32, (s as u32) << 16 | d as u32),
                    );
                    expect += 1;
                }
            }
        }
        let got = run_until_quiet(&mut n);
        assert_eq!(got.len(), expect);
        assert_eq!(n.stats.delivered.get(), expect as u64);
        for (_, p) in &got {
            assert_eq!(p.payload, (p.src as u32) << 16 | p.dst as u32);
        }
    }

    #[test]
    fn header_only_packet_times() {
        let mut n = net(2);
        n.inject(Time::ZERO, Packet::new(1, 0, Priority::High, 0, 0));
        let got = run_until_quiet(&mut n);
        let ser = LinkParams::default().serialize_ns(PACKET_HEADER_BYTES);
        assert_eq!(got[0].0.ns(), 2 * (ser + 60));
    }

    #[test]
    fn hash_spread_beats_fixed_routing_under_uniform_load() {
        // 16 nodes, random permutation traffic climbing to the top level;
        // fixed routing funnels everything through up-port 0.
        let mk = |policy| {
            let mut n: Network<u32> = Network::new(16, LinkParams::default(), policy);
            for rep in 0..8u32 {
                for s in 0..16u16 {
                    let d = (s + 4 + (rep as u16 % 3) * 4) % 16; // crosses leaves
                    if d != s {
                        n.inject(Time::ZERO, Packet::new(s, d, Priority::Low, 88, rep));
                    }
                }
            }
            let mut last = Time::ZERO;
            while let Some(t) = n.next_event_time() {
                n.advance(t);
                for (dt, _) in n.take_delivered() {
                    last = last.max_of(dt);
                }
            }
            last.ns()
        };
        let fixed = mk(RoutingPolicy::Fixed);
        let spread = mk(RoutingPolicy::HashSpread);
        assert!(
            spread < fixed,
            "spread routing ({spread} ns) should finish before fixed ({fixed} ns)"
        );
    }

    #[test]
    fn fault_drops_and_dups_are_counted_and_deterministic() {
        use crate::fault::{FaultParams, PPM};
        let run = |params: FaultParams| {
            let mut n = net(4);
            n.set_faults(params);
            for k in 0..200u32 {
                let s = (k % 4) as u16;
                n.inject(
                    Time::from_ns(k as u64 * 10),
                    Packet::new(s, (s + 1) % 4, Priority::Low, 64, k),
                );
            }
            let got = run_until_quiet(&mut n);
            (
                got.into_iter()
                    .map(|(t, p)| (t.ns(), p.payload, p.corrupt))
                    .collect::<Vec<_>>(),
                n.stats.clone(),
            )
        };
        let params = FaultParams {
            drop_ppm: PPM / 10,
            dup_ppm: PPM / 10,
            corrupt_ppm: PPM / 10,
            reorder_ppm: PPM / 10,
            seed: 1234,
        };
        let (got, stats) = run(params);
        assert!(stats.faults_dropped.get() > 0);
        assert!(stats.faults_duplicated.get() > 0);
        assert!(stats.faults_corrupted.get() > 0);
        assert!(stats.faults_reordered.get() > 0);
        assert!(got.iter().any(|&(_, _, c)| c), "corrupt flag reaches exit");
        // Every injected packet is accounted for: delivered once, twice
        // (duplicated), or dropped.
        assert_eq!(
            stats.delivered.get(),
            stats.injected.get() + stats.faults_duplicated.get() - stats.faults_dropped.get()
        );
        // Same seed → bit-identical trace; different seed → different.
        let (again, _) = run(params);
        assert_eq!(got, again);
        let (other, _) = run(FaultParams { seed: 77, ..params });
        assert_ne!(got, other);
        // Disabling restores perfect delivery.
        let (clean, cs) = run(FaultParams::default());
        assert_eq!(clean.len(), 200);
        assert_eq!(cs.faults_dropped.get(), 0);
    }

    #[test]
    fn reordered_packet_overtakes_queue() {
        use crate::fault::{FaultParams, PPM};
        // Reorder every packet: with a deep queue the last-injected
        // packet must come out first (LIFO within the priority class).
        let mut n = net(2);
        n.set_faults(FaultParams {
            reorder_ppm: PPM,
            ..FaultParams::default()
        });
        for k in 0..5u32 {
            n.inject(Time::ZERO, Packet::new(0, 1, Priority::Low, 88, k));
        }
        let got = run_until_quiet(&mut n);
        assert_eq!(got.len(), 5);
        // All five enqueue before the first dispatch event fires, so the
        // queue drains fully LIFO.
        let order: Vec<u32> = got.iter().map(|(_, p)| p.payload).collect();
        assert_eq!(order, vec![4, 3, 2, 1, 0]);
    }

    fn qos_net(nodes: usize, qos: QosParams) -> Network<u32> {
        let mut n: Network<u32> = Network::new(nodes, LinkParams::default(), RoutingPolicy::Fixed);
        n.set_qos(qos);
        n
    }

    #[test]
    fn qos_default_ordering_matches_legacy_when_credits_ample() {
        // With buffers deep enough that no credit ever hits zero, the
        // armed default (2 VCs, priority arbitration) must produce the
        // exact delivery trace of the legacy model.
        let traffic = |n: &mut Network<u32>| {
            for i in 0..30u32 {
                let (s, d) = ((i % 8) as u16, ((i + 3) % 8) as u16);
                let prio = if i % 5 == 0 {
                    Priority::High
                } else {
                    Priority::Low
                };
                n.inject(Time::from_ns(i as u64 * 7), Packet::new(s, d, prio, 64, i));
            }
        };
        let mut legacy: Network<u32> =
            Network::new(8, LinkParams::default(), RoutingPolicy::HashSpread);
        let mut armed: Network<u32> =
            Network::new(8, LinkParams::default(), RoutingPolicy::HashSpread);
        armed.set_qos(QosParams {
            credits_per_vc: 255,
            ..QosParams::default()
        });
        traffic(&mut legacy);
        traffic(&mut armed);
        let a = run_until_quiet(&mut legacy);
        let b = run_until_quiet(&mut armed);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(armed.stats.credit_stalls.get(), 0);
        assert_eq!(armed.outstanding_credits(), 0);
    }

    #[test]
    fn credits_conserve_and_stalls_engage_under_pressure() {
        // One-slot buffers on a deep incast: senders must stall on
        // credits, and at quiescence every loaned credit is back.
        let mut n = qos_net(
            8,
            QosParams {
                vcs: 2,
                credits_per_vc: 1,
                arbitration: VcArbitration::Priority,
            },
        );
        for i in 0..60u32 {
            let s = 1 + (i % 7) as u16;
            n.inject(
                Time::from_ns(i as u64),
                Packet::new(s, 0, Priority::Low, 88, i),
            );
        }
        let got = run_until_quiet(&mut n);
        assert_eq!(got.len(), 60, "credit stalls must delay, never drop");
        assert!(
            n.stats.credit_stalls.get() > 0,
            "1-credit buffers under incast must stall"
        );
        assert!(n.stats.credit_stall_ns > 0);
        assert_eq!(n.outstanding_credits(), 0, "all credits returned");
        let usage = n.vc_usage();
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[1].stalls, n.stats.credit_stalls.get());
        assert_eq!(usage[0].bytes, 0, "no High traffic ran");
        assert!(usage[1].bytes > 0);
    }

    #[test]
    fn two_vcs_isolate_high_priority_from_congested_low() {
        // Saturate the Low class into a hot node, then probe with High
        // packets. With 1 VC the probe queues behind the bulk (plus
        // credit backpressure); with 2 VCs it rides its own buffers.
        let tail = |vcs: u8| {
            let mut n = qos_net(
                16,
                QosParams {
                    vcs,
                    credits_per_vc: 2,
                    arbitration: VcArbitration::Priority,
                },
            );
            for i in 0..120u32 {
                let s = 1 + (i % 15) as u16;
                n.inject(
                    Time::from_ns(i as u64),
                    Packet::new(s, 0, Priority::Low, 88, i),
                );
            }
            for k in 0..8u32 {
                n.inject(
                    Time::from_ns(500 + k as u64 * 400),
                    Packet::new(15, 0, Priority::High, 8, 10_000 + k),
                );
            }
            run_until_quiet(&mut n);
            assert_eq!(n.outstanding_credits(), 0);
            n.stats.latency_hi.max
        };
        let blocked = tail(1);
        let isolated = tail(2);
        assert!(
            isolated * 2 < blocked,
            "VC isolation should cut the High tail well below the shared-buffer \
             baseline (1 VC: {blocked} ns, 2 VCs: {isolated} ns)"
        );
    }

    #[test]
    fn round_robin_arbitration_shares_the_port() {
        // Two saturated VCs into one hot node: round-robin must
        // interleave grants instead of letting VC 0 monopolize the port.
        let run = |arb: VcArbitration| {
            let mut n = qos_net(
                4,
                QosParams {
                    vcs: 2,
                    credits_per_vc: 4,
                    arbitration: arb,
                },
            );
            for i in 0..20u32 {
                n.inject(Time::ZERO, Packet::new(1, 0, Priority::High, 88, i));
                n.inject(Time::ZERO, Packet::new(1, 0, Priority::Low, 88, 100 + i));
            }
            run_until_quiet(&mut n)
                .iter()
                .map(|(_, p)| p.payload)
                .collect::<Vec<_>>()
        };
        let rr = run(VcArbitration::RoundRobin);
        let strict = run(VcArbitration::Priority);
        // Priority arbitration delivers every High packet before any Low.
        assert!(strict.iter().position(|&p| p >= 100).unwrap() >= 20 - 1);
        // Round-robin mixes the classes well before the High class drains.
        let first_low_rr = rr.iter().position(|&p| p >= 100).unwrap();
        assert!(
            first_low_rr < 10,
            "round-robin should interleave (first Low at {first_low_rr})"
        );
    }

    #[test]
    fn qos_snapshot_mid_stall_resumes_identically() {
        // Cut a checkpoint while credits are loaned out and heads are
        // blocked; the restored copy must finish byte-identically.
        let mut n = qos_net(
            8,
            QosParams {
                vcs: 2,
                credits_per_vc: 1,
                arbitration: VcArbitration::RoundRobin,
            },
        );
        n.set_faults(FaultParams {
            drop_ppm: 30_000,
            dup_ppm: 30_000,
            corrupt_ppm: 30_000,
            reorder_ppm: 30_000,
            seed: 0x51AB,
        });
        for i in 0..50u32 {
            let (s, d) = (
                (i % 8) as u16,
                if i % 3 == 0 { 0 } else { ((i + 5) % 8) as u16 },
            );
            if s != d {
                let prio = if i % 4 == 0 {
                    Priority::High
                } else {
                    Priority::Low
                };
                n.inject(Time::from_ns(i as u64 * 5), Packet::new(s, d, prio, 88, i));
            }
        }
        n.advance(Time::from_ns(1500));
        assert!(n.outstanding_credits() > 0, "cut lands mid-stall");
        let mut restored: Network<u32> = sv_sim::ckpt::roundtrip(&n).unwrap();
        assert_eq!(restored.qos(), n.qos());
        let a = run_until_quiet(&mut n);
        let b = run_until_quiet(&mut restored);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(format!("{:?}", n.stats), format!("{:?}", restored.stats));
        assert_eq!(
            format!("{:?}", n.vc_usage()),
            format!("{:?}", restored.vc_usage())
        );
        assert_eq!(n.outstanding_credits(), 0);
        assert_eq!(restored.outstanding_credits(), 0);
    }

    #[test]
    fn snapshot_rejects_overfull_credit_pool() {
        // A forged credit surplus must fail cross-validation: it would
        // let upstream transmitters overrun the buffer it guards.
        let n = qos_net(2, QosParams::default());
        let mut w = sv_sim::ckpt::SnapWriter::new();
        n.save(&mut w);
        let good = w.finish();
        let mut r = sv_sim::ckpt::SnapReader::new(&good);
        assert!(Network::<u32>::load(&mut r).is_ok());
        let mut forged = n.clone();
        forged.links[0].vcs[0].credits = n.qos().unwrap().credits_per_vc + 1;
        let mut w = sv_sim::ckpt::SnapWriter::new();
        forged.save(&mut w);
        let bad = w.finish();
        let mut r = sv_sim::ckpt::SnapReader::new(&bad);
        assert!(matches!(
            Network::<u32>::load(&mut r),
            Err(sv_sim::ckpt::SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut n = net(16);
            for s in 0..16u16 {
                for k in 0..5u32 {
                    n.inject(
                        Time::from_ns(k as u64 * 10),
                        Packet::new(s, (s + 5) % 16, Priority::Low, 64, k),
                    );
                }
            }
            run_until_quiet(&mut n)
                .into_iter()
                .map(|(t, p)| (t.ns(), p.src, p.dst, p.payload))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
