//! Packet format and identity.

use serde::{Deserialize, Serialize};
use sv_sim::Time;

/// Physical node (leaf) identifier.
pub type NodeId = u16;

/// Bytes of packet header on the wire (route word, source, logical queue,
/// flags). Matches the framing budget of Arctic's 96-byte packets: an
/// 8-byte header leaves 88 bytes for payload — exactly the maximum Basic
/// message payload of the paper.
pub const PACKET_HEADER_BYTES: u32 = 8;

/// Maximum payload bytes per packet.
pub const MAX_PAYLOAD_BYTES: u32 = 88;

/// Arctic supports (at least) two packet priorities; StarT-Voyager maps
/// protocol *replies* to [`Priority::High`] so that request traffic can
/// never indefinitely block responses — the standard two-network
/// deadlock-avoidance discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Reply / reclaim class; dispatched first at every link.
    High,
    /// Request / bulk class.
    Low,
}

impl Priority {
    /// Queue index used by the link model (0 = high).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Low => 1,
        }
    }
}

/// A packet in flight. `P` is the structured payload type supplied by the
/// NIU layer; only [`Packet::wire_bytes`] participates in timing, so the
/// simulation never serializes `P` to bytes.
#[derive(Debug, Clone)]
pub struct Packet<P> {
    /// Source node.
    pub src: NodeId,
    /// Destination.
    pub dst: NodeId,
    /// Network priority class.
    pub priority: Priority,
    /// Total size on the wire, header included.
    pub wire_bytes: u32,
    /// Time the packet entered the network (set by `Network::inject`).
    pub injected_at: Time,
    /// Reliable-delivery sequence number within the sender's
    /// `(destination, priority)` stream; `0` means unsequenced (the
    /// reliable layer is off or the packet is an ack). Stamped by the
    /// NIU, opaque to the network.
    pub seq: u32,
    /// Set by the fault model when the payload was mangled in flight —
    /// the receiving NIU sees a CRC-failed frame and discards it.
    pub corrupt: bool,
    /// Structured payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Construct a packet carrying `payload_bytes` of payload (the header
    /// is added automatically). Panics if the payload exceeds
    /// [`MAX_PAYLOAD_BYTES`] — oversized transfers must be packetized by
    /// the NIU before injection, as in the hardware.
    pub fn new(
        src: NodeId,
        dst: NodeId,
        priority: Priority,
        payload_bytes: u32,
        payload: P,
    ) -> Self {
        assert!(
            payload_bytes <= MAX_PAYLOAD_BYTES,
            "payload {payload_bytes} exceeds Arctic maximum {MAX_PAYLOAD_BYTES}"
        );
        Packet {
            src,
            dst,
            priority,
            wire_bytes: PACKET_HEADER_BYTES + payload_bytes,
            injected_at: Time::ZERO,
            seq: 0,
            corrupt: false,
            payload,
        }
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for Priority {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            Priority::High => 0,
            Priority::Low => 1,
        });
    }
}
impl StateLoad for Priority {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        Ok(match r.u8()? {
            0 => Priority::High,
            1 => Priority::Low,
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        })
    }
}

impl<P: StateSave> StateSave for Packet<P> {
    fn save(&self, w: &mut SnapWriter) {
        w.u16(self.src);
        w.u16(self.dst);
        w.save(&self.priority);
        w.u32(self.wire_bytes);
        w.save(&self.injected_at);
        w.u32(self.seq);
        w.save(&self.corrupt);
        self.payload.save(w);
    }
}
impl<P: StateLoad> StateLoad for Packet<P> {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Packet {
            src: r.u16()?,
            dst: r.u16()?,
            priority: r.load()?,
            wire_bytes: r.u32()?,
            injected_at: r.load()?,
            seq: r.u32()?,
            corrupt: r.load()?,
            payload: P::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_header() {
        let p = Packet::new(0, 1, Priority::Low, 88, ());
        assert_eq!(p.wire_bytes, 96);
    }

    #[test]
    #[should_panic(expected = "exceeds Arctic maximum")]
    fn oversized_payload_rejected() {
        let _ = Packet::new(0, 1, Priority::Low, 89, ());
    }

    #[test]
    fn priority_indices() {
        assert_eq!(Priority::High.index(), 0);
        assert_eq!(Priority::Low.index(), 1);
        assert!(Priority::High < Priority::Low);
    }
}
