//! 4-ary n-tree (fat-tree) topology and up*/down routing.
//!
//! The network is a *k*-ary *n*-tree with `k = 4` (Arctic switches have
//! four down and four up ports). A tree of height `h` supports `4^h`
//! nodes with full bisection bandwidth. Switches live at levels
//! `0..h` (level 0 adjacent to nodes, level `h-1` the roots) and each
//! level holds `4^(h-1)` switches.
//!
//! **Wiring rule.** Identify a switch by `(level l, label w)` where `w`
//! is an `(h-1)`-digit base-4 string. Up-port `u` of `(l, w)` connects to
//! the down side of `(l+1, replace_digit(w, l, u))`; the corresponding
//! down-port index on the upper switch is the replaced digit. Level-0
//! switch `w` serves nodes `4w .. 4w+3`.
//!
//! **Routing.** A packet from `s` to `d` climbs to the lowest level `L`
//! at which the leaf labels of `s` and `d` can converge (one more than
//! the most significant differing digit), choosing one of the four up
//! ports freely at each step — that freedom is the fat tree's path
//! diversity — then descends deterministically by setting digit `l` to
//! `digit_l(leaf(d))` at each level.

use crate::packet::NodeId;
use serde::{Deserialize, Serialize};

/// Switch radix: down ports and up ports per switch.
pub const RADIX: usize = 4;

/// Index of a directed link in [`FatTree::links`].
pub type LinkId = usize;

/// One endpoint of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
// Variant fields are named self-descriptively; the variants themselves
// are documented above each one.
#[allow(missing_docs)]
pub enum Endpoint {
    /// A processing node (its NIU's network port).
    Node(NodeId),
    /// Switch at `(level, label)`.
    Switch { level: u8, label: u32 },
}

/// A directed link between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Source endpoint.
    pub from: Endpoint,
    /// Destination endpoint.
    pub to: Endpoint,
}

/// How the free up-port choices of the up*/down route are made.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Spread flows with a deterministic hash of `(src, dst, sequence)` —
    /// reproducible stand-in for Arctic's adaptive routing under the
    /// uniform traffic of our experiments. Packets of one flow may take
    /// different paths and be reordered, as on the real adaptive network.
    HashSpread,
    /// One deterministic path per `(src, dst)` pair: packets of a flow
    /// stay FIFO end-to-end. The machine's default, because the NIU's
    /// remote-command stream relies on per-flow ordering (the hardware
    /// achieves the same with its ordered command queues).
    FlowHash,
    /// Always take up-port 0. Deliberately collision-prone; used by the
    /// network ablation to show the value of path diversity.
    Fixed,
}

/// The fat-tree topology: switch inventory plus the directed-link table.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Tree height (levels of switches). `4^height >= nodes`.
    pub height: u32,
    /// Number of processing nodes actually attached (the tree is sized to
    /// the next power of four).
    pub nodes: usize,
    /// All directed links; `LinkId` indexes this.
    pub links: Vec<Link>,
    /// Switches per level.
    pub switches_per_level: usize,
    /// Lookup: link id of `Node(i) -> leaf switch`.
    up_from_node: Vec<LinkId>,
    /// Lookup: link id of `leaf switch -> Node(i)`.
    down_to_node: Vec<LinkId>,
    /// Lookup: `(level, label, up_port)` -> link id of the upward link.
    up_link: Vec<Vec<[LinkId; RADIX]>>,
    /// Lookup: `(level, label, up_port)` -> link id of the matching
    /// downward link (upper switch back down to `(level, label)`).
    down_link: Vec<Vec<[LinkId; RADIX]>>,
}

#[inline]
fn digit(w: u32, pos: u32) -> u32 {
    (w >> (2 * pos)) & 0b11
}

#[inline]
fn replace_digit(w: u32, pos: u32, d: u32) -> u32 {
    (w & !(0b11 << (2 * pos))) | (d << (2 * pos))
}

/// Smallest height whose tree holds `nodes` endpoints.
pub fn height_for(nodes: usize) -> u32 {
    assert!(nodes >= 1);
    let mut h = 1u32;
    while RADIX.pow(h) < nodes {
        h += 1;
    }
    h
}

impl FatTree {
    /// Build the smallest 4-ary n-tree covering `nodes` processing nodes
    /// (minimum height 1, i.e. a single switch for up to 4 nodes).
    pub fn build(nodes: usize) -> Self {
        let height = height_for(nodes.max(2));
        let switches_per_level = RADIX.pow(height - 1);
        let mut links = Vec::new();
        let mut up_from_node = Vec::with_capacity(nodes);
        let mut down_to_node = Vec::with_capacity(nodes);

        // Node <-> leaf-switch links.
        for n in 0..nodes {
            let sw = Endpoint::Switch {
                level: 0,
                label: (n / RADIX) as u32,
            };
            up_from_node.push(links.len());
            links.push(Link {
                from: Endpoint::Node(n as NodeId),
                to: sw,
            });
            down_to_node.push(links.len());
            links.push(Link {
                from: sw,
                to: Endpoint::Node(n as NodeId),
            });
        }

        // Switch <-> switch links for every level transition.
        let mut up_link = Vec::new();
        let mut down_link = Vec::new();
        for l in 0..height.saturating_sub(1) {
            let mut ups = Vec::with_capacity(switches_per_level);
            let mut downs = Vec::with_capacity(switches_per_level);
            for w in 0..switches_per_level as u32 {
                let mut up_ids = [0usize; RADIX];
                let mut down_ids = [0usize; RADIX];
                for u in 0..RADIX as u32 {
                    let lower = Endpoint::Switch {
                        level: l as u8,
                        label: w,
                    };
                    let upper = Endpoint::Switch {
                        level: (l + 1) as u8,
                        label: replace_digit(w, l, u),
                    };
                    up_ids[u as usize] = links.len();
                    links.push(Link {
                        from: lower,
                        to: upper,
                    });
                    down_ids[u as usize] = links.len();
                    links.push(Link {
                        from: upper,
                        to: lower,
                    });
                }
                ups.push(up_ids);
                downs.push(down_ids);
            }
            up_link.push(ups);
            down_link.push(downs);
        }

        FatTree {
            height,
            nodes,
            links,
            switches_per_level,
            up_from_node,
            down_to_node,
            up_link,
            down_link,
        }
    }

    /// Leaf-switch label of a node.
    #[inline]
    pub fn leaf_of(&self, n: NodeId) -> u32 {
        n as u32 / RADIX as u32
    }

    /// Number of switch levels the route from `s` to `d` must climb
    /// (0 when both share a leaf switch).
    pub fn climb_levels(&self, s: NodeId, d: NodeId) -> u32 {
        let (ls, ld) = (self.leaf_of(s), self.leaf_of(d));
        if ls == ld {
            return 0;
        }
        // One more than the most significant differing base-4 digit.
        let mut lvl = 0;
        for pos in 0..self.height - 1 {
            if digit(ls, pos) != digit(ld, pos) {
                lvl = pos + 1;
            }
        }
        lvl
    }

    /// Number of links a packet from `s` to `d` traverses (including the
    /// node↔switch links).
    pub fn hop_count(&self, s: NodeId, d: NodeId) -> usize {
        2 + 2 * self.climb_levels(s, d) as usize
    }

    /// Compute the full directed-link route from `s` to `d`.
    ///
    /// `selector` provides the free up-port choice for each climbed level
    /// (called with the level index, must return a value `< RADIX`).
    pub fn route(&self, s: NodeId, d: NodeId, mut selector: impl FnMut(u32) -> u32) -> Vec<LinkId> {
        assert!((s as usize) < self.nodes && (d as usize) < self.nodes);
        assert_ne!(s, d, "route to self");
        let climb = self.climb_levels(s, d);
        let mut route = Vec::with_capacity(self.hop_count(s, d));
        route.push(self.up_from_node[s as usize]);
        let mut label = self.leaf_of(s);
        // Climb, recording the label path so descent can retrace levels.
        let mut labels_up = Vec::with_capacity(climb as usize);
        for l in 0..climb {
            let u = selector(l) % RADIX as u32;
            route.push(self.up_link[l as usize][label as usize][u as usize]);
            labels_up.push(label);
            label = replace_digit(label, l, u);
        }
        // Descend: set digit l to the destination leaf's digit l.
        let ld = self.leaf_of(d);
        for l in (0..climb).rev() {
            let target = replace_digit(label, l, digit(ld, l));
            // The down link from (l+1, label) to (l, target) is recorded as
            // down_link[l][target][u] where replace_digit(target, l, u) == label.
            let u = digit(label, l);
            debug_assert_eq!(replace_digit(target, l, u), label);
            route.push(self.down_link[l as usize][target as usize][u as usize]);
            label = target;
        }
        debug_assert_eq!(label, ld, "descent must land on destination leaf");
        route.push(self.down_to_node[d as usize]);
        route
    }

    /// Total number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Nodes per aligned height-`k` subtree (`4^k`). `k = 0` is a single
    /// node, `k = 1` one leaf switch's nodes, `k = height` the whole
    /// tree.
    pub fn subtree_span(k: u32) -> usize {
        RADIX.pow(k)
    }

    /// Index of the aligned height-`k` subtree containing node `n`.
    ///
    /// Nodes are numbered consecutively under the leaves, so the aligned
    /// `4^k`-node chunks of the node range *are* the height-`k` subtrees:
    /// every node of chunk `i` hangs under the same level-`k-1` switch
    /// ancestry, and no node outside the chunk does.
    #[inline]
    pub fn subtree_of(&self, n: NodeId, k: u32) -> usize {
        n as usize / Self::subtree_span(k)
    }

    /// Number of aligned height-`k` subtrees covering the attached nodes
    /// (the last may be partially populated).
    pub fn subtree_count(&self, k: u32) -> usize {
        self.nodes.div_ceil(Self::subtree_span(k))
    }

    /// Minimum number of switch levels any packet between nodes of two
    /// *distinct* height-`k` subtrees must climb. Two such nodes differ
    /// in a leaf-label digit at position `>= k - 1`, so the route
    /// converges no lower than level `k`.
    pub fn min_cross_subtree_climb(&self, k: u32) -> u32 {
        debug_assert!(
            self.subtree_count(k) > 1,
            "no cross-subtree traffic exists at height {k}"
        );
        k
    }

    /// Minimum hop count (node links included) of any packet between
    /// nodes of two distinct height-`k` subtrees. Grows linearly in `k`,
    /// which is what makes subtree-aligned shards attractive to a
    /// conservative parallel run loop: coarser shards push all
    /// cross-shard traffic through proportionally longer routes.
    pub fn min_cross_subtree_hops(&self, k: u32) -> usize {
        2 + 2 * self.min_cross_subtree_climb(k) as usize
    }

    /// Subtree height to shard this tree's nodes across `workers`
    /// parallel workers: the finest aligned-`4^k` sharding whose shard
    /// count stays within `4 * workers` (enough shards for load
    /// balancing without drowning the window protocol in per-shard
    /// dispatches), floored so the shard count never drops below the
    /// worker count.
    pub fn shard_levels_for(&self, workers: usize) -> u32 {
        let w = workers.max(1);
        let mut k = 0u32;
        while self.subtree_count(k + 1) >= w && self.subtree_count(k) > 4 * w {
            k += 1;
        }
        k
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for RoutingPolicy {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            RoutingPolicy::HashSpread => 0,
            RoutingPolicy::FlowHash => 1,
            RoutingPolicy::Fixed => 2,
        });
    }
}
impl StateLoad for RoutingPolicy {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        Ok(match r.u8()? {
            0 => RoutingPolicy::HashSpread,
            1 => RoutingPolicy::FlowHash,
            2 => RoutingPolicy::Fixed,
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn height_sizing() {
        assert_eq!(height_for(2), 1);
        assert_eq!(height_for(4), 1);
        assert_eq!(height_for(5), 2);
        assert_eq!(height_for(16), 2);
        assert_eq!(height_for(17), 3);
        assert_eq!(height_for(64), 3);
    }

    #[test]
    fn two_node_tree_routes_through_one_switch() {
        let t = FatTree::build(2);
        assert_eq!(t.height, 1);
        let r = t.route(0, 1, |_| 0);
        assert_eq!(r.len(), 2);
        assert_eq!(t.hop_count(0, 1), 2);
        // First link leaves node 0, last link enters node 1.
        assert_eq!(t.links[r[0]].from, Endpoint::Node(0));
        assert_eq!(t.links[r[1]].to, Endpoint::Node(1));
    }

    #[test]
    fn sixteen_node_routes_are_valid_paths() {
        let t = FatTree::build(16);
        assert_eq!(t.height, 2);
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d {
                    continue;
                }
                for sel in 0..4u32 {
                    let r = t.route(s, d, |_| sel);
                    assert_eq!(r.len(), t.hop_count(s, d), "{s}->{d}");
                    // Path continuity: each link starts where the previous ended.
                    assert_eq!(t.links[r[0]].from, Endpoint::Node(s));
                    for w in r.windows(2) {
                        assert_eq!(t.links[w[0]].to, t.links[w[1]].from);
                    }
                    assert_eq!(t.links[*r.last().unwrap()].to, Endpoint::Node(d));
                }
            }
        }
    }

    #[test]
    fn same_leaf_is_two_hops() {
        let t = FatTree::build(16);
        assert_eq!(t.climb_levels(0, 3), 0);
        assert_eq!(t.hop_count(0, 3), 2);
        assert_eq!(t.climb_levels(0, 4), 1);
        assert_eq!(t.hop_count(0, 4), 4);
    }

    #[test]
    fn distinct_up_choices_give_distinct_paths() {
        let t = FatTree::build(16);
        let r0 = t.route(0, 12, |_| 0);
        let r1 = t.route(0, 12, |_| 1);
        assert_ne!(r0, r1, "path diversity must exist across the tree");
        // But both must share first and last hops.
        assert_eq!(r0[0], r1[0]);
        assert_eq!(r0.last(), r1.last());
    }

    #[test]
    fn three_level_tree_routes() {
        let t = FatTree::build(64);
        assert_eq!(t.height, 3);
        let r = t.route(0, 63, |l| l); // arbitrary per-level selections
        assert_eq!(r.len(), t.hop_count(0, 63));
        assert_eq!(t.hop_count(0, 63), 2 + 2 * 2);
        for w in r.windows(2) {
            assert_eq!(t.links[w[0]].to, t.links[w[1]].from);
        }
    }

    #[test]
    fn subtree_shards_align_with_the_tree() {
        let t = FatTree::build(64);
        // Height-1 subtrees are exactly the leaf switches.
        assert_eq!(FatTree::subtree_span(1), 4);
        assert_eq!(t.subtree_count(1), 16);
        for n in 0..64u16 {
            assert_eq!(t.subtree_of(n, 1) as u32, t.leaf_of(n));
        }
        // Same subtree => a route never climbs above the subtree root;
        // different subtrees => it must climb at least `k` levels.
        for k in 1..=2u32 {
            for s in 0..64u16 {
                for d in 0..64u16 {
                    if s == d {
                        continue;
                    }
                    let climb = t.climb_levels(s, d);
                    if t.subtree_of(s, k) == t.subtree_of(d, k) {
                        assert!(climb < k, "{s}->{d} climbs {climb} inside height-{k}");
                    } else {
                        assert!(climb >= k, "{s}->{d} climbs {climb} across height-{k}");
                        assert!(t.hop_count(s, d) >= t.min_cross_subtree_hops(k));
                    }
                }
            }
        }
    }

    #[test]
    fn cross_subtree_hops_grow_with_height() {
        let t = FatTree::build(256);
        assert_eq!(t.min_cross_subtree_hops(1), 4);
        assert_eq!(t.min_cross_subtree_hops(2), 6);
        assert_eq!(t.min_cross_subtree_hops(3), 8);
        // The bound is achieved by some pair (tightness).
        assert_eq!(t.hop_count(0, 4), t.min_cross_subtree_hops(1));
        assert_eq!(t.hop_count(0, 16), t.min_cross_subtree_hops(2));
    }

    #[test]
    fn shard_levels_balance_count_against_workers() {
        let t = FatTree::build(1024);
        // 8 workers: 4^k shards with count in (8, 32] => 64 nodes/shard.
        let k = t.shard_levels_for(8);
        assert!(t.subtree_count(k) >= 8, "at least one shard per worker");
        assert!(
            t.subtree_count(k) <= 4 * 8 || k == 0,
            "no more than 4 shards per worker unless already finest"
        );
        // Tiny machine: sharding stays at single nodes.
        let small = FatTree::build(4);
        assert_eq!(small.shard_levels_for(2), 0);
        assert_eq!(small.subtree_count(0), 4);
        // One worker still gets a valid (coarse) sharding.
        assert!(t.subtree_count(t.shard_levels_for(1)) >= 1);
    }

    #[test]
    fn digit_helpers() {
        // label 0b1110 = digits (pos0=2, pos1=3)
        assert_eq!(digit(0b1110, 0), 2);
        assert_eq!(digit(0b1110, 1), 3);
        assert_eq!(replace_digit(0b1110, 0, 1), 0b1101);
        assert_eq!(replace_digit(0b1110, 1, 0), 0b0010);
    }
}
