//! Criterion wall-clock benchmarks of the block-transfer simulations —
//! they track the *simulator's* performance per approach (the simulated
//! metrics come from the `fig*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use voyager::blockxfer::{run_block_transfer, XferSpec};
use voyager::firmware::proto::Approach;
use voyager::SystemParams;

fn bench_blockxfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("blockxfer_16KiB");
    g.sample_size(10);
    for a in [
        Approach::ApDirect,
        Approach::SpManaged,
        Approach::BlockHw,
        Approach::OptimisticSp,
        Approach::OptimisticHw,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{a:?}")),
            &a,
            |b, &a| {
                b.iter(|| {
                    run_block_transfer(
                        SystemParams::default(),
                        XferSpec {
                            approach: a,
                            len: 16 * 1024,
                            verify: false,
                        },
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_blockxfer);
criterion_main!(benches);
