//! Criterion wall-clock benchmarks of the message-path simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use voyager::workloads::{basic_ping_pong, basic_stream, express_ping_pong, express_stream};
use voyager::SystemParams;

fn bench_messages(c: &mut Criterion) {
    let mut g = c.benchmark_group("messages");
    g.sample_size(10);
    g.bench_function("basic_ping_pong_10", |b| {
        b.iter(|| basic_ping_pong(SystemParams::default(), 10))
    });
    g.bench_function("express_ping_pong_10", |b| {
        b.iter(|| express_ping_pong(SystemParams::default(), 10))
    });
    g.bench_function("basic_stream_100x88B", |b| {
        b.iter(|| basic_stream(SystemParams::default(), 100, 88, None))
    });
    g.bench_function("express_stream_100", |b| {
        b.iter(|| express_stream(SystemParams::default(), 100))
    });
    g.finish();
}

criterion_group!(benches, bench_messages);
criterion_main!(benches);
