//! **Ablation A5** — clsSRAM write tracking for update protocols (paper
//! §5: "StarT-Voyager's clsSRAM can be used to track modifications at
//! the cache-line granularity, thus reducing the amount of diff-ing
//! required").
//!
//! A 64 KiB region is dirtied at varying densities and flushed to a
//! peer. The tracked flush ships only dirty lines; the alternative —
//! software diff-ing without hardware tracking — must move the whole
//! region (modeled by a full hardware block transfer). The crossover
//! shows where line-granular tracking pays.

use sv_bench::{print_table, us};
use voyager::api::{request_flush, RecvBasic};
use voyager::app::{Env, Program, Seq, Step, StoreData};
use voyager::blockxfer::{run_block_transfer, XferSpec};
use voyager::firmware::proto::{Approach, XferFlush};
use voyager::{Machine, SystemParams};

const REGION: u32 = 64 * 1024;
const LINES: u64 = REGION as u64 / 32;

struct Stores(std::collections::VecDeque<Step>);
impl Program for Stores {
    fn step(&mut self, _e: &mut Env<'_>) -> Step {
        self.0.pop_front().unwrap_or(Step::Done)
    }
}

/// Dirty every `stride`-th line, then flush. Returns
/// `(flush time ns, lines sent)`.
fn tracked_flush(stride: u64) -> (u64, u64) {
    let p = SystemParams::default();
    let mut m = Machine::builder(2).params(p).build();
    m.enable_write_tracking(0);
    let base = p.map.scoma_base;
    m.nodes[0].mem.fill_pattern(base, REGION as usize, 11);
    let steps: Vec<Step> = (0..LINES)
        .step_by(stride as usize)
        .map(|l| Step::Store {
            addr: base + l * 32,
            data: StoreData::U64(l),
        })
        .collect();
    m.load_program(0, Stores(steps.into()));
    m.run_to_quiescence();
    let start = m.now;
    let lib0 = m.lib(0);
    m.load_program(
        0,
        Seq::new(vec![
            Box::new(request_flush(
                &lib0,
                &XferFlush {
                    xfer_id: 1,
                    base,
                    dst_addr: 0x40_0000,
                    len: REGION,
                    dst_node: 1,
                    notify_lq: 1,
                },
            )),
            Box::new(RecvBasic::expecting(&lib0, 1)),
        ]),
    );
    let end = m.run_to_quiescence();
    (end.since(start), m.nodes[0].fw.xfer.flush_lines_sent.get())
}

fn main() {
    // Baseline: moving the whole region with the hardware block path.
    let full = run_block_transfer(
        SystemParams::default(),
        XferSpec {
            approach: Approach::BlockHw,
            len: REGION,
            verify: true,
        },
    );
    let mut rows = Vec::new();
    for (label, stride) in [
        ("100%", 1u64),
        ("50%", 2),
        ("25%", 4),
        ("10%", 10),
        ("5%", 20),
        ("1%", 100),
    ] {
        let (t, sent) = tracked_flush(stride);
        rows.push(vec![
            label.to_string(),
            sent.to_string(),
            (sent * 32).to_string(),
            us(t),
            format!("{:.2}x", full.latency_notify_ns as f64 / t as f64),
        ]);
    }
    rows.push(vec![
        "full copy (A3)".into(),
        LINES.to_string(),
        REGION.to_string(),
        us(full.latency_notify_ns),
        "1.00x".into(),
    ]);
    print_table(
        "A5: tracked-flush vs full-region transfer (64 KiB region)",
        &[
            "dirty fraction",
            "lines sent",
            "bytes sent",
            "time (us)",
            "speedup vs full copy",
        ],
        &rows,
    );

    let (sparse_t, sparse_sent) = tracked_flush(20);
    assert_eq!(sparse_sent, LINES / 20 + !LINES.is_multiple_of(20) as u64);
    assert!(
        sparse_t < full.latency_notify_ns,
        "sparse flush {sparse_t} ns must beat full copy {} ns",
        full.latency_notify_ns
    );
    println!("\nshape check: line tracking wins whenever writes are sparse ✓");
}
