//! **Ablation A6** — IBus bandwidth (paper §4: the IBus is "the central
//! data-path that connects CTRL to the SRAMs and the network. Almost all
//! data that flows through the NIU will cross the IBus at least once ...
//! it is a critical resource in the system").
//!
//! Sweeping the IBus width shows when it becomes the bottleneck: at
//! 2 B/cycle (132 MB/s, barely above the link) the block path and the
//! message stream both throttle; at the default 8 B/cycle the link is
//! the limit and further IBus width buys nothing.

use sv_bench::print_table;
use voyager::blockxfer::{run_block_transfer, XferSpec};
use voyager::firmware::proto::Approach;
use voyager::workloads::basic_stream;
use voyager::SystemParams;

fn main() {
    let mut rows = Vec::new();
    let mut bw_at = Vec::new();
    for width in [2u64, 4, 8, 16] {
        let mut params = SystemParams::default();
        params.niu.ibus_bytes_per_cycle = width;
        let a3 = run_block_transfer(
            params,
            XferSpec {
                approach: Approach::BlockHw,
                len: 256 * 1024,
                verify: true,
            },
        );
        assert!(a3.verified);
        let stream = basic_stream(params, 300, 88, None);
        let ibus_mb_s = width as f64 * 66.0;
        rows.push(vec![
            format!("{width} B/cyc ({ibus_mb_s:.0} MB/s)"),
            format!("{:.1}", a3.bandwidth_mb_s),
            format!("{:.1}", stream.bandwidth_mb_s),
            format!("{:.0}k", stream.msg_rate_per_s / 1e3),
        ]);
        bw_at.push((width, a3.bandwidth_mb_s));
    }
    print_table(
        "A6: IBus width sweep (256 KiB block transfer + 88B message stream)",
        &["IBus width", "A3 BW MB/s", "stream BW MB/s", "stream rate"],
        &rows,
    );

    let narrow = bw_at[0].1;
    let default = bw_at.iter().find(|&&(w, _)| w == 8).expect("default").1;
    let wide = bw_at[3].1;
    assert!(
        narrow < 0.9 * default,
        "a 2B/cycle IBus must throttle the block path: {narrow:.1} vs {default:.1}"
    );
    assert!(
        (wide - default).abs() / default < 0.05,
        "beyond the link rate, IBus width must not matter: {wide:.1} vs {default:.1}"
    );
    println!(
        "\nshape check: narrow IBus bottlenecks the NIU; the default keeps the link as the limit ✓"
    );
}
