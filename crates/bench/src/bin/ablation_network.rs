//! **Ablation A3** — network scaling on the Arctic fat tree: all-to-all
//! throughput from 2 to 32 nodes, ping latency vs hop distance, and the
//! value of path diversity (FlowHash vs deliberately-collapsed Fixed
//! routing).

use sv_bench::print_table;
use voyager::arctic::RoutingPolicy;
use voyager::workloads::all_to_all;
use voyager::{Machine, SystemParams};

fn main() {
    // Scaling sweep.
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32] {
        let (dur, aggregate) = all_to_all(SystemParams::default(), n, 8, 64);
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", dur as f64 / 1000.0),
            format!("{:.1}", aggregate),
            format!("{:.1}", aggregate / n as f64),
        ]);
    }
    print_table(
        "A3a: all-to-all scaling (8 x 64B messages per pair)",
        &["nodes", "time (us)", "aggregate MB/s", "per-node MB/s"],
        &rows,
    );

    // Latency vs hop distance: same-leaf vs cross-tree destinations on a
    // 16-node machine.
    let p = SystemParams::default();
    let mut rows = Vec::new();
    for (label, dst) in [("same leaf (2 hops)", 1u16), ("cross tree (4 hops)", 15u16)] {
        let mut m = Machine::builder(16).params(p).build();
        m.load_program(
            0,
            voyager::workloads::PingPongBasic::new(&m.lib(0), dst, 30, true),
        );
        m.load_program(
            dst,
            voyager::workloads::PingPongBasic::new(&m.lib(dst), 0, 30, false),
        );
        m.run_to_quiescence();
        let total = m
            .event_time(0, |k| matches!(k, voyager::AppEventKind::ProgramDone))
            .unwrap()
            .ns();
        rows.push(vec![label.to_string(), (total / 60).to_string()]);
    }
    print_table(
        "A3b: one-way latency vs distance (16 nodes)",
        &["path", "ns"],
        &rows,
    );

    // Path diversity: every node streams a hardware block transfer to a
    // cross-leaf partner simultaneously — traffic that saturates the
    // tree's upper links. Fixed routing funnels every climb through
    // up-port 0.
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (name, policy) in [
        ("FlowHash (default)", RoutingPolicy::FlowHash),
        ("HashSpread (adaptive)", RoutingPolicy::HashSpread),
        ("Fixed (no diversity)", RoutingPolicy::Fixed),
    ] {
        let params = SystemParams {
            routing: policy,
            ..SystemParams::default()
        };
        let dur = cross_leaf_block_storm(params);
        results.push(dur);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", dur as f64 / 1000.0),
        ]);
    }
    print_table(
        "A3c: routing policy under a 16-node cross-leaf block-transfer storm (64 KiB each)",
        &["policy", "completion (us)"],
        &rows,
    );
    assert!(
        results[2] > results[0],
        "fixed routing {} us must lose to diverse {} us",
        results[2] / 1000,
        results[0] / 1000
    );
    println!("\nshape check: aggregate bandwidth grows with nodes; fixed routing loses to diverse routing ✓");
}

/// Sixteen simultaneous 64 KiB hardware block transfers, node `i` →
/// node `(i + 4) % 16` (always cross-leaf). Returns the completion time.
fn cross_leaf_block_storm(params: SystemParams) -> u64 {
    use voyager::api::{request_transfer, RecvBasic};
    use voyager::app::Seq;
    use voyager::firmware::proto::{Approach, XferReq};
    let mut m = Machine::builder(16).params(params).build();
    let len = 64 * 1024u32;
    for i in 0..16u16 {
        m.nodes[i as usize]
            .mem
            .fill_pattern(0x10_0000, len as usize, i as u64);
        let lib = m.lib(i);
        let req = XferReq {
            approach: Approach::BlockHw,
            xfer_id: i,
            src_addr: 0x10_0000,
            dst_addr: 0x20_0000,
            len,
            dst_node: (i + 4) % 16,
            notify_lq: 1,
        };
        m.load_program(
            i,
            Seq::new(vec![
                Box::new(request_transfer(&lib, &req)),
                Box::new(RecvBasic::expecting(&lib, 1)),
            ]),
        );
    }
    m.run_to_quiescence().ns()
}
