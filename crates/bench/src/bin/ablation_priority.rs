//! **Ablation A2** — transmit-queue prioritization (paper §4: "a
//! dynamically reconfigurable system register that specifies queue
//! priorities").
//!
//! Forty-nine bulk messages sit queued on one transmit queue when a
//! single urgent message is composed on another. With equal (or lower)
//! priority the urgent message waits behind the bulk; with higher
//! priority CTRL's arbitration launches it next.

use sv_bench::{print_table, us};
use voyager::api::RecvBasic;
use voyager::app::AppEventKind;
use voyager::niu::{MsgHeader, Niu, SramSel};
use voyager::{Machine, SystemParams};

const BULK: usize = 49;

fn compose(niu: &mut Niu, qi: usize, dest: u16, body: &[u8]) {
    let (sel, slot) = {
        let q = &niu.ctrl.tx[qi];
        (q.buf.sram, q.buf.slot_addr(q.producer))
    };
    let hdr = MsgHeader::basic(dest, body.len() as u8);
    match sel {
        SramSel::A => {
            niu.asram.write(slot, &hdr.encode());
            niu.asram.write(slot + 8, body);
        }
        SramSel::S => {
            niu.ssram.write(slot, &hdr.encode());
            niu.ssram.write(slot + 8, body);
        }
    }
    niu.ctrl.tx[qi].producer = niu.ctrl.tx[qi].producer.wrapping_add(1);
}

/// Returns `(urgent arrival position 1-based, urgent latency ns)`.
fn run(urgent_priority: u8) -> (usize, u64) {
    let params = SystemParams::default();
    let mut m = Machine::builder(2).params(params).build();
    {
        let n0 = &mut m.nodes[0];
        n0.niu.ctrl.tx[1].priority = 3; // bulk queue priority
        n0.niu.ctrl.tx[3].priority = urgent_priority;
        for i in 0..BULK {
            compose(&mut n0.niu, 1, 1, &[i as u8; 64]);
        }
        compose(&mut n0.niu, 3, 1, b"URGENT!!");
    }
    m.load_program(1, RecvBasic::expecting(&m.lib(1), BULK + 1));
    m.run_to_quiescence();
    let mut position = 0;
    let mut latency = 0;
    for (i, e) in m
        .events(1)
        .iter()
        .filter(|e| matches!(e.kind, AppEventKind::Received { .. }))
        .enumerate()
    {
        if let AppEventKind::Received { data, .. } = &e.kind {
            if &data[..] == b"URGENT!!" {
                position = i + 1;
                latency = e.at.ns();
            }
        }
    }
    (position, latency)
}

fn main() {
    let mut rows = Vec::new();
    for prio in [0u8, 3, 7] {
        let (pos, lat) = run(prio);
        rows.push(vec![
            prio.to_string(),
            format!("{pos}/{}", BULK + 1),
            us(lat),
        ]);
    }
    print_table(
        "A2: transmit priority — urgent message vs 49 queued bulk messages (bulk priority 3)",
        &["urgent prio", "arrival position", "urgent latency (us)"],
        &rows,
    );
    let (low_pos, low_lat) = run(0);
    let (hi_pos, hi_lat) = run(7);
    assert!(hi_pos < low_pos, "priority must improve position");
    assert!(hi_lat < low_lat / 5, "priority must slash latency");
    println!("\nshape check: high priority jumps the bulk queue ✓");
}
