//! **Ablation A1** — receive-queue caching (paper §4: "selectively
//! caching queues enables the NIU to support a large number of logical
//! destinations efficiently").
//!
//! A sender sprays messages round-robin over K logical destination
//! queues at the receiver. Twelve hardware slots are available for
//! binding; queues beyond the hot set go through the miss/overflow queue
//! and firmware. As K exceeds the hardware capacity, the firmware-
//! serviced fraction grows and per-message cost rises — the cost the
//! hardware cache avoids for hot destinations.

use sv_bench::print_table;
use voyager::api::{BasicMsg, SendBasic};
use voyager::niu::queues::RxFullPolicy;
use voyager::niu::translate::XlateEntry;
use voyager::niu::QueueId;
use voyager::{Machine, SystemParams};

const MSGS_PER_QUEUE: usize = 12;
const HW_SLOTS: &[u8] = &[3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14];

fn run(k: usize) -> (f64, u64, u64) {
    let params = SystemParams::default();
    let mut m = Machine::builder(2).params(params).build();
    // Lossless miss queue for clean accounting.
    let miss = m.nodes[1].niu.params.miss_queue_slot;
    m.nodes[1].niu.ctrl.rx[miss].full_policy = RxFullPolicy::Retry;
    // Logical queues 100..100+k at the receiver; sender names them via
    // virtual destinations 0x300..; the first min(k, 12) are bound.
    for i in 0..k {
        m.nodes[0].niu.ctrl.xlate.install(
            0x300 + i as u16,
            XlateEntry {
                valid: true,
                node: 1,
                logical_q: 100 + i as u16,
                high_priority: false,
            },
        );
    }
    for (slot, i) in HW_SLOTS.iter().zip(0..k) {
        m.nodes[1]
            .niu
            .ctrl
            .rx_cache
            .bind(100 + i as u16, QueueId(*slot));
        m.nodes[1].niu.ctrl.rx[*slot as usize].service = voyager::niu::RxService::SpPolled;
    }
    let lib0 = m.lib(0);
    let items: Vec<BasicMsg> = (0..MSGS_PER_QUEUE)
        .flat_map(|_| (0..k).map(|i| BasicMsg::new(0x300 + i as u16, vec![0u8; 32])))
        .collect();
    let total = items.len();
    m.load_program(0, SendBasic::new(&lib0, items));
    let t = m.run_to_quiescence();
    let fw_serviced = m.nodes[1].fw.stats.miss_msgs.get();
    let hw_hits = m.nodes[1].niu.ctrl.rx_cache.hits.get();
    (t.ns() as f64 / total as f64, hw_hits, fw_serviced)
}

fn main() {
    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for k in [1usize, 4, 8, 12, 16, 24, 32, 48] {
        let (ns_per_msg, hw, fw) = run(k);
        if k == 1 {
            baseline = ns_per_msg;
        }
        rows.push(vec![
            k.to_string(),
            format!("{:.0}", ns_per_msg),
            hw.to_string(),
            fw.to_string(),
            format!("{:.0}%", 100.0 * fw as f64 / (hw + fw).max(1) as f64),
            format!("{:.2}x", ns_per_msg / baseline),
        ]);
    }
    print_table(
        "A1: receive-queue caching (12 hardware slots available)",
        &[
            "logical queues",
            "ns/msg",
            "hw-cached",
            "fw-serviced",
            "miss frac",
            "slowdown",
        ],
        &rows,
    );
    println!("\nshape check: miss fraction 0 while the hot set fits, grows past 12 ✓");
}
