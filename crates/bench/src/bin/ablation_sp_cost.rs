//! **Ablation A4** — sensitivity to firmware handler cost (paper §6/§7:
//! "firmware engine occupancy is extremely important and can strongly
//! color experimental results"; the FLASH/S3.mp comparison).
//!
//! Every firmware handler cost is scaled from 0.25× to 4×. The
//! sP-managed transfer (approach 2) degrades with firmware speed; the
//! hardware block transfer (approach 3) is insensitive — demonstrating
//! why an evaluation platform needs the *option* of hardware
//! implementations to avoid firmware-occupancy artifacts.

use sv_bench::print_table;
use voyager::blockxfer::{run_block_transfer, XferSpec};
use voyager::firmware::proto::Approach;
use voyager::SystemParams;

fn main() {
    let len = 128 * 1024;
    let mut rows = Vec::new();
    let mut a2_fast = 0.0;
    let mut a2_slow = 0.0;
    let mut a3_fast = 0.0;
    let mut a3_slow = 0.0;
    for scale in [25u64, 50, 100, 200, 400] {
        let params = {
            let mut p = SystemParams::default();
            p.fw = p.fw.scaled(scale);
            p
        };
        let a2 = run_block_transfer(
            params,
            XferSpec {
                approach: Approach::SpManaged,
                len,
                verify: true,
            },
        );
        let a3 = run_block_transfer(
            params,
            XferSpec {
                approach: Approach::BlockHw,
                len,
                verify: true,
            },
        );
        assert!(a2.verified && a3.verified);
        if scale == 25 {
            a2_fast = a2.bandwidth_mb_s;
            a3_fast = a3.bandwidth_mb_s;
        }
        if scale == 400 {
            a2_slow = a2.bandwidth_mb_s;
            a3_slow = a3.bandwidth_mb_s;
        }
        rows.push(vec![
            format!("{:.2}x", scale as f64 / 100.0),
            format!("{:.1}", a2.bandwidth_mb_s),
            format!("{:.0}", a2.sp_busy_ns as f64 / 1000.0),
            format!("{:.1}", a3.bandwidth_mb_s),
            format!("{:.0}", a3.sp_busy_ns as f64 / 1000.0),
        ]);
    }
    print_table(
        "A4: firmware-cost sensitivity (128 KiB transfer)",
        &[
            "fw cost scale",
            "A2 BW MB/s",
            "A2 sP busy us",
            "A3 BW MB/s",
            "A3 sP busy us",
        ],
        &rows,
    );

    let a2_drop = (a2_fast - a2_slow) / a2_fast;
    let a3_drop = (a3_fast - a3_slow) / a3_fast;
    assert!(
        a2_drop > 0.3,
        "A2 should degrade >30% over a 16x firmware slowdown, dropped {:.0}%",
        a2_drop * 100.0
    );
    assert!(
        a3_drop < 0.10,
        "A3 should be nearly insensitive, dropped {:.0}%",
        a3_drop * 100.0
    );
    println!(
        "\nshape check: 16x firmware slowdown costs A2 {:.0}% of its bandwidth, A3 only {:.0}% ✓",
        a2_drop * 100.0,
        a3_drop * 100.0
    );
}
