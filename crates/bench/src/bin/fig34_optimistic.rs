//! **Figures 3/4 extension** — transfer approaches 4 and 5, which the
//! paper describes but had no numbers for at publication ("we did not
//! have sufficient time to produce numbers for the last two
//! approaches"). This binary produces them.
//!
//! The interesting quantities: the *optimistic* notification arrives
//! after ~¼ of the data; the receiver's time-to-use overlaps its reads
//! with the transfer tail (S-COMA clsSRAM retries stall only the lines
//! that have not arrived); approach 5 removes the per-page sP work of
//! approach 4.

use sv_bench::{
    approach_name, assert_verified, by_approach, print_table, sweep, us, OPTIMISTIC_APPROACHES,
};
use voyager::firmware::proto::Approach;
use voyager::SystemParams;

const SIZES: [u32; 8] = [4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288];

fn main() {
    let params = SystemParams::default();
    let mut approaches = vec![Approach::BlockHw];
    approaches.extend_from_slice(&OPTIMISTIC_APPROACHES);
    let points = sweep(params, &approaches, &SIZES, true);
    assert_verified(&points);
    let groups = by_approach(points);

    let mut rows = Vec::new();
    for (i, &size) in SIZES.iter().enumerate() {
        let mut row = vec![size.to_string()];
        for (_, pts) in &groups {
            row.push(us(pts[i].latency_notify_ns));
            row.push(us(pts[i].latency_use_ns));
        }
        rows.push(row);
    }
    let mut header: Vec<String> = vec!["bytes".into()];
    for (a, _) in &groups {
        header.push(format!("{} notify(us)", approach_name(*a)));
        header.push(format!("{} use(us)", approach_name(*a)));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figures 3/4 extension: optimistic block transfer (approaches 4, 5)",
        &hdr,
        &rows,
    );

    // sP occupancy comparison at the largest size.
    let last = SIZES.len() - 1;
    let mut occ_rows = Vec::new();
    for (a, pts) in &groups {
        occ_rows.push(vec![
            approach_name(*a).to_string(),
            us(pts[last].sp_busy_ns),
        ]);
    }
    print_table(
        "sP occupancy at 512 KiB",
        &["approach", "sP busy (us)"],
        &occ_rows,
    );

    // Shape checks.
    let a3 = &groups[0].1;
    let a4 = &groups[1].1;
    let a5 = &groups[2].1;
    for i in 0..SIZES.len() {
        // The early notification only helps once the transfer spans
        // several pages (at one page, "25% of the data" is the whole
        // page, plus the setup round trip) — the paper's own caveat that
        // optimism "can also degrade performance" in the wrong regime.
        if SIZES[i] >= 32768 {
            assert!(
                a4[i].latency_notify_ns < a3[i].latency_notify_ns,
                "A4 early notify must beat A3 completion at {} B",
                SIZES[i]
            );
            assert!(
                a5[i].latency_use_ns <= a3[i].latency_use_ns,
                "A5 overlap must not lose to A3 at {} B",
                SIZES[i]
            );
        }
    }
    assert!(a5[last].sp_busy_ns < a4[last].sp_busy_ns);
    println!(
        "\nshape check: early notify < A3 completion; overlap reduces time-to-use; A5 sP < A4 sP ✓"
    );
}
