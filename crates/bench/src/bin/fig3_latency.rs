//! **Figure 3** — block-transfer latency of approaches 1–3 vs transfer
//! size (paper §6). Latency is sender-start to receiver completion
//! notification (for approach 1, the receiver finishing its copy).
//!
//! Paper claims this reproduces: approach 1 worst at every size;
//! approach 3 best; approach 2 between.

use sv_bench::{
    approach_name, assert_verified, by_approach, print_table, sweep, us, FIG3_SIZES,
    PAPER_APPROACHES,
};
use voyager::SystemParams;

fn main() {
    let params = SystemParams::default();
    let points = sweep(params, &PAPER_APPROACHES, &FIG3_SIZES, true);
    assert_verified(&points);
    let groups = by_approach(points);

    let mut rows = Vec::new();
    for (i, &size) in FIG3_SIZES.iter().enumerate() {
        let mut row = vec![size.to_string()];
        for (_, pts) in &groups {
            row.push(us(pts[i].latency_notify_ns));
        }
        rows.push(row);
    }
    let mut header = vec!["bytes"];
    let names: Vec<String> = groups
        .iter()
        .map(|(a, _)| format!("{} (us)", approach_name(*a)))
        .collect();
    header.extend(names.iter().map(|s| s.as_str()));
    print_table("Figure 3: block-transfer latency", &header, &rows);

    // Shape assertions (the paper's qualitative result).
    for (i, &size) in FIG3_SIZES.iter().enumerate() {
        let a1 = groups[0].1[i].latency_notify_ns;
        let a2 = groups[1].1[i].latency_notify_ns;
        let a3 = groups[2].1[i].latency_notify_ns;
        assert!(a1 > a2 && a2 > a3, "ordering violated at {size} B");
    }
    println!("\nshape check: A1 > A2 > A3 at every size ✓");
}
