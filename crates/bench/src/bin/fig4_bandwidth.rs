//! **Figure 4** — block-transfer bandwidth of approaches 1–3 vs transfer
//! size (paper §6).
//!
//! Paper claims this reproduces: approach 3 "can read and transmit at
//! almost maximum hardware speeds" (here the ceiling is 128 MB/s: 64
//! data bytes per 80-byte wire packet on the 160 MB/s Arctic link);
//! approach 2 lower; approach 1 worst because the data crosses each aP
//! bus twice per side.

use sv_bench::{
    approach_name, assert_verified, by_approach, print_table, sweep, FIG4_SIZES, PAPER_APPROACHES,
};
use voyager::SystemParams;

fn main() {
    let params = SystemParams::default();
    let points = sweep(params, &PAPER_APPROACHES, &FIG4_SIZES, true);
    assert_verified(&points);
    let groups = by_approach(points);

    let mut rows = Vec::new();
    for (i, &size) in FIG4_SIZES.iter().enumerate() {
        let mut row = vec![size.to_string()];
        for (_, pts) in &groups {
            row.push(format!("{:.1}", pts[i].bandwidth_mb_s));
        }
        rows.push(row);
    }
    let mut header = vec!["bytes"];
    let names: Vec<String> = groups
        .iter()
        .map(|(a, _)| format!("{} (MB/s)", approach_name(*a)))
        .collect();
    header.extend(names.iter().map(|s| s.as_str()));
    print_table("Figure 4: block-transfer bandwidth", &header, &rows);

    // Shape assertions at asymptotic sizes.
    let last = FIG4_SIZES.len() - 1;
    let a1 = groups[0].1[last].bandwidth_mb_s;
    let a2 = groups[1].1[last].bandwidth_mb_s;
    let a3 = groups[2].1[last].bandwidth_mb_s;
    assert!(a3 > a2 && a2 > a1, "asymptotic ordering violated");
    assert!(
        a3 > 0.85 * 128.0,
        "A3 should approach the 128 MB/s ceiling, got {a3:.1}"
    );
    println!(
        "\nshape check: asymptotic bandwidths A3 {a3:.1} > A2 {a2:.1} > A1 {a1:.1} MB/s; \
         A3 at {:.0}% of hardware ceiling ✓",
        100.0 * a3 / 128.0
    );
}
