//! **Table T1** — message-mechanism microbenchmarks backing the paper's
//! §5 mechanism descriptions: one-way/round-trip latency and streaming
//! rate/bandwidth of Express, Basic (several sizes), Basic+TagOn, and
//! the DMA mechanism.

use sv_bench::print_table;
use voyager::blockxfer::{run_block_transfer, XferSpec};
use voyager::firmware::proto::Approach;
use voyager::workloads::{basic_ping_pong, basic_stream, express_ping_pong, express_stream};
use voyager::SystemParams;

fn main() {
    let p = SystemParams::default();
    let iters = 50;
    let msgs = 400;

    let (exp_ow, exp_rtt) = express_ping_pong(p, iters);
    let (bas_ow, bas_rtt) = basic_ping_pong(p, iters);

    let mut rows = vec![
        vec![
            "express ping-pong".to_string(),
            "5".into(),
            exp_ow.to_string(),
            exp_rtt.to_string(),
            "-".into(),
            "-".into(),
        ],
        vec![
            "basic ping-pong".to_string(),
            "8".into(),
            bas_ow.to_string(),
            bas_rtt.to_string(),
            "-".into(),
            "-".into(),
        ],
    ];

    let e = express_stream(p, msgs);
    rows.push(vec![
        e.mechanism.clone(),
        e.payload_bytes.to_string(),
        e.one_way_ns.to_string(),
        "-".into(),
        format!("{:.0}k", e.msg_rate_per_s / 1e3),
        format!("{:.1}", e.bandwidth_mb_s),
    ]);
    for payload in [8usize, 32, 88] {
        let r = basic_stream(p, msgs, payload, None);
        rows.push(vec![
            r.mechanism.clone(),
            r.payload_bytes.to_string(),
            r.one_way_ns.to_string(),
            "-".into(),
            format!("{:.0}k", r.msg_rate_per_s / 1e3),
            format!("{:.1}", r.bandwidth_mb_s),
        ]);
    }
    for (payload, tagon) in [(8usize, 48usize), (8, 80)] {
        let r = basic_stream(p, msgs, payload, Some(tagon));
        rows.push(vec![
            r.mechanism.clone(),
            r.payload_bytes.to_string(),
            r.one_way_ns.to_string(),
            "-".into(),
            format!("{:.0}k", r.msg_rate_per_s / 1e3),
            format!("{:.1}", r.bandwidth_mb_s),
        ]);
    }

    // DMA mechanism (firmware-managed block transfer) as a "message"
    // mechanism: per-transfer latency for a page, streaming bandwidth at
    // 256 KiB.
    let dma_page = run_block_transfer(
        p,
        XferSpec {
            approach: Approach::SpManaged,
            len: 4096,
            verify: true,
        },
    );
    let dma_big = run_block_transfer(
        p,
        XferSpec {
            approach: Approach::SpManaged,
            len: 262144,
            verify: true,
        },
    );
    rows.push(vec![
        "DMA (4 KiB)".into(),
        "4096".into(),
        dma_page.latency_notify_ns.to_string(),
        "-".into(),
        "-".into(),
        format!("{:.1}", dma_page.bandwidth_mb_s),
    ]);
    rows.push(vec![
        "DMA (256 KiB)".into(),
        "262144".into(),
        dma_big.latency_notify_ns.to_string(),
        "-".into(),
        "-".into(),
        format!("{:.1}", dma_big.bandwidth_mb_s),
    ]);

    print_table(
        "T1: message-mechanism microbenchmarks",
        &[
            "mechanism",
            "payload B",
            "1-way ns",
            "rtt ns",
            "rate msg/s",
            "BW MB/s",
        ],
        &rows,
    );

    assert!(
        exp_ow < bas_ow,
        "Express must have lower latency than Basic"
    );
    println!("\nshape check: express one-way < basic one-way ✓");
}
