//! **Table T2** — shared-memory operation costs backing the paper's §5
//! NUMA and S-COMA descriptions: remote-load/stores through firmware,
//! S-COMA miss/hit/upgrade/recall latencies.

use sv_bench::print_table;
use voyager::workloads::{numa_load_latency, numa_store_latency, scoma_latencies, scoma_read_3hop};
use voyager::SystemParams;

fn main() {
    let p = SystemParams::default();
    let numa_local = numa_load_latency(p, false);
    let numa_remote = numa_load_latency(p, true);
    let numa_store = numa_store_latency(p, true);
    let (miss2, hit, upgrade) = scoma_latencies(p);
    let miss3 = scoma_read_3hop(p);

    let rows = vec![
        vec!["NUMA load, home local".into(), numa_local.to_string()],
        vec!["NUMA load, home remote".into(), numa_remote.to_string()],
        vec!["NUMA store (posted)".into(), numa_store.to_string()],
        vec![
            "S-COMA read, clsSRAM hit (local DRAM)".into(),
            hit.to_string(),
        ],
        vec![
            "S-COMA read miss, 2-hop (home clean)".into(),
            miss2.to_string(),
        ],
        vec![
            "S-COMA read miss, 3-hop (owner recall)".into(),
            miss3.to_string(),
        ],
        vec!["S-COMA write upgrade (RO->RW)".into(), upgrade.to_string()],
    ];
    print_table(
        "T2: shared-memory operation latencies",
        &["operation", "ns"],
        &rows,
    );

    assert!(hit < miss2, "local hit must beat protocol miss");
    assert!(miss2 < miss3, "2-hop must beat 3-hop recall");
    assert!(numa_local < numa_remote);
    println!("\nshape check: hit < 2-hop < 3-hop; local home < remote home ✓");
}
