//! **Table T3** — processor-occupancy accounting per transfer approach
//! (paper §6 discussion: approach 1 consumes the aPs, approach 2 shifts
//! the burden to the sPs, approach 3 leaves both "minimal to nil";
//! "firmware engine occupancy is extremely important and can strongly
//! color experimental results").

use sv_bench::{approach_name, print_table, us};
use voyager::blockxfer::{run_block_transfer, XferSpec};
use voyager::firmware::proto::Approach;
use voyager::SystemParams;

fn main() {
    let p = SystemParams::default();
    let len = 256 * 1024;
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for a in [
        Approach::ApDirect,
        Approach::SpManaged,
        Approach::BlockHw,
        Approach::OptimisticSp,
        Approach::OptimisticHw,
    ] {
        let pt = run_block_transfer(
            p,
            XferSpec {
                approach: a,
                len,
                verify: true,
            },
        );
        rows.push(vec![
            approach_name(a as u8).to_string(),
            us(pt.latency_notify_ns),
            us(pt.sender_ap_busy_ns),
            us(pt.receiver_ap_busy_ns),
            us(pt.sp_busy_ns),
            format!(
                "{:.0}%",
                100.0 * pt.sp_busy_ns as f64 / pt.latency_use_ns.max(1) as f64
            ),
        ]);
        points.push(pt);
    }
    print_table(
        "T3: occupancy for a 256 KiB transfer",
        &[
            "approach",
            "latency (us)",
            "sender aP busy (us)",
            "receiver aP busy (us)",
            "total sP busy (us)",
            "sP duty",
        ],
        &rows,
    );

    let (a1, a2, a3) = (&points[0], &points[1], &points[2]);
    assert_eq!(a1.sp_busy_ns, 0);
    assert!(a2.sp_busy_ns > 20 * a3.sp_busy_ns);
    assert!(a1.sender_ap_busy_ns > 10 * a3.sender_ap_busy_ns);
    println!("\nshape check: A1 burns aP, A2 burns sP, A3 burns neither ✓");
}
