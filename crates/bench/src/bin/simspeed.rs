//! Simulation speed: simulated nanoseconds per wall-clock second.
//!
//! Runs one idle-heavy workload — a message ring where every node
//! computes for a long stretch between sends, so most bus cycles are
//! dead time — under the three run loops (cycle-stepped, idle-skipping
//! event-driven, and lookahead-windowed parallel) and reports how much
//! simulated time each retires per second of wall clock. The event
//! loops must reproduce the cycle-stepped quiescence time exactly;
//! the bin asserts it.
//!
//! Usage: `cargo run --release -p sv-bench --bin simspeed`

use std::time::Instant;

use sv_bench::print_table;
use voyager::api::{BasicMsg, RecvBasic, SendBasic};
use voyager::app::{Delay, Seq};
use voyager::{Machine, MachineBuilder, Program};

/// Compute gap between rounds, in ns. At 66 MHz this is ~3300 bus
/// cycles of idle per ~2 us of messaging — the regime the event loop
/// is built for.
const GAP_NS: u64 = 50_000;
const ROUNDS: u16 = 30;

/// A ring: each node computes for `GAP_NS`, sends one Basic message to
/// its successor, then receives one from its predecessor, `ROUNDS`
/// times over.
fn load_ring(m: &mut Machine, n: u16) {
    for i in 0..n {
        let lib = m.lib(i);
        let next = (i + 1) % n;
        let mut parts: Vec<Box<dyn Program>> = Vec::new();
        for r in 0..ROUNDS {
            let msg = BasicMsg::new(lib.user_dest(next), vec![r as u8; 16]);
            parts.push(Box::new(Delay(GAP_NS)));
            parts.push(Box::new(SendBasic::resuming(&lib, vec![msg], r)));
            parts.push(Box::new(RecvBasic::resuming(&lib, 1, r)));
        }
        m.load_program(i, Seq::new(parts));
    }
}

/// Run the ring to quiescence; return (simulated ns, wall seconds).
fn measure(builder: MachineBuilder, n: u16) -> (u64, f64) {
    let mut m = builder.build();
    load_ring(&mut m, n);
    let start = Instant::now();
    let t = m.run_to_quiescence();
    (t.ns(), start.elapsed().as_secs_f64())
}

fn fmt_rate(sim_ns: u64, wall_s: f64) -> (f64, String) {
    let rate = sim_ns as f64 / wall_s;
    (rate, format!("{:.1}", rate / 1e6))
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);

    let mut rows = Vec::new();
    let mut speedup_8 = (0.0f64, 0.0f64);
    for n in [2u16, 8, 32] {
        // Warm up allocator / thread pool effects once per size.
        let _ = measure(Machine::builder(n.into()), n);

        let (t_step, w_step) = measure(Machine::builder(n.into()).cycle_stepped(), n);
        let (t_ev, w_ev) = measure(Machine::builder(n.into()).threads(1), n);
        let (t_par, w_par) = measure(Machine::builder(n.into()).threads(workers), n);
        assert_eq!(
            t_step, t_ev,
            "event loop must match cycle-stepped time ({n} nodes)"
        );
        assert_eq!(
            t_step, t_par,
            "parallel loop must match cycle-stepped time ({n} nodes)"
        );

        let (r_step, s_step) = fmt_rate(t_step, w_step);
        let (r_ev, s_ev) = fmt_rate(t_ev, w_ev);
        let (r_par, s_par) = fmt_rate(t_par, w_par);
        if n == 8 {
            speedup_8 = (r_ev / r_step, r_par / r_step);
        }
        rows.push(vec![
            n.to_string(),
            t_step.to_string(),
            s_step,
            s_ev,
            s_par,
            format!("{:.2}x", r_ev / r_step),
            format!("{:.2}x", r_par / r_step),
        ]);
    }

    print_table(
        &format!("simulation speed, idle-heavy ring (sim-Mns per wall-second; {workers} workers)"),
        &[
            "nodes",
            "sim ns",
            "stepped",
            "event",
            "parallel",
            "event/stepped",
            "par/stepped",
        ],
        &rows,
    );
    println!(
        "\n8-node speedup over cycle-stepped: event {:.2}x, parallel {:.2}x",
        speedup_8.0, speedup_8.1
    );
}
