//! Simulation speed: simulated nanoseconds per wall-clock second.
//!
//! Two workloads, two questions:
//!
//! 1. **Synchronized ring** (every node computes for a long gap, then all
//!    exchange at once): how do the three run loops (cycle-stepped,
//!    idle-skipping event-driven, lookahead-windowed parallel) compare
//!    when the *time* axis is idle-heavy? The event loops must reproduce
//!    the cycle-stepped quiescence time exactly; the bin asserts it.
//! 2. **Staggered pairs** (one node pair exchanges at a time while every
//!    other node sits in a long delay): how does the event loop scale
//!    with node count when the *space* axis is idle-heavy? This is the
//!    regime the wake-time index targets — work per simulated second is
//!    constant, so a loop that rescans or ticks all `N` nodes per
//!    executed cycle degrades linearly while an indexed loop holds its
//!    rate.
//!
//! Results are printed as tables and written machine-readable to
//! `BENCH_simspeed.json` (simulated ns and bus cycles per wall second,
//! per loop mode and node count).
//!
//! Usage: `simspeed [--nodes N] [--stats] [--faults] [--collectives]
//! [--hotspot] [--checkpoint-every C] [--delta-every C] [--restore FILE]
//! [--artifacts-dir DIR]` — with `--nodes` only the
//! sweep entry for `N` runs (the CI smoke configuration); without
//! arguments the full ring table and node-count sweep run. With
//! `--stats`, a deterministic re-run of the staggered-pair workload
//! (latency sampling on) additionally dumps the full
//! `Machine::stats()` counter snapshot to
//! `BENCH_simspeed_stats.json` — byte-comparable against a committed
//! golden, since the snapshot contains no wall-clock quantities. With
//! `--faults`, the bin instead runs only the fault-injection smoke: the
//! staggered-pair workload over a lossy, duplicating, corrupting,
//! reordering fabric with the reliable-delivery layer armed, asserting
//! zero payload loss, engaged recovery, and byte-identical stats between
//! the sequential and parallel event loops. With `--collectives`, the
//! bin runs only the firmware-collectives smoke: barrier + all-reduce +
//! broadcast sequenced NIC-side on every node, asserting exact results
//! and byte-identical stats across loop modes, then printing the
//! three-way all-reduce latency/occupancy comparison at that size.
//! With `--hotspot`, the bin runs only the Arctic QoS smoke: the incast
//! workload with virtual channels armed, asserting that 2 VCs cut the
//! High-class tail latency below the 1-VC head-of-line-blocking
//! baseline, that credit stalls engage, and that stats stay
//! byte-identical between the sequential and parallel event loops with
//! QoS and a hostile fabric armed together. With `--tenants`, the bin
//! runs only the multi-tenant serving smoke: the S10 tenant job mix
//! (latency + bulk + bursty classes and one confined misbehaving tenant
//! per node) under the deterministic per-node scheduler, asserting
//! byte-identical stats between the sequential and parallel event
//! loops, exactly one contained protection violation per node, and
//! printing the rx-queue-cache hit rate and tail-latency split.
//! `--tenant-sweep` runs the full S10 scaling study instead: tenant
//! count per node swept 4→256 on a 16-node machine (override with
//! `--nodes`), printing hit rate, rebinds and the P99 tail split —
//! including the Latency class's isolation — at each point. These are
//! the EXPERIMENTS.md S10 table rows.
//!
//! With `--checkpoint-every C`, the bin instead runs the checkpoint
//! cadence smoke: the staggered-pair workload (at `--nodes`, default
//! 16) snapshotted every `C` bus cycles, asserting that checkpointing
//! never perturbs the run, that a mid-run snapshot restores and
//! finishes with byte-identical stats, and leaving the final snapshot
//! at `BENCH_simspeed_ckpt.bin` under the artifacts directory for
//! `--restore FILE`, which rebuilds a machine from a snapshot file and
//! runs it to quiescence. `--delta-every C` is the incremental twin:
//! one full base snapshot up front, then a *delta* cut every `C` bus
//! cycles ([`Machine::checkpoint_delta`]), asserting non-perturbation,
//! that restoring base + every delta finishes byte-identical to the
//! uninterrupted run, and that a cadence delta is at least 10x smaller
//! than a full snapshot of the same machine. The default full run also
//! records paired full-vs-delta snapshot cost (size, save, restore) for
//! 8..1024-node machines in the JSON report.
//!
//! Scratch artifacts (`BENCH_simspeed_ckpt.bin`,
//! `BENCH_simspeed_stats.json`) land under `target/` by default;
//! `--artifacts-dir DIR` redirects them. The committed
//! `BENCH_simspeed.json` report stays in the working directory.

use std::io::Write as _;
use std::time::Instant;

use sv_bench::print_table;
use voyager::api::{BasicMsg, CollReq, RecvBasic, SendBasic};
use voyager::app::{AppEventKind, Delay, Seq};
use voyager::collectives::{AllReduce, BasicAllReduce, ReduceOp};
use voyager::firmware::proto::CollOp;
use voyager::{Machine, MachineBuilder, Parallelism, Program, ShardPolicy};

/// Compute gap between ring rounds, in ns. At 66 MHz this is ~3300 bus
/// cycles of idle per ~2 us of messaging — the regime the event loop
/// is built for.
const GAP_NS: u64 = 50_000;
const ROUNDS: u16 = 30;

/// Stagger between pair activations in the sweep workload, and how many
/// messages each pair exchanges inside its slot.
const STAGGER_NS: u64 = 20_000;
const PAIR_MSGS: u16 = 4;

/// A ring: each node computes for `GAP_NS`, sends one Basic message to
/// its successor, then receives one from its predecessor, `ROUNDS`
/// times over.
fn load_ring(m: &mut Machine, n: u16) {
    for i in 0..n {
        let lib = m.lib(i);
        let next = (i + 1) % n;
        let mut parts: Vec<Box<dyn Program>> = Vec::new();
        for r in 0..ROUNDS {
            let msg = BasicMsg::new(lib.user_dest(next), vec![r as u8; 16]);
            parts.push(Box::new(Delay(GAP_NS)));
            parts.push(Box::new(SendBasic::resuming(&lib, vec![msg], r)));
            parts.push(Box::new(RecvBasic::resuming(&lib, 1, r)));
        }
        m.load_program(i, Seq::new(parts));
    }
}

/// Staggered pairs: node `2k` sends [`PAIR_MSGS`] Basic messages to node
/// `2k+1` starting at `k * STAGGER_NS`; both then finish. At any instant
/// at most one pair is exchanging (its slot is far shorter than the
/// stagger) and every other node is idle in a delay or done — the
/// idle-heavy *node-count* regime, where total work grows linearly with
/// `n` but concurrent work does not.
fn load_staggered_pairs(m: &mut Machine, n: u16) {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "pairs need an even node count"
    );
    for k in 0..n / 2 {
        let (a, b) = (2 * k, 2 * k + 1);
        let start = k as u64 * STAGGER_NS;
        let lib_a = m.lib(a);
        let lib_b = m.lib(b);
        let msgs = (0..PAIR_MSGS)
            .map(|r| BasicMsg::new(lib_a.user_dest(b), vec![r as u8; 16]))
            .collect();
        m.load_program(
            a,
            Seq::new(vec![
                Box::new(Delay(start)),
                Box::new(SendBasic::new(&lib_a, msgs)),
            ]),
        );
        m.load_program(
            b,
            Seq::new(vec![
                Box::new(Delay(start)),
                Box::new(RecvBasic::expecting(&lib_b, PAIR_MSGS as usize)),
            ]),
        );
    }
}

/// Run `load` to quiescence; return (simulated ns, wall seconds).
fn measure(builder: MachineBuilder, n: u16, load: fn(&mut Machine, u16)) -> (u64, f64) {
    let mut m = builder.build();
    load(&mut m, n);
    let start = Instant::now();
    let t = m.run_to_quiescence();
    (t.ns(), start.elapsed().as_secs_f64())
}

fn fmt_rate(sim_ns: u64, wall_s: f64) -> (f64, String) {
    let rate = sim_ns as f64 / wall_s;
    (rate, format!("{:.1}", rate / 1e6))
}

/// One sweep measurement for the JSON report.
struct SweepRow {
    nodes: u16,
    sim_ns: u64,
    /// Worker count the parallel column ran with (recorded per row so
    /// the report stays honest if the sweep ever varies it).
    workers: usize,
    event_ns_per_s: f64,
    parallel_ns_per_s: f64,
}

/// Bus cycles retired per wall second at the default 66 MHz bus.
fn cycles_per_s(ns_per_s: f64) -> f64 {
    ns_per_s * 66.0 / 1000.0
}

/// Sweep entry at `n` nodes: event and parallel rates on the staggered
/// pair workload, checked bit-identical against the cycle-stepped loop
/// at sizes where stepping is affordable.
fn sweep_point(n: u16, workers: usize) -> SweepRow {
    // Warm up allocator / thread pool effects (parallel, so the warm-up
    // stays cheap at the largest sweep sizes).
    let _ = measure(
        Machine::builder(n.into()).parallelism(Parallelism::Fixed(workers)),
        n,
        load_staggered_pairs,
    );
    let (t_ev, w_ev) = measure(
        Machine::builder(n.into()).parallelism(Parallelism::Sequential),
        n,
        load_staggered_pairs,
    );
    let (t_par, w_par) = measure(
        Machine::builder(n.into())
            .parallelism(Parallelism::Fixed(workers))
            .shard_policy(ShardPolicy::BySubtree),
        n,
        load_staggered_pairs,
    );
    assert_eq!(
        t_ev, t_par,
        "parallel loop must match the event loop ({n} nodes)"
    );
    if n <= 32 {
        let (t_step, _) = measure(
            Machine::builder(n.into()).cycle_stepped(),
            n,
            load_staggered_pairs,
        );
        assert_eq!(
            t_step, t_ev,
            "event loop must match cycle-stepped time ({n} nodes)"
        );
    }
    SweepRow {
        nodes: n,
        sim_ns: t_ev,
        workers,
        event_ns_per_s: t_ev as f64 / w_ev,
        parallel_ns_per_s: t_par as f64 / w_par,
    }
}

/// Scratch-artifact filenames, placed under `--artifacts-dir`
/// (default `target/`).
const CKPT_FILE: &str = "BENCH_simspeed_ckpt.bin";
const STATS_FILE: &str = "BENCH_simspeed_stats.json";

/// One checkpoint cost measurement for the JSON report: a full snapshot
/// and, one stagger slot later, the delta back to it.
struct CkptPoint {
    nodes: u16,
    bytes: usize,
    save_us: f64,
    restore_us: f64,
    delta_bytes: usize,
    delta_save_us: f64,
    /// Restoring base + one delta (a whole-chain restore, so ≥ the full
    /// restore cost by construction — recorded for honesty).
    delta_restore_us: f64,
    chain_len: usize,
}

/// Snapshot size and save/restore wall cost for an `n`-node machine
/// checkpointed mid-run (half the staggered pairs fired: queues, caches
/// and memory warm), plus the cost of a delta cut one stagger slot
/// later — the "nearby cut" regime incremental snapshots exist for.
fn ckpt_point(n: u16) -> CkptPoint {
    let mut m = Machine::builder(n.into())
        .parallelism(Parallelism::Sequential)
        .build();
    load_staggered_pairs(&mut m, n);
    m.run_for(u64::from(n / 4) * STAGGER_NS);
    let t0 = Instant::now();
    let bytes = m.checkpoint();
    let save_us = t0.elapsed().as_secs_f64() * 1e6;
    let t1 = Instant::now();
    let r = Machine::builder(1)
        .parallelism(Parallelism::Sequential)
        .restore(&bytes)
        .expect("restore");
    let restore_us = t1.elapsed().as_secs_f64() * 1e6;
    assert_eq!(r.stats().nodes.len(), usize::from(n));
    // Open a delta chain here, advance one stagger slot (one more pair
    // exchanges; everyone else idles) and measure the incremental cut.
    let base = m.checkpoint_delta().into_bytes();
    m.run_for(STAGGER_NS);
    let t2 = Instant::now();
    let delta = match m.checkpoint_delta() {
        voyager::DeltaCheckpoint::Delta(d) => d,
        voyager::DeltaCheckpoint::Base(_) => unreachable!("chain is open"),
    };
    let delta_save_us = t2.elapsed().as_secs_f64() * 1e6;
    let t3 = Instant::now();
    let rc = Machine::builder(1)
        .parallelism(Parallelism::Sequential)
        .restore_chain(&base, &[&delta])
        .expect("restore_chain");
    let delta_restore_us = t3.elapsed().as_secs_f64() * 1e6;
    assert_eq!(rc.stats().nodes.len(), usize::from(n));
    CkptPoint {
        nodes: n,
        bytes: bytes.len(),
        save_us,
        restore_us,
        delta_bytes: delta.len(),
        delta_save_us,
        delta_restore_us,
        chain_len: 1,
    }
}

/// Checkpoint cadence smoke (`--checkpoint-every C`): snapshot the
/// staggered-pair run every `C` bus cycles. The donor must finish with
/// stats byte-identical to an uninterrupted reference run (checkpoints
/// are pure observation), and the middle snapshot must restore and
/// finish byte-identically too. The last snapshot is left on disk for
/// `--restore`.
fn checkpoint_every_smoke(n: u16, every_cycles: u64, ckpt_path: &std::path::Path) {
    assert!(every_cycles > 0, "--checkpoint-every takes a cycle count");
    let build = || {
        let mut m = Machine::builder(n.into())
            .parallelism(Parallelism::Sequential)
            .sample_latency(true)
            .build();
        load_staggered_pairs(&mut m, n);
        m
    };
    let mut reference = build();
    let end_ns = reference.run_to_quiescence().ns();
    let want = reference.stats().to_json();

    // `C` bus cycles of the default 66 MHz clock, in simulated ns.
    let chunk_ns = (every_cycles * 1000).div_ceil(66).max(1);
    let mut m = build();
    let mut snaps: Vec<Vec<u8>> = Vec::new();
    let mut save_s = 0.0f64;
    // Checkpoint at absolute simulated times strictly inside the run,
    // so the harness never pushes `now` past the natural quiescence
    // point (that would legitimately change the final time).
    let mut target = chunk_ns;
    while target < end_ns {
        m.run_for(target.saturating_sub(m.now.ns()));
        let t0 = Instant::now();
        snaps.push(m.checkpoint());
        save_s += t0.elapsed().as_secs_f64();
        target += chunk_ns;
    }
    if snaps.is_empty() {
        snaps.push(m.checkpoint());
    }
    m.run_to_quiescence();
    assert_eq!(m.stats().to_json(), want, "checkpointing perturbed the run");

    let mid = &snaps[snaps.len() / 2];
    let mut r = Machine::builder(1)
        .parallelism(Parallelism::Sequential)
        .restore(mid)
        .expect("restore mid-run snapshot");
    r.run_to_quiescence();
    assert_eq!(r.stats().to_json(), want, "mid-run restore diverged");

    let (lo, hi) = snaps
        .iter()
        .map(Vec::len)
        .fold((usize::MAX, 0), |(l, h), b| (l.min(b), h.max(b)));
    std::fs::write(ckpt_path, snaps.last().expect("at least one snapshot"))
        .expect("write snapshot");
    println!(
        "checkpoint smoke: {n} nodes, {} snapshots every {every_cycles} cycles \
         ({lo}..{hi} bytes, {:.0} us/save); donor and mid-run restore both \
         matched the uninterrupted run; wrote {}",
        snaps.len(),
        save_s / snaps.len() as f64 * 1e6,
        ckpt_path.display(),
    );
}

/// Incremental-checkpoint cadence smoke (`--delta-every C`): one full
/// base snapshot before the run, then a delta cut every `C` bus cycles.
/// Asserts that delta cuts never perturb the donor, that restoring the
/// base plus *every* delta resumes and finishes byte-identical to the
/// uninterrupted run, and that a cadence delta stays at least 10x below
/// a full snapshot of the same machine in bytes — the whole point of
/// dirty tracking.
fn delta_every_smoke(n: u16, every_cycles: u64) {
    assert!(every_cycles > 0, "--delta-every takes a cycle count");
    let build = || {
        let mut m = Machine::builder(n.into())
            .parallelism(Parallelism::Sequential)
            .sample_latency(true)
            .build();
        load_staggered_pairs(&mut m, n);
        m
    };
    let mut reference = build();
    let end_ns = reference.run_to_quiescence().ns();
    let want = reference.stats().to_json();

    let chunk_ns = (every_cycles * 1000).div_ceil(66).max(1);
    let mut m = build();
    let base = m.checkpoint_delta().into_bytes();
    let mut deltas: Vec<Vec<u8>> = Vec::new();
    let mut save_s = 0.0f64;
    let mut target = chunk_ns;
    while target < end_ns {
        m.run_for(target.saturating_sub(m.now.ns()));
        let t0 = Instant::now();
        match m.checkpoint_delta() {
            voyager::DeltaCheckpoint::Delta(d) => deltas.push(d),
            voyager::DeltaCheckpoint::Base(_) => unreachable!("chain is open"),
        }
        save_s += t0.elapsed().as_secs_f64();
        target += chunk_ns;
    }
    assert!(!deltas.is_empty(), "cadence longer than the whole run");
    // A full snapshot at the last cut, for the size comparison (pure
    // observation; the donor continues unperturbed).
    let full_at_last_cut = m.checkpoint().len();
    m.run_to_quiescence();
    assert_eq!(m.stats().to_json(), want, "delta cuts perturbed the run");

    let mut r = Machine::builder(1)
        .parallelism(Parallelism::Sequential)
        .restore_chain(&base, &deltas)
        .expect("restore base + delta chain");
    r.run_to_quiescence();
    assert_eq!(r.stats().to_json(), want, "chain restore diverged");

    let total: usize = deltas.iter().map(Vec::len).sum();
    let avg = total / deltas.len();
    assert!(
        avg * 10 <= full_at_last_cut,
        "cadence delta not ≥10x below full: avg {avg} vs full {full_at_last_cut} bytes"
    );
    println!(
        "delta smoke: {n} nodes, base {} bytes + {} deltas every {every_cycles} \
         cycles (avg {avg} bytes, {:.0} us/save; full snapshot {full_at_last_cut} \
         bytes, {:.0}x); donor and base+chain restore both matched the \
         uninterrupted run",
        base.len(),
        deltas.len(),
        save_s / deltas.len() as f64 * 1e6,
        full_at_last_cut as f64 / avg as f64,
    );
}

/// `--restore FILE`: rebuild a machine from a snapshot file and run it
/// to quiescence.
fn restore_smoke(path: &str) {
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let mut m = Machine::builder(1)
        .parallelism(Parallelism::Sequential)
        .restore(&bytes)
        .unwrap_or_else(|e| panic!("restore {path}: {e}"));
    let n = m.stats().nodes.len();
    let at = m.now.ns();
    let t = m.run_to_quiescence();
    println!(
        "restored {n} nodes at {at} ns from {path} ({} bytes); quiesced at {} ns",
        bytes.len(),
        t.ns()
    );
}

fn write_json(
    path: &str,
    workers: usize,
    sweep: &[SweepRow],
    ring: &[(u16, u64, f64, f64, f64)],
    ckpt: &[CkptPoint],
    coll: &[CollRow],
) {
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"simspeed\",\n");
    s.push_str("  \"unit\": \"per wall-clock second\",\n");
    s.push_str(&format!("  \"parallel_workers\": {workers},\n"));
    s.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    s.push_str(&format!(
        "  \"sweep\": {{\n    \"workload\": \"staggered_pairs\",\n    \"stagger_ns\": {STAGGER_NS},\n    \"msgs_per_pair\": {PAIR_MSGS},\n    \"points\": [\n"
    ));
    for (i, r) in sweep.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"nodes\": {}, \"sim_ns\": {}, \"parallel_workers\": {}, \"event_sim_ns\": {:.0}, \"event_cycles\": {:.0}, \"parallel_sim_ns\": {:.0}, \"parallel_cycles\": {:.0}}}{}\n",
            r.nodes,
            r.sim_ns,
            r.workers,
            r.event_ns_per_s,
            cycles_per_s(r.event_ns_per_s),
            r.parallel_ns_per_s,
            cycles_per_s(r.parallel_ns_per_s),
            if i + 1 == sweep.len() { "" } else { "," },
        ));
    }
    s.push_str("    ]\n  },\n");
    s.push_str(&format!(
        "  \"ring\": {{\n    \"workload\": \"synchronized_ring\",\n    \"gap_ns\": {GAP_NS},\n    \"rounds\": {ROUNDS},\n    \"points\": [\n"
    ));
    for (i, (n, sim_ns, st, ev, par)) in ring.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"nodes\": {n}, \"sim_ns\": {sim_ns}, \"stepped_sim_ns\": {st:.0}, \"stepped_cycles\": {:.0}, \"event_sim_ns\": {ev:.0}, \"event_cycles\": {:.0}, \"parallel_sim_ns\": {par:.0}, \"parallel_cycles\": {:.0}}}{}\n",
            cycles_per_s(*st),
            cycles_per_s(*ev),
            cycles_per_s(*par),
            if i + 1 == ring.len() { "" } else { "," },
        ));
    }
    s.push_str("    ]\n  },\n");
    s.push_str(
        "  \"checkpoint\": {\n    \"workload\": \"staggered_pairs mid-run; delta one stagger slot later\",\n    \"points\": [\n",
    );
    for (i, c) in ckpt.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"nodes\": {}, \"full\": {{\"bytes\": {}, \"save_us\": {:.0}, \"restore_us\": {:.0}}}, \"delta\": {{\"bytes\": {}, \"save_us\": {:.0}, \"restore_us\": {:.0}, \"chain_len\": {}}}}}{}\n",
            c.nodes,
            c.bytes,
            c.save_us,
            c.restore_us,
            c.delta_bytes,
            c.delta_save_us,
            c.delta_restore_us,
            c.chain_len,
            if i + 1 == ckpt.len() { "" } else { "," },
        ));
    }
    s.push_str("    ]\n  },\n");
    s.push_str(
        "  \"collectives\": {\n    \"workload\": \"allreduce of 0..n, three implementations\",\n    \"points\": [\n",
    );
    for (i, r) in coll.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"nodes\": {}, \"express\": {{\"ns\": {}, \"ap_ops_per_node\": {}}}, \"basic\": {{\"ns\": {}, \"ap_ops_per_node\": {}}}, \"firmware\": {{\"ns\": {}, \"ap_ops_per_node\": {}, \"sp_coll_ns_per_node\": {}}}}}{}\n",
            r.nodes,
            r.express_ns,
            r.express_apops,
            r.basic_ns,
            r.basic_apops,
            r.fw_ns,
            r.fw_apops,
            r.fw_sp_ns,
            if i + 1 == coll.len() { "" } else { "," },
        ));
    }
    s.push_str("    ]\n  }\n}\n");
    let mut f = std::fs::File::create(path).expect("create json report");
    f.write_all(s.as_bytes()).expect("write json report");
}

/// Deterministic observability sidecar: re-run the staggered-pair
/// workload sequentially with latency sampling on and dump the complete
/// counter snapshot. Everything in it is simulation-determined, so the
/// output is byte-stable across hosts and runs.
fn write_stats_sidecar(n: u16, path: &std::path::Path) {
    let mut m = Machine::builder(n.into())
        .parallelism(Parallelism::Sequential)
        .sample_latency(true)
        .build();
    load_staggered_pairs(&mut m, n);
    m.run_to_quiescence();
    let mut json = m.stats().to_json();
    json.push('\n');
    std::fs::write(path, json).expect("write stats sidecar");
    println!("wrote {}", path.display());
}

/// Fault-injection smoke (`--faults`): the staggered-pair workload over
/// a hostile fabric. The run must finish with every payload delivered
/// exactly once, visible retransmission work, and stats JSON identical
/// between the sequential and windowed-parallel event loops.
fn faults_smoke(n: u16, workers: usize) {
    let faults = voyager::arctic::FaultParams {
        drop_ppm: 60_000,
        dup_ppm: 30_000,
        corrupt_ppm: 25_000,
        reorder_ppm: 40_000,
        seed: 0xFA17_5EED,
    };
    let run = |par: Parallelism| {
        let mut m = Machine::builder(n.into())
            .faults(faults)
            .parallelism(par)
            .build();
        load_staggered_pairs(&mut m, n);
        let t = m.run_to_quiescence().ns();
        (t, m.stats())
    };
    let (t_ev, s_ev) = run(Parallelism::Sequential);
    let (t_par, s_par) = run(Parallelism::Fixed(workers));
    assert_eq!(t_ev, t_par, "parallel loop must match under faults");
    assert_eq!(
        s_ev.to_json(),
        s_par.to_json(),
        "fault-injected stats must be identical across loop modes"
    );
    let delivered: u64 = s_ev
        .nodes
        .iter()
        .map(|nd| nd.niu.classes[0].delivered)
        .sum();
    let offered = u64::from(n / 2) * u64::from(PAIR_MSGS);
    assert_eq!(delivered, offered, "payloads lost under fault injection");
    let retransmits: u64 = s_ev.nodes.iter().map(|nd| nd.niu.retransmits).sum();
    assert!(retransmits > 0, "fault rates too low to exercise recovery");
    println!(
        "faults smoke: {n} nodes, {} drops + {} corruptions injected, \
         {retransmits} retransmits, {offered}/{offered} payloads delivered",
        s_ev.network.faults_dropped, s_ev.network.faults_corrupted,
    );
}

/// Hot-spot / QoS smoke (`--hotspot`): the incast workload from
/// `voyager::workloads::hot_spot` (every node floods node 0 with
/// Low-class traffic while the last node interleaves High-class
/// probes), run three ways. First the EXPERIMENTS.md S9 isolation
/// gate: with 1 virtual channel (every class in one bounded buffer,
/// the head-of-line-blocking baseline) the probe tail must be
/// measurably worse than with 2 VCs isolating the High class. Then
/// the determinism gate: with VCs *and* a hostile fabric armed, the
/// sequential and windowed-parallel event loops must produce
/// byte-identical stats JSON, credit stalls included.
fn hotspot_smoke(n: u16, workers: usize) {
    use voyager::arctic::{QosParams, VcArbitration};
    let qos_params = |vcs: u8| voyager::SystemParams {
        qos: Some(QosParams {
            vcs,
            credits_per_vc: 2,
            arbitration: VcArbitration::Priority,
        }),
        ..Default::default()
    };
    let (per_sender, hi_probes, payload) = (30u32, 8u32, 88usize);
    let hol = voyager::workloads::hot_spot(qos_params(1), n.into(), per_sender, hi_probes, payload);
    let iso = voyager::workloads::hot_spot(qos_params(2), n.into(), per_sender, hi_probes, payload);
    assert_eq!(hol.hi_count, u64::from(hi_probes));
    assert_eq!(iso.hi_count, u64::from(hi_probes));
    assert!(
        hol.credit_stalls > 0,
        "incast must exhaust 2-credit buffers"
    );
    assert!(
        iso.hi_max_ns < hol.hi_max_ns,
        "2 VCs must cut the High-class tail below the 1-VC baseline \
         (1 VC: {} ns, 2 VCs: {} ns)",
        hol.hi_max_ns,
        iso.hi_max_ns
    );
    let faults = voyager::arctic::FaultParams {
        drop_ppm: 40_000,
        dup_ppm: 20_000,
        corrupt_ppm: 15_000,
        reorder_ppm: 30_000,
        seed: 0x5909_5EED,
    };
    let run = |par: Parallelism| {
        let mut m = Machine::builder(n.into())
            .params(qos_params(2))
            .faults(faults)
            .parallelism(par)
            .build();
        voyager::workloads::load_hot_spot(&mut m, per_sender, hi_probes, payload);
        let t = m.run_to_quiescence().ns();
        (t, m.stats())
    };
    let (t_ev, s_ev) = run(Parallelism::Sequential);
    let (t_par, s_par) = run(Parallelism::Fixed(workers));
    assert_eq!(t_ev, t_par, "parallel loop must match under QoS + faults");
    assert_eq!(
        s_ev.to_json(),
        s_par.to_json(),
        "QoS stats must be identical across loop modes"
    );
    let q = s_ev.network.qos.as_ref().expect("QoS armed");
    println!(
        "hotspot smoke: {n} nodes, hi tail {} ns with 1 VC vs {} ns with 2 VCs \
         ({} credit stalls in baseline); faulty-fabric loops identical \
         ({t_ev} ns, {} stalls, {} stall-ns)",
        hol.hi_max_ns, iso.hi_max_ns, hol.credit_stalls, q.credit_stalls, q.credit_stall_ns,
    );
}

/// Multi-tenant serving smoke (`--tenants`): the S10 tenant job mix on
/// an `n`-node machine with tenancy armed — per-node schedulers
/// multiplexing latency/bulk/bursty tenants plus one confined
/// misbehaving tenant. The sequential and windowed-parallel event loops
/// must produce byte-identical stats (per-tenant sections included),
/// each node must contain exactly one protection violation, and the
/// serving metrics (cache hit rate, P99 tail split) are printed for the
/// log.
fn tenants_smoke(n: u16, workers: usize) {
    use voyager::{SchedPolicy, TenancyParams};
    let run = |par: Parallelism| {
        let tenancy = TenancyParams {
            tenants_per_node: 16,
            policy: SchedPolicy::WeightedTimeSlice { quantum_ns: 20_000 },
            confined: Some(5),
        };
        let mut m = Machine::builder(n.into())
            .tenants(tenancy)
            .parallelism(par)
            .build();
        voyager::workloads::load_tenant_mix(&mut m, 8);
        let t = m.run_to_quiescence().ns();
        let out = voyager::workloads::measure_tenant_mix(&m);
        (t, m.stats().to_json(), out)
    };
    let (t_ev, s_ev, out) = run(Parallelism::Sequential);
    let (t_par, s_par, _) = run(Parallelism::Fixed(workers));
    assert_eq!(t_ev, t_par, "parallel loop must match with tenancy armed");
    assert_eq!(
        s_ev, s_par,
        "tenant stats must be identical across loop modes"
    );
    assert!(s_ev.contains("\"per_tenant\":"), "per-tenant rows present");
    assert_eq!(
        out.tx_violations,
        u64::from(n),
        "one contained violation per node"
    );
    assert!(out.rq_hits + out.rq_misses > 0, "tenant traffic flowed");
    assert!(out.rebinds > 0, "miss path exercised");
    println!(
        "tenants smoke: {n} nodes x 16 tenants, loops identical ({t_ev} ns); \
         hit rate {:.1}% ({} hits / {} misses, {} diversions, {} rebinds), \
         p99 {} ns (hit {} ns, miss {} ns; latency class {} ns vs others {} ns), \
         {} violations contained",
        out.hit_rate * 100.0,
        out.rq_hits,
        out.rq_misses,
        out.diversions,
        out.rebinds,
        out.p99_ns,
        out.hit_p99_ns,
        out.miss_p99_ns,
        out.latency_class_p99_ns,
        out.other_class_p99_ns,
        out.tx_violations,
    );
}

/// The S10 scaling study (`--tenant-sweep`): sweep tenants per node
/// 4→256 on a fixed machine and print, at each point, the rx-queue
/// cache's hit rate and the inject→deliver P99 tail split by cache
/// outcome and by QoS class. The 12-slot managed hardware pool covers
/// small tenant counts; past it, the cache thrashes, misses divert
/// through the firmware service path, and the aggregate tail grows —
/// while the Latency class's high-priority translation bit holds its
/// own P99 down. EXPERIMENTS.md S10 is this table.
fn tenant_sweep(n: u16) {
    use voyager::{SchedPolicy, SystemParams, TenancyParams};
    println!(
        "{:>12} {:>9} {:>9} {:>8} {:>9} {:>9} {:>11} {:>11}",
        "tenants/node",
        "hit rate",
        "rebinds",
        "p99",
        "hit p99",
        "miss p99",
        "latency p99",
        "others p99"
    );
    for tenants in [4u16, 8, 16, 32, 64, 128, 256] {
        let tenancy = TenancyParams {
            tenants_per_node: tenants,
            policy: SchedPolicy::WeightedTimeSlice { quantum_ns: 20_000 },
            confined: None,
        };
        let out = voyager::workloads::tenant_mix(SystemParams::default(), n.into(), tenancy, 6);
        assert!(out.sent_msgs > 0, "mix ran at {tenants} tenants/node");
        println!(
            "{:>12} {:>8.1}% {:>9} {:>8} {:>9} {:>9} {:>11} {:>11}",
            tenants,
            out.hit_rate * 100.0,
            out.rebinds,
            out.p99_ns,
            out.hit_p99_ns,
            out.miss_p99_ns,
            out.latency_class_p99_ns,
            out.other_class_p99_ns,
        );
    }
}

/// One collectives measurement for the JSON report: the same all-reduce
/// three ways (aP-driven over Express, aP-driven over Basic, sP
/// firmware), with the occupancy split that motivates the offload.
struct CollRow {
    nodes: u16,
    express_ns: u64,
    express_apops: u64,
    basic_ns: u64,
    basic_apops: u64,
    fw_ns: u64,
    fw_apops: u64,
    fw_sp_ns: u64,
}

/// Mean aP memory operations and sP collective-handler time per node.
fn coll_occupancy(m: &Machine, n: u16) -> (u64, u64) {
    let s = m.stats();
    let ops: u64 = s.nodes.iter().map(|nd| nd.cpu.loads + nd.cpu.stores).sum();
    let sp: u64 = s.nodes.iter().map(|nd| nd.fw.coll_busy_ns).sum();
    (ops / u64::from(n), sp / u64::from(n))
}

/// All-reduce of `0..n` at `n` nodes, three implementations, on fresh
/// sequential machines: quiescence latency plus the per-node occupancy
/// split for each.
fn coll_point(n: u16) -> CollRow {
    let run = |load: &dyn Fn(&mut Machine, u16)| {
        let mut m = Machine::builder(n.into()).build();
        load(&mut m, n);
        let t = m.run_to_quiescence().ns();
        let (ops, sp) = coll_occupancy(&m, n);
        (t, ops, sp)
    };
    let (express_ns, express_apops, _) = run(&|m, n| {
        for i in 0..n {
            let lib = m.lib(i);
            m.load_program(i, AllReduce::new(&lib, ReduceOp::Sum, u64::from(i)));
        }
    });
    let (basic_ns, basic_apops, _) = run(&|m, n| {
        for i in 0..n {
            let lib = m.lib(i);
            m.load_program(i, BasicAllReduce::new(&lib, ReduceOp::Sum, u64::from(i)));
        }
    });
    let (fw_ns, fw_apops, fw_sp_ns) = run(&|m, n| {
        for i in 0..n {
            let lib = m.lib(i);
            m.load_program(
                i,
                lib.coll_program(vec![CollReq::allreduce(CollOp::Sum, u64::from(i))]),
            );
        }
    });
    CollRow {
        nodes: n,
        express_ns,
        express_apops,
        basic_ns,
        basic_apops,
        fw_ns,
        fw_apops,
        fw_sp_ns,
    }
}

/// Firmware-collectives smoke (`--collectives`): barrier + all-reduce +
/// broadcast sequenced NIC-side on every node, run under both the
/// sequential and windowed-parallel event loops. The loops must agree
/// byte-for-byte on the stats, every node must complete all three
/// collectives with the exact expected results, and the three-way
/// all-reduce comparison at this size is printed for the log.
fn collectives_smoke(n: u16, workers: usize) {
    let want_sum: u64 = (1..=u64::from(n)).sum();
    let run = |par: Parallelism| {
        let mut m = Machine::builder(n.into()).parallelism(par).build();
        for i in 0..n {
            let lib = m.lib(i);
            m.load_program(
                i,
                lib.coll_program(vec![
                    CollReq::barrier(),
                    CollReq::allreduce(CollOp::Sum, u64::from(i) + 1),
                    CollReq::broadcast(0, 0xC0FFEE),
                ]),
            );
        }
        let t = m.run_to_quiescence().ns();
        for i in 0..n {
            let vals: Vec<u64> = m
                .events(i)
                .iter()
                .filter_map(|e| match e.kind {
                    AppEventKind::Result { value, .. } => Some(value),
                    _ => None,
                })
                .collect();
            assert_eq!(
                vals,
                vec![0, want_sum, 0xC0FFEE],
                "node {i} collective results"
            );
        }
        (t, m.stats())
    };
    let (t_ev, s_ev) = run(Parallelism::Sequential);
    let (t_par, s_par) = run(Parallelism::Fixed(workers));
    assert_eq!(t_ev, t_par, "parallel loop must match on collectives");
    assert_eq!(
        s_ev.to_json(),
        s_par.to_json(),
        "collective stats must be identical across loop modes"
    );
    for nd in &s_ev.nodes {
        assert_eq!(nd.fw.coll_started, 3, "node {} started", nd.node);
        assert_eq!(nd.fw.coll_completed, 3, "node {} completed", nd.node);
    }
    let r = coll_point(n);
    println!(
        "collectives smoke: {n} nodes, 3 collectives/node, loops identical \
         ({t_ev} ns); allreduce express {} ns ({} aP ops/node), basic {} ns \
         ({} aP ops/node), firmware {} ns ({} aP ops/node, {} ns sP/node)",
        r.express_ns, r.express_apops, r.basic_ns, r.basic_apops, r.fw_ns, r.fw_apops, r.fw_sp_ns,
    );
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let args: Vec<String> = std::env::args().collect();
    let only_nodes: Option<u16> = args.iter().position(|a| a == "--nodes").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--nodes takes a node count")
    });
    let want_stats = args.iter().any(|a| a == "--stats");
    let artifacts_dir = std::path::PathBuf::from(
        args.iter()
            .position(|a| a == "--artifacts-dir")
            .map(|i| {
                args.get(i + 1)
                    .expect("--artifacts-dir takes a directory")
                    .clone()
            })
            .unwrap_or_else(|| "target".to_string()),
    );
    std::fs::create_dir_all(&artifacts_dir).expect("create artifacts dir");
    if let Some(i) = args.iter().position(|a| a == "--restore") {
        let path = args.get(i + 1).expect("--restore takes a snapshot file");
        restore_smoke(path);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--checkpoint-every") {
        let every = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--checkpoint-every takes a bus-cycle count");
        checkpoint_every_smoke(
            only_nodes.unwrap_or(16),
            every,
            &artifacts_dir.join(CKPT_FILE),
        );
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--delta-every") {
        let every = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--delta-every takes a bus-cycle count");
        delta_every_smoke(only_nodes.unwrap_or(16), every);
        return;
    }
    if args.iter().any(|a| a == "--faults") {
        faults_smoke(only_nodes.unwrap_or(64), workers);
        return;
    }
    if args.iter().any(|a| a == "--collectives") {
        collectives_smoke(only_nodes.unwrap_or(64), workers);
        return;
    }
    if args.iter().any(|a| a == "--hotspot") {
        hotspot_smoke(only_nodes.unwrap_or(16), workers);
        return;
    }
    if args.iter().any(|a| a == "--tenant-sweep") {
        tenant_sweep(only_nodes.unwrap_or(16));
        return;
    }
    if args.iter().any(|a| a == "--tenants") {
        tenants_smoke(only_nodes.unwrap_or(16), workers);
        return;
    }

    // ---- Node-count sweep (idle-heavy staggered pairs) ----
    let sweep_sizes: Vec<u16> = match only_nodes {
        Some(n) => vec![n],
        None => vec![8, 16, 32, 64, 128, 256, 1024, 4096],
    };
    let mut sweep = Vec::new();
    let mut sweep_rows = Vec::new();
    for &n in &sweep_sizes {
        let r = sweep_point(n, workers);
        sweep_rows.push(vec![
            n.to_string(),
            r.sim_ns.to_string(),
            format!("{:.1}", r.event_ns_per_s / 1e6),
            format!("{:.1}", r.parallel_ns_per_s / 1e6),
        ]);
        sweep.push(r);
    }
    print_table(
        &format!("node-count sweep, staggered pairs (sim-Mns per wall-second; {workers} workers)"),
        &["nodes", "sim ns", "event", "parallel"],
        &sweep_rows,
    );

    // ---- Loop-mode comparison on the synchronized ring ----
    let mut ring = Vec::new();
    if only_nodes.is_none() {
        let mut rows = Vec::new();
        let mut speedup_8 = (0.0f64, 0.0f64);
        for n in [2u16, 8, 32] {
            let _ = measure(Machine::builder(n.into()), n, load_ring);
            let (t_step, w_step) =
                measure(Machine::builder(n.into()).cycle_stepped(), n, load_ring);
            let (t_ev, w_ev) = measure(
                Machine::builder(n.into()).parallelism(Parallelism::Sequential),
                n,
                load_ring,
            );
            let (t_par, w_par) = measure(
                Machine::builder(n.into()).parallelism(Parallelism::Fixed(workers)),
                n,
                load_ring,
            );
            assert_eq!(
                t_step, t_ev,
                "event loop must match cycle-stepped time ({n} nodes)"
            );
            assert_eq!(
                t_step, t_par,
                "parallel loop must match cycle-stepped time ({n} nodes)"
            );

            let (r_step, s_step) = fmt_rate(t_step, w_step);
            let (r_ev, s_ev) = fmt_rate(t_ev, w_ev);
            let (r_par, s_par) = fmt_rate(t_par, w_par);
            if n == 8 {
                speedup_8 = (r_ev / r_step, r_par / r_step);
            }
            ring.push((n, t_step, r_step, r_ev, r_par));
            rows.push(vec![
                n.to_string(),
                t_step.to_string(),
                s_step,
                s_ev,
                s_par,
                format!("{:.2}x", r_ev / r_step),
                format!("{:.2}x", r_par / r_step),
            ]);
        }
        print_table(
            &format!(
                "simulation speed, idle-heavy ring (sim-Mns per wall-second; {workers} workers)"
            ),
            &[
                "nodes",
                "sim ns",
                "stepped",
                "event",
                "parallel",
                "event/stepped",
                "par/stepped",
            ],
            &rows,
        );
        println!(
            "\n8-node speedup over cycle-stepped: event {:.2}x, parallel {:.2}x",
            speedup_8.0, speedup_8.1
        );
    }

    // ---- Checkpoint size and save/restore cost, full vs delta ----
    let ckpt: Vec<CkptPoint> = [8u16, 16, 32, 64, 256, 1024]
        .iter()
        .map(|&n| ckpt_point(n))
        .collect();
    let ckpt_rows: Vec<Vec<String>> = ckpt
        .iter()
        .map(|c| {
            vec![
                c.nodes.to_string(),
                c.bytes.to_string(),
                format!("{:.0}", c.save_us),
                format!("{:.0}", c.restore_us),
                c.delta_bytes.to_string(),
                format!("{:.0}", c.delta_save_us),
                format!("{:.0}", c.delta_restore_us),
                format!("{:.0}x", c.bytes as f64 / c.delta_bytes as f64),
            ]
        })
        .collect();
    print_table(
        "checkpoint snapshots, staggered pairs mid-run (delta: one stagger slot later)",
        &[
            "nodes",
            "full bytes",
            "save us",
            "restore us",
            "delta bytes",
            "save us",
            "chain restore us",
            "bytes ratio",
        ],
        &ckpt_rows,
    );

    // ---- Collectives: the same all-reduce three ways ----
    let coll: Vec<CollRow> = [4u16, 16, 64, 256].iter().map(|&n| coll_point(n)).collect();
    let coll_rows: Vec<Vec<String>> = coll
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.express_ns.to_string(),
                r.express_apops.to_string(),
                r.basic_ns.to_string(),
                r.basic_apops.to_string(),
                r.fw_ns.to_string(),
                r.fw_apops.to_string(),
                r.fw_sp_ns.to_string(),
            ]
        })
        .collect();
    print_table(
        "allreduce, three implementations (latency ns; aP mem-ops and sP coll-ns per node)",
        &[
            "nodes",
            "express ns",
            "aP ops",
            "basic ns",
            "aP ops",
            "firmware ns",
            "aP ops",
            "sP ns",
        ],
        &coll_rows,
    );

    write_json("BENCH_simspeed.json", workers, &sweep, &ring, &ckpt, &coll);
    println!("\nwrote BENCH_simspeed.json");
    if want_stats {
        write_stats_sidecar(only_nodes.unwrap_or(64), &artifacts_dir.join(STATS_FILE));
    }
}
