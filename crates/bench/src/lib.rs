//! Shared harness code for the benchmark binaries.
//!
//! Each binary under `src/bin/` regenerates one figure or table of the
//! paper (see `DESIGN.md`'s experiment index); this module holds the
//! common sweep glue and plain-text table formatting so every binary
//! prints comparable output.

use voyager::blockxfer::{run_block_transfer, XferSpec};
use voyager::firmware::proto::Approach;
use voyager::metrics::XferPoint;
use voyager::sweep::parallel_map;
use voyager::SystemParams;

/// Transfer sizes for the latency sweep (Figure 3): 64 B – 256 KiB.
pub const FIG3_SIZES: [u32; 13] = [
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144,
];

/// Transfer sizes for the bandwidth sweep (Figure 4): 1 KiB – 1 MiB.
pub const FIG4_SIZES: [u32; 11] = [
    1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288, 1048576,
];

/// The three approaches the paper measured.
pub const PAPER_APPROACHES: [Approach; 3] =
    [Approach::ApDirect, Approach::SpManaged, Approach::BlockHw];

/// The optimistic extensions (approaches 4 and 5).
pub const OPTIMISTIC_APPROACHES: [Approach; 2] = [Approach::OptimisticSp, Approach::OptimisticHw];

/// Sweep `(approach, size)` pairs in parallel.
pub fn sweep(
    params: SystemParams,
    approaches: &[Approach],
    sizes: &[u32],
    verify: bool,
) -> Vec<XferPoint> {
    let specs: Vec<XferSpec> = approaches
        .iter()
        .flat_map(|&approach| {
            sizes.iter().map(move |&len| XferSpec {
                approach,
                len,
                verify,
            })
        })
        .collect();
    parallel_map(specs, move |spec| run_block_transfer(params, spec))
}

/// Group sweep results by approach, preserving size order.
pub fn by_approach(points: Vec<XferPoint>) -> Vec<(u8, Vec<XferPoint>)> {
    let mut out: Vec<(u8, Vec<XferPoint>)> = Vec::new();
    for p in points {
        match out.iter_mut().find(|(a, _)| *a == p.approach) {
            Some((_, v)) => v.push(p),
            None => out.push((p.approach, vec![p])),
        }
    }
    out
}

/// Render a plain-text table: header row + aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Human label for an approach number.
pub fn approach_name(a: u8) -> &'static str {
    match a {
        1 => "A1 aP-direct",
        2 => "A2 sP-managed",
        3 => "A3 block-hw",
        4 => "A4 optimistic-sP",
        5 => "A5 optimistic-hw",
        _ => "?",
    }
}

/// Format nanoseconds as microseconds with one decimal.
pub fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1000.0)
}

/// Check every point verified; a bench must not silently report numbers
/// from a broken transfer.
pub fn assert_verified(points: &[XferPoint]) {
    for p in points {
        assert!(
            p.verified,
            "approach {} size {} failed verification",
            p.approach, p.bytes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(a: u8, b: u32) -> XferPoint {
        XferPoint {
            approach: a,
            bytes: b,
            latency_notify_ns: 0,
            latency_use_ns: 0,
            bandwidth_mb_s: 0.0,
            sender_ap_busy_ns: 0,
            receiver_ap_busy_ns: 0,
            sp_busy_ns: 0,
            verified: true,
        }
    }

    #[test]
    fn grouping_preserves_order() {
        let g = by_approach(vec![mk(1, 64), mk(1, 128), mk(3, 64)]);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].0, 1);
        assert_eq!(g[0].1.len(), 2);
        assert_eq!(g[1].0, 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(1500), "1.5");
        assert_eq!(approach_name(3), "A3 block-hw");
    }

    #[test]
    #[should_panic(expected = "failed verification")]
    fn unverified_points_abort() {
        let mut p = mk(2, 64);
        p.verified = false;
        assert_verified(&[p]);
    }
}
