use voyager::api::{BasicMsg, RecvBasic, SendBasic};
use voyager::{Machine, SystemParams};

fn main() {
    let p = SystemParams::default();
    let mut m = Machine::builder(2).params(p).build();
    let lib0 = m.lib(0);
    let msgs = 300u32;
    let items: Vec<BasicMsg> = (0..msgs)
        .map(|i| BasicMsg::new(lib0.user_dest(1), vec![(i & 0xFF) as u8; 88]))
        .collect();
    m.load_program(0, SendBasic::new(&lib0, items));
    m.load_program(1, RecvBasic::expecting(&m.lib(1), msgs as usize));
    match m.run_to_quiescence_capped(100_000_000) {
        Ok(t) => println!("quiesced at {t}"),
        Err(t) => {
            println!("HUNG at {t}");
            for i in 0..2 {
                let n = &m.nodes[i];
                println!(
                    "node{i}: prog_done={} bus_busy={} niu_work={} fw_work={}",
                    n.program_done(),
                    n.bus.busy(),
                    n.niu.has_work(),
                    n.fw.has_work(&n.niu)
                );
                println!(
                    "  tx1: prod={} cons={} enabled={}",
                    n.niu.ctrl.tx[1].producer, n.niu.ctrl.tx[1].consumer, n.niu.ctrl.tx[1].enabled
                );
                println!(
                    "  rx1: prod={} cons={} recvd={} dropped={} diverted={}",
                    n.niu.ctrl.rx[1].producer,
                    n.niu.ctrl.rx[1].consumer,
                    n.niu.ctrl.rx[1].received.get(),
                    n.niu.ctrl.rx[1].dropped.get(),
                    n.niu.ctrl.rx[1].diverted.get()
                );
                println!(
                    "  rx15: pending={} fw_miss_msgs={}",
                    n.niu.ctrl.rx[15].pending(),
                    n.fw.stats.miss_msgs.get()
                );
                println!(
                    "  events={} received_events={}",
                    n.events.len(),
                    m.received_messages(i as u16).len()
                );
            }
        }
    }
}
