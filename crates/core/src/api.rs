//! Layer-0 library: user-level programs over the NIU's memory-mapped
//! interface.
//!
//! Each type here is a [`Program`] that drives the communication
//! mechanisms exactly the way user code on the real machine would —
//! composing messages with stores into the mapped aSRAM window, updating
//! queue pointers with address-encoded stores, polling shadow pointers,
//! launching Express messages with single stores. Nothing in this module
//! touches simulator internals; everything goes through loads and stores.

use crate::app::{AppEventKind, Env, Program, Step, StoreData};
use crate::machine::{NodeLib, USER_SCRATCH};
use bytes::Bytes;
use sv_firmware::proto::{self, XferReq};
use sv_niu::msg::{express, MsgHeader, TAGON_LARGE, TAGON_SMALL};
use sv_niu::niu::decode_rx_slot;

/// Gap between polls of an empty queue, ns (amortizes bus traffic the
/// way a real polling loop's loop overhead does).
const POLL_GAP_NS: u64 = 30;

/// What a layer-0 library call can reject. The panicking constructors
/// ([`BasicMsg::new`], [`SendBasic::to_node`], …) delegate to `try_`
/// variants returning this, so applications that build messages from
/// untrusted sizes can handle the failure instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApiError {
    /// Basic payloads are at most 88 bytes on the wire.
    PayloadTooLarge {
        /// Offending payload length.
        len: usize,
        /// The format's limit.
        max: usize,
    },
    /// TagOn attachments are exactly 1.5 or 2.5 cache lines.
    BadTagOnSize {
        /// Offending attachment length.
        len: usize,
    },
    /// Payload plus TagOn attachment exceed one Basic message.
    MessageTooLarge {
        /// Payload length.
        payload: usize,
        /// Attachment length.
        tagon: usize,
        /// Combined limit.
        max: usize,
    },
    /// The destination node does not exist in this machine.
    DestinationOutOfRange {
        /// Requested node.
        dest: u16,
        /// Number of nodes in the machine.
        nodes: u16,
    },
    /// A machine snapshot could not be taken or restored (see
    /// [`sv_sim::ckpt::SnapshotError`] for the specific failure).
    Snapshot(sv_sim::ckpt::SnapshotError),
    /// [`crate::Parallelism::Fixed`]`(0)` was requested; zero workers
    /// cannot run anything. Use [`crate::Parallelism::Sequential`] for a
    /// one-thread run.
    WorkerCountZero,
    /// More workers were requested than the finest shard partition (one
    /// shard per node) can occupy; the surplus could never run.
    WorkersExceedShards {
        /// Requested worker count.
        workers: usize,
        /// Maximum shard count for this machine.
        shards: usize,
    },
    /// [`crate::MachineBuilder::network_qos`] was given zero virtual
    /// channels; every packet needs a VC to ride.
    ZeroVirtualChannels,
    /// [`crate::MachineBuilder::network_qos`] was given zero credits per
    /// VC; a zero-slot buffer can never accept a packet, so the first
    /// multi-hop transmission would stall forever.
    ZeroCredits,
    /// A block-transfer chunk size was invalid: zero, not a multiple of
    /// 8, or too large for the Basic wire format (whose header length
    /// field covers `8 + chunk` bytes).
    BadChunkSize {
        /// Requested chunk size, bytes.
        chunk: usize,
        /// Largest representable chunk, bytes.
        max: usize,
    },
    /// [`crate::MachineBuilder::tenants`] was given zero tenants per
    /// node; an empty tenancy layer cannot schedule anything.
    TenantCountZero,
    /// [`crate::tenancy::TenancyParams::confined`] named a tenant that
    /// does not exist on the node.
    ConfinedTenantOutOfRange {
        /// The confined tenant index requested.
        tenant: u16,
        /// Tenants per node actually configured.
        tenants: u16,
    },
    /// The per-tenant translation-table slices do not fit in the 16-bit
    /// destination namespace at this node count.
    TenantNamespaceOverflow {
        /// Tenants per node requested.
        tenants: u16,
        /// Largest tenant count that fits for this machine size.
        capacity: u32,
    },
}

impl From<sv_sim::ckpt::SnapshotError> for ApiError {
    fn from(e: sv_sim::ckpt::SnapshotError) -> Self {
        ApiError::Snapshot(e)
    }
}

impl core::fmt::Display for ApiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            ApiError::PayloadTooLarge { len, max } => {
                write!(f, "Basic payload is at most {max} bytes (got {len})")
            }
            ApiError::BadTagOnSize { len } => write!(
                f,
                "TagOn attachments are 1.5 or 2.5 cache lines (48 or 80 bytes), got {len}"
            ),
            ApiError::MessageTooLarge {
                payload,
                tagon,
                max,
            } => write!(
                f,
                "payload ({payload}B) + TagOn ({tagon}B) exceed the {max}B Basic message"
            ),
            ApiError::DestinationOutOfRange { dest, nodes } => {
                write!(
                    f,
                    "destination node {dest} out of range (machine has {nodes})"
                )
            }
            ApiError::Snapshot(e) => write!(f, "snapshot: {e}"),
            ApiError::WorkerCountZero => {
                write!(
                    f,
                    "Parallelism::Fixed(0) is invalid; use Parallelism::Sequential"
                )
            }
            ApiError::WorkersExceedShards { workers, shards } => {
                write!(
                    f,
                    "{workers} workers exceed the finest shard partition ({shards} shards)"
                )
            }
            ApiError::ZeroVirtualChannels => {
                write!(f, "QosParams.vcs must be at least 1")
            }
            ApiError::ZeroCredits => {
                write!(
                    f,
                    "QosParams.credits_per_vc must be at least 1; a zero-slot \
                     buffer deadlocks the first multi-hop transmission"
                )
            }
            ApiError::BadChunkSize { chunk, max } => {
                write!(
                    f,
                    "block-transfer chunk must be a nonzero multiple of 8 \
                     at most {max} bytes (got {chunk})"
                )
            }
            ApiError::TenantCountZero => {
                write!(f, "TenancyParams.tenants_per_node must be at least 1")
            }
            ApiError::ConfinedTenantOutOfRange { tenant, tenants } => {
                write!(
                    f,
                    "confined tenant {tenant} out of range (node hosts {tenants})"
                )
            }
            ApiError::TenantNamespaceOverflow { tenants, capacity } => {
                write!(
                    f,
                    "{tenants} tenants/node overflow the 16-bit destination \
                     namespace (at most {capacity} fit at this node count)"
                )
            }
        }
    }
}

impl std::error::Error for ApiError {}

/// One message for [`SendBasic`].
#[derive(Debug, Clone)]
pub struct BasicMsg {
    /// Destination (virtual unless RAW).
    pub dest: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Optional TagOn attachment (must be 48 or 80 bytes; written to the
    /// user scratch region first, then picked up by CTRL).
    pub tagon: Option<Vec<u8>>,
}

/// Hard wire-format limit of one Basic message (header excluded).
const BASIC_MAX: usize = 88;

impl BasicMsg {
    /// A plain message. Panics on an over-long payload; see
    /// [`BasicMsg::try_new`] for the checked form.
    pub fn new(dest: u16, payload: Vec<u8>) -> Self {
        Self::try_new(dest, payload).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A plain message, rejecting payloads over 88 bytes.
    pub fn try_new(dest: u16, payload: Vec<u8>) -> Result<Self, ApiError> {
        if payload.len() > BASIC_MAX {
            return Err(ApiError::PayloadTooLarge {
                len: payload.len(),
                max: BASIC_MAX,
            });
        }
        Ok(BasicMsg {
            dest,
            payload,
            tagon: None,
        })
    }

    /// Attach TagOn data (48 or 80 bytes). Panics on a bad size; see
    /// [`BasicMsg::try_with_tagon`] for the checked form.
    pub fn with_tagon(self, tagon: Vec<u8>) -> Self {
        self.try_with_tagon(tagon).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Attach TagOn data, rejecting sizes other than 48/80 bytes and
    /// combinations that overflow the message.
    pub fn try_with_tagon(mut self, tagon: Vec<u8>) -> Result<Self, ApiError> {
        if tagon.len() != TAGON_SMALL as usize && tagon.len() != TAGON_LARGE as usize {
            return Err(ApiError::BadTagOnSize { len: tagon.len() });
        }
        if self.payload.len() + tagon.len() > BASIC_MAX {
            return Err(ApiError::MessageTooLarge {
                payload: self.payload.len(),
                tagon: tagon.len(),
                max: BASIC_MAX,
            });
        }
        self.tagon = Some(tagon);
        Ok(self)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SendState {
    Next,
    PollSpace,
    WriteTagon { off: u32 },
    WriteHeader,
    WritePayload { off: u32 },
    PtrUpdate,
}

/// Send a sequence of Basic messages on the user transmit queue.
pub struct SendBasic {
    lib: NodeLib,
    items: std::collections::VecDeque<BasicMsg>,
    state: SendState,
    producer: u16,
    consumer_seen: u16,
}

impl SendBasic {
    /// Send `items` in order.
    pub fn new(lib: &NodeLib, items: Vec<BasicMsg>) -> Self {
        Self::resuming(lib, items, 0)
    }

    /// Like [`SendBasic::new`], but resuming from an existing producer
    /// position — required when a long-lived application sends in phases,
    /// because the hardware queue's pointers persist across program
    /// objects.
    pub fn resuming(lib: &NodeLib, items: Vec<BasicMsg>, producer: u16) -> Self {
        // A queue that may have wrapped polls the consumer shadow before
        // its first compose (conservative: we do not know how much the
        // NIU has drained). A queue that has seen fewer than `entries`
        // messages in its lifetime can never be full — the consumer is
        // at least 0 — so no initial poll is needed. `saturating_sub`
        // encodes exactly that; the previous `wrapping_sub` made
        // `producer - consumer_seen` equal `entries` for every resumed
        // producer in `1..entries`, forcing a useless shadow poll (and
        // its bus traffic) on every phased send.
        let consumer_seen = producer.saturating_sub(lib.basic_tx.entries);
        SendBasic {
            lib: *lib,
            items: items.into(),
            state: SendState::Next,
            producer,
            consumer_seen,
        }
    }

    /// Convenience: one plain message to node `dest`'s user queue.
    /// Panics on a bad destination or payload; see
    /// [`SendBasic::try_to_node`] for the checked form.
    pub fn to_node(lib: &NodeLib, dest: u16, payload: Vec<u8>) -> Self {
        Self::try_to_node(lib, dest, payload).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`SendBasic::to_node`]: rejects destinations
    /// outside the machine and over-long payloads.
    pub fn try_to_node(lib: &NodeLib, dest: u16, payload: Vec<u8>) -> Result<Self, ApiError> {
        if dest >= lib.nodes {
            return Err(ApiError::DestinationOutOfRange {
                dest,
                nodes: lib.nodes,
            });
        }
        let d = lib.user_dest(dest);
        Ok(Self::new(lib, vec![BasicMsg::try_new(d, payload)?]))
    }

    fn cur(&self) -> &BasicMsg {
        self.items.front().expect("current message")
    }
}

impl Program for SendBasic {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            match self.state {
                SendState::Next => {
                    if self.items.is_empty() {
                        return Step::Done;
                    }
                    if self.producer.wrapping_sub(self.consumer_seen) >= self.lib.basic_tx.entries {
                        self.state = SendState::PollSpace;
                        return Step::Load {
                            addr: self.lib.asram(self.lib.basic_tx.shadow_off),
                            bytes: 8,
                        };
                    }
                    self.state = if self.cur().tagon.is_some() {
                        SendState::WriteTagon { off: 0 }
                    } else {
                        SendState::WriteHeader
                    };
                }
                SendState::PollSpace => {
                    self.consumer_seen = env.last_load as u16;
                    if self.producer.wrapping_sub(self.consumer_seen) >= self.lib.basic_tx.entries {
                        // Still full: poll again after a beat.
                        self.state = SendState::Next;
                        return Step::Compute(POLL_GAP_NS);
                    }
                    self.state = if self.cur().tagon.is_some() {
                        SendState::WriteTagon { off: 0 }
                    } else {
                        SendState::WriteHeader
                    };
                }
                SendState::WriteTagon { off } => {
                    let tagon = self.cur().tagon.as_ref().expect("tagon state");
                    if (off as usize) < tagon.len() {
                        let end = (off as usize + 8).min(tagon.len());
                        let chunk = tagon[off as usize..end].to_vec();
                        self.state = SendState::WriteTagon { off: off + 8 };
                        return Step::Store {
                            addr: self.lib.asram(USER_SCRATCH + off),
                            data: StoreData::Bytes(chunk),
                        };
                    }
                    self.state = SendState::WriteHeader;
                }
                SendState::WriteHeader => {
                    let msg = self.cur();
                    let mut hdr = MsgHeader::basic(msg.dest, msg.payload.len() as u8);
                    if let Some(t) = &msg.tagon {
                        hdr = hdr.with_tagon(USER_SCRATCH, t.len() as u8);
                    }
                    let slot = self.lib.basic_tx.slot_off(self.producer);
                    self.state = SendState::WritePayload { off: 0 };
                    return Step::Store {
                        addr: self.lib.asram(slot),
                        data: StoreData::Bytes(hdr.encode().to_vec()),
                    };
                }
                SendState::WritePayload { off } => {
                    let msg = self.cur();
                    if (off as usize) < msg.payload.len() {
                        let end = (off as usize + 8).min(msg.payload.len());
                        let chunk = msg.payload[off as usize..end].to_vec();
                        let slot = self.lib.basic_tx.slot_off(self.producer);
                        self.state = SendState::WritePayload { off: off + 8 };
                        return Step::Store {
                            addr: self.lib.asram(slot + 8 + off),
                            data: StoreData::Bytes(chunk),
                        };
                    }
                    self.state = SendState::PtrUpdate;
                }
                SendState::PtrUpdate => {
                    let msg = self.items.pop_front().expect("message");
                    self.producer = self.producer.wrapping_add(1);
                    let q = self.lib.basic_tx.q;
                    let bytes = (msg.payload.len() + msg.tagon.map_or(0, |t| t.len())) as u32;
                    env.emit(AppEventKind::Sent {
                        q,
                        dest: msg.dest,
                        bytes,
                    });
                    self.state = SendState::Next;
                    // All information rides in the address.
                    return Step::Store {
                        addr: self.lib.map.ptr_update_addr(false, q, self.producer),
                        data: StoreData::U64(0),
                    };
                }
            }
        }
    }

    fn snapshot(&self) -> Option<ProgramSnapshot> {
        Some(ProgramSnapshot(Repr::SendBasic {
            items: self.items.clone(),
            state: self.state,
            producer: self.producer,
            consumer_seen: self.consumer_seen,
        }))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RecvState {
    Poll,
    CheckPoll,
    ReadHeader,
    CheckHeader,
    ReadBody { off: u32 },
    PtrUpdate,
}

/// Receive `expect` Basic messages from the user receive queue,
/// recording [`AppEventKind::Received`] (and `NotifyReceived` for
/// transfer-notification payloads).
pub struct RecvBasic {
    lib: NodeLib,
    expect: usize,
    got: usize,
    state: RecvState,
    consumer: u16,
    producer_seen: u16,
    cur_src: u16,
    cur_len: u32,
    buf: Vec<u8>,
}

impl RecvBasic {
    /// Expect `expect` messages, then finish.
    pub fn expecting(lib: &NodeLib, expect: usize) -> Self {
        Self::resuming(lib, expect, 0)
    }

    /// Like [`RecvBasic::expecting`], but resuming from an existing
    /// consumer position. Long-lived applications that receive in phases
    /// must carry the queue cursor across phases — the hardware queue's
    /// pointers persist even though the program object does not.
    pub fn resuming(lib: &NodeLib, expect: usize, consumer: u16) -> Self {
        RecvBasic {
            lib: *lib,
            expect,
            got: 0,
            state: RecvState::Poll,
            consumer,
            producer_seen: consumer,
            cur_src: 0,
            cur_len: 0,
            buf: Vec::new(),
        }
    }
}

impl Program for RecvBasic {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            match self.state {
                RecvState::Poll => {
                    if self.got >= self.expect {
                        return Step::Done;
                    }
                    if self.consumer != self.producer_seen {
                        self.state = RecvState::ReadHeader;
                        continue;
                    }
                    self.state = RecvState::CheckPoll;
                    return Step::Load {
                        addr: self.lib.asram(self.lib.basic_rx.shadow_off),
                        bytes: 8,
                    };
                }
                RecvState::CheckPoll => {
                    self.producer_seen = env.last_load as u16;
                    if self.consumer == self.producer_seen {
                        self.state = RecvState::Poll;
                        return Step::Compute(POLL_GAP_NS);
                    }
                    self.state = RecvState::ReadHeader;
                }
                RecvState::ReadHeader => {
                    let slot = self.lib.basic_rx.slot_off(self.consumer);
                    self.state = RecvState::CheckHeader;
                    return Step::Load {
                        addr: self.lib.asram(slot),
                        bytes: 8,
                    };
                }
                RecvState::CheckHeader => {
                    let hdr = env.last_load.to_le_bytes();
                    let (src, _lq, len) = decode_rx_slot(&hdr);
                    self.cur_src = src;
                    self.cur_len = len as u32;
                    self.buf.clear();
                    self.state = RecvState::ReadBody { off: 0 };
                }
                RecvState::ReadBody { off } => {
                    if off > 0 {
                        // Collect the previous load's bytes.
                        let take = (self.cur_len - (off - 8)).min(8) as usize;
                        self.buf
                            .extend_from_slice(&env.last_load.to_le_bytes()[..take]);
                    }
                    if off < self.cur_len {
                        let slot = self.lib.basic_rx.slot_off(self.consumer);
                        self.state = RecvState::ReadBody { off: off + 8 };
                        return Step::Load {
                            addr: self.lib.asram(slot + 8 + off),
                            bytes: 8,
                        };
                    }
                    let data = Bytes::from(std::mem::take(&mut self.buf));
                    if let Some(xid) = proto::decode_notify(&data) {
                        env.emit(AppEventKind::NotifyReceived { xfer_id: xid });
                    }
                    env.emit(AppEventKind::Received {
                        q: self.lib.basic_rx.q,
                        src: self.cur_src,
                        data,
                    });
                    self.got += 1;
                    self.state = RecvState::PtrUpdate;
                }
                RecvState::PtrUpdate => {
                    self.consumer = self.consumer.wrapping_add(1);
                    let q = self.lib.basic_rx.q;
                    self.state = RecvState::Poll;
                    return Step::Store {
                        addr: self.lib.map.ptr_update_addr(true, q, self.consumer),
                        data: StoreData::U64(0),
                    };
                }
            }
        }
    }

    fn snapshot(&self) -> Option<ProgramSnapshot> {
        Some(ProgramSnapshot(Repr::RecvBasic {
            expect: self.expect,
            got: self.got,
            state: self.state,
            consumer: self.consumer,
            producer_seen: self.producer_seen,
            cur_src: self.cur_src,
            cur_len: self.cur_len,
            buf: self.buf.clone(),
        }))
    }
}

/// Send Express messages: one uncached store each.
pub struct SendExpress {
    lib: NodeLib,
    items: std::collections::VecDeque<(u16, u8, u32)>,
}

impl SendExpress {
    /// Send `(virtual dest, tag, word)` triples.
    pub fn new(lib: &NodeLib, items: Vec<(u16, u8, u32)>) -> Self {
        SendExpress {
            lib: *lib,
            items: items.into(),
        }
    }
}

impl Program for SendExpress {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        let Some((dest, tag, word)) = self.items.pop_front() else {
            return Step::Done;
        };
        env.emit(AppEventKind::Sent {
            q: self.lib.express_tx_q,
            dest,
            bytes: 5,
        });
        Step::Store {
            addr: self
                .lib
                .map
                .express_tx_addr(self.lib.express_tx_q, dest, tag),
            data: StoreData::Bytes(word.to_le_bytes().to_vec()),
        }
    }

    fn snapshot(&self) -> Option<ProgramSnapshot> {
        Some(ProgramSnapshot(Repr::SendExpress {
            items: self.items.clone(),
        }))
    }
}

/// Receive `expect` Express messages: one uncached load each (polling
/// with the canonical-empty convention).
pub struct RecvExpress {
    lib: NodeLib,
    expect: usize,
    got: usize,
    primed: bool,
}

impl RecvExpress {
    /// Expect `expect` Express messages.
    pub fn expecting(lib: &NodeLib, expect: usize) -> Self {
        RecvExpress {
            lib: *lib,
            expect,
            got: 0,
            primed: false,
        }
    }
}

impl Program for RecvExpress {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        if self.primed {
            self.primed = false;
            match express::unpack_rx(env.last_load) {
                Some((src, tag, word)) => {
                    env.emit(AppEventKind::ExpressReceived { src, tag, word });
                    self.got += 1;
                }
                None => {
                    return Step::Compute(POLL_GAP_NS);
                }
            }
        }
        if self.got >= self.expect {
            return Step::Done;
        }
        self.primed = true;
        Step::Load {
            addr: self.lib.map.express_rx_addr(self.lib.express_rx_q),
            bytes: 8,
        }
    }

    fn snapshot(&self) -> Option<ProgramSnapshot> {
        // A primed receiver is waiting on an in-flight load; the restored
        // machine replays that load because the pending CPU operation is
        // checkpointed alongside the program.
        Some(ProgramSnapshot(Repr::RecvExpress {
            expect: self.expect,
            got: self.got,
            primed: self.primed,
        }))
    }
}

/// Issue a block-transfer request to the local sP (the DMA mechanism):
/// a single Basic message into the local service queue.
pub fn request_transfer(lib: &NodeLib, req: &XferReq) -> SendBasic {
    let dest = lib.svc_dest(lib.node);
    SendBasic::new(lib, vec![BasicMsg::new(dest, req.encode().to_vec())])
}

/// Issue a tracked-region flush request (the diff-ing extension): ship
/// only the clsSRAM-recorded dirty lines of a write-tracked region.
pub fn request_flush(lib: &NodeLib, req: &sv_firmware::proto::XferFlush) -> SendBasic {
    let dest = lib.svc_dest(lib.node);
    SendBasic::new(lib, vec![BasicMsg::new(dest, req.encode().to_vec())])
}

/// One NIC-resident collective operation (see [`sv_firmware::coll`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollReq {
    /// Which collective.
    pub kind: proto::CollKind,
    /// Reduction operator (ignored by barrier/broadcast).
    pub op: proto::CollOp,
    /// Root node (must be 0 for barrier/all-reduce, whose result is
    /// symmetric).
    pub root: u16,
    /// This node's contribution (the payload for a broadcast root).
    pub value: u64,
}

impl CollReq {
    /// All nodes rendezvous; every node's result is 0.
    pub fn barrier() -> Self {
        CollReq {
            kind: proto::CollKind::Barrier,
            op: proto::CollOp::Sum,
            root: 0,
            value: 0,
        }
    }

    /// `root`'s `value` delivered to every node.
    pub fn broadcast(root: u16, value: u64) -> Self {
        CollReq {
            kind: proto::CollKind::Bcast,
            op: proto::CollOp::Sum,
            root,
            value,
        }
    }

    /// Reduction of every node's contribution, delivered to `root` only
    /// (other nodes complete with result 0).
    pub fn reduce(op: proto::CollOp, root: u16, value: u64) -> Self {
        CollReq {
            kind: proto::CollKind::Reduce,
            op,
            root,
            value,
        }
    }

    /// Reduction of every node's contribution, delivered to every node.
    pub fn allreduce(op: proto::CollOp, value: u64) -> Self {
        CollReq {
            kind: proto::CollKind::AllReduce,
            op,
            root: 0,
            value,
        }
    }

    /// The result label [`CollWait`] emits for this collective.
    pub fn label(&self) -> &'static str {
        coll_label(self.kind as u8)
    }
}

fn coll_label(kind: u8) -> &'static str {
    match kind {
        0 => "coll_barrier",
        1 => "coll_broadcast",
        2 => "coll_reduce",
        _ => "coll_allreduce",
    }
}

/// Wait for a firmware COLL_RESULT on the user Basic receive queue and
/// emit it as [`AppEventKind::Result`]. The aP side of a NIC-resident
/// collective is exactly this: the start was one store-composed Basic
/// message ([`NodeLib::coll_program`]), and completion is this polling
/// loop — the aP touches no intermediate data.
pub struct CollWait {
    lib: NodeLib,
    /// Expected [`proto::CollKind`] as its wire byte.
    kind: u8,
    state: RecvState,
    consumer: u16,
    producer_seen: u16,
    cur_len: u32,
    buf: Vec<u8>,
    done: bool,
    /// Consecutive empty shadow polls; drives the poll backoff.
    idle_polls: u32,
}

/// Widest [`CollWait`] poll gap: the collective runs sP-to-sP for
/// microseconds, so the waiting aP backs off its uncached shadow polls
/// exponentially (30 → 240 ns) instead of hammering the bus — the point
/// of the offload is that the aP has better things to do. Bounded so
/// completion is still noticed promptly.
const COLL_POLL_GAP_MAX_NS: u64 = 240;

impl CollWait {
    /// Wait for a `kind` result, consuming the receive queue from
    /// `consumer` (the queue cursor persists across program objects;
    /// each collective consumes exactly one slot).
    pub fn resuming(lib: &NodeLib, kind: proto::CollKind, consumer: u16) -> Self {
        CollWait {
            lib: *lib,
            kind: kind as u8,
            state: RecvState::Poll,
            consumer,
            producer_seen: consumer,
            cur_len: 0,
            buf: Vec::new(),
            done: false,
            idle_polls: 0,
        }
    }
}

impl Program for CollWait {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            match self.state {
                RecvState::Poll => {
                    if self.done {
                        return Step::Done;
                    }
                    if self.consumer != self.producer_seen {
                        self.state = RecvState::ReadHeader;
                        continue;
                    }
                    self.state = RecvState::CheckPoll;
                    return Step::Load {
                        addr: self.lib.asram(self.lib.basic_rx.shadow_off),
                        bytes: 8,
                    };
                }
                RecvState::CheckPoll => {
                    self.producer_seen = env.last_load as u16;
                    if self.consumer == self.producer_seen {
                        self.state = RecvState::Poll;
                        let gap = (POLL_GAP_NS << self.idle_polls.min(3)).min(COLL_POLL_GAP_MAX_NS);
                        self.idle_polls = self.idle_polls.saturating_add(1);
                        return Step::Compute(gap);
                    }
                    self.idle_polls = 0;
                    self.state = RecvState::ReadHeader;
                }
                RecvState::ReadHeader => {
                    let slot = self.lib.basic_rx.slot_off(self.consumer);
                    self.state = RecvState::CheckHeader;
                    return Step::Load {
                        addr: self.lib.asram(slot),
                        bytes: 8,
                    };
                }
                RecvState::CheckHeader => {
                    let hdr = env.last_load.to_le_bytes();
                    let (_src, _lq, len) = decode_rx_slot(&hdr);
                    self.cur_len = len as u32;
                    self.buf.clear();
                    self.state = RecvState::ReadBody { off: 0 };
                }
                RecvState::ReadBody { off } => {
                    if off > 0 {
                        let take = (self.cur_len - (off - 8)).min(8) as usize;
                        self.buf
                            .extend_from_slice(&env.last_load.to_le_bytes()[..take]);
                    }
                    if off < self.cur_len {
                        let slot = self.lib.basic_rx.slot_off(self.consumer);
                        self.state = RecvState::ReadBody { off: off + 8 };
                        return Step::Load {
                            addr: self.lib.asram(slot + 8 + off),
                            bytes: 8,
                        };
                    }
                    // A result of the expected kind finishes the wait;
                    // anything else in the queue is consumed and skipped
                    // (the queue is dedicated to collective results for
                    // the duration of a collective program).
                    if let Some((kind, _seq, value)) = proto::decode_coll_result(&self.buf) {
                        if kind as u8 == self.kind {
                            env.emit(AppEventKind::Result {
                                label: coll_label(self.kind),
                                value,
                            });
                            self.done = true;
                        }
                    }
                    self.buf.clear();
                    self.state = RecvState::PtrUpdate;
                }
                RecvState::PtrUpdate => {
                    self.consumer = self.consumer.wrapping_add(1);
                    let q = self.lib.basic_rx.q;
                    self.state = RecvState::Poll;
                    return Step::Store {
                        addr: self.lib.map.ptr_update_addr(true, q, self.consumer),
                        data: StoreData::U64(0),
                    };
                }
            }
        }
    }

    fn snapshot(&self) -> Option<ProgramSnapshot> {
        Some(ProgramSnapshot(Repr::CollWait {
            kind: self.kind,
            state: self.state,
            consumer: self.consumer,
            producer_seen: self.producer_seen,
            cur_len: self.cur_len,
            buf: self.buf.clone(),
            done: self.done,
            idle_polls: self.idle_polls,
        }))
    }
}

impl NodeLib {
    /// Run `reqs` as NIC-resident collectives, in order. Each collective
    /// is one Basic message into the local sP service queue
    /// (COLL_START) followed by a [`CollWait`] for its COLL_RESULT; the
    /// firmware sequences the whole fan-in/fan-out tree. Every
    /// participating node must issue the same collectives in the same
    /// order (the usual communicator contract), and the user Basic
    /// queues are dedicated to the collective program while it runs
    /// (each collective advances both queue cursors by exactly one).
    pub fn coll_program(&self, reqs: Vec<CollReq>) -> crate::app::Seq {
        let mut parts: Vec<Box<dyn Program>> = Vec::with_capacity(reqs.len() * 2);
        for (i, req) in reqs.iter().enumerate() {
            let start = proto::CollStart {
                kind: req.kind,
                op: req.op,
                root: req.root,
                notify_lq: self.basic_rx.q as u16,
                value: req.value,
            };
            parts.push(Box::new(SendBasic::resuming(
                self,
                vec![BasicMsg::new(
                    self.svc_dest(self.node),
                    start.encode().to_vec(),
                )],
                i as u16,
            )));
            parts.push(Box::new(CollWait::resuming(self, req.kind, i as u16)));
        }
        crate::app::Seq::new(parts)
    }

    /// One firmware barrier (see [`CollReq::barrier`]).
    pub fn coll_barrier(&self) -> crate::app::Seq {
        self.coll_program(vec![CollReq::barrier()])
    }

    /// One firmware broadcast (see [`CollReq::broadcast`]).
    pub fn coll_broadcast(&self, root: u16, value: u64) -> crate::app::Seq {
        self.coll_program(vec![CollReq::broadcast(root, value)])
    }

    /// One firmware reduce (see [`CollReq::reduce`]).
    pub fn coll_reduce(&self, op: proto::CollOp, root: u16, value: u64) -> crate::app::Seq {
        self.coll_program(vec![CollReq::reduce(op, root, value)])
    }

    /// One firmware all-reduce (see [`CollReq::allreduce`]).
    pub fn coll_allreduce(&self, op: proto::CollOp, value: u64) -> crate::app::Seq {
        self.coll_program(vec![CollReq::allreduce(op, value)])
    }
}

/// Read a memory region through the caches (one load per cache line),
/// emitting [`AppEventKind::RegionDone`] when finished. Under S-COMA
/// gating this stalls on lines that have not arrived — the measured
/// "time to use" of optimistic transfers.
pub struct ReadRegion {
    addr: u64,
    len: u32,
    off: u32,
}

impl ReadRegion {
    /// Read `[addr, addr+len)`.
    pub fn new(addr: u64, len: u32) -> Self {
        ReadRegion { addr, len, off: 0 }
    }
}

impl Program for ReadRegion {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        if self.off < self.len {
            let a = self.addr + self.off as u64;
            self.off += 32;
            return Step::Load { addr: a, bytes: 8 };
        }
        env.emit(AppEventKind::RegionDone {
            addr: self.addr,
            len: self.len,
        });
        Step::Done
    }

    fn snapshot(&self) -> Option<ProgramSnapshot> {
        Some(ProgramSnapshot(Repr::ReadRegion {
            addr: self.addr,
            len: self.len,
            off: self.off,
        }))
    }
}

/// Write a pattern to a memory region through the caches (8 bytes per
/// store), emitting [`AppEventKind::RegionDone`] when finished.
pub struct WriteRegion {
    addr: u64,
    data: Vec<u8>,
    off: usize,
}

impl WriteRegion {
    /// Write `data` at `addr` (length must be a multiple of 8).
    pub fn new(addr: u64, data: Vec<u8>) -> Self {
        assert_eq!(data.len() % 8, 0);
        WriteRegion { addr, data, off: 0 }
    }
}

impl Program for WriteRegion {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        if self.off < self.data.len() {
            let chunk = self.data[self.off..self.off + 8].to_vec();
            let a = self.addr + self.off as u64;
            self.off += 8;
            return Step::Store {
                addr: a,
                data: StoreData::Bytes(chunk),
            };
        }
        env.emit(AppEventKind::RegionDone {
            addr: self.addr,
            len: self.data.len() as u32,
        });
        Step::Done
    }

    fn snapshot(&self) -> Option<ProgramSnapshot> {
        Some(ProgramSnapshot(Repr::WriteRegion {
            addr: self.addr,
            data: self.data.clone(),
            off: self.off,
        }))
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

/// A checkpointed program: the execution state of one layer-0 library
/// program (or a composition of them), detached from its [`NodeLib`].
///
/// Produced by [`Program::snapshot`] and re-attached to a restored
/// machine's library handle during [`crate::MachineBuilder::restore`].
/// The contents are opaque; the only operations are serialization (via
/// the machine checkpoint) and re-instantiation.
#[derive(Debug, Clone)]
pub struct ProgramSnapshot(Repr);

#[derive(Debug, Clone)]
enum Repr {
    SendBasic {
        items: std::collections::VecDeque<BasicMsg>,
        state: SendState,
        producer: u16,
        consumer_seen: u16,
    },
    RecvBasic {
        expect: usize,
        got: usize,
        state: RecvState,
        consumer: u16,
        producer_seen: u16,
        cur_src: u16,
        cur_len: u32,
        buf: Vec<u8>,
    },
    SendExpress {
        items: std::collections::VecDeque<(u16, u8, u32)>,
    },
    RecvExpress {
        expect: usize,
        got: usize,
        primed: bool,
    },
    ReadRegion {
        addr: u64,
        len: u32,
        off: u32,
    },
    WriteRegion {
        addr: u64,
        data: Vec<u8>,
        off: usize,
    },
    Seq(Vec<ProgramSnapshot>),
    Delay(u64),
    CollWait {
        kind: u8,
        state: RecvState,
        consumer: u16,
        producer_seen: u16,
        cur_len: u32,
        buf: Vec<u8>,
        done: bool,
        idle_polls: u32,
    },
    TenantScheduler(crate::tenancy::SchedSnap),
}

/// Nested [`crate::app::Seq`] snapshots deeper than this are rejected as
/// corrupt: decoding recurses, and a forged snapshot must not be able to
/// drive the decoder's stack arbitrarily deep.
const MAX_SEQ_DEPTH: u32 = 64;

impl ProgramSnapshot {
    pub(crate) fn seq(parts: Vec<ProgramSnapshot>) -> Self {
        ProgramSnapshot(Repr::Seq(parts))
    }

    pub(crate) fn delay(ns: u64) -> Self {
        ProgramSnapshot(Repr::Delay(ns))
    }

    pub(crate) fn tenant_scheduler(snap: crate::tenancy::SchedSnap) -> Self {
        ProgramSnapshot(Repr::TenantScheduler(snap))
    }

    /// Depth-tracked decoding entry point for snapshot kinds that embed
    /// child program snapshots (tenant job bodies); shares the
    /// [`MAX_SEQ_DEPTH`] recursion guard with nested `Seq`.
    pub(crate) fn load_at_depth(r: &mut SnapReader<'_>, depth: u32) -> Result<Self, SnapshotError> {
        if depth >= MAX_SEQ_DEPTH {
            let at = r.offset();
            return Err(SnapshotError::Corrupt { offset: at });
        }
        ProgramSnapshot::load_at(r, depth)
    }

    /// Rebuild a runnable program against `lib` (the restored machine's
    /// library handle for the same node).
    pub(crate) fn instantiate(&self, lib: &NodeLib) -> Box<dyn Program> {
        match &self.0 {
            Repr::SendBasic {
                items,
                state,
                producer,
                consumer_seen,
            } => Box::new(SendBasic {
                lib: *lib,
                items: items.clone(),
                state: *state,
                producer: *producer,
                consumer_seen: *consumer_seen,
            }),
            Repr::RecvBasic {
                expect,
                got,
                state,
                consumer,
                producer_seen,
                cur_src,
                cur_len,
                buf,
            } => Box::new(RecvBasic {
                lib: *lib,
                expect: *expect,
                got: *got,
                state: *state,
                consumer: *consumer,
                producer_seen: *producer_seen,
                cur_src: *cur_src,
                cur_len: *cur_len,
                buf: buf.clone(),
            }),
            Repr::SendExpress { items } => Box::new(SendExpress {
                lib: *lib,
                items: items.clone(),
            }),
            Repr::RecvExpress {
                expect,
                got,
                primed,
            } => Box::new(RecvExpress {
                lib: *lib,
                expect: *expect,
                got: *got,
                primed: *primed,
            }),
            Repr::ReadRegion { addr, len, off } => Box::new(ReadRegion {
                addr: *addr,
                len: *len,
                off: *off,
            }),
            Repr::WriteRegion { addr, data, off } => Box::new(WriteRegion {
                addr: *addr,
                data: data.clone(),
                off: *off,
            }),
            Repr::Seq(parts) => Box::new(crate::app::Seq::new(
                parts.iter().map(|p| p.instantiate(lib)).collect(),
            )),
            Repr::Delay(ns) => Box::new(crate::app::Delay(*ns)),
            Repr::CollWait {
                kind,
                state,
                consumer,
                producer_seen,
                cur_len,
                buf,
                done,
                idle_polls,
            } => Box::new(CollWait {
                lib: *lib,
                kind: *kind,
                state: *state,
                consumer: *consumer,
                producer_seen: *producer_seen,
                cur_len: *cur_len,
                buf: buf.clone(),
                done: *done,
                idle_polls: *idle_polls,
            }),
            Repr::TenantScheduler(snap) => Box::new(snap.instantiate(lib)),
        }
    }

    fn load_at(r: &mut SnapReader<'_>, depth: u32) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let repr = match r.u8()? {
            0 => {
                let items: std::collections::VecDeque<BasicMsg> = r.load()?;
                let state = SendState::load(r)?;
                // The send loop indexes the front message (and its TagOn
                // attachment) in every mid-message state; a forged
                // snapshot must not reach those `expect`s.
                let front_ok = match state {
                    SendState::Next | SendState::PollSpace => true,
                    SendState::WriteTagon { .. } => {
                        items.front().is_some_and(|m| m.tagon.is_some())
                    }
                    SendState::WriteHeader
                    | SendState::WritePayload { .. }
                    | SendState::PtrUpdate => items.front().is_some(),
                };
                if !front_ok {
                    return Err(SnapshotError::Corrupt { offset: at });
                }
                Repr::SendBasic {
                    items,
                    state,
                    producer: r.u16()?,
                    consumer_seen: r.u16()?,
                }
            }
            1 => {
                let expect = r.usize_()?;
                let got = r.usize_()?;
                let state = RecvState::load(r)?;
                let consumer = r.u16()?;
                let producer_seen = r.u16()?;
                let cur_src = r.u16()?;
                let cur_len = r.u32()?;
                let buf: Vec<u8> = r.load()?;
                // `ReadBody` computes `cur_len - (off - 8)`.
                if let RecvState::ReadBody { off } = state {
                    if off > 0 && (off < 8 || off - 8 > cur_len) {
                        return Err(SnapshotError::Corrupt { offset: at });
                    }
                }
                Repr::RecvBasic {
                    expect,
                    got,
                    state,
                    consumer,
                    producer_seen,
                    cur_src,
                    cur_len,
                    buf,
                }
            }
            2 => Repr::SendExpress { items: r.load()? },
            3 => Repr::RecvExpress {
                expect: r.usize_()?,
                got: r.usize_()?,
                primed: bool::load(r)?,
            },
            4 => {
                let (addr, len, off) = (r.u64()?, r.u32()?, r.u32()?);
                // The region walk computes `addr + off`.
                if addr.checked_add(len as u64).is_none() {
                    return Err(SnapshotError::Corrupt { offset: at });
                }
                Repr::ReadRegion { addr, len, off }
            }
            5 => {
                let addr = r.u64()?;
                let data: Vec<u8> = r.load()?;
                let off = r.usize_()?;
                // The write loop slices `data[off..off + 8]`.
                if !data.len().is_multiple_of(8) || !off.is_multiple_of(8) || off > data.len() {
                    return Err(SnapshotError::Corrupt { offset: at });
                }
                if addr.checked_add(data.len() as u64).is_none() {
                    return Err(SnapshotError::Corrupt { offset: at });
                }
                Repr::WriteRegion { addr, data, off }
            }
            6 => {
                if depth >= MAX_SEQ_DEPTH {
                    return Err(SnapshotError::Corrupt { offset: at });
                }
                let n = r.count()?;
                let mut parts = Vec::with_capacity(n);
                for _ in 0..n {
                    parts.push(ProgramSnapshot::load_at(r, depth + 1)?);
                }
                Repr::Seq(parts)
            }
            7 => Repr::Delay(r.u64()?),
            8 => {
                let kind = r.u8()?;
                let state = RecvState::load(r)?;
                let consumer = r.u16()?;
                let producer_seen = r.u16()?;
                let cur_len = r.u32()?;
                let buf: Vec<u8> = r.load()?;
                let done = bool::load(r)?;
                let idle_polls = r.u32()?;
                // The kind byte indexes the result-label table, and
                // `ReadBody` computes `cur_len - (off - 8)` exactly as
                // in RecvBasic.
                if kind > 3 {
                    return Err(SnapshotError::Corrupt { offset: at });
                }
                if let RecvState::ReadBody { off } = state {
                    if off > 0 && (off < 8 || off - 8 > cur_len) {
                        return Err(SnapshotError::Corrupt { offset: at });
                    }
                }
                Repr::CollWait {
                    kind,
                    state,
                    consumer,
                    producer_seen,
                    cur_len,
                    buf,
                    done,
                    idle_polls,
                }
            }
            9 => Repr::TenantScheduler(crate::tenancy::SchedSnap::load_at(r, depth)?),
            _ => return r.corrupt(),
        };
        Ok(ProgramSnapshot(repr))
    }
}

impl StateSave for ProgramSnapshot {
    fn save(&self, w: &mut SnapWriter) {
        match &self.0 {
            Repr::SendBasic {
                items,
                state,
                producer,
                consumer_seen,
            } => {
                w.u8(0);
                w.save(items);
                state.save(w);
                w.u16(*producer);
                w.u16(*consumer_seen);
            }
            Repr::RecvBasic {
                expect,
                got,
                state,
                consumer,
                producer_seen,
                cur_src,
                cur_len,
                buf,
            } => {
                w.u8(1);
                w.usize_(*expect);
                w.usize_(*got);
                state.save(w);
                w.u16(*consumer);
                w.u16(*producer_seen);
                w.u16(*cur_src);
                w.u32(*cur_len);
                w.save(buf);
            }
            Repr::SendExpress { items } => {
                w.u8(2);
                w.save(items);
            }
            Repr::RecvExpress {
                expect,
                got,
                primed,
            } => {
                w.u8(3);
                w.usize_(*expect);
                w.usize_(*got);
                primed.save(w);
            }
            Repr::ReadRegion { addr, len, off } => {
                w.u8(4);
                w.u64(*addr);
                w.u32(*len);
                w.u32(*off);
            }
            Repr::WriteRegion { addr, data, off } => {
                w.u8(5);
                w.u64(*addr);
                w.save(data);
                w.usize_(*off);
            }
            Repr::Seq(parts) => {
                w.u8(6);
                w.save(parts);
            }
            Repr::Delay(ns) => {
                w.u8(7);
                w.u64(*ns);
            }
            Repr::CollWait {
                kind,
                state,
                consumer,
                producer_seen,
                cur_len,
                buf,
                done,
                idle_polls,
            } => {
                w.u8(8);
                w.u8(*kind);
                state.save(w);
                w.u16(*consumer);
                w.u16(*producer_seen);
                w.u32(*cur_len);
                w.save(buf);
                done.save(w);
                w.u32(*idle_polls);
            }
            Repr::TenantScheduler(snap) => {
                w.u8(9);
                snap.save(w);
            }
        }
    }
}
impl StateLoad for ProgramSnapshot {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        ProgramSnapshot::load_at(r, 0)
    }
}

impl StateSave for BasicMsg {
    fn save(&self, w: &mut SnapWriter) {
        w.u16(self.dest);
        w.save(&self.payload);
        w.save(&self.tagon);
    }
}
impl StateLoad for BasicMsg {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let dest = r.u16()?;
        let payload: Vec<u8> = r.load()?;
        let tagon: Option<Vec<u8>> = r.load()?;
        // Re-check the `try_new`/`try_with_tagon` invariants: a forged
        // message must not smuggle sizes past the wire-format limits.
        let mut m =
            BasicMsg::try_new(dest, payload).map_err(|_| SnapshotError::Corrupt { offset: at })?;
        if let Some(t) = tagon {
            m = m
                .try_with_tagon(t)
                .map_err(|_| SnapshotError::Corrupt { offset: at })?;
        }
        Ok(m)
    }
}

impl StateSave for SendState {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            SendState::Next => w.u8(0),
            SendState::PollSpace => w.u8(1),
            SendState::WriteTagon { off } => {
                w.u8(2);
                w.u32(off);
            }
            SendState::WriteHeader => w.u8(3),
            SendState::WritePayload { off } => {
                w.u8(4);
                w.u32(off);
            }
            SendState::PtrUpdate => w.u8(5),
        }
    }
}
impl StateLoad for SendState {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => SendState::Next,
            1 => SendState::PollSpace,
            2 => SendState::WriteTagon { off: r.u32()? },
            3 => SendState::WriteHeader,
            4 => SendState::WritePayload { off: r.u32()? },
            5 => SendState::PtrUpdate,
            _ => return r.corrupt(),
        })
    }
}

impl StateSave for RecvState {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            RecvState::Poll => w.u8(0),
            RecvState::CheckPoll => w.u8(1),
            RecvState::ReadHeader => w.u8(2),
            RecvState::CheckHeader => w.u8(3),
            RecvState::ReadBody { off } => {
                w.u8(4);
                w.u32(off);
            }
            RecvState::PtrUpdate => w.u8(5),
        }
    }
}
impl StateLoad for RecvState {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => RecvState::Poll,
            1 => RecvState::CheckPoll,
            2 => RecvState::ReadHeader,
            3 => RecvState::CheckHeader,
            4 => RecvState::ReadBody { off: r.u32()? },
            5 => RecvState::PtrUpdate,
            _ => return r.corrupt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn resuming_below_queue_depth_needs_no_initial_poll() {
        // Regression: `wrapping_sub` made `producer - consumer_seen`
        // equal the queue depth for every producer in 1..entries, so a
        // phased send always began with a pointless shadow poll. A queue
        // that has carried fewer than `entries` messages can never be
        // full (the consumer cannot run backwards from 0).
        let m = Machine::builder(2).build();
        let lib = m.lib(0);
        let entries = lib.basic_tx.entries;
        for producer in [1, 2, entries / 2, entries - 1] {
            let s = SendBasic::resuming(&lib, vec![], producer);
            assert!(
                s.producer.wrapping_sub(s.consumer_seen) < entries,
                "producer {producer} must not force a poll"
            );
        }
        // At or past one full wrap the consumer really is unknown: the
        // conservative poll must stay.
        for producer in [entries, entries + 1, entries * 3] {
            let s = SendBasic::resuming(&lib, vec![], producer);
            assert!(
                s.producer.wrapping_sub(s.consumer_seen) >= entries,
                "producer {producer} must poll the shadow first"
            );
        }
    }

    #[test]
    fn api_error_display_is_stable() {
        assert_eq!(
            ApiError::PayloadTooLarge { len: 90, max: 88 }.to_string(),
            "Basic payload is at most 88 bytes (got 90)"
        );
        assert_eq!(
            ApiError::DestinationOutOfRange { dest: 9, nodes: 4 }.to_string(),
            "destination node 9 out of range (machine has 4)"
        );
    }
}
