//! Layer-0 library: user-level programs over the NIU's memory-mapped
//! interface.
//!
//! Each type here is a [`Program`] that drives the communication
//! mechanisms exactly the way user code on the real machine would —
//! composing messages with stores into the mapped aSRAM window, updating
//! queue pointers with address-encoded stores, polling shadow pointers,
//! launching Express messages with single stores. Nothing in this module
//! touches simulator internals; everything goes through loads and stores.

use crate::app::{AppEventKind, Env, Program, Step, StoreData};
use crate::machine::{NodeLib, USER_SCRATCH};
use bytes::Bytes;
use sv_firmware::proto::{self, XferReq};
use sv_niu::msg::{express, MsgHeader, TAGON_LARGE, TAGON_SMALL};
use sv_niu::niu::decode_rx_slot;

/// Gap between polls of an empty queue, ns (amortizes bus traffic the
/// way a real polling loop's loop overhead does).
const POLL_GAP_NS: u64 = 30;

/// What a layer-0 library call can reject. The panicking constructors
/// ([`BasicMsg::new`], [`SendBasic::to_node`], …) delegate to `try_`
/// variants returning this, so applications that build messages from
/// untrusted sizes can handle the failure instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApiError {
    /// Basic payloads are at most 88 bytes on the wire.
    PayloadTooLarge {
        /// Offending payload length.
        len: usize,
        /// The format's limit.
        max: usize,
    },
    /// TagOn attachments are exactly 1.5 or 2.5 cache lines.
    BadTagOnSize {
        /// Offending attachment length.
        len: usize,
    },
    /// Payload plus TagOn attachment exceed one Basic message.
    MessageTooLarge {
        /// Payload length.
        payload: usize,
        /// Attachment length.
        tagon: usize,
        /// Combined limit.
        max: usize,
    },
    /// The destination node does not exist in this machine.
    DestinationOutOfRange {
        /// Requested node.
        dest: u16,
        /// Number of nodes in the machine.
        nodes: u16,
    },
}

impl core::fmt::Display for ApiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            ApiError::PayloadTooLarge { len, max } => {
                write!(f, "Basic payload is at most {max} bytes (got {len})")
            }
            ApiError::BadTagOnSize { len } => write!(
                f,
                "TagOn attachments are 1.5 or 2.5 cache lines (48 or 80 bytes), got {len}"
            ),
            ApiError::MessageTooLarge {
                payload,
                tagon,
                max,
            } => write!(
                f,
                "payload ({payload}B) + TagOn ({tagon}B) exceed the {max}B Basic message"
            ),
            ApiError::DestinationOutOfRange { dest, nodes } => {
                write!(
                    f,
                    "destination node {dest} out of range (machine has {nodes})"
                )
            }
        }
    }
}

impl std::error::Error for ApiError {}

/// One message for [`SendBasic`].
#[derive(Debug, Clone)]
pub struct BasicMsg {
    /// Destination (virtual unless RAW).
    pub dest: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Optional TagOn attachment (must be 48 or 80 bytes; written to the
    /// user scratch region first, then picked up by CTRL).
    pub tagon: Option<Vec<u8>>,
}

/// Hard wire-format limit of one Basic message (header excluded).
const BASIC_MAX: usize = 88;

impl BasicMsg {
    /// A plain message. Panics on an over-long payload; see
    /// [`BasicMsg::try_new`] for the checked form.
    pub fn new(dest: u16, payload: Vec<u8>) -> Self {
        Self::try_new(dest, payload).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A plain message, rejecting payloads over 88 bytes.
    pub fn try_new(dest: u16, payload: Vec<u8>) -> Result<Self, ApiError> {
        if payload.len() > BASIC_MAX {
            return Err(ApiError::PayloadTooLarge {
                len: payload.len(),
                max: BASIC_MAX,
            });
        }
        Ok(BasicMsg {
            dest,
            payload,
            tagon: None,
        })
    }

    /// Attach TagOn data (48 or 80 bytes). Panics on a bad size; see
    /// [`BasicMsg::try_with_tagon`] for the checked form.
    pub fn with_tagon(self, tagon: Vec<u8>) -> Self {
        self.try_with_tagon(tagon).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Attach TagOn data, rejecting sizes other than 48/80 bytes and
    /// combinations that overflow the message.
    pub fn try_with_tagon(mut self, tagon: Vec<u8>) -> Result<Self, ApiError> {
        if tagon.len() != TAGON_SMALL as usize && tagon.len() != TAGON_LARGE as usize {
            return Err(ApiError::BadTagOnSize { len: tagon.len() });
        }
        if self.payload.len() + tagon.len() > BASIC_MAX {
            return Err(ApiError::MessageTooLarge {
                payload: self.payload.len(),
                tagon: tagon.len(),
                max: BASIC_MAX,
            });
        }
        self.tagon = Some(tagon);
        Ok(self)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SendState {
    Next,
    PollSpace,
    WriteTagon { off: u32 },
    WriteHeader,
    WritePayload { off: u32 },
    PtrUpdate,
}

/// Send a sequence of Basic messages on the user transmit queue.
pub struct SendBasic {
    lib: NodeLib,
    items: std::collections::VecDeque<BasicMsg>,
    state: SendState,
    producer: u16,
    consumer_seen: u16,
}

impl SendBasic {
    /// Send `items` in order.
    pub fn new(lib: &NodeLib, items: Vec<BasicMsg>) -> Self {
        Self::resuming(lib, items, 0)
    }

    /// Like [`SendBasic::new`], but resuming from an existing producer
    /// position — required when a long-lived application sends in phases,
    /// because the hardware queue's pointers persist across program
    /// objects.
    pub fn resuming(lib: &NodeLib, items: Vec<BasicMsg>, producer: u16) -> Self {
        // A queue that may have wrapped polls the consumer shadow before
        // its first compose (conservative: we do not know how much the
        // NIU has drained). A queue that has seen fewer than `entries`
        // messages in its lifetime can never be full — the consumer is
        // at least 0 — so no initial poll is needed. `saturating_sub`
        // encodes exactly that; the previous `wrapping_sub` made
        // `producer - consumer_seen` equal `entries` for every resumed
        // producer in `1..entries`, forcing a useless shadow poll (and
        // its bus traffic) on every phased send.
        let consumer_seen = producer.saturating_sub(lib.basic_tx.entries);
        SendBasic {
            lib: *lib,
            items: items.into(),
            state: SendState::Next,
            producer,
            consumer_seen,
        }
    }

    /// Convenience: one plain message to node `dest`'s user queue.
    /// Panics on a bad destination or payload; see
    /// [`SendBasic::try_to_node`] for the checked form.
    pub fn to_node(lib: &NodeLib, dest: u16, payload: Vec<u8>) -> Self {
        Self::try_to_node(lib, dest, payload).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`SendBasic::to_node`]: rejects destinations
    /// outside the machine and over-long payloads.
    pub fn try_to_node(lib: &NodeLib, dest: u16, payload: Vec<u8>) -> Result<Self, ApiError> {
        if dest >= lib.nodes {
            return Err(ApiError::DestinationOutOfRange {
                dest,
                nodes: lib.nodes,
            });
        }
        let d = lib.user_dest(dest);
        Ok(Self::new(lib, vec![BasicMsg::try_new(d, payload)?]))
    }

    fn cur(&self) -> &BasicMsg {
        self.items.front().expect("current message")
    }
}

impl Program for SendBasic {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            match self.state {
                SendState::Next => {
                    if self.items.is_empty() {
                        return Step::Done;
                    }
                    if self.producer.wrapping_sub(self.consumer_seen) >= self.lib.basic_tx.entries {
                        self.state = SendState::PollSpace;
                        return Step::Load {
                            addr: self.lib.asram(self.lib.basic_tx.shadow_off),
                            bytes: 8,
                        };
                    }
                    self.state = if self.cur().tagon.is_some() {
                        SendState::WriteTagon { off: 0 }
                    } else {
                        SendState::WriteHeader
                    };
                }
                SendState::PollSpace => {
                    self.consumer_seen = env.last_load as u16;
                    if self.producer.wrapping_sub(self.consumer_seen) >= self.lib.basic_tx.entries {
                        // Still full: poll again after a beat.
                        self.state = SendState::Next;
                        return Step::Compute(POLL_GAP_NS);
                    }
                    self.state = if self.cur().tagon.is_some() {
                        SendState::WriteTagon { off: 0 }
                    } else {
                        SendState::WriteHeader
                    };
                }
                SendState::WriteTagon { off } => {
                    let tagon = self.cur().tagon.as_ref().expect("tagon state");
                    if (off as usize) < tagon.len() {
                        let end = (off as usize + 8).min(tagon.len());
                        let chunk = tagon[off as usize..end].to_vec();
                        self.state = SendState::WriteTagon { off: off + 8 };
                        return Step::Store {
                            addr: self.lib.asram(USER_SCRATCH + off),
                            data: StoreData::Bytes(chunk),
                        };
                    }
                    self.state = SendState::WriteHeader;
                }
                SendState::WriteHeader => {
                    let msg = self.cur();
                    let mut hdr = MsgHeader::basic(msg.dest, msg.payload.len() as u8);
                    if let Some(t) = &msg.tagon {
                        hdr = hdr.with_tagon(USER_SCRATCH, t.len() as u8);
                    }
                    let slot = self.lib.basic_tx.slot_off(self.producer);
                    self.state = SendState::WritePayload { off: 0 };
                    return Step::Store {
                        addr: self.lib.asram(slot),
                        data: StoreData::Bytes(hdr.encode().to_vec()),
                    };
                }
                SendState::WritePayload { off } => {
                    let msg = self.cur();
                    if (off as usize) < msg.payload.len() {
                        let end = (off as usize + 8).min(msg.payload.len());
                        let chunk = msg.payload[off as usize..end].to_vec();
                        let slot = self.lib.basic_tx.slot_off(self.producer);
                        self.state = SendState::WritePayload { off: off + 8 };
                        return Step::Store {
                            addr: self.lib.asram(slot + 8 + off),
                            data: StoreData::Bytes(chunk),
                        };
                    }
                    self.state = SendState::PtrUpdate;
                }
                SendState::PtrUpdate => {
                    let msg = self.items.pop_front().expect("message");
                    self.producer = self.producer.wrapping_add(1);
                    let q = self.lib.basic_tx.q;
                    let bytes = (msg.payload.len() + msg.tagon.map_or(0, |t| t.len())) as u32;
                    env.emit(AppEventKind::Sent {
                        q,
                        dest: msg.dest,
                        bytes,
                    });
                    self.state = SendState::Next;
                    // All information rides in the address.
                    return Step::Store {
                        addr: self.lib.map.ptr_update_addr(false, q, self.producer),
                        data: StoreData::U64(0),
                    };
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RecvState {
    Poll,
    CheckPoll,
    ReadHeader,
    CheckHeader,
    ReadBody { off: u32 },
    PtrUpdate,
}

/// Receive `expect` Basic messages from the user receive queue,
/// recording [`AppEventKind::Received`] (and `NotifyReceived` for
/// transfer-notification payloads).
pub struct RecvBasic {
    lib: NodeLib,
    expect: usize,
    got: usize,
    state: RecvState,
    consumer: u16,
    producer_seen: u16,
    cur_src: u16,
    cur_len: u32,
    buf: Vec<u8>,
}

impl RecvBasic {
    /// Expect `expect` messages, then finish.
    pub fn expecting(lib: &NodeLib, expect: usize) -> Self {
        Self::resuming(lib, expect, 0)
    }

    /// Like [`RecvBasic::expecting`], but resuming from an existing
    /// consumer position. Long-lived applications that receive in phases
    /// must carry the queue cursor across phases — the hardware queue's
    /// pointers persist even though the program object does not.
    pub fn resuming(lib: &NodeLib, expect: usize, consumer: u16) -> Self {
        RecvBasic {
            lib: *lib,
            expect,
            got: 0,
            state: RecvState::Poll,
            consumer,
            producer_seen: consumer,
            cur_src: 0,
            cur_len: 0,
            buf: Vec::new(),
        }
    }
}

impl Program for RecvBasic {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            match self.state {
                RecvState::Poll => {
                    if self.got >= self.expect {
                        return Step::Done;
                    }
                    if self.consumer != self.producer_seen {
                        self.state = RecvState::ReadHeader;
                        continue;
                    }
                    self.state = RecvState::CheckPoll;
                    return Step::Load {
                        addr: self.lib.asram(self.lib.basic_rx.shadow_off),
                        bytes: 8,
                    };
                }
                RecvState::CheckPoll => {
                    self.producer_seen = env.last_load as u16;
                    if self.consumer == self.producer_seen {
                        self.state = RecvState::Poll;
                        return Step::Compute(POLL_GAP_NS);
                    }
                    self.state = RecvState::ReadHeader;
                }
                RecvState::ReadHeader => {
                    let slot = self.lib.basic_rx.slot_off(self.consumer);
                    self.state = RecvState::CheckHeader;
                    return Step::Load {
                        addr: self.lib.asram(slot),
                        bytes: 8,
                    };
                }
                RecvState::CheckHeader => {
                    let hdr = env.last_load.to_le_bytes();
                    let (src, _lq, len) = decode_rx_slot(&hdr);
                    self.cur_src = src;
                    self.cur_len = len as u32;
                    self.buf.clear();
                    self.state = RecvState::ReadBody { off: 0 };
                }
                RecvState::ReadBody { off } => {
                    if off > 0 {
                        // Collect the previous load's bytes.
                        let take = (self.cur_len - (off - 8)).min(8) as usize;
                        self.buf
                            .extend_from_slice(&env.last_load.to_le_bytes()[..take]);
                    }
                    if off < self.cur_len {
                        let slot = self.lib.basic_rx.slot_off(self.consumer);
                        self.state = RecvState::ReadBody { off: off + 8 };
                        return Step::Load {
                            addr: self.lib.asram(slot + 8 + off),
                            bytes: 8,
                        };
                    }
                    let data = Bytes::from(std::mem::take(&mut self.buf));
                    if let Some(xid) = proto::decode_notify(&data) {
                        env.emit(AppEventKind::NotifyReceived { xfer_id: xid });
                    }
                    env.emit(AppEventKind::Received {
                        q: self.lib.basic_rx.q,
                        src: self.cur_src,
                        data,
                    });
                    self.got += 1;
                    self.state = RecvState::PtrUpdate;
                }
                RecvState::PtrUpdate => {
                    self.consumer = self.consumer.wrapping_add(1);
                    let q = self.lib.basic_rx.q;
                    self.state = RecvState::Poll;
                    return Step::Store {
                        addr: self.lib.map.ptr_update_addr(true, q, self.consumer),
                        data: StoreData::U64(0),
                    };
                }
            }
        }
    }
}

/// Send Express messages: one uncached store each.
pub struct SendExpress {
    lib: NodeLib,
    items: std::collections::VecDeque<(u16, u8, u32)>,
}

impl SendExpress {
    /// Send `(virtual dest, tag, word)` triples.
    pub fn new(lib: &NodeLib, items: Vec<(u16, u8, u32)>) -> Self {
        SendExpress {
            lib: *lib,
            items: items.into(),
        }
    }
}

impl Program for SendExpress {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        let Some((dest, tag, word)) = self.items.pop_front() else {
            return Step::Done;
        };
        env.emit(AppEventKind::Sent {
            q: self.lib.express_tx_q,
            dest,
            bytes: 5,
        });
        Step::Store {
            addr: self
                .lib
                .map
                .express_tx_addr(self.lib.express_tx_q, dest, tag),
            data: StoreData::Bytes(word.to_le_bytes().to_vec()),
        }
    }
}

/// Receive `expect` Express messages: one uncached load each (polling
/// with the canonical-empty convention).
pub struct RecvExpress {
    lib: NodeLib,
    expect: usize,
    got: usize,
    primed: bool,
}

impl RecvExpress {
    /// Expect `expect` Express messages.
    pub fn expecting(lib: &NodeLib, expect: usize) -> Self {
        RecvExpress {
            lib: *lib,
            expect,
            got: 0,
            primed: false,
        }
    }
}

impl Program for RecvExpress {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        if self.primed {
            self.primed = false;
            match express::unpack_rx(env.last_load) {
                Some((src, tag, word)) => {
                    env.emit(AppEventKind::ExpressReceived { src, tag, word });
                    self.got += 1;
                }
                None => {
                    return Step::Compute(POLL_GAP_NS);
                }
            }
        }
        if self.got >= self.expect {
            return Step::Done;
        }
        self.primed = true;
        Step::Load {
            addr: self.lib.map.express_rx_addr(self.lib.express_rx_q),
            bytes: 8,
        }
    }
}

/// Issue a block-transfer request to the local sP (the DMA mechanism):
/// a single Basic message into the local service queue.
pub fn request_transfer(lib: &NodeLib, req: &XferReq) -> SendBasic {
    let dest = lib.svc_dest(lib.node);
    SendBasic::new(lib, vec![BasicMsg::new(dest, req.encode().to_vec())])
}

/// Issue a tracked-region flush request (the diff-ing extension): ship
/// only the clsSRAM-recorded dirty lines of a write-tracked region.
pub fn request_flush(lib: &NodeLib, req: &sv_firmware::proto::XferFlush) -> SendBasic {
    let dest = lib.svc_dest(lib.node);
    SendBasic::new(lib, vec![BasicMsg::new(dest, req.encode().to_vec())])
}

/// Read a memory region through the caches (one load per cache line),
/// emitting [`AppEventKind::RegionDone`] when finished. Under S-COMA
/// gating this stalls on lines that have not arrived — the measured
/// "time to use" of optimistic transfers.
pub struct ReadRegion {
    addr: u64,
    len: u32,
    off: u32,
}

impl ReadRegion {
    /// Read `[addr, addr+len)`.
    pub fn new(addr: u64, len: u32) -> Self {
        ReadRegion { addr, len, off: 0 }
    }
}

impl Program for ReadRegion {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        if self.off < self.len {
            let a = self.addr + self.off as u64;
            self.off += 32;
            return Step::Load { addr: a, bytes: 8 };
        }
        env.emit(AppEventKind::RegionDone {
            addr: self.addr,
            len: self.len,
        });
        Step::Done
    }
}

/// Write a pattern to a memory region through the caches (8 bytes per
/// store), emitting [`AppEventKind::RegionDone`] when finished.
pub struct WriteRegion {
    addr: u64,
    data: Vec<u8>,
    off: usize,
}

impl WriteRegion {
    /// Write `data` at `addr` (length must be a multiple of 8).
    pub fn new(addr: u64, data: Vec<u8>) -> Self {
        assert_eq!(data.len() % 8, 0);
        WriteRegion { addr, data, off: 0 }
    }
}

impl Program for WriteRegion {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        if self.off < self.data.len() {
            let chunk = self.data[self.off..self.off + 8].to_vec();
            let a = self.addr + self.off as u64;
            self.off += 8;
            return Step::Store {
                addr: a,
                data: StoreData::Bytes(chunk),
            };
        }
        env.emit(AppEventKind::RegionDone {
            addr: self.addr,
            len: self.data.len() as u32,
        });
        Step::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn resuming_below_queue_depth_needs_no_initial_poll() {
        // Regression: `wrapping_sub` made `producer - consumer_seen`
        // equal the queue depth for every producer in 1..entries, so a
        // phased send always began with a pointless shadow poll. A queue
        // that has carried fewer than `entries` messages can never be
        // full (the consumer cannot run backwards from 0).
        let m = Machine::builder(2).build();
        let lib = m.lib(0);
        let entries = lib.basic_tx.entries;
        for producer in [1, 2, entries / 2, entries - 1] {
            let s = SendBasic::resuming(&lib, vec![], producer);
            assert!(
                s.producer.wrapping_sub(s.consumer_seen) < entries,
                "producer {producer} must not force a poll"
            );
        }
        // At or past one full wrap the consumer really is unknown: the
        // conservative poll must stay.
        for producer in [entries, entries + 1, entries * 3] {
            let s = SendBasic::resuming(&lib, vec![], producer);
            assert!(
                s.producer.wrapping_sub(s.consumer_seen) >= entries,
                "producer {producer} must poll the shadow first"
            );
        }
    }

    #[test]
    fn api_error_display_is_stable() {
        assert_eq!(
            ApiError::PayloadTooLarge { len: 90, max: 88 }.to_string(),
            "Basic payload is at most 88 bytes (got 90)"
        );
        assert_eq!(
            ApiError::DestinationOutOfRange { dest: 9, nodes: 4 }.to_string(),
            "destination node 9 out of range (machine has 4)"
        );
    }
}
