//! The application-processor program VM.
//!
//! An aP "application" is a [`Program`]: a state machine that, each time
//! the core is ready, yields one [`Step`] — compute for some time, issue
//! a load, issue a store, or finish. The node executes the step against
//! the simulated memory system with full timing (cache hits, bus
//! transactions, NIU claims, S-COMA retries), so a program's performance
//! is determined by the machine exactly as on real hardware.
//!
//! Programs record [`AppEvent`]s; benches and tests read the event log
//! for both data verification and timestamps.

use bytes::Bytes;
use sv_sim::Time;

/// What a program asks the core to do next.
#[derive(Debug, Clone, PartialEq)]
// Variant fields are named self-descriptively; the variants themselves
// are documented above each one.
#[allow(missing_docs)]
pub enum Step {
    /// Execute for `ns` nanoseconds without touching memory.
    Compute(u64),
    /// Load `bytes` (1–8) from `addr`. The result is delivered in
    /// [`Env::last_load`] at the next step.
    Load { addr: u64, bytes: u32 },
    /// Store `data` at `addr` (1–8 bytes).
    Store { addr: u64, data: StoreData },
    /// Nothing to do right now; step again next tick (used sparingly —
    /// polling loops should issue real loads).
    Idle,
    /// The program has finished.
    Done,
}

/// Store payload: an integer word or explicit bytes (≤ 8).
#[derive(Debug, Clone, PartialEq)]
pub enum StoreData {
    /// U64.
    U64(u64),
    /// Total bytes moved.
    Bytes(Vec<u8>),
}

impl StoreData {
    /// Width of the store in bytes.
    pub fn len(&self) -> u32 {
        match self {
            StoreData::U64(_) => 8,
            StoreData::Bytes(b) => b.len() as u32,
        }
    }

    /// Whether the store carries no bytes (never true for valid stores).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes to write.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            StoreData::U64(v) => v.to_le_bytes().to_vec(),
            StoreData::Bytes(b) => b.clone(),
        }
    }
}

/// Events recorded by programs (with simulation timestamps).
#[derive(Debug, Clone, PartialEq)]
pub struct AppEvent {
    /// Timestamp.
    pub at: Time,
    /// Bus-operation kind.
    pub kind: AppEventKind,
}

/// Event payloads.
#[derive(Debug, Clone, PartialEq)]
// Variant fields are named self-descriptively; the variants themselves
// are documented above each one.
#[allow(missing_docs)]
pub enum AppEventKind {
    /// A message was fully composed and launched.
    Sent { q: u8, dest: u16, bytes: u32 },
    /// A message was received and read out: `(queue, source, payload)`.
    Received { q: u8, src: u16, data: Bytes },
    /// An express message was received: `(src, tag, word)`.
    ExpressReceived { src: u16, tag: u8, word: [u8; 4] },
    /// A transfer-completion notification arrived.
    NotifyReceived { xfer_id: u16 },
    /// A region read/write finished (used for latency-to-use metrics).
    RegionDone { addr: u64, len: u32 },
    /// The program ran to completion.
    ProgramDone,
    /// A computed result (collectives report through this).
    Result { label: &'static str, value: u64 },
    /// Free-form marker for tests.
    Marker(&'static str),
}

/// Per-step context handed to programs.
pub struct Env<'a> {
    /// Current simulated time.
    pub now: Time,
    /// This node's id.
    pub node: u16,
    /// Result of the previous [`Step::Load`].
    pub last_load: u64,
    /// Event sink.
    pub events: &'a mut Vec<AppEvent>,
}

impl Env<'_> {
    /// Record an event at the current time.
    pub fn emit(&mut self, kind: AppEventKind) {
        self.events.push(AppEvent { at: self.now, kind });
    }
}

/// An application program.
pub trait Program: Send {
    /// Produce the next step. Called once per engagement; `env.last_load`
    /// holds the result of the previous load.
    fn step(&mut self, env: &mut Env<'_>) -> Step;

    /// Capture this program's execution state for a machine checkpoint,
    /// or `None` when the program cannot be snapshotted (the default —
    /// e.g. closure-based [`FnProgram`]s). A `None` from a program that
    /// has not finished makes [`crate::Machine::try_checkpoint`] fail
    /// with [`sv_sim::ckpt::SnapshotError::UnsupportedProgram`].
    fn snapshot(&self) -> Option<crate::api::ProgramSnapshot> {
        None
    }

    /// Per-tenant scheduler accounting, when this program is a
    /// [`crate::tenancy::TenantScheduler`] (the default `None` marks
    /// ordinary single-tenant programs). Queried by the stats layer
    /// after a run to attribute node activity to tenants.
    fn tenant_report(&self) -> Option<Vec<crate::tenancy::TenantSchedStat>> {
        None
    }
}

/// Run `programs` one after another.
pub struct Seq {
    parts: Vec<Box<dyn Program>>,
    idx: usize,
}

impl Seq {
    /// A sequential composition.
    pub fn new(parts: Vec<Box<dyn Program>>) -> Self {
        Seq { parts, idx: 0 }
    }
}

impl Program for Seq {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        while self.idx < self.parts.len() {
            match self.parts[self.idx].step(env) {
                Step::Done => self.idx += 1,
                s => return s,
            }
        }
        Step::Done
    }

    fn snapshot(&self) -> Option<crate::api::ProgramSnapshot> {
        // Exhausted parts carry no future behaviour; only the remainder
        // is captured. Every remaining part must itself be snapshottable.
        let rest: Option<Vec<_>> = self.parts[self.idx..]
            .iter()
            .map(|p| p.snapshot())
            .collect();
        rest.map(crate::api::ProgramSnapshot::seq)
    }
}

/// Compute for a fixed time, then finish.
pub struct Delay(pub u64);

impl Program for Delay {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        let _ = env;
        if self.0 == 0 {
            return Step::Done;
        }
        let d = self.0;
        self.0 = 0;
        Step::Compute(d)
    }

    fn snapshot(&self) -> Option<crate::api::ProgramSnapshot> {
        Some(crate::api::ProgramSnapshot::delay(self.0))
    }
}

/// A program built from a closure returning steps (for tests and ad-hoc
/// drivers).
pub struct FnProgram<F: FnMut(&mut Env<'_>) -> Step + Send>(pub F);

impl<F: FnMut(&mut Env<'_>) -> Step + Send> Program for FnProgram<F> {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        self.0(env)
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for StoreData {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            StoreData::U64(v) => {
                w.u8(0);
                w.u64(*v);
            }
            StoreData::Bytes(b) => {
                w.u8(1);
                w.save(b);
            }
        }
    }
}
impl StateLoad for StoreData {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => StoreData::U64(r.u64()?),
            1 => StoreData::Bytes(r.load()?),
            _ => return r.corrupt(),
        })
    }
}

impl StateSave for AppEvent {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.at);
        w.save(&self.kind);
    }
}
impl StateLoad for AppEvent {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(AppEvent {
            at: r.load()?,
            kind: r.load()?,
        })
    }
}

/// Restore a `&'static str` label. Labels come from string literals in
/// program code; the restored copy is leaked once per restore, which is
/// bounded by the (small, fixed) set of labels programs actually use.
fn leak_label(r: &mut SnapReader<'_>) -> Result<&'static str, SnapshotError> {
    let s: String = r.load()?;
    Ok(Box::leak(s.into_boxed_str()))
}

impl StateSave for AppEventKind {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            AppEventKind::Sent { q, dest, bytes } => {
                w.u8(0);
                w.u8(*q);
                w.u16(*dest);
                w.u32(*bytes);
            }
            AppEventKind::Received { q, src, data } => {
                w.u8(1);
                w.u8(*q);
                w.u16(*src);
                w.save(data);
            }
            AppEventKind::ExpressReceived { src, tag, word } => {
                w.u8(2);
                w.u16(*src);
                w.u8(*tag);
                w.raw(word);
            }
            AppEventKind::NotifyReceived { xfer_id } => {
                w.u8(3);
                w.u16(*xfer_id);
            }
            AppEventKind::RegionDone { addr, len } => {
                w.u8(4);
                w.u64(*addr);
                w.u32(*len);
            }
            AppEventKind::ProgramDone => w.u8(5),
            AppEventKind::Result { label, value } => {
                w.u8(6);
                w.save(&label.to_string());
                w.u64(*value);
            }
            AppEventKind::Marker(label) => {
                w.u8(7);
                w.save(&label.to_string());
            }
        }
    }
}
impl StateLoad for AppEventKind {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => AppEventKind::Sent {
                q: r.u8()?,
                dest: r.u16()?,
                bytes: r.u32()?,
            },
            1 => AppEventKind::Received {
                q: r.u8()?,
                src: r.u16()?,
                data: r.load()?,
            },
            2 => {
                let src = r.u16()?;
                let tag = r.u8()?;
                let at = r.offset();
                let word: [u8; 4] = r
                    .take(4)?
                    .try_into()
                    .map_err(|_| SnapshotError::Corrupt { offset: at })?;
                AppEventKind::ExpressReceived { src, tag, word }
            }
            3 => AppEventKind::NotifyReceived { xfer_id: r.u16()? },
            4 => AppEventKind::RegionDone {
                addr: r.u64()?,
                len: r.u32()?,
            },
            5 => AppEventKind::ProgramDone,
            6 => AppEventKind::Result {
                label: leak_label(r)?,
                value: r.u64()?,
            },
            7 => AppEventKind::Marker(leak_label(r)?),
            _ => return r.corrupt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_steps(p: &mut dyn Program, n: usize) -> Vec<Step> {
        let mut events = Vec::new();
        let mut out = Vec::new();
        for _ in 0..n {
            let mut env = Env {
                now: Time::ZERO,
                node: 0,
                last_load: 0,
                events: &mut events,
            };
            let s = p.step(&mut env);
            let done = s == Step::Done;
            out.push(s);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn store_data_width() {
        assert_eq!(StoreData::U64(5).len(), 8);
        assert_eq!(StoreData::Bytes(vec![1, 2, 3]).len(), 3);
        assert_eq!(StoreData::U64(5).to_bytes(), 5u64.to_le_bytes().to_vec());
        assert!(!StoreData::U64(0).is_empty());
    }

    #[test]
    fn seq_runs_parts_in_order() {
        let mut s = Seq::new(vec![Box::new(Delay(10)), Box::new(Delay(20))]);
        let steps = run_steps(&mut s, 10);
        assert_eq!(
            steps,
            vec![Step::Compute(10), Step::Compute(20), Step::Done]
        );
    }

    #[test]
    fn delay_is_one_shot() {
        let mut d = Delay(7);
        let steps = run_steps(&mut d, 5);
        assert_eq!(steps, vec![Step::Compute(7), Step::Done]);
    }

    #[test]
    fn env_emit_stamps_time() {
        let mut events = Vec::new();
        let mut env = Env {
            now: Time::from_ns(99),
            node: 1,
            last_load: 0,
            events: &mut events,
        };
        env.emit(AppEventKind::Marker("x"));
        assert_eq!(events[0].at, Time::from_ns(99));
    }
}
