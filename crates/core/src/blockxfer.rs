//! The five block-transfer implementations (paper §6) and their
//! experiment driver.
//!
//! Approach 1 lives here entirely (aP programs that packetize into Basic
//! messages); approaches 2–5 are requests to the firmware
//! (`sv-firmware::xfer`) issued through the layer-0 API. The driver
//! [`run_block_transfer`] measures one `(approach, size)` point: latency
//! to the completion notification, latency until the receiver has
//! actually read every byte, achieved bandwidth, processor occupancies,
//! and end-to-end data verification.

use crate::api::{request_transfer, ReadRegion, RecvBasic};
use crate::app::{AppEventKind, Env, Program, Seq, Step, StoreData};
use crate::machine::{Machine, NodeLib};
use crate::metrics::{XferMeasurement, XferPoint};
use crate::params::SystemParams;
use sv_firmware::proto::{Approach, XferReq};
use sv_niu::msg::MsgHeader;

/// Source buffer address in the sender's DRAM.
pub const SRC_ADDR: u64 = 0x0010_0000;
/// Destination address in the receiver's DRAM (approaches 1–3).
pub const DST_ADDR_DRAM: u64 = 0x0020_0000;
/// Destination offset inside the S-COMA region (approaches 4–5, which
/// rely on clsSRAM gating of the destination).
pub const DST_SCOMA_OFF: u64 = 0x0010_0000;

/// Default data bytes per approach-1 Basic message (8 bytes of the
/// 88-byte payload carry the destination address).
pub const A1_CHUNK: u32 = 80;

/// Largest per-message data chunk approach 1 can carry: the 88-byte
/// Basic wire format minus the 8-byte destination-address meta word.
/// Also well under the `u8` message-length header field, so a validated
/// chunk can never truncate the header encoding.
pub const A1_CHUNK_MAX: u32 = 80;

/// Destination address for an approach.
pub fn dst_addr_for(params: &SystemParams, approach: Approach) -> u64 {
    match approach {
        Approach::OptimisticSp | Approach::OptimisticHw => params.map.scoma_base + DST_SCOMA_OFF,
        _ => DST_ADDR_DRAM,
    }
}

// =========================================================================
// Approach 1: the aPs move everything.
// =========================================================================

#[derive(Debug, Clone, Copy, PartialEq)]
enum A1SendState {
    Next,
    PollSpace,
    ReadData { off: u32 },
    WriteHeader,
    WriteMeta,
    WritePayload { off: u32 },
    PtrUpdate,
}

/// Approach-1 sender: read each chunk from DRAM, packetize it into a
/// Basic message (8-byte destination-address meta + 80 bytes of data),
/// launch.
pub struct A1Send {
    lib: NodeLib,
    dst_node: u16,
    src_addr: u64,
    dst_addr: u64,
    len: u32,
    sent: u32,
    state: A1SendState,
    chunk: Vec<u8>,
    /// Data bytes per message; validated ≤ [`A1_CHUNK_MAX`] at
    /// construction so the `8 + chunk` Basic header length can neither
    /// exceed the wire format nor silently truncate to `u8`.
    chunk_bytes: u32,
    producer: u16,
    consumer_seen: u16,
}

impl A1Send {
    /// Transfer `[src_addr, +len)` to `dst_addr` at `dst_node` using the
    /// default [`A1_CHUNK`]-byte chunks.
    pub fn new(lib: &NodeLib, dst_node: u16, src_addr: u64, dst_addr: u64, len: u32) -> Self {
        Self::try_with_chunk(lib, dst_node, src_addr, dst_addr, len, A1_CHUNK)
            .expect("A1_CHUNK is a valid chunk size")
    }

    /// Transfer with an explicit per-message chunk size, validating it
    /// at construction: `chunk_bytes` must be a nonzero multiple of 8
    /// no larger than [`A1_CHUNK_MAX`]. Before this check existed an
    /// oversized chunk truncated the Basic header's `u8` length field
    /// (e.g. a 256-byte chunk encoded as length 8), silently corrupting
    /// the stream at the receiver.
    pub fn try_with_chunk(
        lib: &NodeLib,
        dst_node: u16,
        src_addr: u64,
        dst_addr: u64,
        len: u32,
        chunk_bytes: u32,
    ) -> Result<Self, crate::api::ApiError> {
        assert_eq!(len % 8, 0);
        if chunk_bytes == 0 || !chunk_bytes.is_multiple_of(8) || chunk_bytes > A1_CHUNK_MAX {
            return Err(crate::api::ApiError::BadChunkSize {
                chunk: chunk_bytes as usize,
                max: A1_CHUNK_MAX as usize,
            });
        }
        Ok(A1Send {
            lib: *lib,
            dst_node,
            src_addr,
            dst_addr,
            len,
            sent: 0,
            state: A1SendState::Next,
            chunk: Vec::with_capacity(chunk_bytes as usize),
            chunk_bytes,
            producer: 0,
            consumer_seen: 0,
        })
    }

    fn chunk_len(&self) -> u32 {
        self.chunk_bytes.min(self.len - self.sent)
    }
}

impl Program for A1Send {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            match self.state {
                A1SendState::Next => {
                    if self.sent >= self.len {
                        return Step::Done;
                    }
                    if self.producer.wrapping_sub(self.consumer_seen) >= self.lib.basic_tx.entries {
                        self.state = A1SendState::PollSpace;
                        return Step::Load {
                            addr: self.lib.asram(self.lib.basic_tx.shadow_off),
                            bytes: 8,
                        };
                    }
                    self.chunk.clear();
                    self.state = A1SendState::ReadData { off: 0 };
                }
                A1SendState::PollSpace => {
                    self.consumer_seen = env.last_load as u16;
                    self.state = A1SendState::Next;
                    if self.producer.wrapping_sub(self.consumer_seen) >= self.lib.basic_tx.entries {
                        return Step::Compute(30);
                    }
                }
                A1SendState::ReadData { off } => {
                    if off > 0 {
                        self.chunk.extend_from_slice(&env.last_load.to_le_bytes());
                    }
                    if off < self.chunk_len() {
                        let a = self.src_addr + (self.sent + off) as u64;
                        self.state = A1SendState::ReadData { off: off + 8 };
                        return Step::Load { addr: a, bytes: 8 };
                    }
                    self.chunk.truncate(self.chunk_len() as usize);
                    self.state = A1SendState::WriteHeader;
                }
                A1SendState::WriteHeader => {
                    let dest = self.lib.user_dest(self.dst_node);
                    // In range by construction: chunk_bytes ≤ A1_CHUNK_MAX,
                    // so 8 + chunk_len() ≤ 88 — the cast cannot truncate.
                    debug_assert!(8 + self.chunk_len() <= u8::MAX as u32);
                    let hdr = MsgHeader::basic(dest, (8 + self.chunk_len()) as u8);
                    let slot = self.lib.basic_tx.slot_off(self.producer);
                    self.state = A1SendState::WriteMeta;
                    return Step::Store {
                        addr: self.lib.asram(slot),
                        data: StoreData::Bytes(hdr.encode().to_vec()),
                    };
                }
                A1SendState::WriteMeta => {
                    let slot = self.lib.basic_tx.slot_off(self.producer);
                    let meta = self.dst_addr + self.sent as u64;
                    self.state = A1SendState::WritePayload { off: 0 };
                    return Step::Store {
                        addr: self.lib.asram(slot + 8),
                        data: StoreData::U64(meta),
                    };
                }
                A1SendState::WritePayload { off } => {
                    if (off as usize) < self.chunk.len() {
                        let end = (off as usize + 8).min(self.chunk.len());
                        let bytes = self.chunk[off as usize..end].to_vec();
                        let slot = self.lib.basic_tx.slot_off(self.producer);
                        self.state = A1SendState::WritePayload { off: off + 8 };
                        return Step::Store {
                            addr: self.lib.asram(slot + 16 + off),
                            data: StoreData::Bytes(bytes),
                        };
                    }
                    self.state = A1SendState::PtrUpdate;
                }
                A1SendState::PtrUpdate => {
                    self.sent += self.chunk_len().min(self.len - self.sent);
                    self.producer = self.producer.wrapping_add(1);
                    let q = self.lib.basic_tx.q;
                    self.state = A1SendState::Next;
                    return Step::Store {
                        addr: self.lib.map.ptr_update_addr(false, q, self.producer),
                        data: StoreData::U64(0),
                    };
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum A1RecvState {
    Poll,
    CheckPoll,
    ReadHeader,
    CheckHeader,
    ReadMeta,
    ReadBody { off: u32 },
    WriteBody { off: u32 },
    PtrUpdate,
}

/// Approach-1 receiver: read each message out of the receive queue and
/// copy its data to the destination address it names.
pub struct A1Recv {
    lib: NodeLib,
    total: u32,
    received: u32,
    state: A1RecvState,
    consumer: u16,
    producer_seen: u16,
    cur_dst: u64,
    cur_len: u32,
    buf: Vec<u8>,
}

impl A1Recv {
    /// Expect `total` bytes of transfer data.
    pub fn new(lib: &NodeLib, total: u32) -> Self {
        A1Recv {
            lib: *lib,
            total,
            received: 0,
            state: A1RecvState::Poll,
            consumer: 0,
            producer_seen: 0,
            cur_dst: 0,
            cur_len: 0,
            buf: Vec::new(),
        }
    }
}

impl Program for A1Recv {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            match self.state {
                A1RecvState::Poll => {
                    if self.received >= self.total {
                        // Copy complete: this *is* the notification.
                        env.emit(AppEventKind::NotifyReceived { xfer_id: 0 });
                        return Step::Done;
                    }
                    if self.consumer != self.producer_seen {
                        self.state = A1RecvState::ReadHeader;
                        continue;
                    }
                    self.state = A1RecvState::CheckPoll;
                    return Step::Load {
                        addr: self.lib.asram(self.lib.basic_rx.shadow_off),
                        bytes: 8,
                    };
                }
                A1RecvState::CheckPoll => {
                    self.producer_seen = env.last_load as u16;
                    if self.consumer == self.producer_seen {
                        self.state = A1RecvState::Poll;
                        return Step::Compute(30);
                    }
                    self.state = A1RecvState::ReadHeader;
                }
                A1RecvState::ReadHeader => {
                    let slot = self.lib.basic_rx.slot_off(self.consumer);
                    self.state = A1RecvState::CheckHeader;
                    return Step::Load {
                        addr: self.lib.asram(slot),
                        bytes: 8,
                    };
                }
                A1RecvState::CheckHeader => {
                    let hdr = env.last_load.to_le_bytes();
                    let (_src, _lq, len) = sv_niu::niu::decode_rx_slot(&hdr);
                    self.cur_len = len as u32 - 8;
                    self.state = A1RecvState::ReadMeta;
                    let slot = self.lib.basic_rx.slot_off(self.consumer);
                    return Step::Load {
                        addr: self.lib.asram(slot + 8),
                        bytes: 8,
                    };
                }
                A1RecvState::ReadMeta => {
                    self.cur_dst = env.last_load;
                    self.buf.clear();
                    self.state = A1RecvState::ReadBody { off: 0 };
                }
                A1RecvState::ReadBody { off } => {
                    if off > 0 {
                        self.buf.extend_from_slice(&env.last_load.to_le_bytes());
                    }
                    if off < self.cur_len {
                        let slot = self.lib.basic_rx.slot_off(self.consumer);
                        self.state = A1RecvState::ReadBody { off: off + 8 };
                        return Step::Load {
                            addr: self.lib.asram(slot + 16 + off),
                            bytes: 8,
                        };
                    }
                    self.buf.truncate(self.cur_len as usize);
                    self.state = A1RecvState::WriteBody { off: 0 };
                }
                A1RecvState::WriteBody { off } => {
                    if (off as usize) < self.buf.len() {
                        let end = (off as usize + 8).min(self.buf.len());
                        let bytes = self.buf[off as usize..end].to_vec();
                        let a = self.cur_dst + off as u64;
                        self.state = A1RecvState::WriteBody { off: off + 8 };
                        return Step::Store {
                            addr: a,
                            data: StoreData::Bytes(bytes),
                        };
                    }
                    self.received += self.cur_len;
                    self.state = A1RecvState::PtrUpdate;
                }
                A1RecvState::PtrUpdate => {
                    self.consumer = self.consumer.wrapping_add(1);
                    let q = self.lib.basic_rx.q;
                    self.state = A1RecvState::Poll;
                    return Step::Store {
                        addr: self.lib.map.ptr_update_addr(true, q, self.consumer),
                        data: StoreData::U64(0),
                    };
                }
            }
        }
    }
}

// =========================================================================
// Experiment driver
// =========================================================================

/// One `(approach, size)` experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct XferSpec {
    /// Transfer approach (1-5).
    pub approach: Approach,
    /// Length in bytes.
    pub len: u32,
    /// Verify the destination bytes against the source pattern.
    pub verify: bool,
}

/// Run one block transfer between node 0 (sender) and node 1 (receiver)
/// and measure it.
pub fn run_block_transfer(params: SystemParams, spec: XferSpec) -> XferPoint {
    let mut m = Machine::builder(2).params(params).build();
    let pattern_seed = params.seed ^ spec.len as u64;
    m.nodes[0]
        .mem
        .fill_pattern(SRC_ADDR, spec.len as usize, pattern_seed);
    let dst = dst_addr_for(&params, spec.approach);
    let lib0 = m.lib(0);
    let lib1 = m.lib(1);

    match spec.approach {
        Approach::ApDirect => {
            m.load_program(0, A1Send::new(&lib0, 1, SRC_ADDR, dst, spec.len));
            m.load_program(
                1,
                Seq::new(vec![
                    Box::new(A1Recv::new(&lib1, spec.len)),
                    Box::new(ReadRegion::new(dst, spec.len)),
                ]),
            );
        }
        _ => {
            let req = XferReq {
                approach: spec.approach,
                xfer_id: 1,
                src_addr: SRC_ADDR,
                dst_addr: dst,
                len: spec.len,
                dst_node: 1,
                notify_lq: 1,
            };
            m.load_program(0, request_transfer(&lib0, &req));
            m.load_program(
                1,
                Seq::new(vec![
                    Box::new(RecvBasic::expecting(&lib1, 1)),
                    Box::new(ReadRegion::new(dst, spec.len)),
                ]),
            );
        }
    }

    let end = match m.run_to_quiescence_capped(10_000_000_000) {
        Ok(t) => t,
        Err(t) => panic!("approach {:?} size {} hung at {t}", spec.approach, spec.len),
    };

    let notify = m
        .event_time(1, |k| matches!(k, AppEventKind::NotifyReceived { .. }))
        .unwrap_or(end);
    let used = m
        .event_time(
            1,
            |k| matches!(k, AppEventKind::RegionDone { addr, .. } if *addr == dst),
        )
        .unwrap_or(end);
    let sender_done = m
        .event_time(0, |k| matches!(k, AppEventKind::ProgramDone))
        .unwrap_or(end);
    let receiver_done = m
        .event_time(1, |k| matches!(k, AppEventKind::ProgramDone))
        .unwrap_or(end);

    let verified = !spec.verify || {
        let got = m.mem_read(1, dst, spec.len as usize);
        let mut want = sv_membus::MemoryArray::new();
        want.fill_pattern(0, spec.len as usize, pattern_seed);
        got == want.read_vec(0, spec.len as usize)
    };

    // Bandwidth: for approaches 1-3 the notification marks "all data
    // arrived", the quantity Figure 4 plots. For the optimistic
    // approaches the notification is deliberately early, so their
    // bandwidth is measured over time-to-use (which overlaps the
    // receiver's reading with the tail of the transfer).
    let bw_window = match spec.approach {
        Approach::OptimisticSp | Approach::OptimisticHw => used.ns(),
        _ => notify.ns(),
    };
    XferPoint {
        approach: spec.approach as u8,
        bytes: spec.len,
        latency_notify_ns: notify.ns(),
        latency_use_ns: used.ns(),
        bandwidth_mb_s: sv_sim::stats::mb_per_s(spec.len as u64, bw_window.max(1)),
        sender_ap_busy_ns: sender_done.ns(),
        receiver_ap_busy_ns: receiver_done.ns(),
        sp_busy_ns: m.total_sp_busy_ns(),
        verified,
    }
}

/// Run one approach-1 transfer with an explicit chunk size (test hook
/// for the chunk-size validation path).
#[doc(hidden)]
pub fn run_a1_with_chunk(
    params: SystemParams,
    len: u32,
    chunk_bytes: u32,
) -> Result<bool, crate::api::ApiError> {
    let mut m = Machine::builder(2).params(params).build();
    let pattern_seed = params.seed ^ len as u64;
    m.nodes[0]
        .mem
        .fill_pattern(SRC_ADDR, len as usize, pattern_seed);
    let lib0 = m.lib(0);
    let lib1 = m.lib(1);
    let send = A1Send::try_with_chunk(&lib0, 1, SRC_ADDR, DST_ADDR_DRAM, len, chunk_bytes)?;
    m.load_program(0, send);
    m.load_program(1, A1Recv::new(&lib1, len));
    m.run_to_quiescence_capped(10_000_000_000)
        .unwrap_or_else(|t| panic!("a1 chunk {chunk_bytes} hung at {t}"));
    let got = m.mem_read(1, DST_ADDR_DRAM, len as usize);
    let mut want = sv_membus::MemoryArray::new();
    want.fill_pattern(0, len as usize, pattern_seed);
    Ok(got == want.read_vec(0, len as usize))
}

/// Sweep one approach across transfer sizes.
pub fn sweep_sizes(params: SystemParams, approach: Approach, sizes: &[u32]) -> XferMeasurement {
    let points = sizes
        .iter()
        .map(|&len| {
            run_block_transfer(
                params,
                XferSpec {
                    approach,
                    len,
                    verify: true,
                },
            )
        })
        .collect();
    XferMeasurement {
        approach: approach as u8,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApiError;

    #[test]
    fn oversized_chunk_is_rejected_not_truncated() {
        // Regression: 8 + 256 encoded as `(264) as u8` == 8, a header
        // announcing an empty payload — the receiver would copy zero
        // bytes per message and spin forever. Construction now rejects
        // every chunk the u8-length Basic header cannot carry.
        let m = Machine::builder(2).build();
        let lib = m.lib(0);
        for bad in [0u32, 12, 88, 256, 1024] {
            let r = A1Send::try_with_chunk(&lib, 1, SRC_ADDR, DST_ADDR_DRAM, 1024, bad);
            assert!(
                matches!(r, Err(ApiError::BadChunkSize { chunk, max: 80 }) if chunk == bad as usize),
                "chunk {bad} must be rejected"
            );
        }
    }

    #[test]
    fn valid_small_chunk_transfers_correctly() {
        // A non-default (but valid) chunk size still moves every byte:
        // 40-byte chunks over a 720-byte transfer = 18 messages.
        let ok = run_a1_with_chunk(SystemParams::default(), 720, 40).unwrap();
        assert!(ok, "destination bytes must match the source pattern");
    }

    #[test]
    fn default_chunk_is_valid() {
        let m = Machine::builder(2).build();
        let lib = m.lib(0);
        assert!(A1Send::try_with_chunk(&lib, 1, SRC_ADDR, DST_ADDR_DRAM, 1024, A1_CHUNK).is_ok());
    }
}
