//! Collective operations over Express messages — the kind of library
//! the paper's layer 0 anticipates ("we will provide an MPI library that
//! presents the usual MPI interface ... but uses the underlying NIU
//! support").
//!
//! Express messages are ideal for collectives: a send is one uncached
//! store, a receive is one uncached load, and the program needs no queue
//! cursor state. A 64-bit value travels as two express messages whose
//! tags encode `(round, half)`; out-of-order arrivals (a partner racing
//! ahead a round) are buffered by tag.
//!
//! Provided: [`AllReduce`] (sum/min/max, recursive doubling,
//! power-of-two node counts), [`barrier`], and [`Broadcast`] (binomial
//! tree, any node count).

use crate::app::{AppEventKind, Env, Program, Step, StoreData};
use crate::machine::NodeLib;
use std::collections::HashMap;
use sv_niu::msg::{express, MsgHeader};
use sv_niu::niu::decode_rx_slot;

/// Backoff between uncached polls of an empty queue, matching the
/// layer-0 programs in [`crate::api`].
const POLL_GAP_NS: u64 = 30;

/// Reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping addition.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

impl From<ReduceOp> for sv_firmware::proto::CollOp {
    fn from(op: ReduceOp) -> Self {
        match op {
            ReduceOp::Sum => sv_firmware::proto::CollOp::Sum,
            ReduceOp::Min => sv_firmware::proto::CollOp::Min,
            ReduceOp::Max => sv_firmware::proto::CollOp::Max,
        }
    }
}

/// Tag encoding: bit 0 = which half of the u64, bits 1..7 = round.
fn tag_of(round: u32, half: u8) -> u8 {
    ((round as u8) << 1) | half
}

fn split_tag(tag: u8) -> (u32, u8) {
    ((tag >> 1) as u32, tag & 1)
}

/// Shared express-exchange plumbing: send a u64 as two messages, collect
/// two halves per (round) from a specific sequence of partners.
struct Exchange {
    lib: NodeLib,
    /// Buffered halves keyed by `(round, half)`.
    pending: HashMap<(u32, u8), u32>,
    /// Which half of the current send remains (2 = both, 1 = low sent).
    send_left: u8,
    primed: bool,
}

impl Exchange {
    fn new(lib: NodeLib) -> Self {
        Exchange {
            lib,
            pending: HashMap::new(),
            send_left: 0,
            primed: false,
        }
    }

    /// Begin sending `value` to `peer` for `round`.
    fn start_send(&mut self, _peer: u16, _round: u32) {
        self.send_left = 2;
    }

    /// Next send step, or `None` when both halves are out.
    fn send_step(&mut self, peer: u16, round: u32, value: u64) -> Option<Step> {
        if self.send_left == 0 {
            return None;
        }
        let half = 2 - self.send_left; // 0 then 1
        let word = if half == 0 {
            value as u32
        } else {
            (value >> 32) as u32
        };
        self.send_left -= 1;
        let dest = self.lib.express_dest(peer);
        Some(Step::Store {
            addr: self
                .lib
                .map
                .express_tx_addr(self.lib.express_tx_q, dest, tag_of(round, half)),
            data: StoreData::Bytes(word.to_le_bytes().to_vec()),
        })
    }

    /// Whether both halves of `round` have arrived.
    fn have_round(&self, round: u32) -> bool {
        self.pending.contains_key(&(round, 0)) && self.pending.contains_key(&(round, 1))
    }

    /// Take the assembled value for `round`.
    fn take_round(&mut self, round: u32) -> u64 {
        let lo = self.pending.remove(&(round, 0)).expect("low half") as u64;
        let hi = self.pending.remove(&(round, 1)).expect("high half") as u64;
        (hi << 32) | lo
    }

    /// Poll step: issue a receive load, or absorb its result. Returns
    /// `Some(step)` while more polling is needed to complete `round`.
    fn recv_step(&mut self, env: &mut Env<'_>, round: u32) -> Option<Step> {
        if self.primed {
            self.primed = false;
            if let Some((_src, tag, word)) = express::unpack_rx(env.last_load) {
                let (r, half) = split_tag(tag);
                self.pending.insert((r, half), u32::from_le_bytes(word));
            } else {
                // Queue empty: back off briefly.
                if !self.have_round(round) {
                    return Some(Step::Compute(30));
                }
            }
        }
        if self.have_round(round) {
            return None;
        }
        self.primed = true;
        Some(Step::Load {
            addr: self.lib.map.express_rx_addr(self.lib.express_rx_q),
            bytes: 8,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Send,
    Recv,
    Done,
}

/// Recursive-doubling all-reduce over `size` nodes (must be a power of
/// two). Every node ends with the reduction of all contributions,
/// reported as [`AppEventKind::Result`] with label `"allreduce"`.
pub struct AllReduce {
    ex: Exchange,
    rank: u16,
    size: u16,
    op: ReduceOp,
    value: u64,
    round: u32,
    rounds: u32,
    phase: Phase,
}

impl AllReduce {
    /// One node's share of the collective.
    pub fn new(lib: &NodeLib, op: ReduceOp, value: u64) -> Self {
        let size = lib.nodes;
        assert!(size.is_power_of_two(), "recursive doubling needs 2^k nodes");
        let rounds = size.trailing_zeros();
        let mut ex = Exchange::new(*lib);
        if rounds > 0 {
            ex.start_send(0, 0);
        }
        AllReduce {
            ex,
            rank: lib.node,
            size,
            op,
            value,
            round: 0,
            rounds,
            phase: if rounds == 0 {
                Phase::Done
            } else {
                Phase::Send
            },
        }
    }

    fn partner(&self) -> u16 {
        self.rank ^ (1 << self.round)
    }
}

impl Program for AllReduce {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            match self.phase {
                Phase::Send => {
                    let peer = self.partner();
                    match self.ex.send_step(peer, self.round, self.value) {
                        Some(s) => return s,
                        None => self.phase = Phase::Recv,
                    }
                }
                Phase::Recv => {
                    if let Some(s) = self.ex.recv_step(env, self.round) {
                        return s;
                    }
                    let theirs = self.ex.take_round(self.round);
                    self.value = self.op.apply(self.value, theirs);
                    self.round += 1;
                    if self.round >= self.rounds {
                        self.phase = Phase::Done;
                    } else {
                        self.ex.start_send(self.partner(), self.round);
                        self.phase = Phase::Send;
                    }
                }
                Phase::Done => {
                    env.emit(AppEventKind::Result {
                        label: "allreduce",
                        value: self.value,
                    });
                    let _ = self.size;
                    return Step::Done;
                }
            }
        }
    }
}

/// A barrier is an all-reduce of nothing.
pub fn barrier(lib: &NodeLib) -> AllReduce {
    AllReduce::new(lib, ReduceOp::Sum, 0)
}

/// Binomial-tree broadcast of a u64 from `root`; every node reports the
/// received value as [`AppEventKind::Result`] with label `"broadcast"`.
pub struct Broadcast {
    ex: Exchange,
    rank: u16,
    size: u16,
    root: u16,
    value: Option<u64>,
    round: u32,
    rounds: u32,
    phase: Phase,
}

impl Broadcast {
    /// One node's share. `value` is used only at the root.
    pub fn new(lib: &NodeLib, root: u16, value: u64) -> Self {
        let size = lib.nodes;
        // rounds = ceil(log2(size)).
        let mut r = 0;
        while (1u32 << r) < size as u32 {
            r += 1;
        }
        let rel = (lib.node + size - root) % size;
        let has = rel == 0;
        Broadcast {
            ex: Exchange::new(*lib),
            rank: lib.node,
            size,
            root,
            value: has.then_some(value),
            round: 0,
            rounds: r,
            phase: if r == 0 { Phase::Done } else { Phase::Recv },
        }
    }

    /// Rank relative to the root.
    fn rel(&self) -> u16 {
        (self.rank + self.size - self.root) % self.size
    }
}

impl Program for Broadcast {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            if self.round >= self.rounds {
                self.phase = Phase::Done;
            }
            match self.phase {
                // In round k, relative ranks < 2^k hold the value and send
                // to rel + 2^k; ranks in [2^k, 2^(k+1)) receive.
                Phase::Recv => {
                    let rel = self.rel();
                    let k = self.round;
                    let lo = 1u32 << k;
                    if (rel as u32) < lo {
                        // We hold the value: send if the partner exists.
                        let dst_rel = rel as u32 + lo;
                        if dst_rel < self.size as u32 {
                            self.ex.start_send(0, k);
                            self.phase = Phase::Send;
                            continue;
                        }
                        self.round += 1;
                        continue;
                    }
                    if (rel as u32) < 2 * lo {
                        // Our turn to receive.
                        if let Some(s) = self.ex.recv_step(env, k) {
                            return s;
                        }
                        self.value = Some(self.ex.take_round(k));
                        self.round += 1;
                        continue;
                    }
                    // Not participating yet this round.
                    self.round += 1;
                }
                Phase::Send => {
                    let rel = self.rel();
                    let dst_rel = rel as u32 + (1u32 << self.round);
                    let peer = ((dst_rel as u16) + self.root) % self.size;
                    let v = self.value.expect("sender holds the value");
                    match self.ex.send_step(peer, self.round, v) {
                        Some(s) => return s,
                        None => {
                            self.round += 1;
                            self.phase = Phase::Recv;
                        }
                    }
                }
                Phase::Done => {
                    env.emit(AppEventKind::Result {
                        label: "broadcast",
                        value: self.value.expect("broadcast completed"),
                    });
                    return Step::Done;
                }
            }
        }
    }
}

/// Recursive-doubling all-reduce over **Basic** messages — the aP-driven
/// baseline ROADMAP item 2 names for the firmware collective comparison.
///
/// Where the Express variant ([`AllReduce`]) pays one uncached store per
/// 32-bit half, this one composes a full Basic message per round (header
/// store, payload stores, producer pointer update) and polls the receive
/// queue's header/body slots back out — the general-purpose path an MPI
/// layer would take for payloads wider than an Express tag. Every round
/// still burns aP cycles and bus crossings on every node; the firmware
/// engine ([`crate::api::CollReq`]) exists to take exactly this work off
/// the aPs.
pub struct BasicAllReduce {
    lib: NodeLib,
    rank: u16,
    size: u16,
    op: ReduceOp,
    value: u64,
    round: u32,
    rounds: u32,
    phase: Phase,
    /// Send-side sub-state: 0 = header, 1 = payload, 2 = pointer update.
    send_step: u8,
    producer: u16,
    /// Received values buffered by round (a fast partner can race a
    /// round ahead; per-peer in-order delivery does not serialize
    /// *across* peers).
    pending: HashMap<u32, u64>,
    recv: BasicRecvCursor,
}

/// Minimal Basic-queue receive cursor: poll the producer shadow, read one
/// header + 16-byte body, free the slot. Shared by [`BasicAllReduce`]'s
/// rounds.
struct BasicRecvCursor {
    state: u8, // 0 = poll?, 1 = check shadow, 2+k = body load k collected
    consumer: u16,
    producer_seen: u16,
    cur_len: u32,
    buf: Vec<u8>,
}

impl BasicAllReduce {
    /// Payload bytes per round: `[round: u32 | value: u64]`.
    const PAYLOAD: u32 = 12;

    /// One node's share of the collective.
    pub fn new(lib: &NodeLib, op: ReduceOp, value: u64) -> Self {
        let size = lib.nodes;
        assert!(size.is_power_of_two(), "recursive doubling needs 2^k nodes");
        let rounds = size.trailing_zeros();
        BasicAllReduce {
            lib: *lib,
            rank: lib.node,
            size,
            op,
            value,
            round: 0,
            rounds,
            phase: if rounds == 0 {
                Phase::Done
            } else {
                Phase::Send
            },
            send_step: 0,
            producer: 0,
            pending: HashMap::new(),
            recv: BasicRecvCursor {
                state: 0,
                consumer: 0,
                producer_seen: 0,
                cur_len: 0,
                buf: Vec::new(),
            },
        }
    }

    /// A barrier built on the Basic path: an all-reduce of nothing.
    pub fn barrier(lib: &NodeLib) -> Self {
        Self::new(lib, ReduceOp::Sum, 0)
    }

    fn partner(&self) -> u16 {
        self.rank ^ (1 << self.round)
    }

    /// Next send step for this round, or `None` when the message is out.
    fn send_step(&mut self) -> Option<Step> {
        let slot = self.lib.basic_tx.slot_off(self.producer);
        match self.send_step {
            0 => {
                self.send_step = 1;
                let dest = self.lib.user_dest(self.partner());
                let hdr = MsgHeader::basic(dest, Self::PAYLOAD as u8);
                Some(Step::Store {
                    addr: self.lib.asram(slot),
                    data: StoreData::Bytes(hdr.encode().to_vec()),
                })
            }
            // Payload goes out in 8-byte store chunks, like [`SendBasic`].
            s @ (1 | 2) => {
                self.send_step = s + 1;
                let mut payload = [0u8; Self::PAYLOAD as usize];
                payload[..4].copy_from_slice(&self.round.to_le_bytes());
                payload[4..].copy_from_slice(&self.value.to_le_bytes());
                let off = (s as usize - 1) * 8;
                let end = (off + 8).min(payload.len());
                Some(Step::Store {
                    addr: self.lib.asram(slot + 8 + off as u32),
                    data: StoreData::Bytes(payload[off..end].to_vec()),
                })
            }
            3 => {
                self.send_step = 4;
                self.producer = self.producer.wrapping_add(1);
                Some(Step::Store {
                    addr: self
                        .lib
                        .map
                        .ptr_update_addr(false, self.lib.basic_tx.q, self.producer),
                    data: StoreData::U64(0),
                })
            }
            _ => None,
        }
    }

    /// Poll/receive until this round's value is buffered. Returns
    /// `Some(step)` while more polling is needed.
    fn recv_step(&mut self, env: &mut Env<'_>) -> Option<Step> {
        loop {
            if self.pending.contains_key(&self.round) {
                return None;
            }
            let r = &mut self.recv;
            match r.state {
                0 => {
                    if r.consumer != r.producer_seen {
                        r.state = 2;
                        continue;
                    }
                    r.state = 1;
                    return Some(Step::Load {
                        addr: self.lib.asram(self.lib.basic_rx.shadow_off),
                        bytes: 8,
                    });
                }
                1 => {
                    r.producer_seen = env.last_load as u16;
                    if r.consumer == r.producer_seen {
                        r.state = 0;
                        return Some(Step::Compute(POLL_GAP_NS));
                    }
                    r.state = 2;
                }
                2 => {
                    r.state = 3;
                    return Some(Step::Load {
                        addr: self.lib.asram(self.lib.basic_rx.slot_off(r.consumer)),
                        bytes: 8,
                    });
                }
                3 => {
                    let hdr = env.last_load.to_le_bytes();
                    let (_src, _lq, len) = decode_rx_slot(&hdr);
                    r.cur_len = len as u32;
                    r.buf.clear();
                    r.state = 4;
                }
                // States 4.. read the body 8 bytes at a time.
                s => {
                    let off = (s as u32 - 4) * 8;
                    if off > 0 {
                        let take = (r.cur_len - (off - 8)).min(8) as usize;
                        r.buf
                            .extend_from_slice(&env.last_load.to_le_bytes()[..take]);
                    }
                    if off < r.cur_len {
                        r.state += 1;
                        return Some(Step::Load {
                            addr: self
                                .lib
                                .asram(self.lib.basic_rx.slot_off(r.consumer) + 8 + off),
                            bytes: 8,
                        });
                    }
                    if r.buf.len() >= Self::PAYLOAD as usize {
                        let round = u32::from_le_bytes(r.buf[..4].try_into().expect("round"));
                        let value = u64::from_le_bytes(r.buf[4..12].try_into().expect("value"));
                        self.pending.insert(round, value);
                    }
                    r.consumer = r.consumer.wrapping_add(1);
                    r.state = 0;
                    return Some(Step::Store {
                        addr: self
                            .lib
                            .map
                            .ptr_update_addr(true, self.lib.basic_rx.q, r.consumer),
                        data: StoreData::U64(0),
                    });
                }
            }
        }
    }
}

impl Program for BasicAllReduce {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            match self.phase {
                Phase::Send => match self.send_step() {
                    Some(s) => return s,
                    None => self.phase = Phase::Recv,
                },
                Phase::Recv => {
                    if let Some(s) = self.recv_step(env) {
                        return s;
                    }
                    let theirs = self.pending.remove(&self.round).expect("round buffered");
                    self.value = self.op.apply(self.value, theirs);
                    self.round += 1;
                    if self.round >= self.rounds {
                        self.phase = Phase::Done;
                    } else {
                        self.send_step = 0;
                        self.phase = Phase::Send;
                    }
                }
                Phase::Done => {
                    env.emit(AppEventKind::Result {
                        label: "allreduce_basic",
                        value: self.value,
                    });
                    let _ = self.size;
                    return Step::Done;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_codec() {
        for round in 0..64u32 {
            for half in 0..2u8 {
                assert_eq!(split_tag(tag_of(round, half)), (round, half));
            }
        }
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.apply(3, 4), 7);
        assert_eq!(ReduceOp::Min.apply(3, 4), 3);
        assert_eq!(ReduceOp::Max.apply(3, 4), 4);
        assert_eq!(ReduceOp::Sum.apply(u64::MAX, 1), 0, "wrapping sum");
    }
}
