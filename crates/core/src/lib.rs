#![warn(missing_docs)]
#![deny(deprecated)]
//! # voyager — the assembled StarT-Voyager machine
//!
//! This crate glues the substrates into the full system the paper
//! describes — a cluster of 604e SMP nodes, each with its memory bus,
//! caches, DRAM, NIU and service processor, joined by the Arctic fat
//! tree — and exposes the **layer-0 library**: the user-level view of
//! the communication mechanisms (Basic, Express, TagOn, DMA, NUMA,
//! S-COMA) plus the five block-transfer implementations of the paper's
//! evaluation.
//!
//! ## Quick start
//!
//! ```
//! use voyager::{Machine, SystemParams};
//! use voyager::api::{RecvBasic, SendBasic};
//!
//! let mut m = Machine::builder(2).params(SystemParams::default()).build();
//! // Node 0 sends one Basic message to node 1's user queue.
//! m.load_program(0, SendBasic::to_node(&m.lib(0), 1, b"hello, voyager".to_vec()));
//! m.load_program(1, RecvBasic::expecting(&m.lib(1), 1));
//! assert!(m.run().is_quiesced());
//! let msgs = m.received_messages(1);
//! assert_eq!(&msgs[0].1[..], b"hello, voyager");
//! ```
//!
//! ## Structure
//!
//! - [`params`]: every timing constant of the machine in one place.
//! - [`app`]: the application-processor program VM — programs are state
//!   machines that issue loads, stores and compute delays against the
//!   simulated memory system, so the *same* workload runs over every
//!   communication mechanism, as on the real machine.
//! - [`node`]: one node — aP core + L1/L2 + bus + DRAM + NIU + sP
//!   firmware — advanced on the 66 MHz bus clock.
//! - [`machine`]: cluster assembly ([`Machine::builder`]),
//!   queue/translation conventions, and measurement accessors.
//! - [`runloop`]: the run loops — cycle-stepped, idle-skipping
//!   event-driven, and topology-sharded parallel — all bit-identical.
//! - [`api`]: layer-0 library programs (Basic/Express send & receive,
//!   block-transfer requests, region readers/writers, notify waiters).
//! - [`blockxfer`]: the five block-transfer implementations and the
//!   experiment driver that measures them.
//! - [`workloads`]: multi-node traffic generators (ping-pong, streams,
//!   all-to-all) used by tests and the network ablation.
//! - [`metrics`]: serializable experiment records.
//! - [`stats`]: the machine-wide counter snapshot ([`Machine::stats`]).
//! - [`sweep`]: parallel parameter sweeps for the bench harness.
//! - [`tenancy`]: the multi-tenant serving layer — per-node tenant
//!   namespaces over the rx-queue/translation space and a deterministic
//!   per-aP job scheduler ([`Machine::builder`] + `tenants(..)`).

pub mod api;
pub mod app;
pub mod blockxfer;
pub mod collectives;
pub mod machine;
pub mod metrics;
pub mod node;
pub mod params;
pub mod report;
pub mod runloop;
pub mod stats;
pub mod sweep;
pub mod tenancy;
pub mod workloads;

pub use api::{ApiError, CollReq, CollWait};
pub use app::{AppEvent, AppEventKind, Env, Program, Step};
pub use machine::{DeltaCheckpoint, Machine, MachineBuilder, NodeLib};
pub use metrics::{XferMeasurement, XferPoint};
pub use node::Node;
pub use params::SystemParams;
#[allow(deprecated)]
pub use runloop::RunMode;
pub use runloop::{Parallelism, RunOutcome, ShardPolicy};
pub use stats::MachineStats;
pub use tenancy::{
    JobBody, SchedPolicy, StreamItem, TenancyParams, TenantClass, TenantLib, TenantRegistry,
    TenantSchedStat, TenantScheduler, TenantSpec,
};

// Re-export the substrate crates so downstream users need only `voyager`.
pub use sv_arctic as arctic;
pub use sv_firmware as firmware;
pub use sv_membus as membus;
pub use sv_niu as niu;
pub use sv_sim as sim;
