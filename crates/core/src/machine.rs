//! Cluster assembly and configuration.
//!
//! [`Machine::builder`] builds `n` nodes and the Arctic network, and
//! installs the default queue/translation conventions every example and
//! benchmark uses:
//!
//! | Logical queue | Hardware slot | Consumer | Purpose |
//! |---|---|---|---|
//! | 0 | rx 0 (sSRAM buffer) | sP firmware | service queue (DMA requests, protocol traffic) |
//! | 1 | rx 1 (aSRAM, shadow pointer) | aP polls | user Basic messages + transfer notifications |
//! | 2 | rx 2 (Express, 8-byte entries) | aP loads | user Express messages |
//! | — | rx 15 | sP firmware | receive-queue-cache miss/overflow queue |
//!
//! Transmit: tx 1 = user Basic (translated), tx 2 = user Express.
//! The translation table maps virtual destination `d` to node `d`'s user
//! queue, `0x100 + d` to node `d`'s service queue, and `0x200 + d` to
//! node `d`'s Express queue — the OS-installed protection boundary.
//!
//! ```
//! use voyager::{Machine, Parallelism, SystemParams};
//!
//! let mut m = Machine::builder(4)
//!     .params(SystemParams::default())
//!     .parallelism(Parallelism::Fixed(2))
//!     .build();
//! assert!(m.run().is_quiesced());
//! ```
//!
//! The run loops themselves (cycle-stepped, event-driven, sharded
//! parallel) live in [`crate::runloop`].

use crate::app::{AppEvent, AppEventKind, Program};
use crate::node::Node;
use crate::params::SystemParams;
use crate::runloop::{ExecPlan, Parallelism, ShardPolicy};
use bytes::Bytes;
use sv_arctic::Network;
use sv_niu::msg::NetPayload;
use sv_niu::queues::{QueueBuffer, RxFullPolicy, RxService};
use sv_niu::translate::XlateEntry;
use sv_niu::{QueueId, SramSel};
use sv_sim::{Clock, Time};

/// Virtual-destination bases installed in every node's translation table.
///
/// The four destination classes live at multiples of a per-machine
/// *stride*: user Basic at `0`, sP service at `stride`, user Express at
/// `2 * stride`, and high-priority user Basic at `3 * stride` (same
/// logical queue as user Basic, but the translation entry sets the
/// high-priority bit so the packet rides the network's High class /
/// VC 0). The stride is 256 for machines up to 256 nodes — so the
/// constants below are exact there and every historical trace/golden is
/// unchanged — and widens to the next power of two above the node count
/// for larger machines (up to the 16384-node ceiling the 16-bit
/// destination field allows). Always derive destinations through
/// [`NodeLib::user_dest`]/[`NodeLib::svc_dest`]/[`NodeLib::express_dest`],
/// which apply the machine's stride.
pub mod dest {
    /// `USER + d` → node `d`, logical queue 1 (user Basic).
    pub const USER: u16 = 0;
    /// `SVC + d` → node `d`, logical queue 0 (sP service), machines ≤ 256 nodes.
    pub const SVC: u16 = 0x100;
    /// `EXPRESS + d` → node `d`, logical queue 2 (user Express), machines ≤ 256 nodes.
    pub const EXPRESS: u16 = 0x200;
    /// `USER_HI + d` → node `d`, logical queue 1 at high network
    /// priority, machines ≤ 256 nodes.
    pub const USER_HI: u16 = 0x300;

    /// Destination-class stride for an `n`-node machine.
    pub fn stride(n: u16) -> u16 {
        assert!(n <= 16_384, "destination namespace caps at 16384 nodes");
        n.next_power_of_two().max(SVC)
    }
}

/// aSRAM offsets of the pointer shadows.
pub mod shadow {
    /// Base of the shadow block.
    pub const BASE: u32 = 0x1C000;
    /// Receive-queue producer shadow for queue `q`.
    pub fn rx_producer(q: u8) -> u32 {
        BASE + q as u32 * 8
    }
    /// Transmit-queue consumer shadow for queue `q`.
    pub fn tx_consumer(q: u8) -> u32 {
        BASE + 0x100 + q as u32 * 8
    }
}

/// aSRAM scratch region available to user programs (TagOn staging).
pub const USER_SCRATCH: u32 = 0x1B000;

/// A read-only view of one queue as the user library sees it.
#[derive(Debug, Clone, Copy)]
pub struct QueueView {
    /// Queue index.
    pub q: u8,
    /// Buffer base offset in aSRAM.
    pub base: u32,
    /// Number of entries.
    pub entries: u16,
    /// Entry bytes.
    pub entry_bytes: u32,
    /// aSRAM offset of the relevant shadow pointer.
    pub shadow_off: u32,
}

impl QueueView {
    /// aSRAM offset of the slot for free-running pointer `ptr`.
    pub fn slot_off(&self, ptr: u16) -> u32 {
        self.base + (ptr % self.entries) as u32 * self.entry_bytes
    }
}

/// The layer-0 library's description of one node (addresses, queue
/// geometry, destination conventions). Copyable; programs embed it.
#[derive(Debug, Clone, Copy)]
pub struct NodeLib {
    /// Destination node.
    pub node: u16,
    /// Number of nodes in the machine.
    pub nodes: u16,
    /// Physical address map.
    pub map: sv_niu::AddressMap,
    /// Basic tx.
    pub basic_tx: QueueView,
    /// Basic rx.
    pub basic_rx: QueueView,
    /// Express tx q.
    pub express_tx_q: u8,
    /// Express rx q.
    pub express_rx_q: u8,
}

impl NodeLib {
    /// Physical address of aSRAM offset `off`.
    pub fn asram(&self, off: u32) -> u64 {
        self.map.asram_addr(off)
    }

    /// Virtual destination of node `d`'s user queue.
    pub fn user_dest(&self, d: u16) -> u16 {
        dest::USER + d
    }

    /// Virtual destination of node `d`'s service queue.
    pub fn svc_dest(&self, d: u16) -> u16 {
        dest::stride(self.nodes) + d
    }

    /// Virtual destination of node `d`'s Express queue.
    pub fn express_dest(&self, d: u16) -> u16 {
        2 * dest::stride(self.nodes) + d
    }

    /// Virtual destination of node `d`'s user queue at high network
    /// priority — same logical queue as [`NodeLib::user_dest`], but the
    /// packet rides the High class (VC 0 under armed QoS), so latency-
    /// critical messages bypass Low-class congestion.
    pub fn user_dest_hi(&self, d: u16) -> u16 {
        3 * dest::stride(self.nodes) + d
    }
}

/// Run-loop execution counters, part of [`Machine::stats`]. Only events
/// that are invariant across worker counts and shard policies are
/// counted: node ticks, arrival publishes and post-tick republishes.
/// Full-scan rebuilds ([`Machine`]-level) and shard priming are
/// deliberately excluded — they differ between the sequential and
/// sharded paths.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunLoopCounters {
    /// Node ticks executed ([`crate::Node::tick`] calls).
    pub node_ticks: u64,
    /// Wake-index publishes on arrival/post-tick edges.
    pub wake_republishes: u64,
}

/// The assembled machine.
pub struct Machine {
    /// Timing/geometry parameters.
    pub params: SystemParams,
    /// Number of nodes in the machine.
    pub nodes: Vec<Node>,
    /// Network-level statistics.
    pub network: Network<NetPayload>,
    /// When set, packets bypass the Arctic model and travel through a
    /// contention-free fixed-latency pipe — the network-cost ablation
    /// ([`MachineBuilder::ideal_network`]).
    pub(crate) ideal: Option<sv_arctic::IdealNetwork<NetPayload>>,
    pub(crate) clock: Clock,
    pub(crate) cycle: u64,
    /// The resolved execution plan (stepped/workers/policy), fixed at
    /// build time by [`MachineBuilder::try_build`].
    pub(crate) plan: ExecPlan,
    /// The parallelism as requested (before resolution), reported by
    /// [`Machine::parallelism`].
    pub(crate) requested: Parallelism,
    /// Current simulated time (updated every step).
    pub now: Time,
    /// Memoized per-node wake cycles for the event loop. `nodes` is
    /// public, so the index is only trusted while `wake_valid` holds;
    /// every public run entry point clears the flag and the loop
    /// rebuilds lazily (see [`crate::runloop`]).
    pub(crate) wake: sv_sim::WakeIndex,
    pub(crate) wake_valid: bool,
    /// Scratch buffers reused across event steps so the steady-state
    /// loop allocates nothing.
    pub(crate) due: Vec<u32>,
    pub(crate) delivered: Vec<(Time, sv_arctic::Packet<NetPayload>)>,
    /// Run-loop execution counters (see [`RunLoopCounters`]).
    pub(crate) runstats: RunLoopCounters,
    /// Active delta-checkpoint chain, if [`Machine::try_checkpoint_delta`]
    /// has emitted a base snapshot (see that method for the epoch rules).
    pub(crate) delta_chain: Option<DeltaChain>,
    /// The tenancy configuration armed at build time, if any
    /// ([`MachineBuilder::tenants`]); drives the per-tenant stats
    /// section and the [`Machine::tenant_lib`] accessors.
    pub(crate) tenancy: Option<crate::tenancy::TenancyParams>,
}

/// Linkage state for an in-progress delta-checkpoint chain.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeltaChain {
    /// [`sv_sim::ckpt::fnv1a64`] over the base snapshot bytes.
    base_id: u64,
    /// [`sv_sim::ckpt::fnv1a64`] over the serialized parameter section.
    param_hash: u64,
    /// Sequence number of the last emitted cut (0 = base only).
    seq: u64,
    /// Cycle of the last emitted cut.
    last_cycle: u64,
}

/// One cut from [`Machine::try_checkpoint_delta`]: either the chain's
/// base (a complete snapshot in the full `SVCK` format, restorable on
/// its own) or an incremental `SVDK` delta holding only the sections
/// dirty since the previous cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaCheckpoint {
    /// First cut of a chain: a complete full-format snapshot.
    Base(Vec<u8>),
    /// Subsequent cut: dirty sections only, chained to the base.
    Delta(Vec<u8>),
}

impl DeltaCheckpoint {
    /// The serialized bytes, whichever side this is.
    pub fn bytes(&self) -> &[u8] {
        match self {
            DeltaCheckpoint::Base(b) | DeltaCheckpoint::Delta(b) => b,
        }
    }

    /// Consume into the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            DeltaCheckpoint::Base(b) | DeltaCheckpoint::Delta(b) => b,
        }
    }

    /// True for the chain-opening full snapshot.
    pub fn is_base(&self) -> bool {
        matches!(self, DeltaCheckpoint::Base(_))
    }
}

/// Configures and assembles a [`Machine`]. Created by
/// [`Machine::builder`]; every knob has a sensible default, so
/// `Machine::builder(n).build()` is a complete machine.
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    n: usize,
    params: SystemParams,
    ideal_latency_ns: Option<u64>,
    traced_nodes: Vec<u16>,
    stepped: bool,
    par: Parallelism,
    policy: ShardPolicy,
    /// Pre-0.3 `threads(k)` silently clamped instead of erroring; the
    /// deprecated shims set this so old call sites keep building.
    legacy_clamp: bool,
    sample_latency: bool,
    tenancy: Option<crate::tenancy::TenancyParams>,
}

impl MachineBuilder {
    /// Replace the full parameter set (timing, link, routing, seeds).
    pub fn params(mut self, params: SystemParams) -> Self {
        self.params = params;
        self
    }

    /// Use an ideal (contention-free, fixed-latency) pipe instead of the
    /// Arctic model — the ablation that isolates NIU-side costs from
    /// network-side costs.
    pub fn ideal_network(mut self, fixed_latency_ns: u64) -> Self {
        self.ideal_latency_ns = Some(fixed_latency_ns);
        self
    }

    /// Select the Arctic route-spreading policy (network topology knob).
    pub fn topology(mut self, routing: sv_arctic::RoutingPolicy) -> Self {
        self.params.routing = routing;
        self
    }

    /// Inject network faults at the given rates, and arm the NIUs'
    /// reliable-delivery layer so the machine still guarantees exactly-
    /// once message delivery (up to the retransmit cap) on the faulty
    /// fabric. Deterministic: same [`sv_arctic::FaultParams::seed`], same
    /// faults, on every run mode and thread count.
    pub fn faults(mut self, faults: sv_arctic::FaultParams) -> Self {
        self.params.faults = faults;
        self.params.niu.reliable = true;
        self
    }

    /// Arm Arctic virtual channels with credit-based flow control.
    /// Every fat-tree link then carries [`sv_arctic::QosParams::vcs`]
    /// virtual channels, each with a bounded `credits_per_vc`-slot
    /// buffer; transmitters stall on credit exhaustion instead of
    /// queueing unboundedly, and the output port arbitrates VCs by
    /// priority or round-robin. Left unset, the network runs the legacy
    /// two-priority unbounded-buffer model bit-identically to prior
    /// releases. Zero-VC or zero-credit configurations are reported by
    /// [`MachineBuilder::try_build`] as
    /// [`crate::ApiError::ZeroVirtualChannels`] /
    /// [`crate::ApiError::ZeroCredits`].
    pub fn network_qos(mut self, qos: sv_arctic::QosParams) -> Self {
        self.params.qos = Some(qos);
        self
    }

    /// Enable the debugging tracer of node `i` from cycle 0. May be
    /// called once per node of interest.
    pub fn tracing(mut self, i: u16) -> Self {
        self.traced_nodes.push(i);
        self
    }

    /// Select how the event-driven loop is parallelized:
    /// [`Parallelism::Sequential`] (the default), a fixed worker count,
    /// or [`Parallelism::Auto`]. Every choice produces bit-identical
    /// simulation results — see [`crate::runloop`]. Invalid combinations
    /// (zero workers, more workers than the finest shard partition) are
    /// reported by [`MachineBuilder::try_build`].
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.stepped = false;
        self.par = par;
        self.legacy_clamp = false;
        self
    }

    /// Choose how nodes are partitioned into shards for parallel runs
    /// (default [`ShardPolicy::BySubtree`]). Affects wall-clock speed
    /// only, never results.
    pub fn shard_policy(mut self, policy: ShardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shard the nodes across `k` worker threads inside lookahead-bounded
    /// windows. `0` and `1` both mean sequential; oversized counts clamp.
    #[deprecated(
        since = "0.3.0",
        note = "use parallelism(Parallelism::Fixed(k)) or parallelism(Parallelism::Auto)"
    )]
    pub fn threads(mut self, k: usize) -> Self {
        self.stepped = false;
        self.par = if k <= 1 {
            Parallelism::Sequential
        } else {
            Parallelism::Fixed(k)
        };
        self.legacy_clamp = true;
        self
    }

    /// Use the original tick-every-cycle loop instead of the event-driven
    /// one. The two are bit-identical; this exists for cross-checking and
    /// for measuring the event loop's speedup.
    pub fn cycle_stepped(mut self) -> Self {
        self.stepped = true;
        self
    }

    /// Stamp every packet at injection so [`Machine::stats`] reports
    /// per-class inject→deliver latency distributions. Off by default:
    /// the hot path then pays a single untaken branch per send.
    pub fn sample_latency(mut self, on: bool) -> Self {
        self.sample_latency = on;
        self
    }

    /// Arm the multi-tenant serving layer (see [`crate::tenancy`]).
    /// Every node then carves `tenants_per_node` protected tenant
    /// namespaces: one logical rx queue per tenant (cached across
    /// hardware slots [`crate::tenancy::TENANT_SLOT_LO`]`..=`
    /// [`crate::tenancy::TENANT_SLOT_HI`] by the sP firmware), and one
    /// translation-table slice per tenant whose entries only name that
    /// tenant's own queues. A confined tenant additionally gets tx
    /// queue 3 with destination masks pinning every lookup inside its
    /// slice. Implies per-packet latency stamping (the per-tenant
    /// hit/miss latency split needs it). Invalid configurations are
    /// reported by [`MachineBuilder::try_build`] as
    /// [`crate::ApiError::TenantCountZero`],
    /// [`crate::ApiError::ConfinedTenantOutOfRange`] or
    /// [`crate::ApiError::TenantNamespaceOverflow`].
    pub fn tenants(mut self, tp: crate::tenancy::TenancyParams) -> Self {
        self.tenancy = Some(tp);
        self
    }

    /// Resolve the builder's parallelism knobs against a machine of `n`
    /// nodes into the concrete plan the run loops execute.
    fn resolve_plan(&self, n: usize) -> Result<ExecPlan, crate::api::ApiError> {
        let workers = self.par.resolve(n, self.legacy_clamp)?;
        Ok(ExecPlan {
            stepped: self.stepped,
            workers,
            policy: self.policy,
        })
    }

    /// Assemble the machine; panics on an invalid parallelism
    /// configuration. See [`MachineBuilder::try_build`] for the checked
    /// form.
    pub fn build(self) -> Machine {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Assemble the machine, reporting invalid configuration
    /// ([`crate::ApiError::WorkerCountZero`],
    /// [`crate::ApiError::WorkersExceedShards`],
    /// [`crate::ApiError::ZeroVirtualChannels`],
    /// [`crate::ApiError::ZeroCredits`]) as a value instead of
    /// panicking.
    pub fn try_build(self) -> Result<Machine, crate::api::ApiError> {
        if let Some(q) = self.params.qos {
            if q.vcs == 0 {
                return Err(crate::api::ApiError::ZeroVirtualChannels);
            }
            if q.credits_per_vc == 0 {
                return Err(crate::api::ApiError::ZeroCredits);
            }
        }
        let plan = self.resolve_plan(self.n)?;
        // Tenancy validates against the node count and may need more
        // logical rx queues than the default namespace; the bump must
        // precede assembly (the rx-queue cache is sized at build).
        let mut params = self.params;
        let tenancy = match self.tenancy {
            Some(tp) => {
                let reg = crate::tenancy::TenantRegistry::try_new(self.n as u16, &tp)?;
                params.niu.logical_rx_queues =
                    params.niu.logical_rx_queues.max(reg.lq_end() as usize);
                Some((tp, reg))
            }
            None => None,
        };
        let mut m = Machine::assemble(self.n, params, plan, self.par);
        if let Some((tp, reg)) = tenancy {
            m.arm_tenancy(&tp, &reg);
            m.tenancy = Some(tp);
        }
        if let Some(latency) = self.ideal_latency_ns {
            m.ideal = Some(sv_arctic::IdealNetwork::new(
                self.n.max(2),
                latency,
                self.params.link,
            ));
        }
        for i in self.traced_nodes {
            m.enable_tracing(i, true);
        }
        if self.sample_latency {
            m.set_latency_sampling(true);
        }
        Ok(m)
    }
}

impl Machine {
    /// Start configuring an `n`-node machine with the default conventions
    /// installed. Runs event-driven on one thread unless configured
    /// otherwise.
    pub fn builder(n: usize) -> MachineBuilder {
        MachineBuilder {
            n,
            params: SystemParams::default(),
            ideal_latency_ns: None,
            traced_nodes: Vec::new(),
            stepped: false,
            par: Parallelism::default(),
            policy: ShardPolicy::default(),
            legacy_clamp: false,
            sample_latency: false,
            tenancy: None,
        }
    }

    fn assemble(n: usize, params: SystemParams, plan: ExecPlan, requested: Parallelism) -> Self {
        assert!(n >= 1, "a machine needs at least one node");
        let mut nodes: Vec<Node> = (0..n)
            .map(|i| Node::new(i as u16, n as u16, params))
            .collect();
        for node in &mut nodes {
            Self::configure_node(node, n as u16);
        }
        let mut network = Network::new(n.max(2), params.link, params.routing);
        network.set_faults(params.faults);
        if let Some(q) = params.qos {
            network.set_qos(q);
        }
        Machine {
            params,
            nodes,
            network,
            ideal: None,
            clock: params.bus_clock(),
            cycle: 0,
            plan,
            requested,
            now: Time::ZERO,
            wake: sv_sim::WakeIndex::new(n),
            wake_valid: false,
            due: Vec::new(),
            delivered: Vec::new(),
            runstats: RunLoopCounters::default(),
            delta_chain: None,
            tenancy: None,
        }
    }

    /// Build an `n`-node machine with the default conventions installed.
    #[deprecated(since = "0.2.0", note = "use Machine::builder(n).params(p).build()")]
    pub fn new(n: usize, params: SystemParams) -> Self {
        // The legacy constructors keep the legacy loop, so old call sites
        // observe exactly the old behaviour (which the event modes are
        // tested to reproduce anyway).
        Self::assemble(
            n,
            params,
            ExecPlan {
                stepped: true,
                ..ExecPlan::default()
            },
            Parallelism::Sequential,
        )
    }

    /// Build a machine whose network is an ideal (contention-free,
    /// fixed-latency) pipe instead of the Arctic model.
    #[deprecated(
        since = "0.2.0",
        note = "use Machine::builder(n).params(p).ideal_network(latency_ns).build()"
    )]
    pub fn new_ideal(n: usize, params: SystemParams, fixed_latency_ns: u64) -> Self {
        let mut m = Self::assemble(
            n,
            params,
            ExecPlan {
                stepped: true,
                ..ExecPlan::default()
            },
            Parallelism::Sequential,
        );
        m.ideal = Some(sv_arctic::IdealNetwork::new(
            n.max(2),
            fixed_latency_ns,
            params.link,
        ));
        m
    }

    /// The parallelism this machine was configured with — the requested
    /// value, not the resolution; see [`Machine::workers`] for the
    /// worker count actually in use.
    pub fn parallelism(&self) -> Parallelism {
        self.requested
    }

    /// The shard policy parallel runs partition the nodes under.
    pub fn shard_policy(&self) -> ShardPolicy {
        self.plan.policy
    }

    /// The resolved worker count the run loop uses; `1` means
    /// sequential.
    pub fn workers(&self) -> usize {
        self.plan.workers
    }

    /// True when this machine runs the cycle-stepped reference loop
    /// instead of the event-driven one.
    pub fn is_cycle_stepped(&self) -> bool {
        self.plan.stepped
    }

    /// Number of shards the current plan partitions the nodes into — a
    /// pure function of node count, topology, policy and worker count.
    pub fn shard_count(&self) -> usize {
        self.shard_map().shards
    }

    /// How this machine advances time, in the pre-0.3 vocabulary.
    #[deprecated(
        since = "0.3.0",
        note = "use Machine::parallelism / workers / is_cycle_stepped"
    )]
    #[allow(deprecated)]
    pub fn run_mode(&self) -> crate::runloop::RunMode {
        if self.plan.stepped {
            crate::runloop::RunMode::CycleStepped
        } else {
            crate::runloop::RunMode::Event {
                threads: self.plan.workers,
            }
        }
    }

    /// Switch run modes mid-flight. Deprecated: post-construction mode
    /// flips bypass builder validation — configure the loop at build
    /// time instead. Keeps the pre-0.3 clamping behaviour.
    #[deprecated(
        since = "0.3.0",
        note = "configure at build time with MachineBuilder::parallelism / cycle_stepped"
    )]
    #[allow(deprecated)]
    pub fn set_run_mode(&mut self, mode: crate::runloop::RunMode) {
        match mode {
            crate::runloop::RunMode::CycleStepped => self.plan.stepped = true,
            crate::runloop::RunMode::Event { threads } => {
                self.plan.stepped = false;
                self.plan.workers = threads.clamp(1, self.nodes.len().max(1));
                self.requested = if threads <= 1 {
                    Parallelism::Sequential
                } else {
                    Parallelism::Fixed(threads)
                };
            }
        }
    }

    /// Turn per-class packet latency sampling on or off for every NIU
    /// (see [`MachineBuilder::sample_latency`]).
    pub fn set_latency_sampling(&mut self, on: bool) {
        for node in &mut self.nodes {
            node.ckpt_mark_dirty();
            node.niu.sample_latency = on;
        }
    }

    fn configure_node(node: &mut Node, nodes: u16) {
        let niu = &mut node.niu;
        // rx 0: sP service queue in sSRAM.
        {
            let q = &mut niu.ctrl.rx[0];
            q.buf = QueueBuffer {
                sram: SramSel::S,
                base: 0x4000,
                entries: 16,
                entry_bytes: 96,
            };
            q.service = RxService::SpPolled;
            q.full_policy = RxFullPolicy::Retry;
        }
        // rx 1: user Basic queue, aP-polled with producer shadow.
        {
            let q = &mut niu.ctrl.rx[1];
            q.service = RxService::ApPolled;
            q.shadow_addr = Some((SramSel::A, shadow::rx_producer(1)));
            q.full_policy = RxFullPolicy::Retry;
        }
        // rx 2: user Express queue (8-byte entries).
        {
            let q = &mut niu.ctrl.rx[2];
            q.express = true;
            q.buf.entry_bytes = 8;
            q.buf.entries = 64;
            q.service = RxService::ApPolled;
            // Retry (hold the packet, backpressuring the network) keeps
            // express streams lossless; Drop is exercised by unit tests.
            q.full_policy = RxFullPolicy::Retry;
        }
        // rx 15: miss/overflow queue, firmware-serviced, in sSRAM.
        {
            let miss = niu.params.miss_queue_slot;
            let q = &mut niu.ctrl.rx[miss];
            q.buf = QueueBuffer {
                sram: SramSel::S,
                base: 0x5000,
                entries: 16,
                entry_bytes: 96,
            };
            q.service = RxService::SpPolled;
            q.full_policy = RxFullPolicy::Drop;
        }
        // tx 1: user Basic queue with consumer shadow.
        niu.ctrl.tx[1].shadow_addr = Some((SramSel::A, shadow::tx_consumer(1)));
        // tx 2: user Express queue.
        {
            let q = &mut niu.ctrl.tx[2];
            q.express = true;
            q.buf.entry_bytes = 8;
            q.buf.entries = 64;
        }
        // Receive-queue cache: hot logical queues resident.
        niu.ctrl.rx_cache.bind(0, QueueId(0));
        niu.ctrl.rx_cache.bind(1, QueueId(1));
        niu.ctrl.rx_cache.bind(2, QueueId(2));
        // Translation table: the four destination classes for every
        // node, strided by machine size (a no-op grow at ≤ 256 nodes,
        // where the table's construction size already covers them).
        let stride = dest::stride(nodes);
        niu.ctrl.xlate.grow_to(4 * stride as usize);
        for d in 0..nodes {
            for (base, lq, high) in [
                (dest::USER, 1u16, false),
                (stride, 0u16, false),
                (2 * stride, 2u16, false),
                (3 * stride, 1u16, true),
            ] {
                niu.ctrl.xlate.install(
                    base + d,
                    XlateEntry {
                        valid: true,
                        node: d,
                        logical_q: lq,
                        high_priority: high,
                    },
                );
            }
        }
    }

    /// Install the tenancy conventions on every node: per-tenant
    /// translation slices, firmware-managed rx-cache slots, the
    /// confined tenant's masked tx queue, and the NIU/firmware
    /// attribution counters. Build-time only; the registry has already
    /// validated the carving against the machine size.
    fn arm_tenancy(
        &mut self,
        tp: &crate::tenancy::TenancyParams,
        reg: &crate::tenancy::TenantRegistry,
    ) {
        use crate::tenancy::{TenantClass, CONFINED_TX_Q, TENANT_SLOT_HI, TENANT_SLOT_LO};
        let nodes = self.nodes.len() as u16;
        for node in &mut self.nodes {
            let niu = &mut node.niu;
            // Tenant t's slice entry d names node d's copy of the same
            // tenant's logical queue — no slice can name another
            // tenant's inbox. Latency-class slices ride the network's
            // High priority (the QoS-isolation lever of study S10).
            niu.ctrl.xlate.grow_to(reg.xlate_end());
            for t in 0..reg.count {
                let high = tp.tenant_class(t) == TenantClass::Latency;
                for d in 0..nodes {
                    niu.ctrl.xlate.install(
                        reg.tenant_dest(t, d),
                        XlateEntry {
                            valid: true,
                            node: d,
                            logical_q: reg.lq(t),
                            high_priority: high,
                        },
                    );
                }
            }
            // The managed hardware slots cache the tenant logical
            // queues under firmware LRU control; arriving messages are
            // drained by the sP, and a full slot diverts to the miss
            // queue (the default Divert policy) rather than
            // backpressuring unrelated tenants.
            for s in TENANT_SLOT_LO..=TENANT_SLOT_HI {
                niu.ctrl.rx[s as usize].service = RxService::SpPolled;
            }
            // The confined tenant's tx queue: AND/OR destination masks
            // pin every translation lookup inside its own slice.
            if let Some(c) = tp.confined {
                let q = &mut niu.ctrl.tx[CONFINED_TX_Q as usize];
                q.shadow_addr = Some((SramSel::A, shadow::tx_consumer(CONFINED_TX_Q)));
                q.and_mask = reg.slice - 1;
                q.or_mask = reg.xlate_base + c * reg.slice;
            }
            niu.arm_tenancy(reg.lq_base, reg.count);
            // Latency-class queues are pinned once resident: the LRU
            // refill never evicts them, so the QoS class keeps the
            // hardware hit path even when the pool thrashes (S10).
            let pinned = (0..reg.count)
                .map(|t| tp.tenant_class(t) == TenantClass::Latency)
                .collect();
            node.fw.arm_tenancy(
                reg.lq_base,
                reg.count,
                TENANT_SLOT_LO,
                TENANT_SLOT_HI,
                pinned,
            );
        }
    }

    /// The tenancy configuration this machine was built with, if any.
    pub fn tenancy(&self) -> Option<crate::tenancy::TenancyParams> {
        self.tenancy
    }

    /// The per-node tenant namespace carving, when tenancy is armed.
    pub fn tenant_registry(&self) -> Option<crate::tenancy::TenantRegistry> {
        self.tenancy.as_ref().map(|tp| {
            crate::tenancy::TenantRegistry::try_new(self.nodes.len() as u16, tp)
                .expect("tenancy was validated at build time")
        })
    }

    /// Tenant `t`'s handle on node `i` — the tenancy analogue of
    /// [`Machine::lib`]. Panics when tenancy is not armed or `t` is out
    /// of range.
    pub fn tenant_lib(&self, i: u16, t: u16) -> crate::tenancy::TenantLib {
        let reg = self
            .tenant_registry()
            .expect("tenant_lib requires MachineBuilder::tenants");
        assert!(t < reg.count, "tenant {t} out of range ({})", reg.count);
        crate::tenancy::TenantLib {
            lib: self.lib(i),
            tenant: t,
            registry: reg,
        }
    }

    /// The library view of node `i`.
    pub fn lib(&self, i: u16) -> NodeLib {
        let node = &self.nodes[i as usize];
        let tx1 = &node.niu.ctrl.tx[1];
        let rx1 = &node.niu.ctrl.rx[1];
        NodeLib {
            node: i,
            nodes: self.nodes.len() as u16,
            map: self.params.map,
            basic_tx: QueueView {
                q: 1,
                base: tx1.buf.base,
                entries: tx1.buf.entries,
                entry_bytes: tx1.buf.entry_bytes,
                shadow_off: shadow::tx_consumer(1),
            },
            basic_rx: QueueView {
                q: 1,
                base: rx1.buf.base,
                entries: rx1.buf.entries,
                entry_bytes: rx1.buf.entry_bytes,
                shadow_off: shadow::rx_producer(1),
            },
            express_tx_q: 2,
            express_rx_q: 2,
        }
    }

    /// Load a program onto node `i`'s application processor.
    pub fn load_program(&mut self, i: u16, p: impl Program + 'static) {
        self.nodes[i as usize].load_program(Box::new(p));
    }

    /// Advance one bus cycle.
    pub fn step(&mut self) {
        let now = self.clock.edge(self.cycle);
        self.now = now;
        let delivered = match &mut self.ideal {
            Some(ideal) => {
                ideal.advance(now);
                ideal.take_delivered()
            }
            None => {
                self.network.advance(now);
                self.network.take_delivered()
            }
        };
        for (_, pkt) in delivered {
            let node = &mut self.nodes[pkt.dst as usize];
            if node.tracer.enabled() {
                node.tracer.record(
                    now,
                    sv_sim::trace::Subsys::Net,
                    format!("rx {}B from node {}", pkt.wire_bytes, pkt.src),
                );
            }
            node.niu.push_arrival_packet(self.cycle, pkt);
        }
        let cycle = self.cycle;
        // The stepped loop visits every node every cycle by definition;
        // it maintains no wake index, so republishes stay untouched.
        self.runstats.node_ticks += self.nodes.len() as u64;
        for node in &mut self.nodes {
            node.tick(cycle, now);
        }
        for node in &mut self.nodes {
            while let Some(pkt) = node.niu.pop_ready_packet(cycle) {
                if node.tracer.enabled() {
                    node.tracer.record(
                        now,
                        sv_sim::trace::Subsys::Net,
                        format!("tx {}B to node {}", pkt.wire_bytes, pkt.dst),
                    );
                }
                match &mut self.ideal {
                    Some(ideal) => ideal.inject(now, pkt),
                    None => self.network.inject(now, pkt),
                }
            }
        }
        self.cycle += 1;
    }

    /// True when nothing in the machine has work left: no packets in
    /// flight and every node's engines are drained.
    pub(crate) fn quiescent(&self) -> bool {
        let net_quiet = match &self.ideal {
            Some(ideal) => ideal.next_event_time().is_none(),
            None => self.network.next_event_time().is_none(),
        };
        net_quiet && self.nodes.iter().all(|n| !n.has_work())
    }

    /// Turn the debugging tracer of node `i` on or off. While enabled,
    /// the node records application memory operations, bus completions /
    /// ARTRYs, and packet movement into a ring buffer retrievable with
    /// [`Machine::trace`].
    pub fn enable_tracing(&mut self, i: u16, on: bool) {
        self.nodes[i as usize].ckpt_mark_dirty();
        self.nodes[i as usize].tracer.set_enabled(on);
    }

    /// Render node `i`'s retained trace, optionally filtered by
    /// subsystem.
    pub fn trace(&self, i: u16, filter: Option<sv_sim::trace::Subsys>) -> String {
        self.nodes[i as usize].tracer.render(filter)
    }

    /// Event log of node `i`.
    pub fn events(&self, i: u16) -> &[AppEvent] {
        &self.nodes[i as usize].events
    }

    /// All Basic messages received by node `i`: `(source, payload)`.
    pub fn received_messages(&self, i: u16) -> Vec<(u16, Bytes)> {
        self.events(i)
            .iter()
            .filter_map(|e| match &e.kind {
                AppEventKind::Received { src, data, .. } => Some((*src, data.clone())),
                _ => None,
            })
            .collect()
    }

    /// Timestamp of the first event matching `f` on node `i`.
    pub fn event_time(&self, i: u16, f: impl Fn(&AppEventKind) -> bool) -> Option<Time> {
        self.events(i).iter().find(|e| f(&e.kind)).map(|e| e.at)
    }

    /// Total sP busy time across all nodes, ns.
    pub fn total_sp_busy_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.fw.occupancy.busy_ns).sum()
    }

    /// Map a reflective-memory window (paper §5 extension): stores into
    /// `[reflect_base + local_off, +len)` at node `a` propagate to
    /// `[peer_addr, +len)` at node `b`. `hw` selects the enhanced-aBIU
    /// hardware path; otherwise the sP forwards each update.
    pub fn map_reflective(
        &mut self,
        a: u16,
        local_off: u64,
        b: u16,
        peer_addr: u64,
        len: u64,
        hw: bool,
    ) {
        self.nodes[a as usize].ckpt_mark_dirty();
        let abiu = &mut self.nodes[a as usize].niu.abiu;
        abiu.reflect_hw = hw;
        abiu.reflect_windows.push(sv_niu::abiu::ReflectiveWindow {
            local_off,
            len,
            peer: b,
            peer_base: peer_addr,
        });
    }

    /// Put node `i`'s aBIU into write-tracking mode (the diff-ing
    /// extension): S-COMA-region writes are recorded in clsSRAM instead
    /// of gated, for later [`crate::api::request_flush`].
    pub fn enable_write_tracking(&mut self, i: u16) {
        self.nodes[i as usize].ckpt_mark_dirty();
        self.nodes[i as usize].niu.abiu.write_tracking = true;
    }

    /// Convenience: write bytes directly into node `i`'s memory (test
    /// and benchmark setup; costs nothing, like pre-loaded data).
    pub fn mem_write(&mut self, i: u16, addr: u64, data: &[u8]) {
        self.nodes[i as usize].mem.write(addr, data);
    }

    /// Convenience: read bytes from node `i`'s memory.
    pub fn mem_read(&self, i: u16, addr: u64, len: usize) -> Vec<u8> {
        self.nodes[i as usize].mem.read_vec(addr, len)
    }

    /// Serialize the complete machine state into a versioned snapshot.
    ///
    /// The snapshot captures everything that determines future behaviour
    /// — parameters, per-node component state (caches, NIU, firmware,
    /// memory, in-flight bus/CPU operations), program execution state,
    /// the network (including fault-model RNG and in-flight packets),
    /// and all statistics. Restoring it with
    /// [`MachineBuilder::restore`] and running to completion produces
    /// [`Machine::stats`] output byte-identical to the uninterrupted
    /// run, in every run mode and thread count.
    ///
    /// Panics when a node runs a program that cannot be snapshotted
    /// (e.g. a closure-based [`crate::FnProgram`]); see
    /// [`Machine::try_checkpoint`] for the checked form.
    pub fn checkpoint(&self) -> Vec<u8> {
        self.try_checkpoint().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked form of [`Machine::checkpoint`]: fails with
    /// [`ApiError::Snapshot`] (carrying
    /// [`sv_sim::ckpt::SnapshotError::UnsupportedProgram`]) when a
    /// still-running program cannot capture its state. No bytes are
    /// produced on failure.
    pub fn try_checkpoint(&self) -> Result<Vec<u8>, crate::api::ApiError> {
        use sv_sim::ckpt::{fnv1a64, write_header, SnapHeader, SnapWriter, FORMAT_VERSION};
        // Collect program snapshots first so an unsupported program
        // fails the whole call before any serialization work.
        let mut progs = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            progs.push(node.program_snapshot()?);
        }
        // The parameter section is serialized separately so the header
        // can carry its hash: restore rejects a snapshot whose
        // parameters were tampered with before trusting any field.
        let mut pw = SnapWriter::new();
        pw.save(&self.params);
        let params = pw.finish();
        let mut w = SnapWriter::new();
        write_header(
            &mut w,
            &SnapHeader {
                version: FORMAT_VERSION,
                param_hash: fnv1a64(&params),
                nodes: self.nodes.len() as u64,
            },
        );
        w.lp_bytes(&params);
        w.u64(self.cycle);
        w.save(&self.now);
        w.save(&self.runstats);
        w.save(&self.network);
        w.save(&self.ideal);
        w.save(&self.tenancy);
        for (node, prog) in self.nodes.iter().zip(&progs) {
            node.checkpoint_into(&mut w);
            w.save(prog);
        }
        Ok(w.finish())
    }

    /// Serialize the machine's parameters exactly as the snapshot formats
    /// do, and hash the section.
    fn param_hash(&self) -> u64 {
        use sv_sim::ckpt::fnv1a64;
        let mut pw = SnapWriter::new();
        pw.save(&self.params);
        fnv1a64(&pw.finish())
    }

    /// Forget every dirty mark across the machine — a checkpoint cut has
    /// captured the current contents, opening a new epoch.
    fn ckpt_clear_dirty(&mut self) {
        for node in &mut self.nodes {
            node.ckpt_clear_dirty();
        }
        self.network.ckpt_clear_dirty();
        if let Some(ideal) = &mut self.ideal {
            ideal.ckpt_clear_dirty();
        }
    }

    /// Take an incremental checkpoint cut.
    ///
    /// The first call opens a chain: it emits a complete full-format
    /// snapshot ([`DeltaCheckpoint::Base`], identical to
    /// [`Machine::try_checkpoint`] output) and clears every dirty mark.
    /// Each subsequent call emits a [`DeltaCheckpoint::Delta`] holding
    /// only the sections that changed since the previous cut — dirty
    /// DRAM/SRAM pages, dirty cache chunks, and whole small sections
    /// (node CPU/bus/firmware/NIU-queue state, the network including its
    /// fault RNG) for components that were active — then clears the
    /// marks again, opening the next epoch.
    ///
    /// Every delta is pinned to its chain by parameter hash, base
    /// snapshot id ([`sv_sim::ckpt::fnv1a64`] of the base bytes),
    /// sequence number, and cycle span; [`MachineBuilder::restore_chain`]
    /// verifies all four. Restoring the base plus the deltas in order
    /// resumes byte-identical to the uninterrupted run, in every run
    /// mode, worker count, and shard policy, with faults armed.
    ///
    /// Fails with [`ApiError::Snapshot`] (and leaves the dirty marks and
    /// chain state untouched) when a still-running program cannot
    /// capture its state.
    pub fn try_checkpoint_delta(&mut self) -> Result<DeltaCheckpoint, crate::api::ApiError> {
        use sv_sim::ckpt::{fnv1a64, write_delta_header, DeltaHeader, FORMAT_VERSION};
        let Some(chain) = self.delta_chain else {
            let base = self.try_checkpoint()?;
            self.delta_chain = Some(DeltaChain {
                base_id: fnv1a64(&base),
                param_hash: self.param_hash(),
                seq: 0,
                last_cycle: self.cycle,
            });
            self.ckpt_clear_dirty();
            return Ok(DeltaCheckpoint::Base(base));
        };
        // Program snapshots for dirty nodes are collected first so an
        // unsupported program fails the whole call before any state
        // (dirty marks, chain position) is consumed.
        let dirty: Vec<bool> = self.nodes.iter().map(|n| n.ckpt_is_dirty()).collect();
        let mut progs = Vec::with_capacity(self.nodes.len());
        for (node, &d) in self.nodes.iter().zip(&dirty) {
            progs.push(if d { node.program_snapshot()? } else { None });
        }
        let mut w = SnapWriter::new();
        write_delta_header(
            &mut w,
            &DeltaHeader {
                version: FORMAT_VERSION,
                param_hash: chain.param_hash,
                nodes: self.nodes.len() as u64,
                base_id: chain.base_id,
                seq: chain.seq + 1,
                from_cycle: chain.last_cycle,
                to_cycle: self.cycle,
            },
        );
        w.save(&self.now);
        w.save(&self.runstats);
        if self.network.ckpt_dirty() {
            w.u8(1);
            w.save(&self.network);
        } else {
            w.u8(0);
        }
        if self.ideal.as_ref().is_some_and(|i| i.ckpt_dirty()) {
            w.u8(1);
            w.save(&self.ideal);
        } else {
            w.u8(0);
        }
        for ((node, prog), &d) in self.nodes.iter().zip(&progs).zip(&dirty) {
            if d {
                w.u8(1);
                node.delta_save_into(&mut w);
                w.save(prog);
            } else {
                w.u8(0);
            }
        }
        let chain = self.delta_chain.as_mut().expect("chain checked above");
        chain.seq += 1;
        chain.last_cycle = self.cycle;
        self.ckpt_clear_dirty();
        Ok(DeltaCheckpoint::Delta(w.finish()))
    }

    /// Panicking form of [`Machine::try_checkpoint_delta`], mirroring
    /// [`Machine::checkpoint`].
    pub fn checkpoint_delta(&mut self) -> DeltaCheckpoint {
        self.try_checkpoint_delta()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Apply one delta on top of this (base-restored or partially
    /// chained) machine. `base_id` identifies the base snapshot the
    /// chain started from; `expect_seq` is the next link number.
    pub(crate) fn apply_delta(
        &mut self,
        bytes: &[u8],
        base_id: u64,
        expect_seq: u64,
    ) -> Result<(), crate::api::ApiError> {
        use sv_sim::ckpt::read_delta_header;
        let mut r = SnapReader::new(bytes);
        let header = read_delta_header(&mut r)?;
        let expected_hash = self.param_hash();
        if header.param_hash != expected_hash {
            return Err(SnapshotError::ParamHash {
                found: header.param_hash,
                expected: expected_hash,
            }
            .into());
        }
        if header.nodes != self.nodes.len() as u64 {
            return Err(SnapshotError::NodeCount {
                found: header.nodes,
            }
            .into());
        }
        if header.base_id != base_id {
            return Err(SnapshotError::BaseMismatch {
                found: header.base_id,
                expected: base_id,
            }
            .into());
        }
        if header.seq != expect_seq {
            return Err(SnapshotError::ChainBroken {
                expected: expect_seq,
                found: header.seq,
            }
            .into());
        }
        if header.from_cycle != self.cycle || header.to_cycle < header.from_cycle {
            return Err(SnapshotError::ChainBroken {
                expected: self.cycle,
                found: header.from_cycle,
            }
            .into());
        }
        self.now = r.load()?;
        self.runstats = r.load()?;
        let span = self.nodes.len().max(2);
        let net_at = r.offset();
        match r.u8()? {
            0 => {}
            1 => {
                let network: Network<NetPayload> = r.load()?;
                if network.nodes() != span {
                    return Err(SnapshotError::Corrupt { offset: net_at }.into());
                }
                self.network = network;
            }
            _ => return Err(SnapshotError::Corrupt { offset: net_at }.into()),
        }
        let ideal_at = r.offset();
        match r.u8()? {
            0 => {}
            1 => {
                let ideal: Option<sv_arctic::IdealNetwork<NetPayload>> = r.load()?;
                if ideal.as_ref().is_some_and(|i| i.nodes() != span) {
                    return Err(SnapshotError::Corrupt { offset: ideal_at }.into());
                }
                self.ideal = ideal;
            }
            _ => return Err(SnapshotError::Corrupt { offset: ideal_at }.into()),
        }
        for i in 0..self.nodes.len() {
            let at = r.offset();
            match r.u8()? {
                0 => continue,
                1 => {}
                _ => return Err(SnapshotError::Corrupt { offset: at }.into()),
            }
            self.nodes[i].delta_apply(&mut r)?;
            let prog: Option<crate::api::ProgramSnapshot> = r.load()?;
            if let Some(snap) = prog {
                let lib = self.lib(i as u16);
                let p = snap.instantiate(&lib);
                self.nodes[i].set_restored_program(p);
            }
        }
        r.finish()?;
        self.cycle = header.to_cycle;
        // The wake index memoizes per-node due cycles; state just moved
        // under it, so force the lazy rebuild.
        self.wake_valid = false;
        Ok(())
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for RunLoopCounters {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.node_ticks);
        w.u64(self.wake_republishes);
    }
}
impl StateLoad for RunLoopCounters {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RunLoopCounters {
            node_ticks: r.u64()?,
            wake_republishes: r.u64()?,
        })
    }
}

impl MachineBuilder {
    /// Rebuild a machine from a [`Machine::checkpoint`] snapshot.
    ///
    /// The snapshot is authoritative for node count, parameters and all
    /// state — the builder's node count and [`MachineBuilder::params`]
    /// are ignored. Run-loop selection ([`MachineBuilder::parallelism`],
    /// [`MachineBuilder::shard_policy`],
    /// [`MachineBuilder::cycle_stepped`]) and the explicit observation
    /// knobs ([`MachineBuilder::tracing`],
    /// [`MachineBuilder::sample_latency`]) still apply, since they are
    /// free to differ between the saving and restoring run — results are
    /// bit-identical under all of them.
    ///
    /// Corrupted, truncated or version-mismatched snapshots fail with a
    /// typed [`ApiError::Snapshot`]; no input can make this panic.
    pub fn restore(self, bytes: &[u8]) -> Result<Machine, crate::api::ApiError> {
        let mut m = self.restore_core(bytes)?;
        self.apply_restore_knobs(&mut m);
        Ok(m)
    }

    /// Rebuild a machine from a base snapshot plus an ordered delta
    /// chain (each produced by [`Machine::try_checkpoint_delta`]).
    ///
    /// The base restores exactly as [`MachineBuilder::restore`]; each
    /// delta is then verified against the chain — parameter hash, base
    /// snapshot id, sequence number, and cycle continuity — and applied
    /// in order. A delta written against a different base fails with
    /// [`sv_sim::ckpt::SnapshotError::BaseMismatch`]; a missing,
    /// duplicated, or reordered link fails with
    /// [`sv_sim::ckpt::SnapshotError::ChainBroken`]. All failures are
    /// typed [`ApiError::Snapshot`] values; no input can panic.
    ///
    /// The restored machine resumes byte-identical to the donor at the
    /// final cut, in every run mode, worker count, and shard policy, and
    /// continues the same delta chain: its next
    /// [`Machine::try_checkpoint_delta`] emits the following link.
    pub fn restore_chain<D: AsRef<[u8]>>(
        self,
        base: &[u8],
        deltas: &[D],
    ) -> Result<Machine, crate::api::ApiError> {
        use sv_sim::ckpt::fnv1a64;
        let mut m = self.restore_core(base)?;
        let base_id = fnv1a64(base);
        let mut seq = 0u64;
        for d in deltas {
            seq += 1;
            m.apply_delta(d.as_ref(), base_id, seq)?;
        }
        m.delta_chain = Some(DeltaChain {
            base_id,
            param_hash: m.param_hash(),
            seq,
            last_cycle: m.cycle,
        });
        m.ckpt_clear_dirty();
        self.apply_restore_knobs(&mut m);
        Ok(m)
    }

    /// The observation knobs that are free to differ between the saving
    /// and the restoring run, applied after the state is in place.
    fn apply_restore_knobs(self, m: &mut Machine) {
        for i in self.traced_nodes {
            m.enable_tracing(i, true);
        }
        if self.sample_latency {
            m.set_latency_sampling(true);
        }
    }

    /// Everything [`MachineBuilder::restore`] does except the
    /// observation knobs: header validation, machine assembly, and the
    /// full state load.
    fn restore_core(&self, bytes: &[u8]) -> Result<Machine, crate::api::ApiError> {
        use sv_sim::ckpt::{fnv1a64, read_header};
        let mut r = SnapReader::new(bytes);
        let header = read_header(&mut r)?;
        let params_bytes = r.lp_bytes()?;
        let expected = fnv1a64(params_bytes);
        if header.param_hash != expected {
            return Err(SnapshotError::ParamHash {
                found: header.param_hash,
                expected,
            }
            .into());
        }
        // Node ids are u16; reject counts the machine cannot represent
        // before allocating anything.
        if header.nodes == 0 || header.nodes > u64::from(u16::MAX) {
            return Err(SnapshotError::NodeCount {
                found: header.nodes,
            }
            .into());
        }
        let params = {
            let mut pr = SnapReader::new(params_bytes);
            let p: SystemParams = pr.load()?;
            pr.finish()?;
            p
        };
        let n = header.nodes as usize;
        // Parallelism resolves against the snapshot's node count, not
        // the builder's placeholder.
        let plan = self.resolve_plan(n)?;
        let mut m = Machine::assemble(n, params, plan, self.par);
        m.cycle = r.u64()?;
        m.now = r.load()?;
        m.runstats = r.load()?;
        let net_at = r.offset();
        m.network = r.load()?;
        m.ideal = r.load()?;
        // The network sections carry their own node counts (their packet
        // range checks depend on them); they must span the same machine
        // the header announced.
        let span = n.max(2);
        if m.network.nodes() != span || m.ideal.as_ref().is_some_and(|i| i.nodes() != span) {
            return Err(SnapshotError::Corrupt { offset: net_at }.into());
        }
        // The network section carries its own QoS configuration (its VC
        // geometry checks depend on it); a forged section whose QoS
        // disagrees with the machine parameters must not slip through.
        if m.network.qos() != params.qos {
            return Err(SnapshotError::Corrupt { offset: net_at }.into());
        }
        let ten_at = r.offset();
        let tenancy: Option<crate::tenancy::TenancyParams> = r.load()?;
        if let Some(tp) = &tenancy {
            // Re-run the build-time namespace validation against the
            // snapshot's node count; a forged section must not produce a
            // machine whose accessors panic.
            if crate::tenancy::TenantRegistry::try_new(n as u16, tp).is_err() {
                return Err(SnapshotError::Corrupt { offset: ten_at }.into());
            }
        }
        m.tenancy = tenancy;
        for i in 0..n {
            m.nodes[i].restore_body(&mut r)?;
            let prog: Option<crate::api::ProgramSnapshot> = r.load()?;
            if let Some(snap) = prog {
                let lib = m.lib(i as u16);
                let p = snap.instantiate(&lib);
                m.nodes[i].set_restored_program(p);
            }
        }
        r.finish()?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_installs_conventions() {
        let mut m = Machine::builder(4).build();
        assert_eq!(m.nodes.len(), 4);
        let lib = m.lib(2);
        assert_eq!(lib.node, 2);
        assert_eq!(lib.user_dest(3), 3);
        assert_eq!(lib.svc_dest(1), 0x101);
        assert_eq!(lib.express_dest(0), 0x200);
        assert_eq!(lib.user_dest_hi(2), 0x302);
        // The high-priority alias maps to the same node and logical
        // queue as the plain user class, with the priority bit set.
        let hi = m.nodes[0]
            .niu
            .ctrl
            .xlate
            .lookup(lib.user_dest_hi(2))
            .unwrap();
        assert!(hi.valid && hi.high_priority);
        assert_eq!((hi.node, hi.logical_q), (2, 1));
        // The class stride is pinned at 256 up to 256 nodes (so every
        // historical trace stays valid) and widens past that.
        assert_eq!(dest::stride(1), 0x100);
        assert_eq!(dest::stride(256), 0x100);
        assert_eq!(dest::stride(257), 0x200);
        assert_eq!(dest::stride(1024), 1024);
        assert_eq!(dest::stride(4096), 4096);
        // Service queue is sP-polled in sSRAM.
        let n0 = &m.nodes[0];
        assert_eq!(n0.niu.ctrl.rx[0].buf.sram, SramSel::S);
        assert_eq!(n0.niu.ctrl.rx[0].service, RxService::SpPolled);
        assert!(n0.niu.ctrl.tx[2].express);
    }

    #[test]
    fn empty_machine_quiesces_immediately() {
        let mut m = Machine::builder(2).build();
        let t = m.run_to_quiescence();
        assert!(t.ns() < 10_000);
    }

    #[test]
    fn run_for_advances_time() {
        let mut m = Machine::builder(2).build();
        m.run_for(1000);
        assert!(m.now.ns() >= 1000);
    }

    #[test]
    fn builder_covers_legacy_constructor_shapes() {
        // The shapes the deprecated `new`/`new_ideal` constructors used
        // to produce, assembled through the builder. (The constructors
        // themselves are exercised from the integration suite, which
        // opts back in; this crate denies `deprecated`.)
        let m = Machine::builder(3)
            .params(SystemParams::default())
            .cycle_stepped()
            .build();
        assert_eq!(m.nodes.len(), 3);
        assert!(m.is_cycle_stepped());
        assert_eq!(m.workers(), 1);
        let mut mi = Machine::builder(2)
            .params(SystemParams::default())
            .ideal_network(100)
            .cycle_stepped()
            .build();
        assert!(mi.ideal.is_some());
        mi.run_for(500);
        assert!(mi.now.ns() >= 500);
    }

    #[test]
    fn ideal_network_isolates_niu_costs() {
        use crate::api::{RecvBasic, SendBasic};
        let run = |ideal: bool| {
            let b = Machine::builder(2);
            let mut m = if ideal { b.ideal_network(100) } else { b }.build();
            m.load_program(0, SendBasic::to_node(&m.lib(0), 1, vec![9u8; 88]));
            m.load_program(1, RecvBasic::expecting(&m.lib(1), 1));
            let t = m.run_to_quiescence().ns();
            assert_eq!(m.received_messages(1).len(), 1);
            t
        };
        let arctic = run(false);
        let ideal = run(true);
        // The ideal pipe (100 ns) is much faster than two real hops
        // (~1.3 us); the residual is NIU + aP cost on both sides.
        assert!(ideal < arctic, "ideal {ideal} !< arctic {arctic}");
        assert!(
            arctic - ideal > 800,
            "network cost visible: {arctic} vs {ideal}"
        );
    }

    #[test]
    fn tracing_captures_the_message_path() {
        use crate::api::{RecvBasic, SendBasic};
        let mut m = Machine::builder(2).tracing(0).tracing(1).build();
        m.load_program(0, SendBasic::to_node(&m.lib(0), 1, vec![1u8; 16]));
        m.load_program(1, RecvBasic::expecting(&m.lib(1), 1));
        m.run_to_quiescence();
        let t0 = m.trace(0, None);
        assert!(t0.contains("store"), "sender stores traced:\n{t0}");
        assert!(
            t0.contains("tx 24B to node 1"),
            "packet egress traced:\n{t0}"
        );
        let t1_net = m.trace(1, Some(sv_sim::trace::Subsys::Net));
        assert!(t1_net.contains("rx 24B from node 0"));
        let t1_bus = m.trace(1, Some(sv_sim::trace::Subsys::Bus));
        assert!(t1_bus.contains("done SingleRead"), "receiver polls traced");
        // Disabled tracer records nothing further.
        m.enable_tracing(0, false);
        let before = m.nodes[0].tracer.total_recorded();
        m.load_program(0, SendBasic::to_node(&m.lib(0), 1, vec![2u8; 16]));
        m.load_program(1, RecvBasic::expecting(&m.lib(1), 1));
        m.run_to_quiescence();
        assert_eq!(m.nodes[0].tracer.total_recorded(), before);
    }

    #[test]
    fn queue_view_slots() {
        let v = QueueView {
            q: 1,
            base: 0x1000,
            entries: 32,
            entry_bytes: 96,
            shadow_off: 0,
        };
        assert_eq!(v.slot_off(0), 0x1000);
        assert_eq!(v.slot_off(33), 0x1000 + 96);
    }
}
