//! Serializable experiment records.

use serde::{Deserialize, Serialize};

/// One measured block-transfer point (one approach × one size).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XferPoint {
    /// Transfer approach (1–5, paper §6).
    pub approach: u8,
    /// Transfer size, bytes.
    pub bytes: u32,
    /// Time from the sender starting until the receiver's completion
    /// notification, ns. For approaches 4/5 this is the *optimistic*
    /// (early) notification.
    pub latency_notify_ns: u64,
    /// Time from the sender starting until the receiver has actually
    /// read every byte (stalling on not-yet-arrived S-COMA lines), ns.
    pub latency_use_ns: u64,
    /// Goodput over `latency_use_ns`, MB/s.
    pub bandwidth_mb_s: f64,
    /// Sender aP busy time (its program's wall time), ns.
    pub sender_ap_busy_ns: u64,
    /// Receiver aP busy time, ns.
    pub receiver_ap_busy_ns: u64,
    /// Total sP occupancy across both nodes, ns.
    pub sp_busy_ns: u64,
    /// Whether the destination buffer matched the source exactly.
    pub verified: bool,
}

/// A labeled series of transfer points (one approach swept over sizes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XferMeasurement {
    /// Transfer approach (1-5).
    pub approach: u8,
    /// Measured points, in size order.
    pub points: Vec<XferPoint>,
}

/// One message-mechanism microbenchmark row (experiment T1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MsgMicro {
    /// Mechanism label.
    pub mechanism: String,
    /// One-way latency, ns.
    pub one_way_ns: u64,
    /// Round-trip latency, ns.
    pub round_trip_ns: u64,
    /// Streaming message rate, msgs/s.
    pub msg_rate_per_s: f64,
    /// Streaming payload bandwidth, MB/s.
    pub bandwidth_mb_s: f64,
    /// Payload bytes per message.
    pub payload_bytes: u32,
}

/// One shared-memory microbenchmark row (experiment T2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShmemMicro {
    /// Operation label.
    pub operation: String,
    /// Latency ns.
    pub latency_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_cloneable_and_debuggable() {
        let p = XferPoint {
            approach: 3,
            bytes: 4096,
            latency_notify_ns: 100,
            latency_use_ns: 200,
            bandwidth_mb_s: 100.0,
            sender_ap_busy_ns: 10,
            receiver_ap_busy_ns: 20,
            sp_busy_ns: 30,
            verified: true,
        };
        let m = XferMeasurement {
            approach: 3,
            points: vec![p.clone()],
        };
        assert!(format!("{m:?}").contains("4096"));
        assert_eq!(m.points[0].approach, p.approach);
    }
}
