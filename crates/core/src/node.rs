//! One StarT-Voyager node: aP core + L1/L2 + memory bus + DRAM + NIU + sP.
//!
//! The node advances on the 66 MHz bus clock. Each tick: the aP core
//! makes one step of progress, the bus advances (with the node merging
//! snoop verdicts from the caches, the aBIU and the memory controller),
//! the NIU engines run, pending aBIU bus-master requests are issued, and
//! the firmware engine gets one engagement. All functional data movement
//! happens at bus-completion instants, so timing and data are always
//! consistent.

use crate::app::{AppEvent, AppEventKind, Env, Program, Step, StoreData};
use crate::params::SystemParams;
use std::collections::{HashMap, HashSet};
use sv_firmware::{Firmware, FwConfig};
use sv_membus::{
    Bus, BusEvent, BusOp, BusOpKind, DramTimer, MasterId, MemoryArray, Mesi, SnoopVerdict,
    SnoopyCache,
};
use sv_niu::abiu::{AbiuRequest, DataMove};
use sv_niu::{Niu, SramSel};
use sv_sim::stats::Counter;
use sv_sim::Time;

/// aP core execution state.
#[derive(Debug)]
enum CpuState {
    /// No program loaded.
    Unloaded,
    /// Ready to take the next program step.
    Ready,
    /// Busy computing until the given time.
    Computing { until: Time },
    /// Waiting for an outstanding memory operation.
    WaitMem,
    /// Program finished.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CpuOpKind {
    CachedLoad,
    CachedStoreFill,
    CachedStoreUpgrade,
    UncachedLoad,
    UncachedStore,
}

#[derive(Debug)]
struct PendingCpuOp {
    tag: u64,
    kind: CpuOpKind,
    addr: u64,
    bytes: u32,
    data: Option<StoreData>,
    issued_at: Time,
}

/// Per-node statistics.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Load operations executed.
    pub loads: Counter,
    /// Store operations executed.
    pub stores: Counter,
    /// L1 hits.
    pub l1_hits: Counter,
    /// L2 hits.
    pub l2_hits: Counter,
    /// Bus ops issued.
    pub bus_ops_issued: Counter,
    /// Dirty-line castouts issued.
    pub castouts: Counter,
    /// Time the aP spent computing (including per-step overheads).
    pub cpu_compute_ns: u64,
    /// Time the aP spent stalled on memory operations.
    pub cpu_mem_stall_ns: u64,
    /// ARTRY retries observed on aP operations (S-COMA stalls etc.).
    pub ap_retries: Counter,
}

/// One node of the machine.
pub struct Node {
    /// Request identifier.
    pub id: u16,
    /// Timing/geometry parameters.
    pub params: SystemParams,
    /// Functional memory contents (DRAM + the S-COMA region).
    pub mem: MemoryArray,
    /// Dram timer.
    pub dram_timer: DramTimer,
    /// The memory bus.
    pub bus: Bus,
    /// L1.
    pub l1: SnoopyCache,
    /// L2.
    pub l2: SnoopyCache,
    /// The network interface unit.
    pub niu: Niu,
    /// The service-processor firmware.
    pub fw: Firmware,
    /// Application event log.
    pub events: Vec<AppEvent>,
    /// Debugging tracer (disabled by default; see
    /// [`crate::Machine::enable_tracing`]).
    pub tracer: sv_sim::trace::Tracer,
    /// Running statistics.
    pub stats: NodeStats,
    program: Option<Box<dyn Program>>,
    cpu: CpuState,
    last_load: u64,
    pending: Option<PendingCpuOp>,
    castout_tags: HashSet<u64>,
    inflight_abiu: HashMap<u64, AbiuRequest>,
    next_tag: u64,
    /// Scratch event buffers reused every tick (bus events, then the
    /// snoop-resolution events they spawn) so the hot loop never
    /// allocates.
    bus_events: Vec<BusEvent>,
    snoop_events: Vec<BusEvent>,
    /// Whole-section dirty flag for the node's small mutable state (CPU,
    /// bus, firmware, stats...), set by every mutating entry point.
    /// Runtime bookkeeping, never serialized; fresh and restored nodes
    /// start conservatively dirty.
    ckpt_dirty: bool,
}

impl Node {
    /// Build node `id` of a `nodes`-node machine.
    pub fn new(id: u16, nodes: u16, params: SystemParams) -> Self {
        Node {
            id,
            mem: MemoryArray::new(),
            dram_timer: DramTimer::default(),
            bus: Bus::new(params.bus),
            l1: SnoopyCache::new(params.l1),
            l2: SnoopyCache::new(params.l2),
            niu: Niu::new(id, params.niu, params.map),
            fw: Firmware::new(FwConfig::new(id, nodes), params.fw),
            events: Vec::new(),
            tracer: sv_sim::trace::Tracer::new(8192),
            stats: NodeStats::default(),
            program: None,
            cpu: CpuState::Unloaded,
            last_load: 0,
            pending: None,
            castout_tags: HashSet::new(),
            inflight_abiu: HashMap::new(),
            next_tag: 1,
            bus_events: Vec::new(),
            snoop_events: Vec::new(),
            ckpt_dirty: true,
            params,
        }
    }

    /// Load (or replace) the aP program.
    pub fn load_program(&mut self, p: Box<dyn Program>) {
        self.ckpt_dirty = true;
        self.program = Some(p);
        self.cpu = CpuState::Ready;
    }

    /// Drop all cached lines (cold-cache measurement helper). Functional
    /// data is unaffected — the data model is write-through. The fresh
    /// caches start all-dirty, so a flush can never hide from a delta
    /// snapshot.
    pub fn flush_caches(&mut self) {
        self.ckpt_dirty = true;
        self.l1 = SnoopyCache::new(self.params.l1);
        self.l2 = SnoopyCache::new(self.params.l2);
    }

    /// Whether the aP program has run to completion (vacuously true when
    /// no program is loaded).
    pub fn program_done(&self) -> bool {
        matches!(self.cpu, CpuState::Done | CpuState::Unloaded)
    }

    /// Whether any component of this node still has work in flight.
    pub fn has_work(&self) -> bool {
        !self.program_done()
            || self.bus.busy()
            || self.niu.has_work()
            || self.fw.has_work(&self.niu)
            || self.pending.is_some()
            || !self.inflight_abiu.is_empty()
    }

    fn fresh_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    /// Earliest bus cycle >= `cycle` at which [`Node::tick`] can change
    /// state, or `None` when the node is fully idle until an external
    /// event (a packet arrival) reaches it. Conservative in the safe
    /// direction: a tick at a cycle where every engine's gate still
    /// blocks is a pure no-op, so reporting too-early cycles cannot
    /// change behaviour, only cost time.
    pub fn next_event_cycle(&self, cycle: u64, clock: &sv_sim::Clock) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |c: u64| {
            let c = c.max(cycle);
            next = Some(next.map_or(c, |n: u64| n.min(c)));
        };
        match self.cpu {
            CpuState::Ready => consider(cycle),
            CpuState::Computing { until } => consider(clock.edge_at_or_after(until)),
            // WaitMem resolves via a bus completion (covered below);
            // Done/Unloaded never act.
            CpuState::WaitMem | CpuState::Done | CpuState::Unloaded => {}
        }
        if let Some(c) = self.bus.next_event_cycle(cycle) {
            consider(c);
        }
        if let Some(c) = self.niu.next_event_cycle(cycle) {
            consider(c);
        }
        if let Some(c) = self.fw.next_wake(cycle, &self.niu) {
            consider(c);
        }
        next
    }

    /// Advance the node to bus cycle `cycle` (absolute time `now`).
    pub fn tick(&mut self, cycle: u64, now: Time) {
        self.ckpt_dirty = true;
        self.cpu_step(now);
        let mut events = std::mem::take(&mut self.bus_events);
        self.bus.tick_into(cycle, &mut events);
        for ev in events.drain(..) {
            self.handle_bus_event(cycle, now, ev);
        }
        self.bus_events = events;
        self.niu.tick(cycle);
        // Issue aBIU bus-master requests.
        while let Some(req) = self.niu.pop_abiu_request() {
            self.bus.request(req.bus_op());
            self.inflight_abiu.insert(req.id, req);
        }
        self.fw.tick(cycle, &mut self.niu);
    }

    // =====================================================================
    // aP core
    // =====================================================================

    fn cpu_step(&mut self, now: Time) {
        match self.cpu {
            CpuState::Computing { until } if until <= now => self.cpu = CpuState::Ready,
            _ => {}
        }
        if !matches!(self.cpu, CpuState::Ready) {
            return;
        }
        let Some(program) = self.program.as_mut() else {
            self.cpu = CpuState::Unloaded;
            return;
        };
        let mut env = Env {
            now,
            node: self.id,
            last_load: self.last_load,
            events: &mut self.events,
        };
        let step = program.step(&mut env);
        match step {
            Step::Compute(ns) => {
                self.stats.cpu_compute_ns += ns;
                self.cpu = CpuState::Computing {
                    until: now.plus(ns.max(1)),
                };
            }
            Step::Idle => {
                self.cpu = CpuState::Computing {
                    until: now.plus(15),
                };
            }
            Step::Done => {
                self.events.push(AppEvent {
                    at: now,
                    kind: AppEventKind::ProgramDone,
                });
                self.cpu = CpuState::Done;
            }
            Step::Load { addr, bytes } => {
                assert!((1..=8).contains(&bytes), "loads are 1-8 bytes");
                self.stats.loads.bump();
                if self.tracer.enabled() {
                    self.tracer.record(
                        now,
                        sv_sim::trace::Subsys::App,
                        format!("load {bytes}B @{addr:#x}"),
                    );
                }
                self.issue_load(now, addr, bytes);
            }
            Step::Store { addr, data } => {
                assert!((1..=8).contains(&data.len()), "stores are 1-8 bytes");
                self.stats.stores.bump();
                if self.tracer.enabled() {
                    self.tracer.record(
                        now,
                        sv_sim::trace::Subsys::App,
                        format!("store {}B @{addr:#x}", data.len()),
                    );
                }
                self.issue_store(now, addr, data);
            }
        }
    }

    fn finish_local(&mut self, now: Time, ns: u64) {
        self.stats.cpu_compute_ns += ns;
        self.cpu = CpuState::Computing {
            until: now.plus(ns + self.params.cpu.step_overhead_ns),
        };
    }

    fn issue_load(&mut self, now: Time, addr: u64, bytes: u32) {
        if self.params.map.is_memory_backed(addr) {
            if self.l1.lookup(addr) != Mesi::Invalid {
                self.stats.l1_hits.bump();
                self.last_load = self.read_word(addr, bytes);
                self.finish_local(now, self.params.cpu.l1_hit_ns);
                return;
            }
            let l2_state = self.l2.lookup(addr);
            if l2_state != Mesi::Invalid {
                self.stats.l2_hits.bump();
                self.l1.install(addr, l2_state);
                self.last_load = self.read_word(addr, bytes);
                self.finish_local(now, self.params.cpu.l2_hit_ns);
                return;
            }
            let tag = self.fresh_tag();
            self.bus
                .request(BusOp::burst(BusOpKind::Read, addr, MasterId::Ap, tag));
            self.stats.bus_ops_issued.bump();
            self.pending = Some(PendingCpuOp {
                tag,
                kind: CpuOpKind::CachedLoad,
                addr,
                bytes,
                data: None,
                issued_at: now,
            });
            self.cpu = CpuState::WaitMem;
        } else {
            let tag = self.fresh_tag();
            self.bus.request(BusOp::single(
                BusOpKind::SingleRead,
                addr,
                bytes,
                MasterId::Ap,
                tag,
            ));
            self.stats.bus_ops_issued.bump();
            self.pending = Some(PendingCpuOp {
                tag,
                kind: CpuOpKind::UncachedLoad,
                addr,
                bytes,
                data: None,
                issued_at: now,
            });
            self.cpu = CpuState::WaitMem;
        }
    }

    fn issue_store(&mut self, now: Time, addr: u64, data: StoreData) {
        // Reflective-memory stores write through the bus so the aBIU can
        // capture them (Shrimp-style mapped pages are write-through).
        let reflect = matches!(
            self.params.map.classify(addr),
            sv_niu::addrmap::Region::Reflect
        );
        if self.params.map.is_memory_backed(addr) && !reflect {
            let l1 = self.l1.lookup(addr);
            let l2 = self.l2.lookup(addr);
            let effective = if l1 != Mesi::Invalid { l1 } else { l2 };
            match effective {
                Mesi::Modified | Mesi::Exclusive => {
                    // Writable: functional write-through, state to M.
                    self.mem.write(addr, &data.to_bytes());
                    if l1 != Mesi::Invalid {
                        self.l1.set_state(addr, Mesi::Modified);
                    } else {
                        self.l1.install(addr, Mesi::Modified);
                        self.stats.l2_hits.bump();
                    }
                    self.l2.set_state(addr, Mesi::Modified);
                    let cost = if l1 != Mesi::Invalid {
                        self.params.cpu.l1_hit_ns
                    } else {
                        self.params.cpu.l2_hit_ns
                    };
                    self.finish_local(now, cost);
                }
                Mesi::Shared => {
                    // Upgrade: address-only Kill.
                    let tag = self.fresh_tag();
                    self.bus
                        .request(BusOp::addr_only(BusOpKind::Kill, addr, MasterId::Ap, tag));
                    self.stats.bus_ops_issued.bump();
                    self.pending = Some(PendingCpuOp {
                        tag,
                        kind: CpuOpKind::CachedStoreUpgrade,
                        addr,
                        bytes: data.len(),
                        data: Some(data),
                        issued_at: now,
                    });
                    self.cpu = CpuState::WaitMem;
                }
                Mesi::Invalid => {
                    let tag = self.fresh_tag();
                    self.bus
                        .request(BusOp::burst(BusOpKind::Rwitm, addr, MasterId::Ap, tag));
                    self.stats.bus_ops_issued.bump();
                    self.pending = Some(PendingCpuOp {
                        tag,
                        kind: CpuOpKind::CachedStoreFill,
                        addr,
                        bytes: data.len(),
                        data: Some(data),
                        issued_at: now,
                    });
                    self.cpu = CpuState::WaitMem;
                }
            }
        } else {
            let tag = self.fresh_tag();
            self.bus.request(BusOp::single(
                BusOpKind::SingleWrite,
                addr,
                data.len(),
                MasterId::Ap,
                tag,
            ));
            self.stats.bus_ops_issued.bump();
            self.pending = Some(PendingCpuOp {
                tag,
                kind: CpuOpKind::UncachedStore,
                addr,
                bytes: data.len(),
                data: Some(data),
                issued_at: now,
            });
            self.cpu = CpuState::WaitMem;
        }
    }

    fn read_word(&self, addr: u64, bytes: u32) -> u64 {
        let mut b = [0u8; 8];
        self.mem.read(addr, &mut b[..bytes as usize]);
        u64::from_le_bytes(b)
    }

    /// Install a filled line in L2 then L1, issuing a castout for any
    /// dirty L2 victim (inclusion: the L1 copy of the victim goes too).
    fn install_line(&mut self, addr: u64, state: Mesi) {
        if let Some((victim, dirty)) = self.l2.install(addr, state) {
            self.l1.invalidate(victim);
            if dirty {
                // Functional data is already in memory (write-through
                // functional model); the castout costs bus bandwidth.
                let tag = self.fresh_tag();
                self.castout_tags.insert(tag);
                self.bus.request(BusOp::burst(
                    BusOpKind::WriteLine,
                    victim,
                    MasterId::Ap,
                    tag,
                ));
                self.stats.castouts.bump();
            }
        }
        self.l1.install(addr, state);
    }

    // =====================================================================
    // Bus event handling
    // =====================================================================

    fn handle_bus_event(&mut self, cycle: u64, now: Time, ev: BusEvent) {
        match ev {
            BusEvent::Snoop(op) => {
                let verdict = self.snoop_all(cycle, &op);
                // Snoop resolution only yields Retried/Completed, never
                // another Snoop, so this recursion is depth one and the
                // taken scratch buffer cannot be re-entered.
                let mut more = std::mem::take(&mut self.snoop_events);
                self.bus.resolve_snoop_into(cycle, verdict, &mut more);
                for e in more.drain(..) {
                    self.handle_bus_event(cycle, now, e);
                }
                self.snoop_events = more;
            }
            BusEvent::Retried(op) => {
                if op.master == MasterId::Ap {
                    self.stats.ap_retries.bump();
                }
                if self.tracer.enabled() {
                    self.tracer.record(
                        now,
                        sv_sim::trace::Subsys::Bus,
                        format!("ARTRY {:?} {:#x} by {:?}", op.kind, op.addr, op.master),
                    );
                }
            }
            BusEvent::Completed(op, verdict) => {
                if self.tracer.enabled() {
                    self.tracer.record(
                        now,
                        sv_sim::trace::Subsys::Bus,
                        format!(
                            "done {:?} {:#x} ({}B) by {:?}{}",
                            op.kind,
                            op.addr,
                            op.bytes,
                            op.master,
                            if verdict.shared { " shd" } else { "" }
                        ),
                    );
                }
                self.complete_op(cycle, now, op, verdict)
            }
        }
    }

    /// Merge the snoop verdicts of every agent for one address tenure.
    fn snoop_all(&mut self, cycle: u64, op: &BusOp) -> SnoopVerdict {
        let mut verdict = SnoopVerdict::default();
        // Caches do not snoop their own master's operations.
        if op.master != MasterId::Ap {
            let o1 = self.l1.snoop(op.kind, op.addr);
            let o2 = self.l2.snoop(op.kind, op.addr);
            verdict.merge(o1.verdict);
            verdict.merge(o2.verdict);
        }
        verdict.merge(self.niu.ap_snoop(op));
        // Memory controller: supplies data for memory-backed reads not
        // supplied by a cache push.
        if !verdict.artry
            && op.kind.is_read()
            && self.params.map.is_memory_backed(op.addr)
            && verdict.supply_latency == 0
        {
            verdict.supply_latency = self.dram_timer.supply_latency(cycle, &self.params.dram);
        }
        verdict
    }

    fn complete_op(&mut self, cycle: u64, now: Time, op: BusOp, verdict: SnoopVerdict) {
        match op.master {
            MasterId::ABiu => {
                let req = self
                    .inflight_abiu
                    .remove(&op.tag)
                    .expect("completion for unknown aBIU request");
                self.apply_move(&req);
                self.niu.abiu_completed(req.id);
            }
            MasterId::Ap => {
                if self.castout_tags.remove(&op.tag) {
                    return;
                }
                let Some(p) = self.pending.take() else {
                    panic!("aP completion with no pending op (tag {})", op.tag);
                };
                assert_eq!(p.tag, op.tag, "out-of-order aP completion");
                self.stats.cpu_mem_stall_ns += now.since(p.issued_at);
                match p.kind {
                    CpuOpKind::CachedLoad => {
                        let state = if verdict.shared {
                            Mesi::Shared
                        } else {
                            Mesi::Exclusive
                        };
                        self.install_line(p.addr, state);
                        self.last_load = self.read_word(p.addr, p.bytes);
                    }
                    CpuOpKind::CachedStoreFill => {
                        self.install_line(p.addr, Mesi::Modified);
                        self.mem
                            .write(p.addr, &p.data.expect("store data").to_bytes());
                    }
                    CpuOpKind::CachedStoreUpgrade => {
                        self.l1.set_state(p.addr, Mesi::Modified);
                        self.l2.set_state(p.addr, Mesi::Modified);
                        // The line may only be in L2 (upgrade from there).
                        if self.l1.peek(p.addr) == Mesi::Invalid {
                            self.l1.install(p.addr, Mesi::Modified);
                        }
                        self.mem
                            .write(p.addr, &p.data.expect("store data").to_bytes());
                    }
                    CpuOpKind::UncachedLoad => {
                        self.last_load = self.niu.ap_complete_load(cycle, p.addr, p.bytes);
                    }
                    CpuOpKind::UncachedStore => {
                        let bytes = p.data.expect("store data").to_bytes();
                        // Reflective stores also land in local DRAM (the
                        // memory controller accepted the write); other
                        // claimed regions are NIU-internal.
                        if self.params.map.is_memory_backed(p.addr) {
                            self.mem.write(p.addr, &bytes);
                            // The write-through invalidates any cached
                            // copy of the line on this node.
                            self.l1.invalidate(p.addr);
                            self.l2.invalidate(p.addr);
                        }
                        self.niu.ap_complete_store(cycle, p.addr, &bytes);
                    }
                }
                self.cpu = CpuState::Computing {
                    until: now.plus(self.params.cpu.step_overhead_ns),
                };
            }
        }
    }

    /// Perform the functional data movement of a completed aBIU request.
    fn apply_move(&mut self, req: &AbiuRequest) {
        match &req.move_ {
            DataMove::DramToSram {
                dram,
                sram,
                sram_addr,
                len,
            } => {
                let buf = self.mem.read_vec(*dram, *len as usize);
                match sram {
                    SramSel::A => self.niu.asram.write(*sram_addr, &buf),
                    SramSel::S => self.niu.ssram.write(*sram_addr, &buf),
                }
            }
            DataMove::SramToDram {
                sram,
                sram_addr,
                dram,
                len,
            } => {
                let buf = match sram {
                    SramSel::A => self.niu.asram.read_vec(*sram_addr, *len as usize),
                    SramSel::S => self.niu.ssram.read_vec(*sram_addr, *len as usize),
                };
                self.mem.write(*dram, &buf);
            }
            DataMove::BytesToDram { dram, data } => {
                self.mem.write(*dram, data);
            }
            DataMove::None => {}
        }
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for CpuState {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            CpuState::Unloaded => w.u8(0),
            CpuState::Ready => w.u8(1),
            CpuState::Computing { until } => {
                w.u8(2);
                w.save(until);
            }
            CpuState::WaitMem => w.u8(3),
            CpuState::Done => w.u8(4),
        }
    }
}
impl StateLoad for CpuState {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => CpuState::Unloaded,
            1 => CpuState::Ready,
            2 => CpuState::Computing { until: r.load()? },
            3 => CpuState::WaitMem,
            4 => CpuState::Done,
            _ => return r.corrupt(),
        })
    }
}

impl StateSave for CpuOpKind {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            CpuOpKind::CachedLoad => 0,
            CpuOpKind::CachedStoreFill => 1,
            CpuOpKind::CachedStoreUpgrade => 2,
            CpuOpKind::UncachedLoad => 3,
            CpuOpKind::UncachedStore => 4,
        });
    }
}
impl StateLoad for CpuOpKind {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => CpuOpKind::CachedLoad,
            1 => CpuOpKind::CachedStoreFill,
            2 => CpuOpKind::CachedStoreUpgrade,
            3 => CpuOpKind::UncachedLoad,
            4 => CpuOpKind::UncachedStore,
            _ => return r.corrupt(),
        })
    }
}

impl StateSave for PendingCpuOp {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.tag);
        self.kind.save(w);
        w.u64(self.addr);
        w.u32(self.bytes);
        w.save(&self.data);
        w.save(&self.issued_at);
    }
}
impl StateLoad for PendingCpuOp {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let p = PendingCpuOp {
            tag: r.u64()?,
            kind: r.load()?,
            addr: r.u64()?,
            bytes: r.u32()?,
            data: r.load()?,
            issued_at: r.load()?,
        };
        // Store completions unwrap the payload.
        let needs_data = matches!(
            p.kind,
            CpuOpKind::CachedStoreFill | CpuOpKind::CachedStoreUpgrade | CpuOpKind::UncachedStore
        );
        if needs_data && p.data.is_none() {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        Ok(p)
    }
}

impl StateSave for NodeStats {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.loads);
        w.save(&self.stores);
        w.save(&self.l1_hits);
        w.save(&self.l2_hits);
        w.save(&self.bus_ops_issued);
        w.save(&self.castouts);
        w.u64(self.cpu_compute_ns);
        w.u64(self.cpu_mem_stall_ns);
        w.save(&self.ap_retries);
    }
}
impl StateLoad for NodeStats {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(NodeStats {
            loads: r.load()?,
            stores: r.load()?,
            l1_hits: r.load()?,
            l2_hits: r.load()?,
            bus_ops_issued: r.load()?,
            castouts: r.load()?,
            cpu_compute_ns: r.u64()?,
            cpu_mem_stall_ns: r.u64()?,
            ap_retries: r.load()?,
        })
    }
}

impl Node {
    /// Capture the program's execution state for a checkpoint:
    /// `Ok(None)` when nothing needs restoring (no program, or a
    /// finished unsnapshottable one), `Err(UnsupportedProgram)` when a
    /// still-running program cannot be captured.
    pub(crate) fn program_snapshot(
        &self,
    ) -> Result<Option<crate::api::ProgramSnapshot>, SnapshotError> {
        match &self.program {
            None => Ok(None),
            Some(p) => match p.snapshot() {
                Some(s) => Ok(Some(s)),
                None if self.program_done() => Ok(None),
                None => Err(SnapshotError::UnsupportedProgram { node: self.id }),
            },
        }
    }

    /// Per-tenant scheduler accounting from this node's program, when it
    /// is a [`crate::tenancy::TenantScheduler`]. The program box is kept
    /// after completion, so this works post-run.
    pub(crate) fn tenant_report(&self) -> Option<Vec<crate::tenancy::TenantSchedStat>> {
        self.program.as_ref().and_then(|p| p.tenant_report())
    }

    /// Install a restored program without resetting the core state the
    /// way [`Node::load_program`] does — the checkpointed [`CpuState`]
    /// (possibly mid-computation or mid-memory-stall) must survive.
    pub(crate) fn set_restored_program(&mut self, p: Box<dyn Program>) {
        self.ckpt_dirty = true;
        self.program = Some(p);
    }

    /// Serialize everything but the program (captured separately as a
    /// [`crate::api::ProgramSnapshot`]) and the per-tick scratch buffers
    /// (always empty between ticks).
    pub(crate) fn checkpoint_into(&self, w: &mut SnapWriter) {
        self.cpu.save(w);
        w.u64(self.last_load);
        w.save(&self.pending);
        w.save(&self.castout_tags);
        w.save(&self.inflight_abiu);
        w.u64(self.next_tag);
        w.save(&self.events);
        w.save(&self.tracer);
        w.save(&self.stats);
        w.save(&self.mem);
        w.save(&self.dram_timer);
        w.save(&self.bus);
        w.save(&self.l1);
        w.save(&self.l2);
        w.save(&self.niu);
        w.save(&self.fw);
    }

    /// Overwrite this freshly-built node's state from a checkpoint
    /// (the mirror of [`Node::checkpoint_into`]). The caches rebuild
    /// their geometry from `self.params`, matching the param-hash check
    /// the machine header already passed.
    pub(crate) fn restore_body(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.cpu = r.load()?;
        self.last_load = r.u64()?;
        self.pending = r.load()?;
        self.castout_tags = r.load()?;
        self.inflight_abiu = r.load()?;
        self.next_tag = r.u64()?;
        self.events = r.load()?;
        self.tracer = r.load()?;
        self.stats = r.load()?;
        self.mem = r.load()?;
        self.dram_timer = r.load()?;
        self.bus = r.load()?;
        self.l1 = SnoopyCache::load_with_params(self.params.l1, r)?;
        self.l2 = SnoopyCache::load_with_params(self.params.l2, r)?;
        self.niu = r.load()?;
        self.fw = r.load()?;
        Ok(())
    }

    // =====================================================================
    // Delta-snapshot support
    // =====================================================================

    /// True if any part of this node changed since the last checkpoint
    /// cut: its own small-state flag, the NIU's, or any tracked array.
    pub(crate) fn ckpt_is_dirty(&self) -> bool {
        self.ckpt_dirty
            || self.niu.ckpt_small_dirty()
            || self.niu.ckpt_mems_dirty()
            || self.mem.has_dirty()
            || self.l1.has_dirty()
            || self.l2.has_dirty()
    }

    /// Mark the node's small state dirty (external mutation through the
    /// machine API).
    pub(crate) fn ckpt_mark_dirty(&mut self) {
        self.ckpt_dirty = true;
    }

    /// Forget all dirty marks across the node — called when a checkpoint
    /// cut captures the current contents.
    pub(crate) fn ckpt_clear_dirty(&mut self) {
        self.ckpt_dirty = false;
        self.mem.clear_dirty();
        self.l1.clear_dirty();
        self.l2.clear_dirty();
        self.niu.ckpt_clear_dirty();
    }

    /// Delta record body: the small mutable state whole (it is a few KB
    /// and mutates together on every active cycle — this is the
    /// whole-section granularity for the CPU, bus, firmware tables, NIU
    /// queues, and reliable-delivery windows), then dirty-page/chunk
    /// deltas for the large arrays (DRAM, SRAM banks, caches). The
    /// program snapshot is written separately by the machine, exactly as
    /// in the full format.
    pub(crate) fn delta_save_into(&self, w: &mut SnapWriter) {
        self.cpu.save(w);
        w.u64(self.last_load);
        w.save(&self.pending);
        w.save(&self.castout_tags);
        w.save(&self.inflight_abiu);
        w.u64(self.next_tag);
        w.save(&self.events);
        w.save(&self.tracer);
        w.save(&self.stats);
        w.save(&self.dram_timer);
        w.save(&self.bus);
        self.niu.save_small(w);
        w.save(&self.fw);
        self.mem.save_delta(w);
        self.niu.save_mems_delta(w);
        self.l1.save_delta(w);
        self.l2.save_delta(w);
    }

    /// Apply a record produced by [`Node::delta_save_into`] on top of the
    /// node's current (base-restored) state.
    pub(crate) fn delta_apply(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.cpu = r.load()?;
        self.last_load = r.u64()?;
        self.pending = r.load()?;
        self.castout_tags = r.load()?;
        self.inflight_abiu = r.load()?;
        self.next_tag = r.u64()?;
        self.events = r.load()?;
        self.tracer = r.load()?;
        self.stats = r.load()?;
        self.dram_timer = r.load()?;
        self.bus = r.load()?;
        self.niu.apply_small(r)?;
        self.fw = r.load()?;
        self.mem.apply_delta(r)?;
        self.niu.apply_mems_delta(r)?;
        self.l1.apply_delta(r)?;
        self.l2.apply_delta(r)?;
        self.ckpt_dirty = true;
        Ok(())
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("cpu", &self.cpu)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Env, Program};

    struct Ops(std::collections::VecDeque<Step>);
    impl Program for Ops {
        fn step(&mut self, _e: &mut Env<'_>) -> Step {
            self.0.pop_front().unwrap_or(Step::Done)
        }
    }

    fn node_with(steps: Vec<Step>) -> Node {
        let mut n = Node::new(0, 1, SystemParams::default());
        n.load_program(Box::new(Ops(steps.into())));
        n
    }

    fn run(n: &mut Node, cycles: u64) {
        let clock = n.params.bus_clock();
        for c in 0..cycles {
            n.tick(c, clock.edge(c));
        }
    }

    #[test]
    fn cached_load_fills_both_levels() {
        let mut n = node_with(vec![Step::Load {
            addr: 0x1000,
            bytes: 8,
        }]);
        n.mem.write_u64(0x1000, 77);
        run(&mut n, 200);
        assert!(n.program_done());
        assert_eq!(n.last_load, 77);
        assert_eq!(n.l1.peek(0x1000), sv_membus::Mesi::Exclusive);
        assert_eq!(n.l2.peek(0x1000), sv_membus::Mesi::Exclusive);
        assert_eq!(n.stats.bus_ops_issued.get(), 1);
        assert!(n.stats.cpu_mem_stall_ns > 0);
    }

    #[test]
    fn second_load_hits_l1_without_bus_traffic() {
        let mut n = node_with(vec![
            Step::Load {
                addr: 0x1000,
                bytes: 8,
            },
            Step::Load {
                addr: 0x1008,
                bytes: 8,
            }, // same line
        ]);
        run(&mut n, 300);
        assert!(n.program_done());
        assert_eq!(n.stats.bus_ops_issued.get(), 1, "one fill serves the line");
        assert_eq!(n.stats.l1_hits.get(), 1);
    }

    #[test]
    fn store_miss_uses_rwitm_and_lands_data() {
        let mut n = node_with(vec![Step::Store {
            addr: 0x2000,
            data: StoreData::U64(0xAB),
        }]);
        run(&mut n, 200);
        assert!(n.program_done());
        assert_eq!(n.mem.read_u64(0x2000), 0xAB);
        assert_eq!(n.l1.peek(0x2000), sv_membus::Mesi::Modified);
    }

    #[test]
    fn store_hit_after_fill_is_silent() {
        let mut n = node_with(vec![
            Step::Store {
                addr: 0x2000,
                data: StoreData::U64(1),
            },
            Step::Store {
                addr: 0x2008,
                data: StoreData::U64(2),
            },
        ]);
        run(&mut n, 300);
        assert_eq!(n.stats.bus_ops_issued.get(), 1, "M-state hit stays on-chip");
        assert_eq!(n.mem.read_u64(0x2008), 2);
    }

    #[test]
    fn dirty_eviction_issues_castout() {
        // Direct-mapped L2: two lines mapping to the same set evict each
        // other; the dirty victim must be written back on the bus.
        let mut n = Node::new(0, 1, SystemParams::default());
        let l2_bytes = n.params.l2.size_bytes;
        n.load_program(Box::new(Ops(vec![
            Step::Store {
                addr: 0x3000,
                data: StoreData::U64(1),
            },
            Step::Load {
                addr: 0x3000 + l2_bytes,
                bytes: 8,
            },
        ]
        .into())));
        run(&mut n, 400);
        assert!(n.program_done());
        assert_eq!(n.stats.castouts.get(), 1);
        assert_eq!(n.mem.read_u64(0x3000), 1, "data survived the eviction");
    }

    #[test]
    fn compute_time_is_accounted() {
        let mut n = node_with(vec![Step::Compute(1234)]);
        run(&mut n, 200);
        assert!(n.program_done());
        assert_eq!(n.stats.cpu_compute_ns, 1234);
        assert_eq!(n.stats.cpu_mem_stall_ns, 0);
    }

    #[test]
    fn uncached_store_reaches_niu() {
        let p = SystemParams::default();
        let ptr = p.map.ptr_update_addr(false, 4, 9);
        let mut n = node_with(vec![Step::Store {
            addr: ptr,
            data: StoreData::U64(0),
        }]);
        run(&mut n, 200);
        assert!(n.program_done());
        assert_eq!(n.niu.ctrl.tx[4].producer, 9);
    }

    #[test]
    fn flush_caches_preserves_data() {
        let mut n = node_with(vec![Step::Store {
            addr: 0x4000,
            data: StoreData::U64(5),
        }]);
        run(&mut n, 200);
        n.flush_caches();
        assert_eq!(n.l1.peek(0x4000), sv_membus::Mesi::Invalid);
        assert_eq!(n.mem.read_u64(0x4000), 5);
    }

    #[test]
    fn node_without_program_is_quiescent() {
        let mut n = Node::new(0, 1, SystemParams::default());
        assert!(n.program_done());
        assert!(!n.has_work());
        run(&mut n, 10);
        assert!(!n.has_work());
    }

    #[test]
    fn partial_width_loads() {
        let mut n = node_with(vec![
            Step::Load {
                addr: 0x1003,
                bytes: 1,
            },
            Step::Load {
                addr: 0x1000,
                bytes: 4,
            },
        ]);
        n.mem
            .write(0x1000, &[0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x11, 0x22]);
        run(&mut n, 300);
        assert!(n.program_done());
        assert_eq!(n.last_load, 0xDDCCBBAA);
    }
}
