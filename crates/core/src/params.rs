//! System-wide parameters.
//!
//! One struct gathers every knob of the machine. Defaults model the 1998
//! hardware: 166 MHz 604e application processors on a 66 MHz 64-bit
//! memory bus, 512 KB in-line L2, and the Arctic network at
//! 160 MB/s/direction. Benches sweep individual fields; the comparative
//! claims reproduced in `EXPERIMENTS.md` hold across the sweeps.

use serde::{Deserialize, Serialize};
use sv_arctic::{FaultParams, LinkParams, QosParams, RoutingPolicy};
use sv_firmware::FwParams;
use sv_membus::{BusParams, CacheParams, DramParams};
use sv_niu::{AddressMap, NiuParams};

/// Application-processor timing (ns granularity; the aP runs at 166 MHz
/// but all its interactions with the world happen through the bus).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuParams {
    /// Fixed per-instruction-step overhead (address generation, loop
    /// control) charged after every VM step, ns.
    pub step_overhead_ns: u64,
    /// L1 data cache hit, ns.
    pub l1_hit_ns: u64,
    /// L2 hit (miss in L1), ns.
    pub l2_hit_ns: u64,
}

impl Default for CpuParams {
    fn default() -> Self {
        CpuParams {
            step_overhead_ns: 12,
            l1_hit_ns: 6,
            l2_hit_ns: 36,
        }
    }
}

/// Every parameter of the simulated machine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SystemParams {
    /// Memory-bus frequency, MHz (the global tick rate of each node).
    pub bus_mhz: u64,
    /// Application-processor timing.
    pub cpu: CpuParams,
    /// Memory-bus timing.
    pub bus: BusParams,
    /// L1 data-cache geometry.
    pub l1: CacheParams,
    /// In-line L2 cache geometry.
    pub l2: CacheParams,
    /// DRAM controller timing.
    pub dram: DramParams,
    /// NIU geometry and engine costs.
    pub niu: NiuParams,
    /// Firmware handler costs.
    pub fw: FwParams,
    /// Arctic link timing.
    pub link: LinkParams,
    /// Fat-tree routing policy.
    pub routing: RoutingPolicy,
    /// Network fault injection (all-zero rates by default: a perfect
    /// network). Usually set through
    /// [`crate::MachineBuilder::faults`], which also arms the NIU's
    /// reliable-delivery layer.
    pub faults: FaultParams,
    /// Physical address map.
    pub map: AddressMap,
    /// Experiment RNG seed (workload generators).
    pub seed: u64,
    /// Arctic virtual-channel / credit flow control. `None` (the
    /// default) runs the legacy two-priority model with unbounded link
    /// buffers, bit-identical to prior releases. Usually set through
    /// [`crate::MachineBuilder::network_qos`].
    pub qos: Option<QosParams>,
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams {
            bus_mhz: 66,
            cpu: CpuParams::default(),
            bus: BusParams::default(),
            l1: CacheParams::l1_604e(),
            l2: CacheParams::l2_voyager(),
            dram: DramParams::default(),
            niu: NiuParams::default(),
            fw: FwParams::default(),
            link: LinkParams::default(),
            // Per-flow FIFO routing is the machine default; the ordered
            // remote-command stream relies on it (see sv-arctic docs).
            routing: RoutingPolicy::FlowHash,
            faults: FaultParams::default(),
            map: AddressMap::default(),
            seed: 0x5747_5679, // "StarT-Voyager"
            qos: None,
        }
    }
}

impl SystemParams {
    /// The bus clock.
    pub fn bus_clock(&self) -> sv_sim::Clock {
        sv_sim::Clock::from_mhz(self.bus_mhz)
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for CpuParams {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.step_overhead_ns);
        w.u64(self.l1_hit_ns);
        w.u64(self.l2_hit_ns);
    }
}
impl StateLoad for CpuParams {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CpuParams {
            step_overhead_ns: r.u64()?,
            l1_hit_ns: r.u64()?,
            l2_hit_ns: r.u64()?,
        })
    }
}

impl StateSave for SystemParams {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.bus_mhz);
        w.save(&self.cpu);
        w.save(&self.bus);
        w.save(&self.l1);
        w.save(&self.l2);
        w.save(&self.dram);
        w.save(&self.niu);
        w.save(&self.fw);
        w.save(&self.link);
        w.save(&self.routing);
        w.save(&self.faults);
        w.save(&self.map);
        w.u64(self.seed);
        w.save(&self.qos);
    }
}
impl StateLoad for SystemParams {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let p = SystemParams {
            bus_mhz: r.u64()?,
            cpu: r.load()?,
            bus: r.load()?,
            l1: r.load()?,
            l2: r.load()?,
            dram: r.load()?,
            niu: r.load()?,
            fw: r.load()?,
            link: r.load()?,
            routing: r.load()?,
            faults: r.load()?,
            map: r.load()?,
            seed: r.u64()?,
            qos: r.load()?,
        };
        // The clock divides by the frequency.
        if p.bus_mhz == 0 {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_coherent() {
        let p = SystemParams::default();
        assert_eq!(p.bus_mhz, 66);
        assert!(p.cpu.l1_hit_ns < p.cpu.l2_hit_ns);
        // 160 MB/s Arctic links.
        assert!((p.link.bandwidth_mb_s() - 160.0).abs() < 1.0);
        let clk = p.bus_clock();
        assert_eq!(clk.cycles(66), 1000);
    }
}
