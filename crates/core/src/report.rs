//! Machine-wide utilization reporting.
//!
//! The paper's platform pitch is *observability*: running real workloads
//! while watching where the cycles go (aP vs sP vs bus vs IBus vs
//! links). [`Machine::report`](crate::Machine::report) snapshots every
//! resource's utilization over the run so far; benches and examples
//! print it, and tests assert the balances the paper describes.

use crate::machine::Machine;
use serde::{Deserialize, Serialize};

/// Utilization snapshot of one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeReport {
    /// Destination node.
    pub node: u16,
    /// aP time spent computing (program work + per-step overheads), ns.
    pub ap_compute_ns: u64,
    /// aP time stalled on memory operations, ns.
    pub ap_stall_ns: u64,
    /// aP busy fraction of the run.
    pub ap_utilization: f64,
    /// sP busy time, ns.
    pub sp_busy_ns: u64,
    /// sP busy fraction of the run.
    pub sp_utilization: f64,
    /// Memory-bus data-beat cycles.
    pub bus_data_cycles: u64,
    /// Data-bus busy fraction of the run.
    pub bus_utilization: f64,
    /// NIU IBus busy cycles.
    pub ibus_busy_cycles: u64,
    /// IBus busy fraction of the run.
    pub ibus_utilization: f64,
    /// L1 data-cache hit rate (of cacheable accesses).
    pub l1_hit_rate: f64,
    /// Messages this NIU launched.
    pub msgs_launched: u64,
    /// Messages this NIU delivered into receive queues.
    pub msgs_delivered: u64,
    /// ARTRY retries the aP suffered (S-COMA stalls etc.).
    pub ap_retries: u64,
}

/// Network-level snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
    /// Mean packet latency ns.
    pub mean_packet_latency_ns: f64,
    /// Max link queue.
    pub max_link_queue: usize,
}

/// Whole-machine snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineReport {
    /// Sim time ns.
    pub sim_time_ns: u64,
    /// Number of nodes in the machine.
    pub nodes: Vec<NodeReport>,
    /// Network-level statistics.
    pub network: NetworkReport,
}

impl Machine {
    /// Snapshot every resource's utilization over the run so far.
    pub fn report(&self) -> MachineReport {
        let window = self.now.ns().max(1);
        let bus_cycle_ns = 1000.0 / self.params.bus_mhz as f64;
        let total_cycles = (window as f64 / bus_cycle_ns).max(1.0);
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let l1h = n.stats.l1_hits.get();
                let l1_total = l1h + n.stats.l2_hits.get() + n.stats.bus_ops_issued.get();
                NodeReport {
                    node: n.id,
                    ap_compute_ns: n.stats.cpu_compute_ns,
                    ap_stall_ns: n.stats.cpu_mem_stall_ns,
                    ap_utilization: (n.stats.cpu_compute_ns + n.stats.cpu_mem_stall_ns) as f64
                        / window as f64,
                    // Clip the final handler charge at the window end: a
                    // handler still running at snapshot time used to push
                    // sP utilization past 100%.
                    sp_busy_ns: n.fw.occupancy.busy_within(window),
                    sp_utilization: n.fw.occupancy.utilization_within(window),
                    bus_data_cycles: n.bus.stats.data_cycles,
                    bus_utilization: n.bus.stats.data_cycles as f64 / total_cycles,
                    ibus_busy_cycles: n.niu.ctrl.ibus.busy_cycles,
                    ibus_utilization: n.niu.ctrl.ibus.busy_cycles as f64 / total_cycles,
                    l1_hit_rate: if l1_total == 0 {
                        0.0
                    } else {
                        l1h as f64 / l1_total as f64
                    },
                    msgs_launched: n.niu.ctrl.stats.msgs_launched.get(),
                    msgs_delivered: n.niu.ctrl.stats.msgs_delivered.get(),
                    ap_retries: n.stats.ap_retries.get(),
                }
            })
            .collect();
        MachineReport {
            sim_time_ns: self.now.ns(),
            nodes,
            network: NetworkReport {
                packets_delivered: self.network.stats.delivered.get(),
                bytes_delivered: self.network.stats.bytes_delivered,
                mean_packet_latency_ns: self.network.stats.latency.mean().unwrap_or(0.0),
                max_link_queue: self.network.stats.max_link_queue,
            },
        }
    }
}

impl std::fmt::Display for MachineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "machine report @ {} us", self.sim_time_ns / 1000)?;
        writeln!(
            f,
            "{:>4} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>6} {:>7}",
            "node", "aP cmp us", "aP stl us", "aP%", "sP%", "bus%", "ibus%", "L1 hit", "retries"
        )?;
        for n in &self.nodes {
            writeln!(
                f,
                "{:>4} {:>8} {:>8} {:>6.1}% {:>6.1}% {:>6.1}% {:>5.1}% {:>5.0}% {:>7}",
                n.node,
                n.ap_compute_ns / 1000,
                n.ap_stall_ns / 1000,
                100.0 * n.ap_utilization,
                100.0 * n.sp_utilization,
                100.0 * n.bus_utilization,
                100.0 * n.ibus_utilization,
                100.0 * n.l1_hit_rate,
                n.ap_retries
            )?;
        }
        writeln!(
            f,
            "network: {} packets, {} bytes, mean latency {:.0} ns, deepest link queue {}",
            self.network.packets_delivered,
            self.network.bytes_delivered,
            self.network.mean_packet_latency_ns,
            self.network.max_link_queue
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{RecvBasic, SendBasic};

    #[test]
    fn report_reflects_activity() {
        let mut m = Machine::builder(2).build();
        m.load_program(0, SendBasic::to_node(&m.lib(0), 1, vec![7u8; 64]));
        m.load_program(1, RecvBasic::expecting(&m.lib(1), 1));
        m.run_to_quiescence();
        let r = m.report();
        assert_eq!(r.nodes.len(), 2);
        assert_eq!(r.network.packets_delivered, 1);
        assert!(r.network.bytes_delivered >= 64);
        assert_eq!(r.nodes[0].msgs_launched, 1);
        assert_eq!(r.nodes[1].msgs_delivered, 1);
        assert!(r.nodes[0].ap_utilization > 0.0 && r.nodes[0].ap_utilization <= 1.0);
        assert!(r.nodes[0].bus_utilization > 0.0);
        assert!(r.nodes[0].ibus_utilization > 0.0);
        // Nothing ran on the sPs.
        assert_eq!(r.nodes[0].sp_busy_ns, 0);
        // Rendering never panics and mentions the network line.
        let text = r.to_string();
        assert!(text.contains("network: 1 packets"));
    }

    #[test]
    fn idle_machine_report_is_all_zero() {
        let mut m = Machine::builder(2).build();
        m.run_for(1000);
        let r = m.report();
        for n in &r.nodes {
            assert_eq!(n.ap_compute_ns, 0);
            assert_eq!(n.bus_data_cycles, 0);
            assert_eq!(n.msgs_launched, 0);
        }
        assert_eq!(r.network.packets_delivered, 0);
    }
}
