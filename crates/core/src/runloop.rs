//! The machine's run loops: cycle-stepped, event-driven, and sharded
//! parallel.
//!
//! The original run loop ([`MachineBuilder::cycle_stepped`]) ticks every
//! node on every 66 MHz bus cycle. That is simple and obviously correct,
//! but most cycles in realistic workloads are *idle*: every engine's gate
//! is blocked (a busy-timer has not expired, a queue is empty, a window
//! is full), so the tick mutates nothing. The event-driven loop (the
//! default) exploits exactly that property:
//!
//! **Superset execution.** Every per-cycle engine in the machine (CPU
//! step, bus pipeline, NIU engines, sP firmware) is a pure check when its
//! gate is blocked. Ticking a component on a cycle where it has nothing
//! to do is a no-op, so executing a *superset* of the state-changing
//! cycles is always safe; only *skipping* a state-changing cycle is not.
//! Each component therefore exposes a conservative `next_event_cycle`
//! (see [`crate::node::Node::next_event_cycle`]): the earliest future
//! cycle at which it *might* change state. The event loop advances
//! directly to the minimum over all nodes and the network, executes that
//! one cycle with the exact same per-cycle sequence as the stepped loop,
//! and recomputes. The two loops are bit-identical by construction, which
//! the equivalence tests in `tests/` assert end to end.
//!
//! **Sharded parallel execution.** With [`Parallelism::Fixed`] or
//! [`Parallelism::Auto`] the nodes are partitioned into *shards* — by
//! default aligned Arctic fat-tree subtrees ([`ShardPolicy::BySubtree`]),
//! so that the nodes that exchange the cheapest, most frequent traffic
//! (2-hop, through their shared leaf switch) land in the same shard and
//! cross-shard traffic has to climb the tree
//! ([`sv_arctic::FatTree::min_cross_subtree_hops`]). Each shard owns its
//! member nodes, its own [`sv_sim::WakeIndex`], and its own arrival
//! mailbox for the duration of a run; shards move wholesale between the
//! scheduler and the worker pool over channels, so no node is ever
//! visible to two threads at once and the loop needs no locks.
//!
//! Synchronization is conservative-lookahead PDES. Nodes only interact
//! through the network, and the network has a *lookahead* `L`
//! ([`sv_arctic::Network::lookahead_ns`]): a packet injected at time `t`
//! cannot affect any delivery before `t + L`. `L` is the global bound —
//! two nodes on the same leaf already reach each other in `L` — so `L`
//! caps the window span regardless of sharding. What the *cross-shard*
//! latency ([`sv_arctic::Network::cross_subtree_latency_ns`]) buys is
//! slack between shards: the shard map is sized so that traffic between
//! different shards needs at least two full windows in flight, which
//! keeps windows usefully populated instead of ping-ponging single
//! deliveries across the barrier. Execution proceeds as a hybrid:
//!
//! - **Inline cycles.** When fewer than two shards have work inside the
//!   next window span, the scheduler executes that one event cycle
//!   in place — the exact sequential per-cycle sequence over the sharded
//!   structures, with no cloning and no channel traffic. Sparse phases
//!   (barriers, stragglers, drain-out) therefore run at full event-loop
//!   speed.
//! - **Parallel windows** `[w0, w1)` with span strictly below `L`:
//!   1. **Harvest** — the committed network (already advanced to the
//!      window start) is cloned — cheaply, the immutable topology is
//!      behind an `Arc` — and advanced to the window end; everything it
//!      delivers is scheduled onto the owning shard at the exact cycle
//!      the sequential loop would deliver it. Injections made *inside*
//!      the window cannot produce deliveries inside it (the lookahead
//!      invariant), so this pre-computed schedule is complete.
//!   2. **Execute** — every shard with a wake or an arrival in the
//!      window is sent to the worker pool (a shared task channel, so
//!      idle workers steal whatever shard is ready next) and runs its
//!      event cycles, recording packet injections as
//!      `(cycle, node, seq)`.
//!   3. **Commit** — the scheduler merges all injections in the global
//!      order the sequential loop would have produced (cycle, then node
//!      index, then per-node FIFO) and replays them into the committed
//!      network, interleaved with `advance` calls so link arbitration —
//!      and the fault model's RNG draws — see events in exactly the
//!      sequential order.
//!
//! Every step of the protocol is deterministic — window placement, the
//! inline/parallel choice, and the merge order are pure functions of
//! simulation state, never of thread scheduling — so a run is
//! bit-identical at every worker count and under every shard policy,
//! which in turn is bit-identical to the cycle-stepped reference. The
//! equivalence-matrix tests in `tests/` assert this on full
//! [`crate::stats::MachineStats`] snapshots, with faults armed.

use crate::machine::Machine;
use crate::node::Node;
use crate::ApiError;

use crossbeam::channel;
use sv_arctic::{IdealNetwork, Network, Packet};
use sv_niu::msg::NetPayload;
use sv_sim::{Clock, Time, WakeIndex};

/// How many workers the event-driven loop shards the machine across.
/// Set it at build time with [`MachineBuilder::parallelism`]; combined
/// with a [`ShardPolicy`] it fully determines the execution plan, and
/// every choice produces bit-identical simulation results.
///
/// [`MachineBuilder::parallelism`]: crate::machine::MachineBuilder::parallelism
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One thread, no sharding — the default. Deterministic like every
    /// other choice, and the fastest option for small machines.
    #[default]
    Sequential,
    /// Exactly this many worker threads. [`MachineBuilder::try_build`]
    /// rejects `Fixed(0)` ([`ApiError::WorkerCountZero`]) and worker
    /// counts exceeding the finest shard partition — one shard per node
    /// ([`ApiError::WorkersExceedShards`]).
    ///
    /// [`MachineBuilder::try_build`]: crate::machine::MachineBuilder::try_build
    Fixed(usize),
    /// Size the pool from the host: the `VOYAGER_WORKERS` environment
    /// variable if set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`], clamped to the node
    /// count. Results are still bit-identical to every other setting —
    /// only wall-clock speed varies.
    Auto,
}

impl Parallelism {
    /// Resolve to a concrete worker count for a machine of `nodes`
    /// nodes. `legacy_clamp` reproduces the pre-0.3 `threads(k)`
    /// behaviour of silently clamping instead of erroring, for the
    /// deprecated shims.
    pub(crate) fn resolve(self, nodes: usize, legacy_clamp: bool) -> Result<usize, ApiError> {
        let n = nodes.max(1);
        match self {
            Parallelism::Sequential => Ok(1),
            Parallelism::Fixed(0) => Err(ApiError::WorkerCountZero),
            Parallelism::Fixed(k) if legacy_clamp => Ok(k.min(n)),
            Parallelism::Fixed(k) => {
                // The finest partition any policy can produce is one
                // shard per node; more workers than that can never all
                // be used and is a config bug worth surfacing.
                if k > n {
                    Err(ApiError::WorkersExceedShards {
                        workers: k,
                        shards: n,
                    })
                } else {
                    Ok(k)
                }
            }
            Parallelism::Auto => Ok(auto_workers().clamp(1, n)),
        }
    }
}

/// Worker count for [`Parallelism::Auto`]: `VOYAGER_WORKERS` if set to a
/// positive integer, else the host's available parallelism.
fn auto_workers() -> usize {
    if let Ok(v) = std::env::var("VOYAGER_WORKERS") {
        if let Ok(k) = v.trim().parse::<usize>() {
            if k >= 1 {
                return k;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// How nodes are partitioned into shards for parallel execution. Every
/// policy yields bit-identical simulation results (the commit protocol
/// guarantees it); the policy only affects wall-clock speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Aligned Arctic fat-tree subtrees — the default. Keeps 2-hop
    /// same-leaf traffic inside a shard and sizes shards so cross-shard
    /// packets spend at least two lookahead windows in flight
    /// ([`sv_arctic::Network::cross_subtree_latency_ns`]).
    #[default]
    BySubtree,
    /// Node `i` goes to shard `i mod workers` — deliberately
    /// topology-blind. Kept as the A/B baseline for measuring what
    /// subtree alignment buys; never faster, always bit-identical.
    RoundRobin,
}

/// The fully-resolved execution plan a machine runs under: stepped or
/// event-driven, how many workers, which shard policy. Built once by
/// `MachineBuilder::try_build` (or the deprecated shims) so the run
/// loops never re-validate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ExecPlan {
    /// Tick every node every cycle (the reference loop) instead of the
    /// event-driven loop.
    pub stepped: bool,
    /// Resolved worker count; `1` means sequential.
    pub workers: usize,
    /// Node-to-shard assignment policy for `workers > 1`.
    pub policy: ShardPolicy,
}

impl Default for ExecPlan {
    fn default() -> Self {
        ExecPlan {
            stepped: false,
            workers: 1,
            policy: ShardPolicy::default(),
        }
    }
}

/// How [`Machine`] advances simulated time — the pre-0.3 configuration
/// surface, kept for one release as a shim over the structured
/// [`Parallelism`] / [`ShardPolicy`] builder API.
#[deprecated(
    since = "0.3.0",
    note = "use MachineBuilder::parallelism / shard_policy / cycle_stepped instead"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Tick every node on every bus cycle — the original loop.
    CycleStepped,
    /// Advance directly from event to event, skipping idle cycles;
    /// `threads > 1` shards the nodes across that many workers.
    Event {
        /// Worker thread count; `0` and `1` both mean sequential.
        threads: usize,
    },
}

#[allow(deprecated)]
impl Default for RunMode {
    fn default() -> Self {
        RunMode::Event { threads: 1 }
    }
}

/// What a capped run ended with. Produced by [`Machine::run`] and
/// [`Machine::run_capped`] — the non-panicking alternative to
/// [`Machine::run_to_quiescence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a Hung outcome usually indicates a protocol bug"]
pub enum RunOutcome {
    /// Every component drained; the time is the quiescence time.
    Quiesced(Time),
    /// The cap elapsed with work still pending (protocol hang); the time
    /// is where the run stopped.
    Hung(Time),
}

impl RunOutcome {
    /// The simulated time the run ended at, regardless of outcome.
    pub fn time(self) -> Time {
        match self {
            RunOutcome::Quiesced(t) | RunOutcome::Hung(t) => t,
        }
    }

    /// True if the machine drained.
    pub fn is_quiesced(self) -> bool {
        matches!(self, RunOutcome::Quiesced(_))
    }

    /// The quiescence time; panics on [`RunOutcome::Hung`].
    #[track_caller]
    pub fn expect_quiesced(self) -> Time {
        match self {
            RunOutcome::Quiesced(t) => t,
            RunOutcome::Hung(t) => panic!("machine failed to quiesce by {t}"),
        }
    }
}

/// The node-to-shard assignment a sharded run executes under: a pure
/// function of (node count, topology, policy, worker count), never of
/// runtime state, so the same machine always shards the same way.
pub(crate) struct ShardMap {
    /// Number of shards.
    pub shards: usize,
    /// `owner[node] = (shard, local index within the shard)`. Local
    /// indices are dense and ascend with node id inside each shard.
    pub owner: Vec<(u32, u32)>,
}

impl Machine {
    /// Rebuild the wake index from a full scan. Every public run entry
    /// point marks the index invalid (the node list is `pub`, so callers
    /// may have mutated nodes since the last run); the first
    /// [`Machine::next_exec_cycle`] after that rebuilds here. While a run
    /// is in flight the index is maintained incrementally: a node's wake
    /// only changes when the node executes or a packet reaches it, and
    /// [`Machine::step_due`] republishes on exactly those edges.
    fn refresh_wakes(&mut self) {
        self.wake.reset(self.nodes.len());
        let c = self.cycle;
        for (i, n) in self.nodes.iter().enumerate() {
            self.wake.publish(i, n.next_event_cycle(c, &self.clock));
        }
        self.wake_valid = true;
    }

    /// Earliest cycle (`>= self.cycle`) at which any node or the network
    /// might change state, or `None` if the machine is idle forever.
    /// O(log N) via the wake index, instead of rescanning every node.
    pub(crate) fn next_exec_cycle(&mut self) -> Option<u64> {
        if !self.wake_valid {
            self.refresh_wakes();
        }
        let c = self.cycle;
        let mut next = self.wake.min();
        debug_assert!(next.is_none_or(|n| n >= c), "stale wake behind the cursor");
        let net = match &self.ideal {
            Some(ideal) => ideal.next_event_time(),
            None => self.network.next_event_time(),
        };
        if let Some(t) = net {
            let nc = self.clock.edge_at_or_after(t).max(c);
            next = Some(next.map_or(nc, |n| n.min(nc)));
        }
        next
    }

    /// Execute the current cycle visiting only the nodes whose advertised
    /// wake is due — the event-loop twin of [`Machine::step`]. Ticking a
    /// node before its advertised wake is a guaranteed no-op (superset
    /// execution), so restricting the visit set cannot change behaviour;
    /// the equivalence tests prove the two bit-identical. All buffers are
    /// machine-owned scratch: the steady state allocates nothing.
    fn step_due(&mut self) {
        let now = self.clock.edge(self.cycle);
        self.now = now;
        let cycle = self.cycle;
        match &mut self.ideal {
            Some(ideal) => {
                ideal.advance(now);
                ideal.drain_delivered_into(&mut self.delivered);
            }
            None => {
                self.network.advance(now);
                self.network.drain_delivered_into(&mut self.delivered);
            }
        }
        for (_, pkt) in self.delivered.drain(..) {
            let node = &mut self.nodes[pkt.dst as usize];
            if node.tracer.enabled() {
                node.tracer.record(
                    now,
                    sv_sim::trace::Subsys::Net,
                    format!("rx {}B from node {}", pkt.wire_bytes, pkt.src),
                );
            }
            let dst = pkt.dst;
            node.niu.push_arrival_packet(cycle, pkt);
            // The arrival may unblock the destination this very cycle.
            self.wake.publish(dst as usize, Some(cycle));
            self.runstats.wake_republishes += 1;
        }
        self.wake.drain_due(cycle, &mut self.due);
        self.runstats.node_ticks += self.due.len() as u64;
        for &i in &self.due {
            self.nodes[i as usize].tick(cycle, now);
        }
        for &i in &self.due {
            let node = &mut self.nodes[i as usize];
            while let Some(pkt) = node.niu.pop_ready_packet(cycle) {
                if node.tracer.enabled() {
                    node.tracer.record(
                        now,
                        sv_sim::trace::Subsys::Net,
                        format!("tx {}B to node {}", pkt.wire_bytes, pkt.dst),
                    );
                }
                match &mut self.ideal {
                    Some(ideal) => ideal.inject(now, pkt),
                    None => self.network.inject(now, pkt),
                }
            }
        }
        for &i in &self.due {
            let w = self.nodes[i as usize].next_event_cycle(cycle + 1, &self.clock);
            self.wake.publish(i as usize, w);
        }
        self.runstats.wake_republishes += self.due.len() as u64;
        self.cycle += 1;
    }

    /// Event-driven advance to `target` (exclusive): execute exactly the
    /// cycles in `[self.cycle, target)` on which something can happen.
    fn advance_event_to(&mut self, target: u64) {
        while let Some(c) = self.next_exec_cycle() {
            if c >= target {
                break;
            }
            self.cycle = c;
            self.step_due();
        }
        self.land_on(target);
    }

    /// Jump to `target` without executing anything, maintaining the
    /// `now == edge(cycle - 1)` invariant the stepped loop establishes.
    fn land_on(&mut self, target: u64) {
        debug_assert!(
            self.next_exec_cycle().is_none_or(|c| c >= target),
            "landing past an executable cycle"
        );
        if target > self.cycle {
            self.cycle = target;
        }
        if self.cycle > 0 {
            self.now = self.clock.edge(self.cycle - 1);
        }
    }

    /// Advance to `target` under the machine's execution plan.
    fn advance_chunk(&mut self, target: u64) {
        if self.plan.workers > 1 && self.nodes.len() > 1 {
            self.advance_sharded_to(target);
        } else {
            self.advance_event_to(target);
        }
    }

    /// Run for `ns` nanoseconds of simulated time.
    pub fn run_for(&mut self, ns: u64) {
        // `nodes` is public: anything may have changed since the last
        // run, so memoized wakes cannot be trusted across entries.
        self.wake_valid = false;
        let until = self.now.plus(ns);
        if self.plan.stepped {
            while self.clock.edge(self.cycle) <= until {
                self.step();
            }
        } else {
            // First cycle whose edge lies beyond `until` — exactly
            // where the stepped loop stops.
            let target = self.clock.edge_at_or_after(until.plus(1));
            self.advance_chunk(target.max(self.cycle));
        }
    }

    /// Run until nothing in the machine has work left, or `max_ns` of
    /// simulated time elapse. Returns the quiescence time, or `Err` with
    /// the cap time if the machine never settled (protocol hang).
    pub fn run_to_quiescence_capped(&mut self, max_ns: u64) -> Result<Time, Time> {
        self.wake_valid = false;
        if self.plan.stepped {
            // The original loop, stepped cycle by cycle. Quiescence is
            // only evaluated on *absolute* 32-cycle boundaries of the
            // machine clock (not boundaries relative to run entry), so
            // a run resumed mid-window — e.g. from a checkpoint — probes
            // the same boundaries as the uninterrupted run and reports
            // the identical quiescence cycle. Entered at cycle 0 this is
            // exactly the classic check-every-32-steps loop.
            let cap = self.now.plus(max_ns);
            loop {
                self.step();
                if !self.cycle.is_multiple_of(32) {
                    continue;
                }
                if self.quiescent() {
                    return Ok(self.now);
                }
                if self.now > cap {
                    return Err(self.now);
                }
            }
        }
        let cap = self.now.plus(max_ns);
        let c0 = self.cycle;
        // Probe boundaries are absolute multiples of 32, mirroring the
        // stepped loop above; `first` is the lowest probe strictly past
        // the entry cycle. First boundary b with edge(b - 1) > cap: the
        // stepped loop reports a hang at exactly that boundary.
        let first = c0 / 32 + 1;
        let cap_cycle = self.clock.edge_at_or_after(cap.plus(1));
        let b_cap = 32 * (cap_cycle + 1).div_ceil(32).max(first);
        if self.plan.workers > 1 && self.nodes.len() > 1 {
            return self.run_to_quiescence_windowed(c0, b_cap);
        }
        let mut boundary = 32 * (first - 1);
        loop {
            boundary += 32;
            self.advance_chunk(boundary);
            if self.quiescent() {
                return Ok(self.now);
            }
            if self.now > cap {
                return Err(self.now);
            }
            match self.next_exec_cycle() {
                None => {
                    // Nothing will ever run again and the machine is not
                    // quiescent: a guaranteed hang. Idle straight to the
                    // boundary where the stepped loop would notice.
                    self.land_on(b_cap);
                    return Err(self.now);
                }
                Some(nx) if nx >= boundary + 32 => {
                    // Whole chunks of idle time: state is frozen until
                    // `nx`, so every skipped boundary check would see the
                    // same non-quiescent machine. Jump to the last
                    // boundary at or before `nx` (or to the cap boundary
                    // if that comes first).
                    let jump = (nx / 32 * 32).min(b_cap);
                    if jump > boundary {
                        self.land_on(jump);
                        boundary = jump;
                        if self.now > cap {
                            return Err(self.now);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// The parallel variant of the capped quiescence loop.
    ///
    /// Spawning a worker scope every 32 cycles would drown the run in
    /// thread overhead, so instead of checking quiescence at every
    /// 32-cycle boundary this advances in long strides and *reconstructs*
    /// the boundary the stepped loop would have stopped at: machine state
    /// is frozen after the last executed cycle `c_last`, so if the
    /// machine is quiescent at the stride end it has been quiescent at
    /// every boundary past `c_last` — and at none before (quiescence is
    /// absorbing: a quiescent machine can never execute again). The first
    /// boundary `b` with `b - 1 >= c_last` is therefore exactly where the
    /// stepped loop returns, and the cursor is rewound to it.
    fn run_to_quiescence_windowed(&mut self, c0: u64, b_cap: u64) -> Result<Time, Time> {
        // Strides only bound how often the worker scope is re-spawned;
        // past quiescence a stride executes nothing, so overshooting is
        // free and the boundary reconstruction keeps results exact.
        const STRIDE: u64 = 1 << 16;
        // Boundaries are absolute multiples of 32 (see the stepped
        // loop); `first` is the lowest probe strictly past run entry.
        let first = c0 / 32 + 1;
        let boundary_after =
            |c_last: Option<u64>| 32 * c_last.map_or(first, |cl| (cl + 1).div_ceil(32).max(first));
        let mut last_exec: Option<u64> = None;
        loop {
            match self.next_exec_cycle() {
                // Nothing can ever run again: either the machine drained
                // (report the boundary just past the last real work) or
                // it is hung with silent work pending (report the cap).
                None => {
                    return if self.quiescent() {
                        let b_q = boundary_after(last_exec);
                        debug_assert!(b_q <= b_cap);
                        self.cycle = b_q;
                        self.now = self.clock.edge(b_q - 1);
                        Ok(self.now)
                    } else {
                        self.land_on(b_cap);
                        Err(self.now)
                    };
                }
                // The next event lies past the cap boundary: the stepped
                // loop reaches the cap in this exact state and gives up.
                Some(nx) if nx >= b_cap => {
                    self.land_on(b_cap);
                    return Err(self.now);
                }
                Some(nx) => {
                    let target = (32 * (nx + STRIDE).div_ceil(32).max(first)).min(b_cap);
                    let le = self.advance_sharded_to(target);
                    if let Some(l) = le {
                        last_exec = Some(last_exec.map_or(l, |p| p.max(l)));
                    }
                    if self.quiescent() {
                        let b_q = boundary_after(last_exec);
                        debug_assert!(b_q <= target);
                        self.cycle = b_q;
                        self.now = self.clock.edge(b_q - 1);
                        return Ok(self.now);
                    }
                    if target == b_cap {
                        return Err(self.now);
                    }
                }
            }
        }
    }

    /// Run to quiescence with a generous default cap (1 s of simulated
    /// time); panics on a hang, which always indicates a protocol bug.
    /// Prefer [`Machine::run`] where a hang should be handled.
    pub fn run_to_quiescence(&mut self) -> Time {
        self.run_capped(1_000_000_000).expect_quiesced()
    }

    /// Run to quiescence with the default 1 s cap, reporting a hang as a
    /// value instead of panicking.
    pub fn run(&mut self) -> RunOutcome {
        self.run_capped(1_000_000_000)
    }

    /// Run to quiescence or until `max_ns` of simulated time elapse.
    pub fn run_capped(&mut self, max_ns: u64) -> RunOutcome {
        match self.run_to_quiescence_capped(max_ns) {
            Ok(t) => RunOutcome::Quiesced(t),
            Err(t) => RunOutcome::Hung(t),
        }
    }

    /// Largest window span (in bus cycles) safe under lookahead `la_ns`:
    /// `edge(c + w - 1) - edge(c) < la_ns` for every `c`, so injections
    /// inside a window can never produce deliveries inside it.
    fn window_cycles(&self, la_ns: u64) -> u64 {
        // edge(k) - edge(0) <= edge(w) + 1 for any k-span of w cycles
        // (floor jitter), so requiring edge(w) <= la_ns - 1 suffices.
        self.clock
            .edge_at_or_after(Time::from_ns(la_ns))
            .saturating_sub(1)
            .max(1)
    }

    /// Build the node-to-shard assignment for the machine's plan.
    ///
    /// [`ShardPolicy::BySubtree`] picks a fat-tree height `k` and makes
    /// every aligned `4^k`-node chunk — which *is* a height-`k` subtree —
    /// one shard. `k` starts from the worker-balance choice
    /// ([`sv_arctic::FatTree::shard_levels_for`]) and is then coarsened
    /// until cross-shard traffic spends at least two lookahead windows in
    /// flight ([`sv_arctic::Network::cross_subtree_latency_ns`]), so a
    /// packet leaving a shard never re-synchronizes adjacent windows —
    /// while never dropping below one shard per worker.
    pub(crate) fn shard_map(&self) -> ShardMap {
        let n = self.nodes.len();
        let workers = self.plan.workers.max(1);
        match self.plan.policy {
            ShardPolicy::BySubtree => {
                let topo = &self.network.topology;
                let mut k = topo.shard_levels_for(workers);
                if self.ideal.is_none() {
                    let floor_ns = 2 * self.network.lookahead_ns();
                    while topo.subtree_count(k + 1) >= workers
                        && topo.subtree_count(k) > 1
                        && self.network.cross_subtree_latency_ns(k) < floor_ns
                    {
                        k += 1;
                    }
                }
                let span = sv_arctic::FatTree::subtree_span(k);
                ShardMap {
                    shards: n.div_ceil(span),
                    owner: (0..n)
                        .map(|i| ((i / span) as u32, (i % span) as u32))
                        .collect(),
                }
            }
            ShardPolicy::RoundRobin => {
                let shards = workers.min(n.max(1));
                ShardMap {
                    shards,
                    owner: (0..n)
                        .map(|i| ((i % shards) as u32, (i / shards) as u32))
                        .collect(),
                }
            }
        }
    }

    /// Sharded parallel advance to `target` (exclusive). Returns the
    /// last cycle on which anything executed, if any did.
    fn advance_sharded_to(&mut self, target: u64) -> Option<u64> {
        if target <= self.cycle {
            self.land_on(target);
            return None;
        }
        let la_ns = match &self.ideal {
            Some(ideal) => ideal.lookahead_ns(),
            None => self.network.lookahead_ns(),
        };
        let window = self.window_cycles(la_ns);
        let map = self.shard_map();
        let clock = self.clock;
        let start = self.cycle;
        let workers = self.plan.workers;
        let res = match &mut self.ideal {
            Some(ideal) => run_sharded(
                &mut self.nodes,
                ideal,
                clock,
                start,
                target,
                workers,
                &map,
                window,
            ),
            None => run_sharded(
                &mut self.nodes,
                &mut self.network,
                clock,
                start,
                target,
                workers,
                &map,
                window,
            ),
        };
        self.cycle = target;
        self.now = clock.edge(target - 1);
        // The shards advanced the nodes; the machine-level index no
        // longer reflects them.
        self.wake_valid = false;
        self.runstats.node_ticks += res.ticks;
        self.runstats.wake_republishes += res.republishes;
        res.last_exec
    }
}

/// The two network models, as the sharded executor sees them.
trait NetModel: Clone {
    fn next_event_time(&self) -> Option<Time>;
    fn advance(&mut self, until: Time);
    fn take_delivered(&mut self) -> Vec<(Time, Packet<NetPayload>)>;
    fn drain_delivered_into(&mut self, out: &mut Vec<(Time, Packet<NetPayload>)>);
    fn inject(&mut self, now: Time, pkt: Packet<NetPayload>);
}

impl NetModel for Network<NetPayload> {
    fn next_event_time(&self) -> Option<Time> {
        Network::next_event_time(self)
    }
    fn advance(&mut self, until: Time) {
        Network::advance(self, until)
    }
    fn take_delivered(&mut self) -> Vec<(Time, Packet<NetPayload>)> {
        Network::take_delivered(self)
    }
    fn drain_delivered_into(&mut self, out: &mut Vec<(Time, Packet<NetPayload>)>) {
        Network::drain_delivered_into(self, out)
    }
    fn inject(&mut self, now: Time, pkt: Packet<NetPayload>) {
        Network::inject(self, now, pkt)
    }
}

impl NetModel for IdealNetwork<NetPayload> {
    fn next_event_time(&self) -> Option<Time> {
        IdealNetwork::next_event_time(self)
    }
    fn advance(&mut self, until: Time) {
        IdealNetwork::advance(self, until)
    }
    fn take_delivered(&mut self) -> Vec<(Time, Packet<NetPayload>)> {
        IdealNetwork::take_delivered(self)
    }
    fn drain_delivered_into(&mut self, out: &mut Vec<(Time, Packet<NetPayload>)>) {
        IdealNetwork::drain_delivered_into(self, out)
    }
    fn inject(&mut self, now: Time, pkt: Packet<NetPayload>) {
        IdealNetwork::inject(self, now, pkt)
    }
}

/// One shard of the machine during a sharded run: exclusive ownership of
/// its member nodes (ascending node id), its own wake index, and drain
/// scratch. Shards move wholesale between the scheduler and the worker
/// pool (`std::mem::take` + channels), so no node is ever aliased across
/// threads and the loop needs no locks.
#[derive(Default)]
struct Shard<'a> {
    /// The shard's nodes, local index -> disjoint `&mut` borrow.
    members: Vec<&'a mut Node>,
    /// Wake index over local indices. Stays valid across windows the
    /// shard sits out: its nodes are frozen until it executes again.
    wake: WakeIndex,
    /// `drain_due` scratch, reused across windows.
    due: Vec<u32>,
}

/// One window of work for a shard: execute `[cursor, w1)` with
/// `arrivals` pre-scheduled at their exact delivery cycles (ascending),
/// already resolved to local member indices.
struct ShardTask<'a> {
    si: usize,
    shard: Shard<'a>,
    w1: u64,
    arrivals: Vec<(u64, u32, Packet<NetPayload>)>,
}

/// A shard coming back from the pool, with everything it produced.
struct ShardOut<'a> {
    si: usize,
    shard: Shard<'a>,
    /// Packets popped from NIUs this window: `(cycle, node id, packet)`,
    /// in per-node FIFO order.
    injections: Vec<(u64, u16, Packet<NetPayload>)>,
    w: WindowOut,
}

/// What executing one shard window produced.
struct WindowOut {
    /// The shard's next event cycle at the window end (state is frozen
    /// until the shard executes again, so this stays valid across
    /// windows the shard sits out).
    next_wake: Option<u64>,
    /// Last cycle this shard executed in the window, if any.
    last_exec: Option<u64>,
    /// Node ticks this shard executed in the window.
    ticks: u64,
    /// Arrival + post-tick wake publishes this window (priming excluded
    /// so the count matches the sequential loop exactly).
    republishes: u64,
}

/// What [`run_sharded`] hands back to the machine.
struct WindowsResult {
    /// Last cycle on which anything executed, if any did.
    last_exec: Option<u64>,
    /// Node ticks executed across all shards.
    ticks: u64,
    /// Arrival + post-tick wake publishes across all shards.
    republishes: u64,
}

/// Execute one shard's window up to `w1` (exclusive): pre-scheduled
/// `arrivals` interleaved with the shard's own event cycles — the exact
/// per-cycle sequence of [`Machine::step`], restricted to this shard.
/// Injections are appended to `injections` in per-node FIFO order.
fn exec_window(
    shard: &mut Shard<'_>,
    clock: &Clock,
    w1: u64,
    arrivals: Vec<(u64, u32, Packet<NetPayload>)>,
    injections: &mut Vec<(u64, u16, Packet<NetPayload>)>,
) -> WindowOut {
    let mut last_exec = None;
    let mut ticks = 0u64;
    let mut republishes = 0u64;
    let mut arr = arrivals.into_iter().peekable();
    loop {
        // Next cycle on which this shard can act: its own engines'
        // wake-ups plus pre-scheduled packet arrivals.
        let mut nx = shard.wake.min();
        if let Some(&(ac, _, _)) = arr.peek() {
            nx = Some(nx.map_or(ac, |v| v.min(ac)));
        }
        let Some(ce) = nx else { break };
        if ce >= w1 {
            break;
        }
        let now = clock.edge(ce);
        // Same per-cycle sequence as Machine::step, restricted to the
        // due nodes of this shard: deliveries, ticks, egress.
        while arr.peek().is_some_and(|&(ac, _, _)| ac == ce) {
            let (_, li, pkt) = arr.next().expect("peeked");
            let node = &mut *shard.members[li as usize];
            debug_assert_eq!(node.id, pkt.dst, "arrival routed to the wrong shard slot");
            if node.tracer.enabled() {
                node.tracer.record(
                    now,
                    sv_sim::trace::Subsys::Net,
                    format!("rx {}B from node {}", pkt.wire_bytes, pkt.src),
                );
            }
            node.niu.push_arrival_packet(ce, pkt);
            shard.wake.publish(li as usize, Some(ce));
            republishes += 1;
        }
        shard.wake.drain_due(ce, &mut shard.due);
        ticks += shard.due.len() as u64;
        for &i in &shard.due {
            shard.members[i as usize].tick(ce, now);
        }
        for &i in &shard.due {
            let node = &mut *shard.members[i as usize];
            while let Some(pkt) = node.niu.pop_ready_packet(ce) {
                if node.tracer.enabled() {
                    node.tracer.record(
                        now,
                        sv_sim::trace::Subsys::Net,
                        format!("tx {}B to node {}", pkt.wire_bytes, pkt.dst),
                    );
                }
                injections.push((ce, node.id, pkt));
            }
        }
        for &i in &shard.due {
            let w = shard.members[i as usize].next_event_cycle(ce + 1, clock);
            shard.wake.publish(i as usize, w);
        }
        republishes += shard.due.len() as u64;
        last_exec = Some(ce);
    }
    // All live wakes are >= w1 here (the loop above drained anything
    // earlier), so the index min IS the shard's wake at the window
    // end — no rescan.
    let next_wake = shard.wake.min();
    debug_assert!(next_wake.is_none_or(|w| w >= w1));
    WindowOut {
        next_wake,
        last_exec,
        ticks,
        republishes,
    }
}

/// Run one shard alone against the *committed* network until `bound`
/// (exclusive) — the sequential fast path the scheduler takes when no
/// other shard and no network event can act first. Because this shard is
/// the only actor, global order is its order: packets it pops are
/// injected straight into the network at their exact cycles, and the
/// bound shrinks to the network's next event cycle after any injection
/// so no dispatch or delivery is ever overrun. Returns the cycle the
/// run established quiet up to (the final bound) plus the usual window
/// accounting.
fn exec_burst<N: NetModel>(
    shard: &mut Shard<'_>,
    net: &mut N,
    clock: &Clock,
    mut bound: u64,
) -> (u64, WindowOut) {
    let mut last_exec = None;
    let mut ticks = 0u64;
    let mut republishes = 0u64;
    while let Some(ce) = shard.wake.min() {
        if ce >= bound {
            break;
        }
        let now = clock.edge(ce);
        shard.wake.drain_due(ce, &mut shard.due);
        ticks += shard.due.len() as u64;
        for &i in &shard.due {
            shard.members[i as usize].tick(ce, now);
        }
        let mut injected = false;
        for &i in &shard.due {
            let node = &mut *shard.members[i as usize];
            while let Some(pkt) = node.niu.pop_ready_packet(ce) {
                if node.tracer.enabled() {
                    node.tracer.record(
                        now,
                        sv_sim::trace::Subsys::Net,
                        format!("tx {}B to node {}", pkt.wire_bytes, pkt.dst),
                    );
                }
                if !injected {
                    // First egress this cycle: bring the network up to
                    // now (a no-op walk — it has no event before
                    // `bound`) so the injection lands at its exact
                    // cycle, as in the sequential step.
                    net.advance(now);
                    injected = true;
                }
                net.inject(now, pkt);
            }
        }
        for &i in &shard.due {
            let w = shard.members[i as usize].next_event_cycle(ce + 1, clock);
            shard.wake.publish(i as usize, w);
        }
        republishes += shard.due.len() as u64;
        last_exec = Some(ce);
        if injected {
            // The injection scheduled new network events; the quiet
            // horizon this burst may claim ends where they begin.
            if let Some(t) = net.next_event_time() {
                bound = bound.min(clock.edge_at_or_after(t).max(ce + 1));
            }
        }
    }
    let next_wake = shard.wake.min();
    debug_assert!(next_wake.is_none_or(|w| w >= bound));
    (
        bound,
        WindowOut {
            next_wake,
            last_exec,
            ticks,
            republishes,
        },
    )
}

/// Worker loop: pull shard windows off the shared task channel (idle
/// workers steal whatever shard is ready next), execute, hand the shard
/// back.
fn shard_worker<'a>(
    clock: Clock,
    tasks: channel::Receiver<ShardTask<'a>>,
    out: channel::Sender<ShardOut<'a>>,
) {
    while let Ok(ShardTask {
        si,
        mut shard,
        w1,
        arrivals,
    }) = tasks.recv()
    {
        let mut injections = Vec::new();
        let w = exec_window(&mut shard, &clock, w1, arrivals, &mut injections);
        if out
            .send(ShardOut {
                si,
                shard,
                injections,
                w,
            })
            .is_err()
        {
            return;
        }
    }
}

/// Drive `nodes` from cycle `start` to `target` under the shard map
/// `map`, with up to `workers` pool threads. See the module docs for the
/// protocol and its determinism argument.
///
/// The loop is a hybrid: each iteration either executes one event cycle
/// inline (when at most one shard has work inside the next window span —
/// the sequential per-cycle sequence over the sharded structures, no
/// cloning, no channel traffic) or dispatches one parallel
/// harvest/execute/commit window across every active shard.
#[allow(clippy::too_many_arguments)]
fn run_sharded<'a, N: NetModel>(
    nodes: &'a mut [Node],
    net: &mut N,
    clock: Clock,
    start: u64,
    target: u64,
    workers: usize,
    map: &ShardMap,
    window: u64,
) -> WindowsResult {
    debug_assert!(workers > 1);
    debug_assert_eq!(map.owner.len(), nodes.len());
    // Build the shards: disjoint &mut borrows, ascending node id within
    // each shard (both policies assign local indices in id order).
    let mut shards: Vec<Shard<'a>> = (0..map.shards).map(|_| Shard::default()).collect();
    for (i, node) in nodes.iter_mut().enumerate() {
        let (si, li) = map.owner[i];
        debug_assert_eq!(shards[si as usize].members.len(), li as usize);
        shards[si as usize].members.push(node);
    }
    // Prime each shard's wake index (uncounted, like the machine-level
    // refresh: republish counters only track in-run maintenance).
    for sh in &mut shards {
        sh.wake.reset(sh.members.len());
        for (li, nd) in sh.members.iter().enumerate() {
            sh.wake.publish(li, nd.next_event_cycle(start, &clock));
        }
    }
    // Scheduler-side wake cache: exact per shard, refreshed whenever the
    // shard executes (its nodes are frozen in between).
    let mut wakes: Vec<Option<u64>> = shards.iter_mut().map(|s| s.wake.min()).collect();
    let mut last_exec: Option<u64> = None;
    let mut ticks = 0u64;
    let mut republishes = 0u64;
    std::thread::scope(|scope| {
        let (task_tx, task_rx) = channel::unbounded::<ShardTask<'a>>();
        let (out_tx, out_rx) = channel::unbounded::<ShardOut<'a>>();
        // The pool is spawned lazily on the first parallel window, so
        // runs that stay inline (sparse phases, small machines) never
        // pay thread startup.
        let mut pool = 0usize;
        let mut cursor = start;
        // Reused scratch; the steady state allocates only inside nodes.
        let mut arrivals_buf: Vec<Vec<(u64, u32, Packet<NetPayload>)>> =
            (0..map.shards).map(|_| Vec::new()).collect();
        let mut injections: Vec<(u64, u16, Packet<NetPayload>)> = Vec::new();
        let mut delivered: Vec<(Time, Packet<NetPayload>)> = Vec::new();
        let mut merged: Vec<(u16, u32, u32)> = Vec::new();
        let mut drained: Vec<usize> = Vec::new();
        loop {
            // Next cycle anything can happen, shard wakes or network.
            let net_cycle = net
                .next_event_time()
                .map(|t| clock.edge_at_or_after(t).max(cursor));
            let mut nx = net_cycle;
            for w in wakes.iter().flatten() {
                nx = Some(nx.map_or(*w, |g| g.min(*w)));
            }
            let Some(nx) = nx else { break };
            if nx >= target {
                break;
            }
            debug_assert!(nx >= cursor, "stale shard wake behind the cursor");
            let w1 = (nx + window).min(target);
            let wake_active = wakes.iter().filter(|w| w.is_some_and(|c| c < w1)).count();
            if wake_active < 2 && net_cycle != Some(nx) {
                // ---- Sequential burst ----
                // Exactly one shard can act and no network event
                // intervenes before it does: run that shard alone
                // against the committed network until anything else
                // could matter. No window span limit applies — this is
                // sequential execution, not a concurrent window — so
                // sparse phases (staggered senders, drain-out) run at
                // full event-loop speed with zero scheduling overhead.
                let si = wakes
                    .iter()
                    .position(|w| *w == Some(nx))
                    .expect("nx must come from a shard wake");
                let mut bound = target;
                if let Some(nc) = net_cycle {
                    bound = bound.min(nc);
                }
                for (sj, w) in wakes.iter().enumerate() {
                    if sj != si {
                        if let Some(w) = w {
                            bound = bound.min(*w);
                        }
                    }
                }
                debug_assert!(nx < bound);
                let (end, w) = exec_burst(&mut shards[si], net, &clock, bound);
                wakes[si] = w.next_wake;
                if let Some(l) = w.last_exec {
                    last_exec = Some(last_exec.map_or(l, |p| p.max(l)));
                }
                ticks += w.ticks;
                republishes += w.republishes;
                cursor = end;
            } else if wake_active < 2 {
                // ---- Inline event cycle at `nx` ----
                // At most one shard can act before the window end, so a
                // parallel window would buy nothing; execute the one
                // cycle exactly as the sequential loop would.
                let now = clock.edge(nx);
                net.advance(now);
                net.drain_delivered_into(&mut delivered);
                for (_, pkt) in delivered.drain(..) {
                    let (si, li) = map.owner[pkt.dst as usize];
                    let sh = &mut shards[si as usize];
                    let node = &mut *sh.members[li as usize];
                    if node.tracer.enabled() {
                        node.tracer.record(
                            now,
                            sv_sim::trace::Subsys::Net,
                            format!("rx {}B from node {}", pkt.wire_bytes, pkt.src),
                        );
                    }
                    node.niu.push_arrival_packet(nx, pkt);
                    sh.wake.publish(li as usize, Some(nx));
                    republishes += 1;
                    wakes[si as usize] = Some(wakes[si as usize].map_or(nx, |w| w.min(nx)));
                }
                // Merge the due members of every due shard in global
                // node-id order — the visit order of the sequential
                // loop. (BySubtree shards are contiguous so this is
                // already sorted; RoundRobin interleaves, hence the
                // sort.)
                merged.clear();
                drained.clear();
                for si in 0..shards.len() {
                    if wakes[si].is_some_and(|w| w <= nx) {
                        drained.push(si);
                        let sh = &mut shards[si];
                        sh.wake.drain_due(nx, &mut sh.due);
                        for &li in &sh.due {
                            merged.push((sh.members[li as usize].id, si as u32, li));
                        }
                    }
                }
                merged.sort_unstable_by_key(|&(id, _, _)| id);
                ticks += merged.len() as u64;
                for &(_, si, li) in &merged {
                    shards[si as usize].members[li as usize].tick(nx, now);
                }
                for &(_, si, li) in &merged {
                    let node = &mut *shards[si as usize].members[li as usize];
                    while let Some(pkt) = node.niu.pop_ready_packet(nx) {
                        if node.tracer.enabled() {
                            node.tracer.record(
                                now,
                                sv_sim::trace::Subsys::Net,
                                format!("tx {}B to node {}", pkt.wire_bytes, pkt.dst),
                            );
                        }
                        net.inject(now, pkt);
                    }
                }
                for &(_, si, li) in &merged {
                    let sh = &mut shards[si as usize];
                    let w = sh.members[li as usize].next_event_cycle(nx + 1, &clock);
                    sh.wake.publish(li as usize, w);
                }
                republishes += merged.len() as u64;
                for &si in &drained {
                    wakes[si] = shards[si].wake.min();
                }
                if !merged.is_empty() {
                    last_exec = Some(last_exec.map_or(nx, |p| p.max(nx)));
                }
                cursor = nx + 1;
            } else {
                // ---- Parallel window [nx, w1) ----
                let w0 = nx;
                let horizon = clock.edge(w1 - 1);
                // Harvest: everything the committed network will deliver
                // in this window, scheduled at exact delivery cycles.
                // Window spans are below the lookahead bound, so this
                // window's own injections cannot add to the set.
                let mut harvested = 0usize;
                if net.next_event_time().is_some_and(|t| t <= horizon) {
                    let mut probe = net.clone();
                    probe.advance(horizon);
                    for (t, pkt) in probe.take_delivered() {
                        let c = clock.edge_at_or_after(t).max(w0);
                        debug_assert!(c < w1, "delivery past the window end");
                        harvested += 1;
                        let (si, li) = map.owner[pkt.dst as usize];
                        arrivals_buf[si as usize].push((c, li, pkt));
                    }
                }
                if pool == 0 {
                    pool = workers.min(map.shards);
                    for _ in 0..pool {
                        let rx = task_rx.clone();
                        let tx = out_tx.clone();
                        scope.spawn(move || shard_worker(clock, rx, tx));
                    }
                }
                // Dispatch every shard with work in the window; the rest
                // stay in place, frozen, their cached wakes still exact.
                let mut outstanding = 0usize;
                for si in 0..shards.len() {
                    if arrivals_buf[si].is_empty() && wakes[si].is_none_or(|w| w >= w1) {
                        continue;
                    }
                    task_tx
                        .send(ShardTask {
                            si,
                            shard: std::mem::take(&mut shards[si]),
                            w1,
                            arrivals: std::mem::take(&mut arrivals_buf[si]),
                        })
                        .expect("shard worker exited early");
                    outstanding += 1;
                }
                for _ in 0..outstanding {
                    let out = out_rx.recv().expect("shard worker died");
                    wakes[out.si] = out.w.next_wake;
                    if let Some(l) = out.w.last_exec {
                        last_exec = Some(last_exec.map_or(l, |p| p.max(l)));
                    }
                    ticks += out.w.ticks;
                    republishes += out.w.republishes;
                    injections.extend(out.injections);
                    shards[out.si] = out.shard;
                }
                // Commit: replay injections in the order the sequential
                // loop would have produced them (cycle, then node index,
                // then per-node FIFO — the sort is stable), interleaving
                // network advances so link arbitration and fault RNG
                // draws see events in time order.
                injections.sort_by_key(|&(c, src, _)| (c, src));
                let mut advanced_to: Option<u64> = None;
                for (c, _, pkt) in injections.drain(..) {
                    if advanced_to != Some(c) {
                        net.advance(clock.edge(c));
                        advanced_to = Some(c);
                    }
                    net.inject(clock.edge(c), pkt);
                }
                net.advance(horizon);
                // These deliveries are exactly the set harvested above
                // and already executed by the shards.
                let replayed = net.take_delivered();
                debug_assert_eq!(replayed.len(), harvested, "commit/harvest disagree");
                drop(replayed);
                cursor = w1;
            }
        }
        drop(task_tx);
    });
    WindowsResult {
        last_exec,
        ticks,
        republishes,
    }
}
