//! The machine's run loops: cycle-stepped, event-driven, and parallel.
//!
//! The original run loop ([`RunMode::CycleStepped`]) ticks every node on
//! every 66 MHz bus cycle. That is simple and obviously correct, but most
//! cycles in realistic workloads are *idle*: every engine's gate is
//! blocked (a busy-timer has not expired, a queue is empty, a window is
//! full), so the tick mutates nothing. The event-driven loop
//! ([`RunMode::Event`]) exploits exactly that property:
//!
//! **Superset execution.** Every per-cycle engine in the machine (CPU
//! step, bus pipeline, NIU engines, sP firmware) is a pure check when its
//! gate is blocked. Ticking a component on a cycle where it has nothing
//! to do is a no-op, so executing a *superset* of the state-changing
//! cycles is always safe; only *skipping* a state-changing cycle is not.
//! Each component therefore exposes a conservative `next_event_cycle`
//! (see [`crate::node::Node::next_event_cycle`]): the earliest future
//! cycle at which it *might* change state. The event loop advances
//! directly to the minimum over all nodes and the network, executes that
//! one cycle with the exact same per-cycle sequence as the stepped loop,
//! and recomputes. The two loops are bit-identical by construction, which
//! the equivalence tests in `tests/` assert end to end.
//!
//! **Parallel windows.** With `threads > 1` the event loop additionally
//! shards the nodes across worker threads. Nodes only interact through
//! the network, and the network has a *lookahead* `L`
//! ([`sv_arctic::Network::lookahead_ns`]): a packet injected at time `t`
//! cannot affect any delivery before `t + L`. Execution therefore
//! proceeds in conservative windows `[w0, w1)` whose span is strictly
//! less than `L`:
//!
//! 1. **Harvest** — the committed network (already advanced to the window
//!    start) is cloned and advanced to the window end; everything it
//!    delivers is scheduled onto the owning shard at the exact cycle the
//!    sequential loop would deliver it. Injections made *inside* the
//!    window cannot produce deliveries inside it (that is the lookahead
//!    invariant), so this pre-computed schedule is complete.
//! 2. **Execute** — each worker runs its shard's event cycles and arrival
//!    cycles for the window, recording packet injections as
//!    `(cycle, node, seq)`.
//! 3. **Commit** — the main thread merges all injections in the global
//!    order the sequential loop would have produced (cycle, then node
//!    index, then per-node FIFO) and replays them into the committed
//!    network, interleaved with `advance` calls so link arbitration sees
//!    events in time order. The deliveries this produces are exactly the
//!    harvest of the *next* windows.
//!
//! Every step of the protocol is deterministic — the merge order is a
//! pure function of simulation state, never of thread scheduling — so an
//! `N`-thread run is bit-identical to the 1-thread run, which in turn is
//! bit-identical to the cycle-stepped run.

use crate::machine::Machine;
use crate::node::Node;

use crossbeam::channel;
use sv_arctic::{IdealNetwork, Network, Packet};
use sv_niu::msg::NetPayload;
use sv_sim::{Clock, Time};

/// How [`Machine`] advances simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Tick every node on every bus cycle — the original loop. Kept as
    /// the reference implementation; the event modes are checked
    /// bit-identical against it.
    CycleStepped,
    /// Advance directly from event to event, skipping idle cycles.
    /// `threads > 1` additionally shards nodes across that many worker
    /// threads, synchronized in lookahead-bounded windows. Results are
    /// identical for every `threads` value.
    Event {
        /// Worker thread count; `0` and `1` both mean sequential.
        threads: usize,
    },
}

impl Default for RunMode {
    fn default() -> Self {
        RunMode::Event { threads: 1 }
    }
}

/// What a capped run ended with. Produced by [`Machine::run`] and
/// [`Machine::run_capped`] — the non-panicking alternative to
/// [`Machine::run_to_quiescence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a Hung outcome usually indicates a protocol bug"]
pub enum RunOutcome {
    /// Every component drained; the time is the quiescence time.
    Quiesced(Time),
    /// The cap elapsed with work still pending (protocol hang); the time
    /// is where the run stopped.
    Hung(Time),
}

impl RunOutcome {
    /// The simulated time the run ended at, regardless of outcome.
    pub fn time(self) -> Time {
        match self {
            RunOutcome::Quiesced(t) | RunOutcome::Hung(t) => t,
        }
    }

    /// True if the machine drained.
    pub fn is_quiesced(self) -> bool {
        matches!(self, RunOutcome::Quiesced(_))
    }

    /// The quiescence time; panics on [`RunOutcome::Hung`].
    #[track_caller]
    pub fn expect_quiesced(self) -> Time {
        match self {
            RunOutcome::Quiesced(t) => t,
            RunOutcome::Hung(t) => panic!("machine failed to quiesce by {t}"),
        }
    }
}

impl Machine {
    /// Rebuild the wake index from a full scan. Every public run entry
    /// point marks the index invalid (the node list is `pub`, so callers
    /// may have mutated nodes since the last run); the first
    /// [`Machine::next_exec_cycle`] after that rebuilds here. While a run
    /// is in flight the index is maintained incrementally: a node's wake
    /// only changes when the node executes or a packet reaches it, and
    /// [`Machine::step_due`] republishes on exactly those edges.
    fn refresh_wakes(&mut self) {
        self.wake.reset(self.nodes.len());
        let c = self.cycle;
        for (i, n) in self.nodes.iter().enumerate() {
            self.wake.publish(i, n.next_event_cycle(c, &self.clock));
        }
        self.wake_valid = true;
    }

    /// Earliest cycle (`>= self.cycle`) at which any node or the network
    /// might change state, or `None` if the machine is idle forever.
    /// O(log N) via the wake index, instead of rescanning every node.
    pub(crate) fn next_exec_cycle(&mut self) -> Option<u64> {
        if !self.wake_valid {
            self.refresh_wakes();
        }
        let c = self.cycle;
        let mut next = self.wake.min();
        debug_assert!(next.is_none_or(|n| n >= c), "stale wake behind the cursor");
        let net = match &self.ideal {
            Some(ideal) => ideal.next_event_time(),
            None => self.network.next_event_time(),
        };
        if let Some(t) = net {
            let nc = self.clock.edge_at_or_after(t).max(c);
            next = Some(next.map_or(nc, |n| n.min(nc)));
        }
        next
    }

    /// Execute the current cycle visiting only the nodes whose advertised
    /// wake is due — the event-loop twin of [`Machine::step`]. Ticking a
    /// node before its advertised wake is a guaranteed no-op (superset
    /// execution), so restricting the visit set cannot change behaviour;
    /// the equivalence tests prove the two bit-identical. All buffers are
    /// machine-owned scratch: the steady state allocates nothing.
    fn step_due(&mut self) {
        let now = self.clock.edge(self.cycle);
        self.now = now;
        let cycle = self.cycle;
        match &mut self.ideal {
            Some(ideal) => {
                ideal.advance(now);
                ideal.drain_delivered_into(&mut self.delivered);
            }
            None => {
                self.network.advance(now);
                self.network.drain_delivered_into(&mut self.delivered);
            }
        }
        for (_, pkt) in self.delivered.drain(..) {
            let node = &mut self.nodes[pkt.dst as usize];
            if node.tracer.enabled() {
                node.tracer.record(
                    now,
                    sv_sim::trace::Subsys::Net,
                    format!("rx {}B from node {}", pkt.wire_bytes, pkt.src),
                );
            }
            let dst = pkt.dst;
            node.niu.push_arrival_packet(cycle, pkt);
            // The arrival may unblock the destination this very cycle.
            self.wake.publish(dst as usize, Some(cycle));
            self.runstats.wake_republishes += 1;
        }
        self.wake.drain_due(cycle, &mut self.due);
        self.runstats.node_ticks += self.due.len() as u64;
        for &i in &self.due {
            self.nodes[i as usize].tick(cycle, now);
        }
        for &i in &self.due {
            let node = &mut self.nodes[i as usize];
            while let Some(pkt) = node.niu.pop_ready_packet(cycle) {
                if node.tracer.enabled() {
                    node.tracer.record(
                        now,
                        sv_sim::trace::Subsys::Net,
                        format!("tx {}B to node {}", pkt.wire_bytes, pkt.dst),
                    );
                }
                match &mut self.ideal {
                    Some(ideal) => ideal.inject(now, pkt),
                    None => self.network.inject(now, pkt),
                }
            }
        }
        for &i in &self.due {
            let w = self.nodes[i as usize].next_event_cycle(cycle + 1, &self.clock);
            self.wake.publish(i as usize, w);
        }
        self.runstats.wake_republishes += self.due.len() as u64;
        self.cycle += 1;
    }

    /// Event-driven advance to `target` (exclusive): execute exactly the
    /// cycles in `[self.cycle, target)` on which something can happen.
    fn advance_event_to(&mut self, target: u64) {
        while let Some(c) = self.next_exec_cycle() {
            if c >= target {
                break;
            }
            self.cycle = c;
            self.step_due();
        }
        self.land_on(target);
    }

    /// Jump to `target` without executing anything, maintaining the
    /// `now == edge(cycle - 1)` invariant the stepped loop establishes.
    fn land_on(&mut self, target: u64) {
        debug_assert!(
            self.next_exec_cycle().is_none_or(|c| c >= target),
            "landing past an executable cycle"
        );
        if target > self.cycle {
            self.cycle = target;
        }
        if self.cycle > 0 {
            self.now = self.clock.edge(self.cycle - 1);
        }
    }

    /// Advance to `target` in the given event mode.
    fn advance_chunk(&mut self, target: u64, threads: usize) {
        if threads > 1 && self.nodes.len() > 1 {
            self.advance_windowed_to(target, threads);
        } else {
            self.advance_event_to(target);
        }
    }

    /// Run for `ns` nanoseconds of simulated time.
    pub fn run_for(&mut self, ns: u64) {
        // `nodes` is public: anything may have changed since the last
        // run, so memoized wakes cannot be trusted across entries.
        self.wake_valid = false;
        let until = self.now.plus(ns);
        match self.mode {
            RunMode::CycleStepped => {
                while self.clock.edge(self.cycle) <= until {
                    self.step();
                }
            }
            RunMode::Event { threads } => {
                // First cycle whose edge lies beyond `until` — exactly
                // where the stepped loop stops.
                let target = self.clock.edge_at_or_after(until.plus(1));
                self.advance_chunk(target.max(self.cycle), threads);
            }
        }
    }

    /// Run until nothing in the machine has work left, or `max_ns` of
    /// simulated time elapse. Returns the quiescence time, or `Err` with
    /// the cap time if the machine never settled (protocol hang).
    pub fn run_to_quiescence_capped(&mut self, max_ns: u64) -> Result<Time, Time> {
        self.wake_valid = false;
        let RunMode::Event { threads } = self.mode else {
            // The original loop, stepped cycle by cycle. Quiescence is
            // only evaluated on *absolute* 32-cycle boundaries of the
            // machine clock (not boundaries relative to run entry), so
            // a run resumed mid-window — e.g. from a checkpoint — probes
            // the same boundaries as the uninterrupted run and reports
            // the identical quiescence cycle. Entered at cycle 0 this is
            // exactly the classic check-every-32-steps loop.
            let cap = self.now.plus(max_ns);
            loop {
                self.step();
                if !self.cycle.is_multiple_of(32) {
                    continue;
                }
                if self.quiescent() {
                    return Ok(self.now);
                }
                if self.now > cap {
                    return Err(self.now);
                }
            }
        };
        let cap = self.now.plus(max_ns);
        let c0 = self.cycle;
        // Probe boundaries are absolute multiples of 32, mirroring the
        // stepped loop above; `first` is the lowest probe strictly past
        // the entry cycle. First boundary b with edge(b - 1) > cap: the
        // stepped loop reports a hang at exactly that boundary.
        let first = c0 / 32 + 1;
        let cap_cycle = self.clock.edge_at_or_after(cap.plus(1));
        let b_cap = 32 * (cap_cycle + 1).div_ceil(32).max(first);
        if threads > 1 && self.nodes.len() > 1 {
            return self.run_to_quiescence_windowed(threads, c0, b_cap);
        }
        let mut boundary = 32 * (first - 1);
        loop {
            boundary += 32;
            self.advance_chunk(boundary, threads);
            if self.quiescent() {
                return Ok(self.now);
            }
            if self.now > cap {
                return Err(self.now);
            }
            match self.next_exec_cycle() {
                None => {
                    // Nothing will ever run again and the machine is not
                    // quiescent: a guaranteed hang. Idle straight to the
                    // boundary where the stepped loop would notice.
                    self.land_on(b_cap);
                    return Err(self.now);
                }
                Some(nx) if nx >= boundary + 32 => {
                    // Whole chunks of idle time: state is frozen until
                    // `nx`, so every skipped boundary check would see the
                    // same non-quiescent machine. Jump to the last
                    // boundary at or before `nx` (or to the cap boundary
                    // if that comes first).
                    let jump = (nx / 32 * 32).min(b_cap);
                    if jump > boundary {
                        self.land_on(jump);
                        boundary = jump;
                        if self.now > cap {
                            return Err(self.now);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// The parallel variant of the capped quiescence loop.
    ///
    /// Spawning a worker scope every 32 cycles would drown the run in
    /// thread overhead, so instead of checking quiescence at every
    /// 32-cycle boundary this advances in long strides and *reconstructs*
    /// the boundary the stepped loop would have stopped at: machine state
    /// is frozen after the last executed cycle `c_last`, so if the
    /// machine is quiescent at the stride end it has been quiescent at
    /// every boundary past `c_last` — and at none before (quiescence is
    /// absorbing: a quiescent machine can never execute again). The first
    /// boundary `b` with `b - 1 >= c_last` is therefore exactly where the
    /// stepped loop returns, and the cursor is rewound to it.
    fn run_to_quiescence_windowed(
        &mut self,
        threads: usize,
        c0: u64,
        b_cap: u64,
    ) -> Result<Time, Time> {
        // Strides only bound how often the worker scope is re-spawned;
        // past quiescence a stride executes nothing, so overshooting is
        // free and the boundary reconstruction keeps results exact.
        const STRIDE: u64 = 1 << 16;
        // Boundaries are absolute multiples of 32 (see the stepped
        // loop); `first` is the lowest probe strictly past run entry.
        let first = c0 / 32 + 1;
        let boundary_after =
            |c_last: Option<u64>| 32 * c_last.map_or(first, |cl| (cl + 1).div_ceil(32).max(first));
        let mut last_exec: Option<u64> = None;
        loop {
            match self.next_exec_cycle() {
                // Nothing can ever run again: either the machine drained
                // (report the boundary just past the last real work) or
                // it is hung with silent work pending (report the cap).
                None => {
                    return if self.quiescent() {
                        let b_q = boundary_after(last_exec);
                        debug_assert!(b_q <= b_cap);
                        self.cycle = b_q;
                        self.now = self.clock.edge(b_q - 1);
                        Ok(self.now)
                    } else {
                        self.land_on(b_cap);
                        Err(self.now)
                    };
                }
                // The next event lies past the cap boundary: the stepped
                // loop reaches the cap in this exact state and gives up.
                Some(nx) if nx >= b_cap => {
                    self.land_on(b_cap);
                    return Err(self.now);
                }
                Some(nx) => {
                    let target = (32 * (nx + STRIDE).div_ceil(32).max(first)).min(b_cap);
                    let le = self.advance_windowed_to(target, threads);
                    if let Some(l) = le {
                        last_exec = Some(last_exec.map_or(l, |p| p.max(l)));
                    }
                    if self.quiescent() {
                        let b_q = boundary_after(last_exec);
                        debug_assert!(b_q <= target);
                        self.cycle = b_q;
                        self.now = self.clock.edge(b_q - 1);
                        return Ok(self.now);
                    }
                    if target == b_cap {
                        return Err(self.now);
                    }
                }
            }
        }
    }

    /// Run to quiescence with a generous default cap (1 s of simulated
    /// time); panics on a hang, which always indicates a protocol bug.
    /// Prefer [`Machine::run`] where a hang should be handled.
    pub fn run_to_quiescence(&mut self) -> Time {
        self.run_capped(1_000_000_000).expect_quiesced()
    }

    /// Run to quiescence with the default 1 s cap, reporting a hang as a
    /// value instead of panicking.
    pub fn run(&mut self) -> RunOutcome {
        self.run_capped(1_000_000_000)
    }

    /// Run to quiescence or until `max_ns` of simulated time elapse.
    pub fn run_capped(&mut self, max_ns: u64) -> RunOutcome {
        match self.run_to_quiescence_capped(max_ns) {
            Ok(t) => RunOutcome::Quiesced(t),
            Err(t) => RunOutcome::Hung(t),
        }
    }

    /// Largest window span (in bus cycles) safe under lookahead `la_ns`:
    /// `edge(c + w - 1) - edge(c) < la_ns` for every `c`, so injections
    /// inside a window can never produce deliveries inside it.
    fn window_cycles(&self, la_ns: u64) -> u64 {
        // edge(k) - edge(0) <= edge(w) + 1 for any k-span of w cycles
        // (floor jitter), so requiring edge(w) <= la_ns - 1 suffices.
        self.clock
            .edge_at_or_after(Time::from_ns(la_ns))
            .saturating_sub(1)
            .max(1)
    }

    /// Windowed parallel advance to `target` (exclusive). Returns the
    /// last cycle on which anything executed, if any did.
    fn advance_windowed_to(&mut self, target: u64, threads: usize) -> Option<u64> {
        if target <= self.cycle {
            self.land_on(target);
            return None;
        }
        let la_ns = match &self.ideal {
            Some(ideal) => ideal.lookahead_ns(),
            None => self.network.lookahead_ns(),
        };
        let window = self.window_cycles(la_ns);
        let clock = self.clock;
        let start = self.cycle;
        let res = match &mut self.ideal {
            Some(ideal) => run_windows(
                &mut self.nodes,
                ideal,
                clock,
                start,
                target,
                threads,
                window,
            ),
            None => run_windows(
                &mut self.nodes,
                &mut self.network,
                clock,
                start,
                target,
                threads,
                window,
            ),
        };
        self.cycle = target;
        self.now = clock.edge(target - 1);
        // The workers advanced the nodes; the machine-level index no
        // longer reflects them.
        self.wake_valid = false;
        self.runstats.node_ticks += res.ticks;
        self.runstats.wake_republishes += res.republishes;
        res.last_exec
    }
}

/// The two network models, as the windowed executor sees them.
trait NetModel: Clone {
    fn next_event_time(&self) -> Option<Time>;
    fn advance(&mut self, until: Time);
    fn take_delivered(&mut self) -> Vec<(Time, Packet<NetPayload>)>;
    fn inject(&mut self, now: Time, pkt: Packet<NetPayload>);
}

impl NetModel for Network<NetPayload> {
    fn next_event_time(&self) -> Option<Time> {
        Network::next_event_time(self)
    }
    fn advance(&mut self, until: Time) {
        Network::advance(self, until)
    }
    fn take_delivered(&mut self) -> Vec<(Time, Packet<NetPayload>)> {
        Network::take_delivered(self)
    }
    fn inject(&mut self, now: Time, pkt: Packet<NetPayload>) {
        Network::inject(self, now, pkt)
    }
}

impl NetModel for IdealNetwork<NetPayload> {
    fn next_event_time(&self) -> Option<Time> {
        IdealNetwork::next_event_time(self)
    }
    fn advance(&mut self, until: Time) {
        IdealNetwork::advance(self, until)
    }
    fn take_delivered(&mut self) -> Vec<(Time, Packet<NetPayload>)> {
        IdealNetwork::take_delivered(self)
    }
    fn inject(&mut self, now: Time, pkt: Packet<NetPayload>) {
        IdealNetwork::inject(self, now, pkt)
    }
}

/// One window of work for a shard: execute `[w0, w1)`, with `arrivals`
/// pre-scheduled at their exact delivery cycles (ascending).
enum ShardCmd {
    Window {
        w0: u64,
        w1: u64,
        arrivals: Vec<(u64, Packet<NetPayload>)>,
    },
    Exit,
}

/// A shard's report at the window barrier.
struct ShardOut {
    shard: usize,
    /// Packets popped from NIUs this window: `(cycle, node id, packet)`,
    /// in per-node FIFO order.
    injections: Vec<(u64, u16, Packet<NetPayload>)>,
    /// The shard's next event cycle at the window end (state is frozen
    /// until the shard executes again, so this stays valid across
    /// windows the shard sits out).
    next_wake: Option<u64>,
    /// Last cycle this shard executed in the window, if any.
    last_exec: Option<u64>,
    /// Node ticks this shard executed in the window.
    ticks: u64,
    /// Arrival + post-tick wake publishes this window (priming excluded
    /// so the count matches the sequential loop exactly).
    republishes: u64,
}

/// What [`run_windows`] hands back to the machine.
struct WindowsResult {
    /// Last cycle on which anything executed, if any did.
    last_exec: Option<u64>,
    /// Node ticks executed across all shards.
    ticks: u64,
    /// Arrival + post-tick wake publishes across all shards.
    republishes: u64,
}

/// Drive `nodes` from cycle `start` to `target` in lookahead-bounded
/// windows across `threads` workers. See the module docs for the
/// protocol and its determinism argument.
fn run_windows<N: NetModel>(
    nodes: &mut [Node],
    net: &mut N,
    clock: Clock,
    start: u64,
    target: u64,
    threads: usize,
    window: u64,
) -> WindowsResult {
    let n = nodes.len();
    let chunk = n.div_ceil(threads.clamp(1, n));
    let shard_of = |dst: u16| dst as usize / chunk;
    let mut wakes: Vec<Option<u64>> = nodes
        .chunks(chunk)
        .map(|s| {
            s.iter()
                .filter_map(|nd| nd.next_event_cycle(start, &clock))
                .min()
        })
        .collect();
    let shard_count = wakes.len();
    let mut last_exec: Option<u64> = None;
    let mut ticks = 0u64;
    let mut republishes = 0u64;
    std::thread::scope(|scope| {
        let (out_tx, out_rx) = channel::unbounded::<ShardOut>();
        let mut cmd_txs = Vec::with_capacity(shard_count);
        for (si, shard) in nodes.chunks_mut(chunk).enumerate() {
            let (tx, rx) = channel::unbounded::<ShardCmd>();
            cmd_txs.push(tx);
            let out_tx = out_tx.clone();
            scope.spawn(move || shard_worker(si, shard, clock, rx, out_tx));
        }
        let mut w0 = start;
        loop {
            // Skip stretches where no shard and no network event can
            // fire: whole idle windows cost nothing.
            let mut gmin = net
                .next_event_time()
                .map(|t| clock.edge_at_or_after(t).max(w0));
            for w in wakes.iter().flatten() {
                gmin = Some(gmin.map_or(*w, |g| g.min(*w)));
            }
            match gmin {
                Some(g) if g < target => w0 = g.max(w0),
                _ => break,
            }
            let w1 = (w0 + window).min(target);
            let horizon = clock.edge(w1 - 1);
            // Harvest: everything the committed network will deliver in
            // this window, scheduled at exact delivery cycles. Window
            // spans are below the lookahead bound, so this window's own
            // injections cannot add to the set.
            let mut per_shard: Vec<Vec<(u64, Packet<NetPayload>)>> = vec![Vec::new(); shard_count];
            let mut harvested = 0usize;
            if net.next_event_time().is_some_and(|t| t <= horizon) {
                let mut probe = net.clone();
                probe.advance(horizon);
                for (t, pkt) in probe.take_delivered() {
                    let c = clock.edge_at_or_after(t).max(w0);
                    debug_assert!(c < w1, "delivery past the window end");
                    harvested += 1;
                    per_shard[shard_of(pkt.dst)].push((c, pkt));
                }
            }
            for (si, tx) in cmd_txs.iter().enumerate() {
                tx.send(ShardCmd::Window {
                    w0,
                    w1,
                    arrivals: std::mem::take(&mut per_shard[si]),
                })
                .expect("shard worker exited early");
            }
            let mut injections: Vec<(u64, u16, Packet<NetPayload>)> = Vec::new();
            for _ in 0..shard_count {
                let out = out_rx.recv().expect("shard worker died");
                wakes[out.shard] = out.next_wake;
                if let Some(l) = out.last_exec {
                    last_exec = Some(last_exec.map_or(l, |p| p.max(l)));
                }
                ticks += out.ticks;
                republishes += out.republishes;
                injections.extend(out.injections);
            }
            // Commit: replay injections in the order the sequential loop
            // would have produced them (cycle, then node index, then
            // per-node FIFO — the sort is stable), interleaving network
            // advances so arbitration sees events in time order.
            injections.sort_by_key(|&(c, src, _)| (c, src));
            let mut advanced_to: Option<u64> = None;
            for (c, _, pkt) in injections {
                if advanced_to != Some(c) {
                    net.advance(clock.edge(c));
                    advanced_to = Some(c);
                }
                net.inject(clock.edge(c), pkt);
            }
            net.advance(horizon);
            // These deliveries are exactly the set harvested above and
            // already executed by the workers.
            let replayed = net.take_delivered();
            debug_assert_eq!(replayed.len(), harvested, "commit/harvest disagree");
            drop(replayed);
            w0 = w1;
        }
        for tx in &cmd_txs {
            let _ = tx.send(ShardCmd::Exit);
        }
    });
    WindowsResult {
        last_exec,
        ticks,
        republishes,
    }
}

/// Worker loop: execute windows for one contiguous shard of nodes.
///
/// The shard keeps its own [`sv_sim::WakeIndex`] across windows: it has
/// exclusive access to its nodes for the whole scope and a node's wake
/// only changes when the node executes or an arrival reaches it, so the
/// index built on the first window stays valid for the run — including
/// across windows the shard sits out entirely.
fn shard_worker(
    si: usize,
    shard: &mut [Node],
    clock: Clock,
    rx: channel::Receiver<ShardCmd>,
    out: channel::Sender<ShardOut>,
) {
    let mut wake = sv_sim::WakeIndex::new(shard.len());
    let mut primed = false;
    let mut due: Vec<u32> = Vec::new();
    while let Ok(ShardCmd::Window { w0, w1, arrivals }) = rx.recv() {
        if !primed {
            for (i, nd) in shard.iter().enumerate() {
                wake.publish(i, nd.next_event_cycle(w0, &clock));
            }
            primed = true;
        }
        let mut injections = Vec::new();
        let mut last_exec = None;
        let mut ticks = 0u64;
        let mut republishes = 0u64;
        let mut arr = arrivals.into_iter().peekable();
        loop {
            // Next cycle on which this shard can act: its own engines'
            // wake-ups plus pre-scheduled packet arrivals.
            let mut nx = wake.min();
            if let Some(&(ac, _)) = arr.peek() {
                nx = Some(nx.map_or(ac, |v| v.min(ac)));
            }
            let Some(ce) = nx else { break };
            if ce >= w1 {
                break;
            }
            let now = clock.edge(ce);
            // Same per-cycle sequence as Machine::step, restricted to
            // the due nodes of this shard: deliveries, ticks, egress.
            while arr.peek().is_some_and(|&(ac, _)| ac == ce) {
                let (_, pkt) = arr.next().expect("peeked");
                let li = shard
                    .iter()
                    .position(|nd| nd.id == pkt.dst)
                    .expect("arrival routed to the wrong shard");
                let node = &mut shard[li];
                if node.tracer.enabled() {
                    node.tracer.record(
                        now,
                        sv_sim::trace::Subsys::Net,
                        format!("rx {}B from node {}", pkt.wire_bytes, pkt.src),
                    );
                }
                node.niu.push_arrival_packet(ce, pkt);
                wake.publish(li, Some(ce));
                republishes += 1;
            }
            wake.drain_due(ce, &mut due);
            ticks += due.len() as u64;
            for &i in &due {
                shard[i as usize].tick(ce, now);
            }
            for &i in &due {
                let node = &mut shard[i as usize];
                while let Some(pkt) = node.niu.pop_ready_packet(ce) {
                    if node.tracer.enabled() {
                        node.tracer.record(
                            now,
                            sv_sim::trace::Subsys::Net,
                            format!("tx {}B to node {}", pkt.wire_bytes, pkt.dst),
                        );
                    }
                    injections.push((ce, node.id, pkt));
                }
            }
            for &i in &due {
                let w = shard[i as usize].next_event_cycle(ce + 1, &clock);
                wake.publish(i as usize, w);
            }
            republishes += due.len() as u64;
            last_exec = Some(ce);
        }
        // All live wakes are >= w1 here (the loop above drained anything
        // earlier), so the index min IS the shard's wake at the window
        // end — no rescan.
        let next_wake = wake.min();
        debug_assert!(next_wake.is_none_or(|w| w >= w1));
        if out
            .send(ShardOut {
                shard: si,
                injections,
                next_wake,
                last_exec,
                ticks,
                republishes,
            })
            .is_err()
        {
            return;
        }
    }
}
