//! Machine-wide observability: the [`Machine::stats`] snapshot.
//!
//! Where [`crate::report`] condenses a run into human-readable
//! utilization percentages, this module exposes the *raw counters* of
//! every simulated component as one structured, serializable value —
//! per-queue enqueue/dequeue/stall counts, per-class message
//! conservation and latency distributions, memory-bus and Arctic
//! per-link occupancy, firmware protocol counters, and run-loop
//! execution counters. Every field is an integer, so snapshots are
//! bit-deterministic: the determinism suite asserts byte-identical
//! [`MachineStats::to_json`] output across [`crate::Parallelism`]
//! worker counts and [`crate::ShardPolicy`] choices, and the
//! golden-stats tests pin exact values per scenario.
//!
//! Collecting a snapshot costs nothing during the run: all counters are
//! maintained inline by the components (a handful of integer adds on
//! paths that already mutate state), and latency *sampling* — the only
//! per-packet metadata write — is off by default
//! ([`crate::MachineBuilder::sample_latency`]).

use crate::machine::Machine;
use serde::{Deserialize, Serialize};
use sv_niu::msg::{MsgClass, MSG_CLASSES};
use sv_sim::JsonWriter;

/// Per-class message conservation and latency. At quiescence
/// `sent == delivered + dropped` holds for every class as long as no
/// sender abandoned a message at the retransmit cap (the property suite
/// asserts it, faults included). Under cap exhaustion the sender cannot
/// know whether the receiver accepted a message whose ack was lost, so
/// the invariant relaxes to
/// `sent <= delivered + dropped <= sent + reliable_dropped`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassSnapshot {
    /// Packets launched (loopbacks included).
    pub sent: u64,
    /// Packets accepted at the destination NIU.
    pub delivered: u64,
    /// Packets discarded at the destination.
    pub dropped: u64,
    /// Latency samples recorded (equals `delivered` while sampling is on
    /// from cycle 0; zero when sampling is off).
    pub latency_count: u64,
    /// Sum of inject→deliver latencies, 66 MHz bus cycles.
    pub latency_sum_cycles: u64,
    /// Smallest latency sample (0 when none).
    pub latency_min_cycles: u64,
    /// Largest latency sample.
    pub latency_max_cycles: u64,
}

/// One transmit queue's counters. Queues with all-zero counters are
/// omitted from [`NiuSnapshot::tx_queues`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxQueueSnapshot {
    /// Hardware queue index.
    pub q: u64,
    /// Messages enqueued (producer-pointer advances).
    pub enqueued: u64,
    /// Payload bytes launched.
    pub sent_bytes: u64,
    /// Launch stalls on a full buffer (Express backpressure).
    pub full_stalls: u64,
    /// Protection violations observed.
    pub violations: u64,
}

/// One receive queue's counters. All-zero queues are omitted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RxQueueSnapshot {
    /// Hardware queue index.
    pub q: u64,
    /// Payload bytes received.
    pub received_bytes: u64,
    /// Messages dequeued (consumer-pointer advances).
    pub dequeued: u64,
    /// Messages dropped (full queue, Drop policy).
    pub dropped: u64,
    /// Messages diverted to the miss queue.
    pub diverted: u64,
    /// Delivery attempts stalled on a full queue (Retry policy).
    pub full_stalls: u64,
}

/// One NIU's counters: CTRL engines, queues, translation, aBIU, IBus.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NiuSnapshot {
    /// Messages launched by the transmit engine.
    pub msgs_launched: u64,
    /// Messages delivered into receive queues.
    pub msgs_delivered: u64,
    /// Messages diverted to the miss queue.
    pub msgs_diverted: u64,
    /// Messages dropped.
    pub msgs_dropped: u64,
    /// Remote commands executed.
    pub remote_cmds: u64,
    /// Local commands executed.
    pub cmds_executed: u64,
    /// Protection violations observed.
    pub violations: u64,
    /// TagOn bytes appended.
    pub tagon_bytes: u64,
    /// Contested transmit arbitrations won on priority.
    pub tx_priority_wins: u64,
    /// Block-transmit data chunks packetized (DMA chain steps).
    pub dma_chain_steps: u64,
    /// Messages short-circuited to this node's own receive path.
    pub loopback_msgs: u64,
    /// Express entries dropped (full queue, Drop policy).
    pub express_dropped: u64,
    /// Deepest receive-engine backlog seen.
    pub rxu_high_water: u64,
    /// Receive-queue-cache hits (message landed in a hardware queue).
    pub rq_cache_hits: u64,
    /// Receive-queue-cache misses (message took the firmware path).
    pub rq_cache_misses: u64,
    /// Destination-translation lookups.
    pub xlate_lookups: u64,
    /// Translation faults (protection violations).
    pub xlate_faults: u64,
    /// IBus busy cycles.
    pub ibus_busy_cycles: u64,
    /// IBus transactions.
    pub ibus_transactions: u64,
    /// aBIU bus operations claimed.
    pub abiu_claimed: u64,
    /// aBIU ARTRY retries observed.
    pub abiu_retries: u64,
    /// Reliable-delivery retransmissions (timeout resends).
    pub retransmits: u64,
    /// Cumulative acks emitted by the link interface.
    pub acks_sent: u64,
    /// Cumulative acks consumed by the transmit side.
    pub acks_received: u64,
    /// Duplicate/out-of-window sequenced frames discarded on arrival.
    pub dup_drops: u64,
    /// CRC-failed (fault-corrupted) frames discarded on arrival.
    pub corrupt_drops: u64,
    /// Head-of-line messages dropped after the Retry-policy cap.
    pub rx_retry_drops: u64,
    /// Messages abandoned by the sender at the retransmit cap.
    pub reliable_dropped: u64,
    /// Per-class conservation/latency, indexed by [`MsgClass`].
    pub classes: [ClassSnapshot; MSG_CLASSES],
    /// Non-idle transmit queues.
    pub tx_queues: Vec<TxQueueSnapshot>,
    /// Non-idle receive queues.
    pub rx_queues: Vec<RxQueueSnapshot>,
}

/// One node's firmware counters: engine, occupancy, NUMA, S-COMA, DMA.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FwSnapshot {
    /// Work items handled.
    pub handled: u64,
    /// Service-queue messages processed.
    pub svc_msgs: u64,
    /// Miss-queue messages processed.
    pub miss_msgs: u64,
    /// Violation interrupts observed.
    pub violations_seen: u64,
    /// Malformed, stale, or protocol-inconsistent messages discarded.
    pub proto_errors: u64,
    /// sP busy time, ns.
    pub busy_ns: u64,
    /// Distinct sP busy intervals (handler engagements).
    pub busy_intervals: u64,
    /// NUMA requests forwarded to a home node (load misses + stores).
    pub numa_forwards: u64,
    /// NUMA home-side reads serviced.
    pub numa_home_reads: u64,
    /// NUMA home-side writes serviced.
    pub numa_home_writes: u64,
    /// NUMA replies delivered to the waiting aP.
    pub numa_replies: u64,
    /// S-COMA local misses serviced.
    pub scoma_local_misses: u64,
    /// S-COMA directory state transitions.
    pub scoma_transitions: u64,
    /// S-COMA owner recalls issued.
    pub scoma_recalls: u64,
    /// S-COMA sharer invalidations issued.
    pub scoma_invals: u64,
    /// S-COMA writebacks serviced.
    pub scoma_writebacks: u64,
    /// Block-transfer requests accepted.
    pub xfer_requests: u64,
    /// Block-transfer sends completed.
    pub xfer_completed_sends: u64,
    /// Block-transfer chunks sent (firmware DMA chain steps).
    pub xfer_chunks_sent: u64,
    /// Completion notifications sent.
    pub xfer_notifies: u64,
    /// Collectives started by the local aP (COLL_START accepted).
    pub coll_started: u64,
    /// Collective results delivered to the local aP.
    pub coll_completed: u64,
    /// Collective fan-in (COLL_UP) messages sent.
    pub coll_ups_sent: u64,
    /// Collective fan-out (COLL_DOWN) messages sent.
    pub coll_downs_sent: u64,
    /// Contributions folded while a fan-in was still incomplete (wait
    /// depth the sP absorbed on behalf of the aPs).
    pub coll_fanin_stalls: u64,
    /// sP busy time attributed to collective handlers, ns.
    pub coll_busy_ns: u64,
}

/// One node's memory-bus counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusSnapshot {
    /// Address tenures started.
    pub tenures: u64,
    /// ARTRY retries observed.
    pub retries: u64,
    /// Transactions completed.
    pub completions: u64,
    /// Busy data-bus cycles (occupancy numerator).
    pub data_cycles: u64,
    /// Bytes moved on the data bus.
    pub data_bytes: u64,
}

/// One node's aP-core counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuSnapshot {
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Bus operations issued.
    pub bus_ops_issued: u64,
    /// Dirty-line castouts.
    pub castouts: u64,
    /// Time spent computing, ns.
    pub compute_ns: u64,
    /// Time stalled on memory, ns.
    pub mem_stall_ns: u64,
    /// ARTRY retries suffered.
    pub ap_retries: u64,
}

/// One tenant's attribution on one node: scheduler occupancy, rx-queue-
/// cache behaviour of the tenant's logical queue, firmware service
/// counts, and the inject→deliver latency split by cache outcome. All
/// integers (`done` is 0/1, quantiles come from the deterministic
/// [`sv_sim::stats::Log2Histogram`]), so the JSON stays byte-
/// deterministic across run modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Tenant index on its node.
    pub id: u64,
    /// Workload-class code ([`crate::tenancy::TenantClass::code`]).
    pub class: u64,
    /// Scheduler weight.
    pub weight: u64,
    /// Scheduling slices granted.
    pub slices: u64,
    /// Program steps executed on the tenant's behalf.
    pub steps: u64,
    /// aP time attributed, ns.
    pub active_ns: u64,
    /// Basic messages completed through the shared tx muxes.
    pub sent_msgs: u64,
    /// 1 when the tenant's job ran to completion.
    pub done: u64,
    /// Arrivals to the tenant's logical queue that found it cached in a
    /// hardware rx slot.
    pub rq_hits: u64,
    /// Arrivals that took the miss-queue path (queue not resident).
    pub rq_misses: u64,
    /// Arrivals diverted to the miss queue because the resident slot was
    /// full.
    pub diversions: u64,
    /// Messages the firmware drained from the tenant's resident slot.
    pub drained: u64,
    /// Messages the firmware served for this tenant via the miss queue.
    pub miss_served: u64,
    /// Inject→deliver latency samples on the cache-hit path.
    pub hit_latency_count: u64,
    /// P99 of the hit-path latency, ns (bucketed upper bound; 0 with no
    /// samples).
    pub hit_latency_p99_ns: u64,
    /// Largest hit-path latency, ns.
    pub hit_latency_max_ns: u64,
    /// Latency samples on the miss path (stamped at firmware service, so
    /// sP occupancy is part of the cost).
    pub miss_latency_count: u64,
    /// P99 of the miss-path latency, ns.
    pub miss_latency_p99_ns: u64,
    /// Largest miss-path latency, ns.
    pub miss_latency_max_ns: u64,
}

/// One node's tenancy section ([`NodeSnapshot::tenants`]), present only
/// when the machine was built with [`crate::MachineBuilder::tenants`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantNodeSnapshot {
    /// Queue-cache rebinds the firmware performed on this node.
    pub rebinds: u64,
    /// Per-tenant rows, in tenant order.
    pub tenants: Vec<TenantSnapshot>,
}

/// Everything one node counted.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// Node id.
    pub node: u64,
    /// aP core.
    pub cpu: CpuSnapshot,
    /// Memory bus.
    pub bus: BusSnapshot,
    /// Network interface unit.
    pub niu: NiuSnapshot,
    /// Service-processor firmware.
    pub fw: FwSnapshot,
    /// Per-tenant attribution, when tenancy is armed. The JSON emits the
    /// `tenants` object only in that case, so untenanted machines keep
    /// their historical byte-identical snapshots.
    pub tenants: Option<TenantNodeSnapshot>,
}

/// Network-level counters plus per-link occupancy (links that carried no
/// bytes are omitted). All zeros under the ideal-network ablation, which
/// bypasses the Arctic model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSnapshot {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Payload+header bytes delivered.
    pub bytes_delivered: u64,
    /// End-to-end latency samples (== delivered).
    pub latency_count: u64,
    /// Sum of end-to-end latencies, ns.
    pub latency_sum_ns: u64,
    /// Smallest end-to-end latency, ns (0 when none).
    pub latency_min_ns: u64,
    /// Largest end-to-end latency, ns.
    pub latency_max_ns: u64,
    /// Deepest output queue seen on any link.
    pub max_link_queue: u64,
    /// Packets discarded by the fault model at injection.
    pub faults_dropped: u64,
    /// Extra in-flight copies created by the fault model.
    pub faults_duplicated: u64,
    /// Packets whose payload the fault model corrupted.
    pub faults_corrupted: u64,
    /// Packets the fault model pushed ahead of their priority peers.
    pub faults_reordered: u64,
    /// Per-link usage: `(link id, bytes, serialization-busy ns, deepest
    /// queue)`, links with traffic only.
    pub links: Vec<sv_arctic::LinkUsage>,
    /// Virtual-channel / credit-flow-control counters, populated only
    /// when QoS is armed ([`crate::MachineBuilder::network_qos`]). The
    /// JSON emits the `qos` object only in that case, so unarmed
    /// machines keep their historical byte-identical snapshots.
    pub qos: Option<QosSnapshot>,
}

/// Arctic virtual-channel counters (see [`NetworkSnapshot::qos`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosSnapshot {
    /// Armed virtual channels per link.
    pub vcs: u64,
    /// Credit pool (input-buffer slots) per `(link, vc)`.
    pub credits_per_vc: u64,
    /// Credit-stall episodes (a VC head finding its downstream pool
    /// empty; one count per episode, not per retry).
    pub credit_stalls: u64,
    /// Total time VC heads spent credit-blocked, ns.
    pub credit_stall_ns: u64,
    /// High-class end-to-end latency samples.
    pub latency_hi_count: u64,
    /// Sum of High-class end-to-end latencies, ns.
    pub latency_hi_sum_ns: u64,
    /// Smallest High-class latency, ns (0 when none).
    pub latency_hi_min_ns: u64,
    /// Largest High-class latency, ns — the S9 tail metric.
    pub latency_hi_max_ns: u64,
    /// Low-class end-to-end latency samples.
    pub latency_lo_count: u64,
    /// Sum of Low-class end-to-end latencies, ns.
    pub latency_lo_sum_ns: u64,
    /// Smallest Low-class latency, ns (0 when none).
    pub latency_lo_min_ns: u64,
    /// Largest Low-class latency, ns.
    pub latency_lo_max_ns: u64,
    /// Per-VC usage aggregated over all links, one row per VC index.
    pub vc_usage: Vec<sv_arctic::VcUsage>,
}

/// Run-loop execution counters (see
/// [`crate::machine::RunLoopCounters`] for what is — deliberately — not
/// counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunSnapshot {
    /// Bus cycles the run has reached.
    pub cycles: u64,
    /// Node ticks actually executed.
    pub node_ticks: u64,
    /// Node ticks the event loop skipped (`cycles × nodes − node_ticks`;
    /// zero under [`crate::MachineBuilder::cycle_stepped`]).
    pub skipped_node_ticks: u64,
    /// Wake-index publishes on arrival and post-tick edges.
    pub wake_republishes: u64,
}

/// The machine-level tenancy configuration echo
/// ([`MachineStats::tenancy`]): what the per-node tenant rows were
/// carved from, so a stats file is self-describing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenancySnapshot {
    /// Tenants per node.
    pub tenants_per_node: u64,
    /// Scheduler policy code (0 round-robin, 1 weighted time slice).
    pub policy: u64,
    /// Weighted-time-slice base quantum, ns (0 under round-robin).
    pub quantum_ns: u64,
    /// Confined tenant index plus one; 0 = no confined tenant.
    pub confined_plus_one: u64,
    /// First tenant logical rx queue.
    pub lq_base: u64,
    /// First virtual destination of tenant 0's translation slice.
    pub xlate_base: u64,
    /// Virtual destinations per tenant slice.
    pub slice: u64,
}

/// The machine-wide snapshot. Integers only, so [`MachineStats::to_json`]
/// is byte-deterministic across runs, run modes and thread counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineStats {
    /// Simulated time, ns.
    pub sim_time_ns: u64,
    /// Run-loop execution counters.
    pub run: RunSnapshot,
    /// Per-node counters.
    pub nodes: Vec<NodeSnapshot>,
    /// Network counters.
    pub network: NetworkSnapshot,
    /// Tenancy configuration echo, when armed (the JSON emits the
    /// `tenancy` object only in that case).
    pub tenancy: Option<TenancySnapshot>,
}

impl Machine {
    /// Snapshot every component's counters. Cheap (pure reads over state
    /// the components maintain inline) and side-effect free.
    pub fn stats(&self) -> MachineStats {
        let tp = self.tenancy();
        let reg = self.tenant_registry();
        let nodes = self
            .nodes
            .iter()
            .map(|n| snapshot_node(n, tp.as_ref()))
            .collect();
        let net = &self.network.stats;
        MachineStats {
            sim_time_ns: self.now.ns(),
            run: RunSnapshot {
                cycles: self.cycle,
                node_ticks: self.runstats.node_ticks,
                skipped_node_ticks: (self.cycle * self.nodes.len() as u64)
                    .saturating_sub(self.runstats.node_ticks),
                wake_republishes: self.runstats.wake_republishes,
            },
            nodes,
            network: NetworkSnapshot {
                injected: net.injected.get(),
                delivered: net.delivered.get(),
                bytes_delivered: net.bytes_delivered,
                latency_count: net.latency.count,
                latency_sum_ns: net.latency.sum,
                latency_min_ns: net.latency.min_or_zero(),
                latency_max_ns: net.latency.max,
                max_link_queue: net.max_link_queue as u64,
                faults_dropped: net.faults_dropped.get(),
                faults_duplicated: net.faults_duplicated.get(),
                faults_corrupted: net.faults_corrupted.get(),
                faults_reordered: net.faults_reordered.get(),
                links: self.network.link_usage(),
                qos: self.network.qos().map(|q| QosSnapshot {
                    vcs: q.vcs as u64,
                    credits_per_vc: q.credits_per_vc as u64,
                    credit_stalls: net.credit_stalls.get(),
                    credit_stall_ns: net.credit_stall_ns,
                    latency_hi_count: net.latency_hi.count,
                    latency_hi_sum_ns: net.latency_hi.sum,
                    latency_hi_min_ns: net.latency_hi.min_or_zero(),
                    latency_hi_max_ns: net.latency_hi.max,
                    latency_lo_count: net.latency_lo.count,
                    latency_lo_sum_ns: net.latency_lo.sum,
                    latency_lo_min_ns: net.latency_lo.min_or_zero(),
                    latency_lo_max_ns: net.latency_lo.max,
                    vc_usage: self.network.vc_usage(),
                }),
            },
            tenancy: tp.zip(reg).map(|(tp, reg)| TenancySnapshot {
                tenants_per_node: tp.tenants_per_node as u64,
                policy: tp.policy.code() as u64,
                quantum_ns: tp.policy.quantum_ns(),
                confined_plus_one: tp.confined.map_or(0, |c| c as u64 + 1),
                lq_base: reg.lq_base as u64,
                xlate_base: reg.xlate_base as u64,
                slice: reg.slice as u64,
            }),
        }
    }
}

fn snapshot_tenants(
    n: &crate::node::Node,
    tp: &crate::tenancy::TenancyParams,
) -> TenantNodeSnapshot {
    let report = n.tenant_report();
    let per_lq = n.niu.ctrl.rx_cache.per_lq.as_ref();
    let attr = n.niu.tenant.as_ref();
    let fwt = n.fw.tenant.as_ref();
    let lq_base = attr.map_or(crate::tenancy::TENANT_LQ_BASE, |a| a.lq_base) as usize;
    let tenants = (0..tp.tenants_per_node)
        .map(|t| {
            let spec = tp.tenant_spec(t);
            // A node without a TenantScheduler program (tenancy armed
            // but some other workload loaded) reports zero occupancy.
            let sched = report
                .as_ref()
                .and_then(|r| r.get(t as usize).copied())
                .unwrap_or_default();
            let lq = lq_base + t as usize;
            let (hit, miss) = attr
                .map(|a| (&a.hit_latency[t as usize], &a.miss_latency[t as usize]))
                .map_or((None, None), |(h, m)| (Some(h), Some(m)));
            TenantSnapshot {
                id: t as u64,
                class: spec.class.code() as u64,
                weight: spec.weight as u64,
                slices: sched.slices,
                steps: sched.steps,
                active_ns: sched.active_ns,
                sent_msgs: sched.sent_msgs,
                done: sched.done as u64,
                rq_hits: per_lq.map_or(0, |p| p.hits[lq]),
                rq_misses: per_lq.map_or(0, |p| p.misses[lq]),
                diversions: per_lq.map_or(0, |p| p.diversions[lq]),
                drained: fwt.map_or(0, |f| f.drained[t as usize].get()),
                miss_served: fwt.map_or(0, |f| f.miss_served[t as usize].get()),
                hit_latency_count: hit.map_or(0, |h| h.summary.count),
                hit_latency_p99_ns: hit.and_then(|h| h.quantile(0.99)).unwrap_or(0),
                hit_latency_max_ns: hit.map_or(0, |h| h.summary.max),
                miss_latency_count: miss.map_or(0, |m| m.summary.count),
                miss_latency_p99_ns: miss.and_then(|m| m.quantile(0.99)).unwrap_or(0),
                miss_latency_max_ns: miss.map_or(0, |m| m.summary.max),
            }
        })
        .collect();
    TenantNodeSnapshot {
        rebinds: fwt.map_or(0, |f| f.rebinds.get()),
        tenants,
    }
}

fn snapshot_node(
    n: &crate::node::Node,
    tp: Option<&crate::tenancy::TenancyParams>,
) -> NodeSnapshot {
    let cs = &n.niu.ctrl.stats;
    let mut classes = [ClassSnapshot::default(); MSG_CLASSES];
    for (i, c) in n.niu.stats.class.iter().enumerate() {
        classes[i] = ClassSnapshot {
            sent: c.sent.get(),
            delivered: c.delivered.get(),
            dropped: c.dropped.get(),
            latency_count: c.latency.count,
            latency_sum_cycles: c.latency.sum,
            latency_min_cycles: c.latency.min_or_zero(),
            latency_max_cycles: c.latency.max,
        };
    }
    let tx_queues = n
        .niu
        .ctrl
        .tx
        .iter()
        .enumerate()
        .map(|(q, t)| TxQueueSnapshot {
            q: q as u64,
            enqueued: t.enqueued.get(),
            sent_bytes: t.sent.get(),
            full_stalls: t.full_stalls.get(),
            violations: t.violations.get(),
        })
        .filter(|t| t.enqueued + t.sent_bytes + t.full_stalls + t.violations > 0)
        .collect();
    let rx_queues = n
        .niu
        .ctrl
        .rx
        .iter()
        .enumerate()
        .map(|(q, r)| RxQueueSnapshot {
            q: q as u64,
            received_bytes: r.received.get(),
            dequeued: r.dequeued.get(),
            dropped: r.dropped.get(),
            diverted: r.diverted.get(),
            full_stalls: r.full_stalls.get(),
        })
        .filter(|r| r.received_bytes + r.dequeued + r.dropped + r.diverted + r.full_stalls > 0)
        .collect();
    NodeSnapshot {
        node: n.id as u64,
        cpu: CpuSnapshot {
            loads: n.stats.loads.get(),
            stores: n.stats.stores.get(),
            l1_hits: n.stats.l1_hits.get(),
            l2_hits: n.stats.l2_hits.get(),
            bus_ops_issued: n.stats.bus_ops_issued.get(),
            castouts: n.stats.castouts.get(),
            compute_ns: n.stats.cpu_compute_ns,
            mem_stall_ns: n.stats.cpu_mem_stall_ns,
            ap_retries: n.stats.ap_retries.get(),
        },
        bus: BusSnapshot {
            tenures: n.bus.stats.tenures.get(),
            retries: n.bus.stats.retries.get(),
            completions: n.bus.stats.completions.get(),
            data_cycles: n.bus.stats.data_cycles,
            data_bytes: n.bus.stats.data_bytes,
        },
        niu: NiuSnapshot {
            msgs_launched: cs.msgs_launched.get(),
            msgs_delivered: cs.msgs_delivered.get(),
            msgs_diverted: cs.msgs_diverted.get(),
            msgs_dropped: cs.msgs_dropped.get(),
            remote_cmds: cs.remote_cmds.get(),
            cmds_executed: cs.cmds_executed.get(),
            violations: cs.violations.get(),
            tagon_bytes: cs.tagon_bytes,
            tx_priority_wins: cs.tx_priority_wins.get(),
            dma_chain_steps: cs.dma_chain_steps.get(),
            loopback_msgs: n.niu.stats.loopback_msgs.get(),
            express_dropped: n.niu.stats.express_dropped.get(),
            rxu_high_water: n.niu.stats.rxu_high_water as u64,
            rq_cache_hits: n.niu.ctrl.rx_cache.hits.get(),
            rq_cache_misses: n.niu.ctrl.rx_cache.misses.get(),
            xlate_lookups: n.niu.ctrl.xlate.lookups.get(),
            xlate_faults: n.niu.ctrl.xlate.faults.get(),
            ibus_busy_cycles: n.niu.ctrl.ibus.busy_cycles,
            ibus_transactions: n.niu.ctrl.ibus.transactions.get(),
            abiu_claimed: n.niu.abiu.stats.claimed.get(),
            abiu_retries: n.niu.abiu.stats.retries.get(),
            retransmits: n.niu.stats.retransmits.get(),
            acks_sent: n.niu.stats.acks_sent.get(),
            acks_received: n.niu.stats.acks_received.get(),
            dup_drops: n.niu.stats.dup_drops.get(),
            corrupt_drops: n.niu.stats.corrupt_drops.get(),
            rx_retry_drops: n.niu.stats.rx_retry_drops.get(),
            reliable_dropped: n.niu.stats.reliable_dropped.get(),
            classes,
            tx_queues,
            rx_queues,
        },
        fw: FwSnapshot {
            handled: n.fw.stats.handled.get(),
            svc_msgs: n.fw.stats.svc_msgs.get(),
            miss_msgs: n.fw.stats.miss_msgs.get(),
            violations_seen: n.fw.stats.violations_seen.get(),
            proto_errors: n.fw.stats.proto_errors.get(),
            busy_ns: n.fw.occupancy.busy_ns,
            busy_intervals: n.fw.occupancy.intervals,
            numa_forwards: n.fw.numa.load_misses.get() + n.fw.numa.stores_forwarded.get(),
            numa_home_reads: n.fw.numa.home_reads.get(),
            numa_home_writes: n.fw.numa.home_writes.get(),
            numa_replies: n.fw.numa.replies.get(),
            scoma_local_misses: n.fw.scoma.stats.local_misses.get(),
            scoma_transitions: n.fw.scoma.stats.transitions.get(),
            scoma_recalls: n.fw.scoma.stats.recalls.get(),
            scoma_invals: n.fw.scoma.stats.invals.get(),
            scoma_writebacks: n.fw.scoma.stats.writebacks.get(),
            xfer_requests: n.fw.xfer.requests.get(),
            xfer_completed_sends: n.fw.xfer.completed_sends.get(),
            xfer_chunks_sent: n.fw.xfer.chunks_sent.get(),
            xfer_notifies: n.fw.xfer.notifies.get(),
            coll_started: n.fw.coll.started.get(),
            coll_completed: n.fw.coll.completed.get(),
            coll_ups_sent: n.fw.coll.ups_sent.get(),
            coll_downs_sent: n.fw.coll.downs_sent.get(),
            coll_fanin_stalls: n.fw.coll.fanin_stalls.get(),
            coll_busy_ns: n.fw.coll.busy_ns,
        },
        tenants: tp.map(|tp| snapshot_tenants(n, tp)),
    }
}

impl MachineStats {
    /// Deterministic JSON rendering: object keys in declaration order,
    /// integers only, no whitespace. Byte-identical output ⇔ identical
    /// snapshot.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_u64("sim_time_ns", self.sim_time_ns);
        w.key("run");
        w.begin_obj();
        w.field_u64("cycles", self.run.cycles);
        w.field_u64("node_ticks", self.run.node_ticks);
        w.field_u64("skipped_node_ticks", self.run.skipped_node_ticks);
        w.field_u64("wake_republishes", self.run.wake_republishes);
        w.end_obj();
        w.key("nodes");
        w.begin_arr();
        for n in &self.nodes {
            write_node(&mut w, n);
        }
        w.end_arr();
        w.key("network");
        w.begin_obj();
        w.field_u64("injected", self.network.injected);
        w.field_u64("delivered", self.network.delivered);
        w.field_u64("bytes_delivered", self.network.bytes_delivered);
        w.field_u64("latency_count", self.network.latency_count);
        w.field_u64("latency_sum_ns", self.network.latency_sum_ns);
        w.field_u64("latency_min_ns", self.network.latency_min_ns);
        w.field_u64("latency_max_ns", self.network.latency_max_ns);
        w.field_u64("max_link_queue", self.network.max_link_queue);
        w.field_u64("faults_dropped", self.network.faults_dropped);
        w.field_u64("faults_duplicated", self.network.faults_duplicated);
        w.field_u64("faults_corrupted", self.network.faults_corrupted);
        w.field_u64("faults_reordered", self.network.faults_reordered);
        w.key("links");
        w.begin_arr();
        for l in &self.network.links {
            w.begin_obj();
            w.field_u64("link", l.link as u64);
            w.field_u64("bytes", l.bytes);
            w.field_u64("busy_ns", l.busy_ns);
            w.field_u64("high_water", l.high_water);
            w.end_obj();
        }
        w.end_arr();
        // Emitted only when QoS is armed: unarmed machines keep their
        // historical byte-identical JSON.
        if let Some(q) = &self.network.qos {
            w.key("qos");
            w.begin_obj();
            w.field_u64("vcs", q.vcs);
            w.field_u64("credits_per_vc", q.credits_per_vc);
            w.field_u64("credit_stalls", q.credit_stalls);
            w.field_u64("credit_stall_ns", q.credit_stall_ns);
            w.field_u64("latency_hi_count", q.latency_hi_count);
            w.field_u64("latency_hi_sum_ns", q.latency_hi_sum_ns);
            w.field_u64("latency_hi_min_ns", q.latency_hi_min_ns);
            w.field_u64("latency_hi_max_ns", q.latency_hi_max_ns);
            w.field_u64("latency_lo_count", q.latency_lo_count);
            w.field_u64("latency_lo_sum_ns", q.latency_lo_sum_ns);
            w.field_u64("latency_lo_min_ns", q.latency_lo_min_ns);
            w.field_u64("latency_lo_max_ns", q.latency_lo_max_ns);
            w.key("vc_usage");
            w.begin_arr();
            for v in &q.vc_usage {
                w.begin_obj();
                w.field_u64("vc", v.vc);
                w.field_u64("bytes", v.bytes);
                w.field_u64("busy_ns", v.busy_ns);
                w.field_u64("high_water", v.high_water);
                w.field_u64("stalls", v.stalls);
                w.field_u64("stall_ns", v.stall_ns);
                w.end_obj();
            }
            w.end_arr();
            w.end_obj();
        }
        w.end_obj();
        // Emitted only when tenancy is armed, mirroring the qos rule.
        if let Some(t) = &self.tenancy {
            w.key("tenancy");
            w.begin_obj();
            w.field_u64("tenants_per_node", t.tenants_per_node);
            w.field_u64("policy", t.policy);
            w.field_u64("quantum_ns", t.quantum_ns);
            w.field_u64("confined_plus_one", t.confined_plus_one);
            w.field_u64("lq_base", t.lq_base);
            w.field_u64("xlate_base", t.xlate_base);
            w.field_u64("slice", t.slice);
            w.end_obj();
        }
        w.end_obj();
        w.finish()
    }
}

fn write_node(w: &mut JsonWriter, n: &NodeSnapshot) {
    w.begin_obj();
    w.field_u64("node", n.node);
    w.key("cpu");
    w.begin_obj();
    w.field_u64("loads", n.cpu.loads);
    w.field_u64("stores", n.cpu.stores);
    w.field_u64("l1_hits", n.cpu.l1_hits);
    w.field_u64("l2_hits", n.cpu.l2_hits);
    w.field_u64("bus_ops_issued", n.cpu.bus_ops_issued);
    w.field_u64("castouts", n.cpu.castouts);
    w.field_u64("compute_ns", n.cpu.compute_ns);
    w.field_u64("mem_stall_ns", n.cpu.mem_stall_ns);
    w.field_u64("ap_retries", n.cpu.ap_retries);
    w.end_obj();
    w.key("bus");
    w.begin_obj();
    w.field_u64("tenures", n.bus.tenures);
    w.field_u64("retries", n.bus.retries);
    w.field_u64("completions", n.bus.completions);
    w.field_u64("data_cycles", n.bus.data_cycles);
    w.field_u64("data_bytes", n.bus.data_bytes);
    w.end_obj();
    w.key("niu");
    w.begin_obj();
    w.field_u64("msgs_launched", n.niu.msgs_launched);
    w.field_u64("msgs_delivered", n.niu.msgs_delivered);
    w.field_u64("msgs_diverted", n.niu.msgs_diverted);
    w.field_u64("msgs_dropped", n.niu.msgs_dropped);
    w.field_u64("remote_cmds", n.niu.remote_cmds);
    w.field_u64("cmds_executed", n.niu.cmds_executed);
    w.field_u64("violations", n.niu.violations);
    w.field_u64("tagon_bytes", n.niu.tagon_bytes);
    w.field_u64("tx_priority_wins", n.niu.tx_priority_wins);
    w.field_u64("dma_chain_steps", n.niu.dma_chain_steps);
    w.field_u64("loopback_msgs", n.niu.loopback_msgs);
    w.field_u64("express_dropped", n.niu.express_dropped);
    w.field_u64("rxu_high_water", n.niu.rxu_high_water);
    w.field_u64("rq_cache_hits", n.niu.rq_cache_hits);
    w.field_u64("rq_cache_misses", n.niu.rq_cache_misses);
    w.field_u64("xlate_lookups", n.niu.xlate_lookups);
    w.field_u64("xlate_faults", n.niu.xlate_faults);
    w.field_u64("ibus_busy_cycles", n.niu.ibus_busy_cycles);
    w.field_u64("ibus_transactions", n.niu.ibus_transactions);
    w.field_u64("abiu_claimed", n.niu.abiu_claimed);
    w.field_u64("abiu_retries", n.niu.abiu_retries);
    w.field_u64("retransmits", n.niu.retransmits);
    w.field_u64("acks_sent", n.niu.acks_sent);
    w.field_u64("acks_received", n.niu.acks_received);
    w.field_u64("dup_drops", n.niu.dup_drops);
    w.field_u64("corrupt_drops", n.niu.corrupt_drops);
    w.field_u64("rx_retry_drops", n.niu.rx_retry_drops);
    w.field_u64("reliable_dropped", n.niu.reliable_dropped);
    w.key("classes");
    w.begin_obj();
    for (i, c) in n.niu.classes.iter().enumerate() {
        w.key(MsgClass::NAMES[i]);
        w.begin_obj();
        w.field_u64("sent", c.sent);
        w.field_u64("delivered", c.delivered);
        w.field_u64("dropped", c.dropped);
        w.field_u64("latency_count", c.latency_count);
        w.field_u64("latency_sum_cycles", c.latency_sum_cycles);
        w.field_u64("latency_min_cycles", c.latency_min_cycles);
        w.field_u64("latency_max_cycles", c.latency_max_cycles);
        w.end_obj();
    }
    w.end_obj();
    w.key("tx_queues");
    w.begin_arr();
    for t in &n.niu.tx_queues {
        w.begin_obj();
        w.field_u64("q", t.q);
        w.field_u64("enqueued", t.enqueued);
        w.field_u64("sent_bytes", t.sent_bytes);
        w.field_u64("full_stalls", t.full_stalls);
        w.field_u64("violations", t.violations);
        w.end_obj();
    }
    w.end_arr();
    w.key("rx_queues");
    w.begin_arr();
    for r in &n.niu.rx_queues {
        w.begin_obj();
        w.field_u64("q", r.q);
        w.field_u64("received_bytes", r.received_bytes);
        w.field_u64("dequeued", r.dequeued);
        w.field_u64("dropped", r.dropped);
        w.field_u64("diverted", r.diverted);
        w.field_u64("full_stalls", r.full_stalls);
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.key("fw");
    w.begin_obj();
    w.field_u64("handled", n.fw.handled);
    w.field_u64("svc_msgs", n.fw.svc_msgs);
    w.field_u64("miss_msgs", n.fw.miss_msgs);
    w.field_u64("violations_seen", n.fw.violations_seen);
    w.field_u64("proto_errors", n.fw.proto_errors);
    w.field_u64("busy_ns", n.fw.busy_ns);
    w.field_u64("busy_intervals", n.fw.busy_intervals);
    w.field_u64("numa_forwards", n.fw.numa_forwards);
    w.field_u64("numa_home_reads", n.fw.numa_home_reads);
    w.field_u64("numa_home_writes", n.fw.numa_home_writes);
    w.field_u64("numa_replies", n.fw.numa_replies);
    w.field_u64("scoma_local_misses", n.fw.scoma_local_misses);
    w.field_u64("scoma_transitions", n.fw.scoma_transitions);
    w.field_u64("scoma_recalls", n.fw.scoma_recalls);
    w.field_u64("scoma_invals", n.fw.scoma_invals);
    w.field_u64("scoma_writebacks", n.fw.scoma_writebacks);
    w.field_u64("xfer_requests", n.fw.xfer_requests);
    w.field_u64("xfer_completed_sends", n.fw.xfer_completed_sends);
    w.field_u64("xfer_chunks_sent", n.fw.xfer_chunks_sent);
    w.field_u64("xfer_notifies", n.fw.xfer_notifies);
    w.field_u64("coll_started", n.fw.coll_started);
    w.field_u64("coll_completed", n.fw.coll_completed);
    w.field_u64("coll_ups_sent", n.fw.coll_ups_sent);
    w.field_u64("coll_downs_sent", n.fw.coll_downs_sent);
    w.field_u64("coll_fanin_stalls", n.fw.coll_fanin_stalls);
    w.field_u64("coll_busy_ns", n.fw.coll_busy_ns);
    w.end_obj();
    // Emitted only when tenancy is armed: untenanted machines keep
    // their historical byte-identical node objects.
    if let Some(ts) = &n.tenants {
        w.key("tenants");
        w.begin_obj();
        w.field_u64("rebinds", ts.rebinds);
        w.key("per_tenant");
        w.begin_arr();
        for t in &ts.tenants {
            w.begin_obj();
            w.field_u64("id", t.id);
            w.field_u64("class", t.class);
            w.field_u64("weight", t.weight);
            w.field_u64("slices", t.slices);
            w.field_u64("steps", t.steps);
            w.field_u64("active_ns", t.active_ns);
            w.field_u64("sent_msgs", t.sent_msgs);
            w.field_u64("done", t.done);
            w.field_u64("rq_hits", t.rq_hits);
            w.field_u64("rq_misses", t.rq_misses);
            w.field_u64("diversions", t.diversions);
            w.field_u64("drained", t.drained);
            w.field_u64("miss_served", t.miss_served);
            w.field_u64("hit_latency_count", t.hit_latency_count);
            w.field_u64("hit_latency_p99_ns", t.hit_latency_p99_ns);
            w.field_u64("hit_latency_max_ns", t.hit_latency_max_ns);
            w.field_u64("miss_latency_count", t.miss_latency_count);
            w.field_u64("miss_latency_p99_ns", t.miss_latency_p99_ns);
            w.field_u64("miss_latency_max_ns", t.miss_latency_max_ns);
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
    }
    w.end_obj();
}

#[cfg(test)]
mod tests {
    use crate::api::{RecvBasic, SendBasic};
    use crate::Machine;
    use sv_niu::msg::MsgClass;

    #[test]
    fn snapshot_counts_one_basic_message() {
        let mut m = Machine::builder(2).sample_latency(true).build();
        m.load_program(0, SendBasic::to_node(&m.lib(0), 1, vec![7u8; 64]));
        m.load_program(1, RecvBasic::expecting(&m.lib(1), 1));
        m.run_to_quiescence();
        let s = m.stats();
        assert_eq!(s.nodes.len(), 2);
        let basic = MsgClass::Basic as usize;
        assert_eq!(s.nodes[0].niu.classes[basic].sent, 1);
        assert_eq!(s.nodes[1].niu.classes[basic].delivered, 1);
        assert_eq!(s.nodes[1].niu.classes[basic].latency_count, 1);
        assert!(s.nodes[1].niu.classes[basic].latency_min_cycles > 0);
        // The sender's tx queue 1 saw one enqueue; the receiver's rx
        // queue 1 saw one dequeue.
        assert!(s.nodes[0]
            .niu
            .tx_queues
            .iter()
            .any(|t| t.q == 1 && t.enqueued == 1));
        assert!(s.nodes[1]
            .niu
            .rx_queues
            .iter()
            .any(|r| r.q == 1 && r.dequeued == 1));
        assert_eq!(s.network.delivered, 1);
        assert!(!s.network.links.is_empty());
        assert!(s.run.node_ticks > 0);
        assert!(s.run.skipped_node_ticks > 0, "event loop skipped idle work");
        assert!(s.run.wake_republishes > 0);
    }

    #[test]
    fn json_rendering_is_stable_and_parsable_shape() {
        let mut m = Machine::builder(2).build();
        m.load_program(0, SendBasic::to_node(&m.lib(0), 1, vec![1u8; 16]));
        m.load_program(1, RecvBasic::expecting(&m.lib(1), 1));
        m.run_to_quiescence();
        let a = m.stats().to_json();
        let b = m.stats().to_json();
        assert_eq!(a, b, "snapshotting is side-effect free");
        assert!(a.starts_with("{\"sim_time_ns\":"));
        assert!(a.contains("\"classes\":{\"basic\":{"));
        assert!(a.ends_with("}"));
        // Latency sampling was off: no samples recorded anywhere.
        assert!(a.contains("\"latency_count\":0"));
    }

    #[test]
    fn sampling_off_records_no_latency() {
        let mut m = Machine::builder(2).build();
        m.load_program(0, SendBasic::to_node(&m.lib(0), 1, vec![1u8; 16]));
        m.load_program(1, RecvBasic::expecting(&m.lib(1), 1));
        m.run_to_quiescence();
        let s = m.stats();
        let basic = MsgClass::Basic as usize;
        assert_eq!(s.nodes[1].niu.classes[basic].delivered, 1);
        assert_eq!(s.nodes[1].niu.classes[basic].latency_count, 0);
        assert_eq!(s.nodes[1].niu.classes[basic].latency_min_cycles, 0);
    }
}
