//! Parallel parameter sweeps.
//!
//! Each simulation point is single-threaded and deterministic; sweeps
//! over sizes/approaches/parameters are embarrassingly parallel. The
//! bench harness fans points out over worker threads with a crossbeam
//! channel and reassembles results in input order.

/// Map `f` over `inputs` in parallel, preserving order.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(4)
        .min(n);
    if threads <= 1 {
        return inputs.into_iter().map(f).collect();
    }
    let (in_tx, in_rx) = crossbeam::channel::unbounded::<(usize, I)>();
    for pair in inputs.into_iter().enumerate() {
        in_tx.send(pair).expect("open channel");
    }
    drop(in_tx);
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let (out_tx, out_rx) = crossbeam::channel::unbounded::<(usize, O)>();
        for _ in 0..threads {
            let in_rx = in_rx.clone();
            let out_tx = out_tx.clone();
            let f = &f;
            s.spawn(move || {
                while let Ok((i, input)) = in_rx.recv() {
                    out_tx.send((i, f(input))).expect("collector alive");
                }
            });
        }
        drop(out_tx);
        while let Ok((i, o)) = out_rx.recv() {
            out[i] = Some(o);
        }
    });
    out.into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |x: u32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
        assert_eq!(parallel_map(vec![7], |x: u32| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_runs_once_per_input() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let out = parallel_map((0..37).collect(), |x: u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }
}
