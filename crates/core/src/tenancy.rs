//! Multi-tenant serving: per-node tenant namespaces and a deterministic
//! per-node job scheduler.
//!
//! The tenancy subsystem carves two protected namespaces per node so
//! that hundreds of tenant programs can share one aP + NIU without being
//! able to name each other's resources:
//!
//! - **Logical receive queues.** Tenant `t` owns exactly one logical rx
//!   queue per node, `TENANT_LQ_BASE + t`. The 16 hardware rx slots
//!   cache these hundreds of logical queues: slots
//!   [`TENANT_SLOT_LO`]`..=`[`TENANT_SLOT_HI`] are managed as an LRU
//!   cache by the sP firmware ([`sv_firmware::engine::FwTenant`]), and
//!   messages whose logical queue is not resident take the miss-queue
//!   path — the scaling phenomenon the S10 study measures.
//! - **Translation-table slices.** Tenant `t`'s virtual destinations
//!   live in `[xlate_base + t * slice, +slice)`; entry `d` of a slice
//!   targets node `d`'s copy of the *same tenant's* logical queue. A
//!   confined tenant sends through tx queue 3, whose AND/OR destination
//!   masks pin every lookup inside the tenant's own slice — it cannot
//!   name another tenant's destinations even with forged values, and a
//!   lookup of an uninstalled in-slice hole shuts the queue down
//!   (protection violation), which is exactly the misbehaving-tenant
//!   demonstration in `examples/multiprogramming.rs`.
//!
//! On the aP, one [`TenantScheduler`] multiplexes every tenant's job
//! ([`JobBody`]) over the shared hardware: a deterministic round-robin
//! or weighted-time-slice rotation ([`SchedPolicy`]) with
//! message-granularity preemption, attributing elapsed aP time, steps,
//! scheduling slices and sent messages per tenant. Determinism is
//! inherited from the [`Program`] contract: the scheduler is a pure
//! state machine over `Env { now, last_load }`, so per-tenant stats are
//! byte-identical across run modes, worker counts and shard policies.

use crate::api::{ApiError, BasicMsg, ProgramSnapshot};
use crate::app::{AppEventKind, Env, Program, Step, StoreData};
use crate::machine::{dest, shadow, NodeLib, QueueView};
use std::collections::VecDeque;
use sv_niu::msg::MsgHeader;
use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

/// First logical rx queue owned by a tenant (`TENANT_LQ_BASE + t` is
/// tenant `t`'s inbox on every node). Queues 0–2 keep their historical
/// meanings (service / user Basic / Express).
pub const TENANT_LQ_BASE: u16 = 8;

/// First hardware rx slot the firmware manages as tenant-queue cache.
pub const TENANT_SLOT_LO: u8 = 3;

/// Last managed hardware rx slot (slot 15 is the miss queue).
pub const TENANT_SLOT_HI: u8 = 14;

/// Transmit queue a confined tenant is pinned to (destination masks
/// force every lookup into the tenant's own translation slice).
pub const CONFINED_TX_Q: u8 = 3;

/// Workload class of a tenant, fixed by [`TenancyParams::tenant_class`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantClass {
    /// Back-to-back large Basic transfers.
    Bulk,
    /// Latency-sensitive: paced small messages riding the network's
    /// High class (its translation entries set the priority bit).
    Latency,
    /// Delay-gated bursts.
    Bursty,
    /// Confined to tx queue 3; eventually trips a protection violation.
    Misbehaving,
}

impl TenantClass {
    /// Stable integer code (emitted in stats JSON).
    pub fn code(self) -> u8 {
        match self {
            TenantClass::Bulk => 0,
            TenantClass::Latency => 1,
            TenantClass::Bursty => 2,
            TenantClass::Misbehaving => 3,
        }
    }

    /// Scheduler weight under [`SchedPolicy::WeightedTimeSlice`].
    pub fn weight(self) -> u32 {
        match self {
            TenantClass::Latency => 4,
            _ => 1,
        }
    }
}

/// One tenant as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant index on its node (`0..tenants_per_node`).
    pub id: u16,
    /// Workload class.
    pub class: TenantClass,
    /// Weight under [`SchedPolicy::WeightedTimeSlice`].
    pub weight: u32,
}

/// How the per-node scheduler rotates among ready tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Rotate to the next ready tenant at every scheduling point.
    RoundRobin,
    /// Keep the running tenant until it has accumulated
    /// `quantum_ns × weight` of attributed aP time in its slice.
    WeightedTimeSlice {
        /// Base quantum, ns (multiplied by each tenant's weight).
        quantum_ns: u64,
    },
}

impl SchedPolicy {
    /// Stable integer code (emitted in stats JSON): 0 round-robin,
    /// 1 weighted time slice.
    pub fn code(self) -> u8 {
        match self {
            SchedPolicy::RoundRobin => 0,
            SchedPolicy::WeightedTimeSlice { .. } => 1,
        }
    }

    /// The quantum, or 0 under round-robin (emitted in stats JSON).
    pub fn quantum_ns(self) -> u64 {
        match self {
            SchedPolicy::RoundRobin => 0,
            SchedPolicy::WeightedTimeSlice { quantum_ns } => quantum_ns,
        }
    }
}

/// Tenancy configuration, passed to
/// [`crate::MachineBuilder::tenants`]. Applies identically to every
/// node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenancyParams {
    /// Tenants per node (each owns one logical rx queue and one
    /// translation slice).
    pub tenants_per_node: u16,
    /// Scheduler rotation policy.
    pub policy: SchedPolicy,
    /// Tenant confined to the masked tx queue 3, if any (the
    /// misbehaving tenant of the job mix).
    pub confined: Option<u16>,
}

impl Default for TenancyParams {
    fn default() -> Self {
        TenancyParams {
            tenants_per_node: 4,
            policy: SchedPolicy::RoundRobin,
            confined: None,
        }
    }
}

impl TenancyParams {
    /// The fixed class convention of the job mix: tenant 0 is the
    /// latency-sensitive tenant, the confined tenant (when configured)
    /// is misbehaving, and the rest alternate bursty/bulk by parity.
    /// The machine uses the same convention to decide which translation
    /// slices get the high-priority bit.
    pub fn tenant_class(&self, t: u16) -> TenantClass {
        if self.confined == Some(t) {
            TenantClass::Misbehaving
        } else if t == 0 {
            TenantClass::Latency
        } else if t % 2 == 1 {
            TenantClass::Bursty
        } else {
            TenantClass::Bulk
        }
    }

    /// The [`TenantSpec`] of tenant `t` under this configuration.
    pub fn tenant_spec(&self, t: u16) -> TenantSpec {
        let class = self.tenant_class(t);
        TenantSpec {
            id: t,
            class,
            weight: class.weight(),
        }
    }
}

impl StateSave for TenancyParams {
    fn save(&self, w: &mut SnapWriter) {
        w.u16(self.tenants_per_node);
        w.u8(self.policy.code());
        w.u64(self.policy.quantum_ns());
        w.save(&self.confined);
    }
}
impl StateLoad for TenancyParams {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let tenants_per_node = r.u16()?;
        let policy = match r.u8()? {
            0 => {
                // Round-robin serializes a zero quantum.
                if r.u64()? != 0 {
                    return Err(SnapshotError::Corrupt { offset: at });
                }
                SchedPolicy::RoundRobin
            }
            1 => SchedPolicy::WeightedTimeSlice {
                quantum_ns: r.u64()?,
            },
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        };
        let confined: Option<u16> = r.load()?;
        let p = TenancyParams {
            tenants_per_node,
            policy,
            confined,
        };
        // Re-run the build-time validation: a forged snapshot must not
        // smuggle an unbuildable configuration past `try_new`.
        if confined.is_some_and(|c| c >= tenants_per_node) || tenants_per_node == 0 {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        Ok(p)
    }
}

/// The per-node tenant namespace carving: which logical rx queues and
/// which translation-table slice each tenant owns. Pure arithmetic over
/// the machine size and [`TenancyParams`]; every node's registry is
/// identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantRegistry {
    /// Number of nodes in the machine.
    pub nodes: u16,
    /// Tenants per node.
    pub count: u16,
    /// First tenant logical rx queue ([`TENANT_LQ_BASE`]).
    pub lq_base: u16,
    /// First virtual destination of tenant 0's translation slice.
    pub xlate_base: u16,
    /// Virtual destinations per tenant slice (a power of two at least
    /// `nodes + 1`, so every slice contains at least one uninstalled
    /// hole for the protection-violation demonstration).
    pub slice: u16,
}

impl TenantRegistry {
    /// Carve the namespace for an `nodes`-node machine, rejecting
    /// configurations that do not fit the 16-bit destination space or
    /// name a confined tenant that does not exist.
    pub fn try_new(nodes: u16, params: &TenancyParams) -> Result<Self, ApiError> {
        let count = params.tenants_per_node;
        if count == 0 {
            return Err(ApiError::TenantCountZero);
        }
        if let Some(c) = params.confined {
            if c >= count {
                return Err(ApiError::ConfinedTenantOutOfRange {
                    tenant: c,
                    tenants: count,
                });
            }
        }
        let slice = (nodes as u32 + 1).next_power_of_two();
        let xlate_base = 4 * dest::stride(nodes) as u32;
        let end = xlate_base + count as u32 * slice;
        if end > 1 << 16 {
            return Err(ApiError::TenantNamespaceOverflow {
                tenants: count,
                capacity: ((1u32 << 16) - xlate_base) / slice,
            });
        }
        Ok(TenantRegistry {
            nodes,
            count,
            lq_base: TENANT_LQ_BASE,
            xlate_base: xlate_base as u16,
            slice: slice as u16,
        })
    }

    /// Tenant `t`'s logical rx queue (same index on every node).
    pub fn lq(&self, t: u16) -> u16 {
        self.lq_base + t
    }

    /// One past the last tenant logical rx queue.
    pub fn lq_end(&self) -> u16 {
        self.lq_base + self.count
    }

    /// Tenant `t`'s virtual destination naming its own logical queue on
    /// node `d`.
    pub fn tenant_dest(&self, t: u16, d: u16) -> u16 {
        self.xlate_base + t * self.slice + d
    }

    /// One past the last installed virtual destination.
    pub fn xlate_end(&self) -> usize {
        self.xlate_base as usize + self.count as usize * self.slice as usize
    }
}

/// Per-tenant handle on one node — the tenancy analogue of
/// [`NodeLib`]: everything a tenant job needs to name its own
/// destinations (and nothing that names anyone else's).
#[derive(Debug, Clone, Copy)]
pub struct TenantLib {
    /// The node's library view.
    pub lib: NodeLib,
    /// This tenant's index.
    pub tenant: u16,
    /// The node's namespace carving.
    pub registry: TenantRegistry,
}

impl TenantLib {
    /// Virtual destination of this tenant's inbox on node `d`.
    pub fn dest(&self, d: u16) -> u16 {
        self.registry.tenant_dest(self.tenant, d)
    }

    /// This tenant's logical rx queue index.
    pub fn lq(&self) -> u16 {
        self.registry.lq(self.tenant)
    }
}

/// One item of a [`JobBody::Stream`] job.
#[derive(Debug, Clone)]
pub enum StreamItem {
    /// Go idle for this many ns (the tenant is not schedulable until
    /// the delay elapses; the aP is free for other tenants).
    Delay(u64),
    /// Send one Basic message through the scheduler's shared tx mux.
    Msg(BasicMsg),
}

/// What a tenant runs.
pub enum JobBody {
    /// A declarative delay/send schedule (the job-mix classes).
    Stream(VecDeque<StreamItem>),
    /// An arbitrary nested program, stepped under the tenant's identity
    /// (its loads are routed back to it, its time attributed to it).
    Child(Box<dyn Program>),
}

impl std::fmt::Debug for JobBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobBody::Stream(items) => f.debug_tuple("Stream").field(&items.len()).finish(),
            JobBody::Child(_) => f.write_str("Child(..)"),
        }
    }
}

/// Scheduler-side occupancy counters for one tenant, surfaced into
/// [`crate::MachineStats`] through [`Program::tenant_report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantSchedStat {
    /// Tenant index.
    pub id: u16,
    /// Class code ([`TenantClass::code`]).
    pub class: u8,
    /// Scheduler weight.
    pub weight: u32,
    /// Times the scheduler selected this tenant at a scheduling point.
    pub slices: u64,
    /// Program steps executed on the tenant's behalf.
    pub steps: u64,
    /// aP time attributed to the tenant, ns.
    pub active_ns: u64,
    /// Basic messages the tenant completed through the tx muxes.
    pub sent_msgs: u64,
    /// Whether the tenant's job ran to completion.
    pub done: bool,
}

/// Gap between space polls of a full transmit queue, ns (mirrors the
/// layer-0 library's polling cadence).
const MUX_POLL_GAP_NS: u64 = 30;

/// The confined tenant's transmit-queue view. Geometry is the default
/// aSRAM carving ([`sv_niu::ctrl::Ctrl::new`]): tx queue `q` at
/// `q * 4096`, 32 entries of 96 bytes; the consumer shadow is installed
/// by the machine when tenancy is armed.
fn confined_tx_view() -> QueueView {
    QueueView {
        q: CONFINED_TX_Q,
        base: CONFINED_TX_Q as u32 * 4096,
        entries: 32,
        entry_bytes: 96,
        shadow_off: shadow::tx_consumer(CONFINED_TX_Q),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MuxState {
    Idle,
    PollSpace,
    WriteHeader,
    WritePayload { off: u32 },
    PtrUpdate,
}

impl MuxState {
    fn code(self) -> u8 {
        match self {
            MuxState::Idle => 0,
            MuxState::PollSpace => 1,
            MuxState::WriteHeader => 2,
            MuxState::WritePayload { .. } => 3,
            MuxState::PtrUpdate => 4,
        }
    }
}

/// A shared Basic-transmit engine: replays the layer-0
/// [`crate::api::SendBasic`] store/load sequence for one message at a
/// time on behalf of whichever tenant owns the in-flight message.
/// Message-granularity atomicity is the preemption unit: once a header
/// store has been issued, the scheduler finishes the message before
/// rotating (interleaving two tenants' stores into one hardware slot
/// would corrupt the queue).
#[derive(Debug)]
struct BasicTxMux {
    view: QueueView,
    state: MuxState,
    producer: u16,
    consumer_seen: u16,
    owner: u16,
    msg: Option<BasicMsg>,
}

impl BasicTxMux {
    fn new(view: QueueView) -> Self {
        BasicTxMux {
            view,
            state: MuxState::Idle,
            producer: 0,
            consumer_seen: 0,
            owner: 0,
            msg: None,
        }
    }

    fn busy(&self) -> bool {
        self.state != MuxState::Idle
    }

    fn begin(&mut self, owner: u16, msg: BasicMsg) {
        debug_assert!(!self.busy());
        self.owner = owner;
        self.msg = Some(msg);
        self.state = MuxState::WriteHeader;
    }

    /// Advance the in-flight message by one step. `Some(step)` is the
    /// aP operation to issue (attributed to `self.owner`); `None` means
    /// the message completed and the mux is idle again.
    fn step(&mut self, lib: &NodeLib, env: &mut Env<'_>) -> Option<Step> {
        loop {
            match self.state {
                MuxState::Idle => return None,
                MuxState::WriteHeader => {
                    if self.producer.wrapping_sub(self.consumer_seen) >= self.view.entries {
                        self.state = MuxState::PollSpace;
                        return Some(Step::Load {
                            addr: lib.asram(self.view.shadow_off),
                            bytes: 8,
                        });
                    }
                    let msg = self.msg.as_ref().expect("mux message");
                    let hdr = MsgHeader::basic(msg.dest, msg.payload.len() as u8);
                    let slot = self.view.slot_off(self.producer);
                    self.state = MuxState::WritePayload { off: 0 };
                    return Some(Step::Store {
                        addr: lib.asram(slot),
                        data: StoreData::Bytes(hdr.encode().to_vec()),
                    });
                }
                MuxState::PollSpace => {
                    self.consumer_seen = env.last_load as u16;
                    if self.producer.wrapping_sub(self.consumer_seen) >= self.view.entries {
                        // Still full: hold the header state and retry
                        // after a beat.
                        self.state = MuxState::WriteHeader;
                        return Some(Step::Compute(MUX_POLL_GAP_NS));
                    }
                    self.state = MuxState::WriteHeader;
                }
                MuxState::WritePayload { off } => {
                    let msg = self.msg.as_ref().expect("mux message");
                    if (off as usize) < msg.payload.len() {
                        let end = (off as usize + 8).min(msg.payload.len());
                        let chunk = msg.payload[off as usize..end].to_vec();
                        let slot = self.view.slot_off(self.producer);
                        self.state = MuxState::WritePayload { off: off + 8 };
                        return Some(Step::Store {
                            addr: lib.asram(slot + 8 + off),
                            data: StoreData::Bytes(chunk),
                        });
                    }
                    self.state = MuxState::PtrUpdate;
                }
                MuxState::PtrUpdate => {
                    let msg = self.msg.take().expect("mux message");
                    self.producer = self.producer.wrapping_add(1);
                    let q = self.view.q;
                    env.emit(AppEventKind::Sent {
                        q,
                        dest: msg.dest,
                        bytes: msg.payload.len() as u32,
                    });
                    self.state = MuxState::Idle;
                    return Some(Step::Store {
                        addr: lib.map.ptr_update_addr(false, q, self.producer),
                        data: StoreData::U64(0),
                    });
                }
            }
        }
    }
}

#[derive(Debug)]
struct TenantTask {
    spec: TenantSpec,
    /// Routes this tenant's messages through the masked tx queue 3.
    confined: bool,
    /// Earliest ns the task is schedulable again ([`StreamItem::Delay`]).
    ready_at: u64,
    done: bool,
    active_ns: u64,
    slices: u64,
    steps: u64,
    sent_msgs: u64,
    body: JobBody,
}

/// Which entity the previous yielded step belongs to (time attribution
/// and load-result routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entity {
    /// The shared user-queue mux.
    Mux1,
    /// The confined tx-3 mux.
    Mux3,
    /// A tenant's child program.
    Task(u16),
}

/// The per-node tenant scheduler: one [`Program`] multiplexing every
/// tenant's job over the node's aP and transmit queues. Built by
/// [`TenantScheduler::new`] from per-tenant [`JobBody`]s (see
/// [`crate::workloads::load_tenant_mix`] for the canonical job mix).
pub struct TenantScheduler {
    lib: NodeLib,
    policy: SchedPolicy,
    tasks: Vec<TenantTask>,
    mux1: BasicTxMux,
    /// Present only when some tenant is confined.
    mux3: Option<BasicTxMux>,
    /// Rotation cursor: next task index considered at a scheduling
    /// point.
    cursor: u16,
    /// Currently scheduled task (weighted-time-slice affinity).
    current: Option<u16>,
    /// `active_ns` of `current` when its slice started.
    slice_start_ns: u64,
    /// Entity whose step the aP is executing (time attribution).
    attr: Option<Entity>,
    /// Entity that must receive the next step because its previous step
    /// was a [`Step::Load`] (the result arrives in `env.last_load`).
    sticky: Option<Entity>,
    last_now: u64,
}

impl TenantScheduler {
    /// Build a scheduler over `jobs` (one per tenant, in tenant order)
    /// for one node. When [`TenancyParams::confined`] is set, the
    /// confined tenant's messages go through the masked tx queue 3
    /// (whose shadow and masks the machine installs when tenancy is
    /// armed — see [`crate::MachineBuilder::tenants`]).
    pub fn new(lib: NodeLib, params: &TenancyParams, jobs: Vec<JobBody>) -> Self {
        let view3 = params.confined.is_some().then(confined_tx_view);
        assert_eq!(
            jobs.len(),
            params.tenants_per_node as usize,
            "one job per tenant"
        );
        let tasks = jobs
            .into_iter()
            .enumerate()
            .map(|(t, body)| {
                let t = t as u16;
                TenantTask {
                    spec: params.tenant_spec(t),
                    confined: params.confined == Some(t),
                    ready_at: 0,
                    done: false,
                    active_ns: 0,
                    slices: 0,
                    steps: 0,
                    sent_msgs: 0,
                    body,
                }
            })
            .collect();
        TenantScheduler {
            lib,
            policy: params.policy,
            tasks,
            mux1: BasicTxMux::new(lib.basic_tx),
            mux3: view3.map(BasicTxMux::new),
            cursor: 0,
            current: None,
            slice_start_ns: 0,
            attr: None,
            sticky: None,
            last_now: 0,
        }
    }

    fn charge(&mut self, now: u64) {
        let dt = now.saturating_sub(self.last_now);
        self.last_now = now;
        if dt == 0 {
            return;
        }
        if let Some(e) = self.attr {
            let owner = match e {
                Entity::Mux1 => self.mux1.owner,
                Entity::Mux3 => self.mux3.as_ref().map_or(0, |m| m.owner),
                Entity::Task(t) => t,
            };
            if let Some(task) = self.tasks.get_mut(owner as usize) {
                task.active_ns += dt;
            }
        }
    }

    /// Yield `step` produced by `e`, recording attribution and (for
    /// loads) the sticky continuation.
    fn yield_step(&mut self, e: Entity, step: Step) -> Step {
        let owner = match e {
            Entity::Mux1 => self.mux1.owner,
            Entity::Mux3 => self.mux3.as_ref().map_or(0, |m| m.owner),
            Entity::Task(t) => t,
        };
        if let Some(task) = self.tasks.get_mut(owner as usize) {
            task.steps += 1;
        }
        self.attr = Some(e);
        self.sticky = matches!(step, Step::Load { .. }).then_some(e);
        step
    }

    /// Drive the entity's underlying state machine one step.
    fn step_entity(&mut self, e: Entity, env: &mut Env<'_>) -> Option<Step> {
        match e {
            Entity::Mux1 => {
                let lib = self.lib;
                let s = self.mux1.step(&lib, env)?;
                // The final pointer-update store leaves the mux idle:
                // the message is complete as of this step.
                let completed = !self.mux1.busy();
                let owner = self.mux1.owner as usize;
                let step = self.yield_step(Entity::Mux1, s);
                if completed {
                    if let Some(t) = self.tasks.get_mut(owner) {
                        t.sent_msgs += 1;
                    }
                }
                Some(step)
            }
            Entity::Mux3 => {
                let lib = self.lib;
                let m = self.mux3.as_mut()?;
                let s = m.step(&lib, env)?;
                let completed = !m.busy();
                let owner = m.owner as usize;
                let step = self.yield_step(Entity::Mux3, s);
                if completed {
                    if let Some(t) = self.tasks.get_mut(owner) {
                        t.sent_msgs += 1;
                    }
                }
                Some(step)
            }
            Entity::Task(t) => {
                let task = &mut self.tasks[t as usize];
                let JobBody::Child(p) = &mut task.body else {
                    return None;
                };
                let s = p.step(env);
                if s == Step::Done {
                    task.done = true;
                    None
                } else {
                    Some(self.yield_step(Entity::Task(t), s))
                }
            }
        }
    }

    /// Pick the task to run at a scheduling point, honouring the
    /// policy. Returns `None` when no task is ready.
    fn pick(&mut self, now: u64) -> Option<u16> {
        let n = self.tasks.len() as u16;
        let ready = |task: &TenantTask| !task.done && task.ready_at <= now;
        // Weighted time slice: stick with the current task while it is
        // ready and within its quantum.
        if let SchedPolicy::WeightedTimeSlice { quantum_ns } = self.policy {
            if let Some(c) = self.current {
                let task = &self.tasks[c as usize];
                if ready(task)
                    && task.active_ns.saturating_sub(self.slice_start_ns)
                        < quantum_ns * task.spec.weight as u64
                {
                    return Some(c);
                }
            }
        }
        for k in 0..n {
            let i = (self.cursor + k) % n;
            if ready(&self.tasks[i as usize]) {
                self.cursor = (i + 1) % n;
                self.current = Some(i);
                self.slice_start_ns = self.tasks[i as usize].active_ns;
                self.tasks[i as usize].slices += 1;
                return Some(i);
            }
        }
        None
    }

    /// Per-tenant occupancy counters, in tenant order.
    pub fn report(&self) -> Vec<TenantSchedStat> {
        self.tasks
            .iter()
            .map(|t| TenantSchedStat {
                id: t.spec.id,
                class: t.spec.class.code(),
                weight: t.spec.weight,
                slices: t.slices,
                steps: t.steps,
                active_ns: t.active_ns,
                sent_msgs: t.sent_msgs,
                done: t.done,
            })
            .collect()
    }
}

impl Program for TenantScheduler {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        let now = env.now.ns();
        self.charge(now);
        // A load's result must reach the entity that issued it.
        if let Some(e) = self.sticky.take() {
            if let Some(s) = self.step_entity(e, env) {
                return s;
            }
        }
        loop {
            // In-flight messages complete before the rotation moves on
            // (message-granularity atomicity on the shared queues).
            if self.mux1.busy() {
                if let Some(s) = self.step_entity(Entity::Mux1, env) {
                    return s;
                }
                continue;
            }
            if self.mux3.as_ref().is_some_and(|m| m.busy()) {
                if let Some(s) = self.step_entity(Entity::Mux3, env) {
                    return s;
                }
                continue;
            }
            let Some(t) = self.pick(now) else {
                // Nothing ready now. If a delayed task exists, sleep to
                // its ready point (unattributed idle); otherwise done.
                let next = self
                    .tasks
                    .iter()
                    .filter(|task| !task.done)
                    .map(|task| task.ready_at)
                    .min();
                self.attr = None;
                return match next {
                    Some(at) => Step::Compute(at.saturating_sub(now).max(1)),
                    None => Step::Done,
                };
            };
            if matches!(self.tasks[t as usize].body, JobBody::Child(_)) {
                if let Some(s) = self.step_entity(Entity::Task(t), env) {
                    return s;
                }
                continue;
            }
            let task = &mut self.tasks[t as usize];
            let JobBody::Stream(items) = &mut task.body else {
                unreachable!("child handled above")
            };
            match items.pop_front() {
                None => task.done = true,
                Some(StreamItem::Delay(ns)) => {
                    // Delays cost no aP time; the tenant simply
                    // becomes unschedulable until `now + ns`.
                    task.ready_at = now + ns;
                    self.current = None;
                }
                Some(StreamItem::Msg(msg)) => {
                    if task.confined {
                        if let Some(m) = self.mux3.as_mut() {
                            m.begin(t, msg);
                        } else {
                            // No confined queue configured: the
                            // message cannot be sent safely; drop
                            // the job to avoid cross-slice sends.
                            task.done = true;
                        }
                    } else {
                        self.mux1.begin(t, msg);
                    }
                }
            }
        }
    }

    fn snapshot(&self) -> Option<ProgramSnapshot> {
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for t in &self.tasks {
            let body = match &t.body {
                JobBody::Stream(items) => BodySnap::Stream(items.clone()),
                // Every child must itself be snapshottable.
                JobBody::Child(p) => BodySnap::Child(p.snapshot()?),
            };
            tasks.push(TaskSnap {
                spec_id: t.spec.id,
                class: t.spec.class.code(),
                weight: t.spec.weight,
                confined: t.confined,
                ready_at: t.ready_at,
                done: t.done,
                active_ns: t.active_ns,
                slices: t.slices,
                steps: t.steps,
                sent_msgs: t.sent_msgs,
                body,
            });
        }
        Some(ProgramSnapshot::tenant_scheduler(SchedSnap {
            policy: self.policy,
            tasks,
            mux1: MuxSnap::of(&self.mux1),
            mux3: self.mux3.as_ref().map(MuxSnap::of),
            cursor: self.cursor,
            current: self.current,
            slice_start_ns: self.slice_start_ns,
            attr: self.attr.map(entity_code),
            sticky: self.sticky.map(entity_code),
            last_now: self.last_now,
        }))
    }

    fn tenant_report(&self) -> Option<Vec<TenantSchedStat>> {
        Some(self.report())
    }
}

fn entity_code(e: Entity) -> u8 {
    match e {
        Entity::Mux1 => 0,
        Entity::Mux3 => 1,
        Entity::Task(_) => 2,
    }
}

// =====================================================================
// Snapshot representation (ProgramSnapshot tag 9)
// =====================================================================

#[derive(Debug, Clone)]
pub(crate) enum BodySnap {
    Stream(VecDeque<StreamItem>),
    Child(ProgramSnapshot),
}

#[derive(Debug, Clone)]
pub(crate) struct TaskSnap {
    spec_id: u16,
    class: u8,
    weight: u32,
    confined: bool,
    ready_at: u64,
    done: bool,
    active_ns: u64,
    slices: u64,
    steps: u64,
    sent_msgs: u64,
    body: BodySnap,
}

#[derive(Debug, Clone)]
struct MuxSnap {
    state: MuxState,
    producer: u16,
    consumer_seen: u16,
    owner: u16,
    msg: Option<BasicMsg>,
}

impl MuxSnap {
    fn of(m: &BasicTxMux) -> MuxSnap {
        MuxSnap {
            state: m.state,
            producer: m.producer,
            consumer_seen: m.consumer_seen,
            owner: m.owner,
            msg: m.msg.clone(),
        }
    }
}

/// Serialized [`TenantScheduler`] state — the payload of
/// [`ProgramSnapshot`] wire tag 9.
#[derive(Debug, Clone)]
pub(crate) struct SchedSnap {
    policy: SchedPolicy,
    tasks: Vec<TaskSnap>,
    mux1: MuxSnap,
    mux3: Option<MuxSnap>,
    cursor: u16,
    current: Option<u16>,
    slice_start_ns: u64,
    attr: Option<u8>,
    sticky: Option<u8>,
    last_now: u64,
}

fn decode_class(code: u8) -> Option<TenantClass> {
    Some(match code {
        0 => TenantClass::Bulk,
        1 => TenantClass::Latency,
        2 => TenantClass::Bursty,
        3 => TenantClass::Misbehaving,
        _ => return None,
    })
}

fn decode_entity(code: u8, task_hint: u16) -> Option<Entity> {
    Some(match code {
        0 => Entity::Mux1,
        1 => Entity::Mux3,
        2 => Entity::Task(task_hint),
        _ => return None,
    })
}

impl SchedSnap {
    /// Rebuild the runnable scheduler against the restored machine's
    /// library handle. The confined tx queue's geometry is the fixed
    /// default carving, so no extra context is needed.
    pub(crate) fn instantiate(&self, lib: &NodeLib) -> TenantScheduler {
        let rebuild_mux = |snap: &MuxSnap, view: QueueView| {
            let mut m = BasicTxMux::new(view);
            m.state = snap.state;
            m.producer = snap.producer;
            m.consumer_seen = snap.consumer_seen;
            m.owner = snap.owner;
            m.msg = snap.msg.clone();
            m
        };
        let tasks = self
            .tasks
            .iter()
            .map(|t| TenantTask {
                spec: TenantSpec {
                    id: t.spec_id,
                    class: decode_class(t.class).unwrap_or(TenantClass::Bulk),
                    weight: t.weight,
                },
                confined: t.confined,
                ready_at: t.ready_at,
                done: t.done,
                active_ns: t.active_ns,
                slices: t.slices,
                steps: t.steps,
                sent_msgs: t.sent_msgs,
                body: match &t.body {
                    BodySnap::Stream(items) => JobBody::Stream(items.clone()),
                    BodySnap::Child(snap) => JobBody::Child(snap.instantiate(lib)),
                },
            })
            .collect();
        // The sticky/attr task index is recovered from the mux owners /
        // current task; for Task entities the owner is the current task
        // (loads from a child are always followed by routing back to
        // that child before any rotation).
        let cur = self.current.unwrap_or(0);
        TenantScheduler {
            lib: *lib,
            policy: self.policy,
            tasks,
            mux1: rebuild_mux(&self.mux1, lib.basic_tx),
            mux3: self
                .mux3
                .as_ref()
                .map(|snap| rebuild_mux(snap, confined_tx_view())),
            cursor: self.cursor,
            current: self.current,
            slice_start_ns: self.slice_start_ns,
            attr: self.attr.and_then(|c| decode_entity(c, cur)),
            sticky: self.sticky.and_then(|c| decode_entity(c, cur)),
            last_now: self.last_now,
        }
    }

    pub(crate) fn save(&self, w: &mut SnapWriter) {
        w.u8(self.policy.code());
        w.u64(self.policy.quantum_ns());
        w.usize_(self.tasks.len());
        for t in &self.tasks {
            w.u16(t.spec_id);
            w.u8(t.class);
            w.u32(t.weight);
            t.confined.save(w);
            w.u64(t.ready_at);
            t.done.save(w);
            w.u64(t.active_ns);
            w.u64(t.slices);
            w.u64(t.steps);
            w.u64(t.sent_msgs);
            match &t.body {
                BodySnap::Stream(items) => {
                    w.u8(0);
                    w.usize_(items.len());
                    for it in items {
                        match it {
                            StreamItem::Delay(ns) => {
                                w.u8(0);
                                w.u64(*ns);
                            }
                            StreamItem::Msg(m) => {
                                w.u8(1);
                                m.save(w);
                            }
                        }
                    }
                }
                BodySnap::Child(snap) => {
                    w.u8(1);
                    snap.save(w);
                }
            }
        }
        let save_mux = |w: &mut SnapWriter, m: &MuxSnap| {
            w.u8(m.state.code());
            let off = match m.state {
                MuxState::WritePayload { off } => off,
                _ => 0,
            };
            w.u32(off);
            w.u16(m.producer);
            w.u16(m.consumer_seen);
            w.u16(m.owner);
            w.save(&m.msg);
        };
        save_mux(w, &self.mux1);
        self.mux3.is_some().save(w);
        if let Some(m) = &self.mux3 {
            save_mux(w, m);
        }
        w.u16(self.cursor);
        w.save(&self.current);
        w.u64(self.slice_start_ns);
        w.save(&self.attr);
        w.save(&self.sticky);
        w.u64(self.last_now);
    }

    pub(crate) fn load_at(r: &mut SnapReader<'_>, depth: u32) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let policy = match r.u8()? {
            0 => {
                if r.u64()? != 0 {
                    return Err(SnapshotError::Corrupt { offset: at });
                }
                SchedPolicy::RoundRobin
            }
            1 => SchedPolicy::WeightedTimeSlice {
                quantum_ns: r.u64()?,
            },
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        };
        let n = r.count()?;
        if n == 0 || n > u16::MAX as usize {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        let mut tasks = Vec::with_capacity(n);
        for _ in 0..n {
            let spec_id = r.u16()?;
            let class = r.u8()?;
            if decode_class(class).is_none() {
                return Err(SnapshotError::Corrupt { offset: at });
            }
            let weight = r.u32()?;
            let confined = bool::load(r)?;
            let ready_at = r.u64()?;
            let done = bool::load(r)?;
            let active_ns = r.u64()?;
            let slices = r.u64()?;
            let steps = r.u64()?;
            let sent_msgs = r.u64()?;
            let body = match r.u8()? {
                0 => {
                    let k = r.count()?;
                    let mut items = VecDeque::with_capacity(k.min(4096));
                    for _ in 0..k {
                        items.push_back(match r.u8()? {
                            0 => StreamItem::Delay(r.u64()?),
                            // BasicMsg::load re-validates payload sizes.
                            1 => StreamItem::Msg(BasicMsg::load(r)?),
                            _ => return Err(SnapshotError::Corrupt { offset: at }),
                        });
                    }
                    BodySnap::Stream(items)
                }
                1 => BodySnap::Child(ProgramSnapshot::load_at_depth(r, depth + 1)?),
                _ => return Err(SnapshotError::Corrupt { offset: at }),
            };
            tasks.push(TaskSnap {
                spec_id,
                class,
                weight,
                confined,
                ready_at,
                done,
                active_ns,
                slices,
                steps,
                sent_msgs,
                body,
            });
        }
        let load_mux = |r: &mut SnapReader<'_>| -> Result<MuxSnap, SnapshotError> {
            let at = r.offset();
            let code = r.u8()?;
            let state_off = r.u32()?;
            let producer = r.u16()?;
            let consumer_seen = r.u16()?;
            let owner = r.u16()?;
            let msg: Option<BasicMsg> = r.load()?;
            let state = match code {
                0 => MuxState::Idle,
                1 => MuxState::PollSpace,
                2 => MuxState::WriteHeader,
                3 => MuxState::WritePayload { off: state_off },
                4 => MuxState::PtrUpdate,
                _ => return Err(SnapshotError::Corrupt { offset: at }),
            };
            // Every non-idle state dereferences the in-flight message;
            // a forged snapshot must not reach those expects (and an
            // idle mux holding a message would never release it).
            if (state != MuxState::Idle) != msg.is_some() {
                return Err(SnapshotError::Corrupt { offset: at });
            }
            Ok(MuxSnap {
                state,
                producer,
                consumer_seen,
                owner,
                msg,
            })
        };
        let mux1 = load_mux(r)?;
        let has_mux3 = bool::load(r)?;
        let mux3 = if has_mux3 { Some(load_mux(r)?) } else { None };
        let cursor = r.u16()?;
        let current: Option<u16> = r.load()?;
        let slice_start_ns = r.u64()?;
        let attr: Option<u8> = r.load()?;
        let sticky: Option<u8> = r.load()?;
        let last_now = r.u64()?;
        // Indices must address the task vector; entity codes must
        // decode; a Mux3 reference requires the mux to exist.
        let n16 = n as u16;
        if cursor >= n16
            || current.is_some_and(|c| c >= n16)
            || mux1.owner >= n16
            || mux3.as_ref().is_some_and(|m| m.owner >= n16)
        {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        for code in attr.iter().chain(sticky.iter()) {
            match decode_entity(*code, 0) {
                None => return Err(SnapshotError::Corrupt { offset: at }),
                Some(Entity::Mux3) if !has_mux3 => {
                    return Err(SnapshotError::Corrupt { offset: at })
                }
                _ => {}
            }
        }
        Ok(SchedSnap {
            policy,
            tasks,
            mux1,
            mux3,
            cursor,
            current,
            slice_start_ns,
            attr,
            sticky,
            last_now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_sim::Time;

    fn mini_lib() -> NodeLib {
        let m = crate::Machine::builder(2).build();
        m.lib(0)
    }

    fn stream(msgs: usize, dest: u16) -> JobBody {
        JobBody::Stream(
            (0..msgs)
                .map(|_| StreamItem::Msg(BasicMsg::new(dest, vec![1u8; 16])))
                .collect(),
        )
    }

    #[test]
    fn registry_carves_disjoint_slices() {
        let tp = TenancyParams {
            tenants_per_node: 8,
            ..TenancyParams::default()
        };
        let reg = TenantRegistry::try_new(4, &tp).unwrap();
        assert_eq!(reg.lq(0), TENANT_LQ_BASE);
        assert_eq!(reg.lq_end(), TENANT_LQ_BASE + 8);
        // Slices do not overlap and leave a hole past the node count.
        assert!(reg.slice >= 5);
        for t in 0..8u16 {
            for d in 0..4u16 {
                let v = reg.tenant_dest(t, d);
                assert!(v >= reg.xlate_base + t * reg.slice);
                assert!(v < reg.xlate_base + (t + 1) * reg.slice);
            }
        }
    }

    #[test]
    fn registry_rejects_bad_configs() {
        let zero = TenancyParams {
            tenants_per_node: 0,
            ..TenancyParams::default()
        };
        assert!(matches!(
            TenantRegistry::try_new(4, &zero),
            Err(ApiError::TenantCountZero)
        ));
        let confined = TenancyParams {
            tenants_per_node: 4,
            confined: Some(4),
            ..TenancyParams::default()
        };
        assert!(matches!(
            TenantRegistry::try_new(4, &confined),
            Err(ApiError::ConfinedTenantOutOfRange {
                tenant: 4,
                tenants: 4
            })
        ));
        // 16-bit destination space: 4 * stride(256) = 1024 base,
        // slice(256 nodes) = 512 → 126 tenants fit, 127 do not.
        let over = TenancyParams {
            tenants_per_node: 127,
            ..TenancyParams::default()
        };
        assert!(matches!(
            TenantRegistry::try_new(256, &over),
            Err(ApiError::TenantNamespaceOverflow { .. })
        ));
        let fits = TenancyParams {
            tenants_per_node: 126,
            ..TenancyParams::default()
        };
        assert!(TenantRegistry::try_new(256, &fits).is_ok());
    }

    #[test]
    fn class_convention_is_stable() {
        let tp = TenancyParams {
            tenants_per_node: 6,
            confined: Some(1),
            ..TenancyParams::default()
        };
        assert_eq!(tp.tenant_class(0), TenantClass::Latency);
        assert_eq!(tp.tenant_class(1), TenantClass::Misbehaving);
        assert_eq!(tp.tenant_class(2), TenantClass::Bulk);
        assert_eq!(tp.tenant_class(3), TenantClass::Bursty);
        assert_eq!(tp.tenant_spec(0).weight, 4);
        assert_eq!(tp.tenant_spec(2).weight, 1);
    }

    #[test]
    fn round_robin_interleaves_streams() {
        let lib = mini_lib();
        let tp = TenancyParams {
            tenants_per_node: 2,
            ..TenancyParams::default()
        };
        let mut sched = TenantScheduler::new(lib, &tp, vec![stream(2, 1), stream(2, 1)]);
        let mut events = Vec::new();
        let mut order = Vec::new();
        let mut now = 0u64;
        for _ in 0..200 {
            let mut env = Env {
                now: Time::from_ns(now),
                node: 0,
                last_load: 0,
                events: &mut events,
            };
            match sched.step(&mut env) {
                Step::Done => break,
                Step::Compute(ns) => now += ns,
                _ => now += 10,
            }
            if let Some(Entity::Mux1) = sched.attr {
                order.push(sched.mux1.owner);
            }
        }
        let report = sched.report();
        assert_eq!(report[0].sent_msgs, 2);
        assert_eq!(report[1].sent_msgs, 2);
        assert!(report[0].steps > 0 && report[1].steps > 0);
        // Message-granularity alternation: both owners appear, and the
        // owner changes between messages (round-robin).
        assert!(order.contains(&0) && order.contains(&1));
        assert!(report.iter().all(|t| t.done));
    }

    #[test]
    fn weighted_slice_prefers_heavy_tenant() {
        let lib = mini_lib();
        let tp = TenancyParams {
            tenants_per_node: 2,
            policy: SchedPolicy::WeightedTimeSlice { quantum_ns: 10_000 },
            ..TenancyParams::default()
        };
        // Tenant 0 (Latency, weight 4) and tenant 1 (Bursty, weight 1)
        // both run compute-only children; the heavy tenant accumulates
        // more attributed time before each rotation.
        let mut sched = TenantScheduler::new(
            lib,
            &tp,
            vec![
                JobBody::Child(Box::new(crate::app::Delay(40_000))),
                JobBody::Child(Box::new(crate::app::Delay(40_000))),
            ],
        );
        let mut events = Vec::new();
        let mut now = 0u64;
        for _ in 0..100 {
            let mut env = Env {
                now: Time::from_ns(now),
                node: 0,
                last_load: 0,
                events: &mut events,
            };
            match sched.step(&mut env) {
                Step::Done => break,
                Step::Compute(ns) => now += ns,
                _ => now += 10,
            }
        }
        let report = sched.report();
        assert!(report.iter().all(|t| t.done));
        assert_eq!(report[0].active_ns, 40_000);
        assert_eq!(report[1].active_ns, 40_000);
        assert!(report[0].slices >= 1 && report[1].slices >= 1);
    }

    #[test]
    fn delay_gates_readiness_without_attribution() {
        let lib = mini_lib();
        let tp = TenancyParams {
            tenants_per_node: 1,
            ..TenancyParams::default()
        };
        let mut sched = TenantScheduler::new(
            lib,
            &tp,
            vec![JobBody::Stream(VecDeque::from([
                StreamItem::Delay(5_000),
                StreamItem::Msg(BasicMsg::new(1, vec![2u8; 8])),
            ]))],
        );
        let mut events = Vec::new();
        let mut env = Env {
            now: Time::ZERO,
            node: 0,
            last_load: 0,
            events: &mut events,
        };
        // First step: the only tenant is delayed, so the scheduler
        // sleeps (unattributed) to the ready point.
        let s = sched.step(&mut env);
        assert_eq!(s, Step::Compute(5_000));
        assert_eq!(sched.report()[0].active_ns, 0);
    }
}
