//! Multi-node workload generators and microbenchmark drivers.
//!
//! These functions build a machine, run a canonical traffic pattern and
//! return measurements. They back experiment tables T1 (message
//! microbenchmarks), T2 (shared-memory operation costs) and A3 (network
//! scaling), and double as heavyweight integration tests.

use crate::api::{BasicMsg, RecvBasic, RecvExpress, SendBasic, SendExpress};
use crate::app::{AppEventKind, Env, Program, Step, StoreData};
use crate::machine::{Machine, NodeLib};
use crate::metrics::MsgMicro;
use crate::params::SystemParams;
use crate::tenancy::{JobBody, StreamItem, TenancyParams, TenantClass, TenantScheduler};
use std::collections::VecDeque;
use sv_niu::msg::MsgHeader;
use sv_sim::stats::Log2Histogram;
use sv_sim::Time;

// =========================================================================
// Ping-pong programs
// =========================================================================

#[derive(Debug, Clone, Copy, PartialEq)]
enum PpState {
    Send,
    SendPayload,
    SendPtr,
    Poll,
    CheckPoll,
    ReadBody,
    Collect,
    ConsumePtr,
}

/// Basic-message ping-pong (8-byte payload). The initiator sends first;
/// each side alternates send/receive for `iters` rounds.
pub struct PingPongBasic {
    lib: NodeLib,
    peer: u16,
    iters: u32,
    round: u32,
    initiator: bool,
    state: PpState,
    producer: u16,
    consumer: u16,
    producer_seen: u16,
}

impl PingPongBasic {
    /// Build one side of the ping-pong.
    pub fn new(lib: &NodeLib, peer: u16, iters: u32, initiator: bool) -> Self {
        PingPongBasic {
            lib: *lib,
            peer,
            iters,
            round: 0,
            initiator,
            state: if initiator {
                PpState::Send
            } else {
                PpState::Poll
            },
            producer: 0,
            consumer: 0,
            producer_seen: 0,
        }
    }
}

impl Program for PingPongBasic {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            match self.state {
                PpState::Send => {
                    if self.round >= self.iters {
                        return Step::Done;
                    }
                    let dest = self.lib.user_dest(self.peer);
                    let hdr = MsgHeader::basic(dest, 8);
                    let slot = self.lib.basic_tx.slot_off(self.producer);
                    self.state = PpState::SendPayload;
                    return Step::Store {
                        addr: self.lib.asram(slot),
                        data: StoreData::Bytes(hdr.encode().to_vec()),
                    };
                }
                PpState::SendPayload => {
                    let slot = self.lib.basic_tx.slot_off(self.producer);
                    self.state = PpState::SendPtr;
                    return Step::Store {
                        addr: self.lib.asram(slot + 8),
                        data: StoreData::U64(self.round as u64),
                    };
                }
                PpState::SendPtr => {
                    self.producer = self.producer.wrapping_add(1);
                    let q = self.lib.basic_tx.q;
                    // Initiator now waits for the echo; responder is done
                    // with this round.
                    self.state = if self.initiator {
                        PpState::Poll
                    } else {
                        self.round += 1;
                        PpState::Poll
                    };
                    if !self.initiator && self.round >= self.iters {
                        // Final echo sent; finish after the pointer update.
                        self.state = PpState::Send; // will return Done next
                        self.round = self.iters;
                    }
                    return Step::Store {
                        addr: self.lib.map.ptr_update_addr(false, q, self.producer),
                        data: StoreData::U64(0),
                    };
                }
                PpState::Poll => {
                    if self.consumer != self.producer_seen {
                        self.state = PpState::ReadBody;
                        continue;
                    }
                    self.state = PpState::CheckPoll;
                    return Step::Load {
                        addr: self.lib.asram(self.lib.basic_rx.shadow_off),
                        bytes: 8,
                    };
                }
                PpState::CheckPoll => {
                    self.producer_seen = env.last_load as u16;
                    if self.consumer == self.producer_seen {
                        self.state = PpState::Poll;
                        return Step::Compute(30);
                    }
                    self.state = PpState::ReadBody;
                }
                PpState::ReadBody => {
                    let slot = self.lib.basic_rx.slot_off(self.consumer);
                    self.state = PpState::Collect;
                    return Step::Load {
                        addr: self.lib.asram(slot + 8),
                        bytes: 8,
                    };
                }
                PpState::Collect => {
                    self.state = PpState::ConsumePtr;
                }
                PpState::ConsumePtr => {
                    self.consumer = self.consumer.wrapping_add(1);
                    let q = self.lib.basic_rx.q;
                    if self.initiator {
                        self.round += 1;
                        self.state = PpState::Send;
                    } else {
                        self.state = PpState::Send;
                    }
                    return Step::Store {
                        addr: self.lib.map.ptr_update_addr(true, q, self.consumer),
                        data: StoreData::U64(0),
                    };
                }
            }
        }
    }
}

/// Express-message ping-pong: one store to send, polling loads to
/// receive.
pub struct PingPongExpress {
    lib: NodeLib,
    peer: u16,
    iters: u32,
    round: u32,
    initiator: bool,
    waiting: bool,
    primed: bool,
}

/// Most ping-pong rounds one [`PingPongExpress`] pair can run: the
/// Express store-address encoding carries an 8-bit tag and each round
/// stamps its (1-based, on the responder side) round number into it, so
/// past 255 the tags would silently alias — round 256 indistinguishable
/// from round 0 on the wire.
pub const MAX_EXPRESS_ROUNDS: u32 = 255;

impl PingPongExpress {
    /// Build one side. Panics when `iters` exceeds
    /// [`MAX_EXPRESS_ROUNDS`]: the 8-bit Express tag would alias past
    /// that, corrupting any analysis keyed on the tag (before this check
    /// the round number was truncated silently with `as u8`).
    pub fn new(lib: &NodeLib, peer: u16, iters: u32, initiator: bool) -> Self {
        assert!(
            iters <= MAX_EXPRESS_ROUNDS,
            "PingPongExpress supports at most {MAX_EXPRESS_ROUNDS} rounds \
             (got {iters}): the Express tag is 8 bits and round tags would alias"
        );
        PingPongExpress {
            lib: *lib,
            peer,
            iters,
            round: 0,
            initiator,
            waiting: !initiator,
            primed: false,
        }
    }
}

impl Program for PingPongExpress {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            if self.round >= self.iters {
                return Step::Done;
            }
            if self.waiting {
                if self.primed {
                    self.primed = false;
                    if sv_niu::msg::express::unpack_rx(env.last_load).is_none() {
                        return Step::Compute(30);
                    }
                    self.waiting = false;
                    if self.initiator {
                        self.round += 1;
                    }
                    continue;
                }
                self.primed = true;
                return Step::Load {
                    addr: self.lib.map.express_rx_addr(self.lib.express_rx_q),
                    bytes: 8,
                };
            }
            // Send.
            let dest = self.lib.express_dest(self.peer);
            self.waiting = true;
            if !self.initiator {
                self.round += 1;
            }
            // In range by construction: iters ≤ MAX_EXPRESS_ROUNDS, and
            // the responder's pre-increment tops out at `iters`.
            debug_assert!(self.round <= MAX_EXPRESS_ROUNDS);
            return Step::Store {
                addr: self
                    .lib
                    .map
                    .express_tx_addr(self.lib.express_tx_q, dest, self.round as u8),
                data: StoreData::Bytes({ self.round }.to_le_bytes().to_vec()),
            };
        }
    }
}

// =========================================================================
// Measurement drivers
// =========================================================================

fn program_done_time(m: &Machine, node: u16) -> Time {
    m.event_time(node, |k| matches!(k, AppEventKind::ProgramDone))
        .expect("program finished")
}

/// Basic-message ping-pong: returns `(one-way ns, round-trip ns)`.
pub fn basic_ping_pong(params: SystemParams, iters: u32) -> (u64, u64) {
    let mut m = Machine::builder(2).params(params).build();
    m.load_program(0, PingPongBasic::new(&m.lib(0), 1, iters, true));
    m.load_program(1, PingPongBasic::new(&m.lib(1), 0, iters, false));
    m.run_to_quiescence();
    let total = program_done_time(&m, 0).ns();
    let rtt = total / iters as u64;
    (rtt / 2, rtt)
}

/// Express-message ping-pong: returns `(one-way ns, round-trip ns)`.
pub fn express_ping_pong(params: SystemParams, iters: u32) -> (u64, u64) {
    let mut m = Machine::builder(2).params(params).build();
    m.load_program(0, PingPongExpress::new(&m.lib(0), 1, iters, true));
    m.load_program(1, PingPongExpress::new(&m.lib(1), 0, iters, false));
    m.run_to_quiescence();
    let total = program_done_time(&m, 0).ns();
    let rtt = total / iters as u64;
    (rtt / 2, rtt)
}

/// One-way Basic message stream (optionally with TagOn attachments).
pub fn basic_stream(
    params: SystemParams,
    msgs: u32,
    payload_len: usize,
    tagon_len: Option<usize>,
) -> MsgMicro {
    let mut m = Machine::builder(2).params(params).build();
    let lib0 = m.lib(0);
    let items: Vec<BasicMsg> = (0..msgs)
        .map(|i| {
            let mut msg = BasicMsg::new(lib0.user_dest(1), vec![(i & 0xFF) as u8; payload_len]);
            if let Some(t) = tagon_len {
                msg = msg.with_tagon(vec![0xA5u8; t]);
            }
            msg
        })
        .collect();
    let per_msg_bytes = (payload_len + tagon_len.unwrap_or(0)) as u32;
    m.load_program(0, SendBasic::new(&lib0, items));
    m.load_program(1, RecvBasic::expecting(&m.lib(1), msgs as usize));
    m.run_to_quiescence();
    let dur = program_done_time(&m, 1).ns().max(1);
    MsgMicro {
        mechanism: match tagon_len {
            Some(t) => format!("basic+tagon{t}"),
            None => format!("basic-{payload_len}B"),
        },
        one_way_ns: dur / msgs as u64,
        round_trip_ns: 0,
        msg_rate_per_s: msgs as f64 / (dur as f64 / 1e9),
        bandwidth_mb_s: sv_sim::stats::mb_per_s(per_msg_bytes as u64 * msgs as u64, dur),
        payload_bytes: per_msg_bytes,
    }
}

/// One-way Express message stream.
pub fn express_stream(params: SystemParams, msgs: u32) -> MsgMicro {
    let mut m = Machine::builder(2).params(params).build();
    let lib0 = m.lib(0);
    let items: Vec<(u16, u8, u32)> = (0..msgs)
        .map(|i| (lib0.express_dest(1), (i & 0xFF) as u8, i))
        .collect();
    m.load_program(0, SendExpress::new(&lib0, items));
    m.load_program(1, RecvExpress::expecting(&m.lib(1), msgs as usize));
    m.run_to_quiescence();
    let dur = program_done_time(&m, 1).ns().max(1);
    MsgMicro {
        mechanism: "express".into(),
        one_way_ns: dur / msgs as u64,
        round_trip_ns: 0,
        msg_rate_per_s: msgs as f64 / (dur as f64 / 1e9),
        bandwidth_mb_s: sv_sim::stats::mb_per_s(5 * msgs as u64, dur),
        payload_bytes: 5,
    }
}

/// All-to-all Basic traffic on an `n`-node machine; returns
/// `(completion ns, aggregate payload MB/s)`.
pub fn all_to_all(params: SystemParams, n: usize, per_pair: u32, payload_len: usize) -> (u64, f64) {
    let mut m = Machine::builder(n).params(params).build();
    for i in 0..n as u16 {
        let lib = m.lib(i);
        let mut items = Vec::new();
        for round in 0..per_pair {
            for d in 0..n as u16 {
                if d != i {
                    items.push(BasicMsg::new(
                        lib.user_dest(d),
                        vec![(round & 0xFF) as u8; payload_len],
                    ));
                }
            }
        }
        m.load_program(
            i,
            crate::app::Seq::new(vec![
                Box::new(SendBasic::new(&lib, items)),
                Box::new(RecvBasic::expecting(&lib, per_pair as usize * (n - 1))),
            ]),
        );
    }
    m.run_to_quiescence();
    let dur = (0..n as u16)
        .map(|i| program_done_time(&m, i).ns())
        .max()
        .expect("nodes")
        .max(1);
    let total_bytes = (n * (n - 1)) as u64 * per_pair as u64 * payload_len as u64;
    (dur, sv_sim::stats::mb_per_s(total_bytes, dur))
}

/// All-to-all transpose: staggered permutation traffic. In round `k`
/// (1 ≤ k < n) node `i` targets node `(i + k) % n`, so every round is a
/// perfect permutation — each node sends one stream and receives one
/// stream — instead of the synchronized everyone-hits-node-`d` sweep
/// hiding inside [`all_to_all`]'s destination order. The pattern loads
/// all fat-tree uplinks evenly and is the classic adversary for static
/// routing (paper §7 / EXPERIMENTS.md S9). Returns `(completion ns,
/// aggregate payload MB/s)`.
pub fn all_to_all_transpose(
    params: SystemParams,
    n: usize,
    per_pair: u32,
    payload_len: usize,
) -> (u64, f64) {
    let mut m = Machine::builder(n).params(params).build();
    for i in 0..n as u16 {
        let lib = m.lib(i);
        let mut items = Vec::new();
        for round in 0..per_pair {
            for k in 1..n as u16 {
                let d = (i + k) % n as u16;
                items.push(BasicMsg::new(
                    lib.user_dest(d),
                    vec![(round & 0xFF) as u8; payload_len],
                ));
            }
        }
        m.load_program(
            i,
            crate::app::Seq::new(vec![
                Box::new(SendBasic::new(&lib, items)),
                Box::new(RecvBasic::expecting(&lib, per_pair as usize * (n - 1))),
            ]),
        );
    }
    m.run_to_quiescence();
    let dur = (0..n as u16)
        .map(|i| program_done_time(&m, i).ns())
        .max()
        .expect("nodes")
        .max(1);
    let total_bytes = (n * (n - 1)) as u64 * per_pair as u64 * payload_len as u64;
    (dur, sv_sim::stats::mb_per_s(total_bytes, dur))
}

/// What one [`hot_spot`] run measured, read from the network's own
/// per-priority inject→deliver summaries (present whether or not QoS is
/// armed, so the no-VC baseline is directly comparable).
#[derive(Debug, Clone, Copy)]
pub struct HotSpotOutcome {
    /// Time until every node's program finished, ns.
    pub completion_ns: u64,
    /// High-class packets delivered.
    pub hi_count: u64,
    /// Largest High-class inject→deliver latency, ns — the tail metric
    /// EXPERIMENTS.md S9 gates on.
    pub hi_max_ns: u64,
    /// Mean High-class latency, ns.
    pub hi_mean_ns: f64,
    /// Largest Low-class latency, ns.
    pub lo_max_ns: u64,
    /// Mean Low-class latency, ns.
    pub lo_mean_ns: f64,
    /// Credit-stall episodes (zero when QoS is unarmed).
    pub credit_stalls: u64,
    /// Total credit-blocked time, ns (zero when QoS is unarmed).
    pub credit_stall_ns: u64,
}

/// Hot-spot (incast) driver: every node but 0 floods node 0 with
/// `per_sender` Low-class Basic messages, while the last node
/// interleaves `hi_probes` small High-class probes (via
/// [`NodeLib::user_dest_hi`]) into its own stream. The probes are the
/// latency-critical traffic whose tail the congested Low class
/// head-of-line-blocks — unless virtual channels isolate it
/// ([`crate::MachineBuilder::network_qos`], EXPERIMENTS.md S9).
pub fn hot_spot(
    params: SystemParams,
    n: usize,
    per_sender: u32,
    hi_probes: u32,
    payload_len: usize,
) -> HotSpotOutcome {
    let mut m = Machine::builder(n).params(params).build();
    load_hot_spot(&mut m, per_sender, hi_probes, payload_len);
    m.run_to_quiescence();
    let completion_ns = (0..n as u16)
        .map(|i| program_done_time(&m, i).ns())
        .max()
        .expect("nodes");
    let net = &m.network.stats;
    HotSpotOutcome {
        completion_ns,
        hi_count: net.latency_hi.count,
        hi_max_ns: net.latency_hi.max,
        hi_mean_ns: net.latency_hi.mean().unwrap_or(0.0),
        lo_max_ns: net.latency_lo.max,
        lo_mean_ns: net.latency_lo.mean().unwrap_or(0.0),
        credit_stalls: net.credit_stalls.get(),
        credit_stall_ns: net.credit_stall_ns,
    }
}

/// Load the [`hot_spot`] programs onto an already-built machine (the
/// bench smoke reuses this across run modes); returns the total message
/// count node 0 expects.
pub fn load_hot_spot(m: &mut Machine, per_sender: u32, hi_probes: u32, payload_len: usize) -> u32 {
    let n = m.nodes.len();
    assert!(n >= 2, "incast needs a victim and at least one sender");
    let total = (n as u32 - 1) * per_sender + hi_probes;
    for i in 1..n as u16 {
        let lib = m.lib(i);
        let mut items = Vec::new();
        // Spread the probes evenly through the last sender's stream so
        // they sample the congestion as it builds, not just its edges.
        let probing = i as usize == n - 1;
        let gap = (per_sender / hi_probes.max(1)).max(1);
        let mut sent_hi = 0;
        for j in 0..per_sender {
            items.push(BasicMsg::new(lib.user_dest(0), vec![0x4C; payload_len]));
            if probing && sent_hi < hi_probes && j % gap == gap - 1 {
                items.push(BasicMsg::new(lib.user_dest_hi(0), vec![0x48; 8]));
                sent_hi += 1;
            }
        }
        if probing {
            // Probes the even spread didn't place (hi_probes > per_sender).
            for _ in sent_hi..hi_probes {
                items.push(BasicMsg::new(lib.user_dest_hi(0), vec![0x48; 8]));
            }
        }
        m.load_program(i, SendBasic::new(&lib, items));
    }
    m.load_program(0, RecvBasic::expecting(&m.lib(0), total as usize));
    total
}

// =========================================================================
// Multi-tenant job mix (experiment S10)
// =========================================================================

/// One tenant's job for the S10 mix, by class convention
/// ([`TenancyParams::tenant_class`]):
///
/// - **Latency**: small paced probes — `Delay(2 µs)` then one 16-byte
///   message per round. The tail of this class is the study's headline
///   metric.
/// - **Bulk**: 88-byte messages back to back (one per round, no pacing).
/// - **Bursty**: idle 5 µs, then a burst of four 32-byte messages.
/// - **Misbehaving** (the confined tenant): raw in-slice destinations
///   through the masked tx queue 3, with one out-of-range destination in
///   the middle of the stream that trips a protection violation and
///   shuts the queue down. Capped below the 32-entry queue depth so the
///   shared mux never waits on a consumer that the shutdown froze.
fn tenant_job(
    tp: &TenancyParams,
    reg: &crate::tenancy::TenantRegistry,
    node: u16,
    t: u16,
    msgs: u32,
) -> JobBody {
    let n = reg.nodes as u32;
    // Destinations cycle over the other nodes, staggered by tenant so
    // the aggregate traffic is not an accidental permutation.
    let dest_of = |k: u32| ((node as u32 + 1 + (t as u32 + k) % (n - 1)) % n) as u16;
    let mut items = VecDeque::new();
    match tp.tenant_class(t) {
        TenantClass::Latency => {
            for k in 0..msgs {
                items.push_back(StreamItem::Delay(2_000));
                items.push_back(StreamItem::Msg(BasicMsg::new(
                    reg.tenant_dest(t, dest_of(k)),
                    vec![0x4C; 16],
                )));
            }
        }
        TenantClass::Bulk => {
            for k in 0..msgs {
                items.push_back(StreamItem::Msg(BasicMsg::new(
                    reg.tenant_dest(t, dest_of(k)),
                    vec![0x42; 88],
                )));
            }
        }
        TenantClass::Bursty => {
            let mut k = 0;
            while k < msgs {
                items.push_back(StreamItem::Delay(5_000));
                for _ in 0..(msgs - k).min(4) {
                    items.push_back(StreamItem::Msg(BasicMsg::new(
                        reg.tenant_dest(t, dest_of(k)),
                        vec![0x41; 32],
                    )));
                    k += 1;
                }
            }
        }
        TenantClass::Misbehaving => {
            let total = msgs.min(24);
            let bad_at = total / 2;
            for k in 0..total {
                // Raw destination: tx queue 3's AND/OR masks confine it
                // to this tenant's translation slice. `slice - 1` is
                // never installed (the slice holds `nodes` entries and
                // `slice > nodes`), so that message faults.
                let dest = if k == bad_at {
                    reg.slice - 1
                } else {
                    dest_of(k)
                };
                items.push_back(StreamItem::Msg(BasicMsg::new(dest, vec![0x4D; 8])));
            }
        }
    }
    JobBody::Stream(items)
}

/// Load the S10 tenant job mix onto an already-built machine: one
/// [`TenantScheduler`] per node multiplexing every tenant's job.
/// Requires tenancy to be armed ([`crate::MachineBuilder::tenants`]).
/// Returns the number of Basic messages scheduled machine-wide
/// (including each confined tenant's post-violation messages, which the
/// shutdown will strand in tx queue 3).
pub fn load_tenant_mix(m: &mut Machine, msgs_per_tenant: u32) -> u64 {
    let tp = m
        .tenancy()
        .expect("load_tenant_mix requires MachineBuilder::tenants");
    let reg = m.tenant_registry().expect("registry follows tenancy");
    let n = m.nodes.len() as u16;
    assert!(n >= 2, "the job mix needs a remote destination");
    let mut scheduled = 0u64;
    for i in 0..n {
        let jobs: Vec<JobBody> = (0..reg.count)
            .map(|t| tenant_job(&tp, &reg, i, t, msgs_per_tenant))
            .collect();
        scheduled += jobs
            .iter()
            .map(|j| match j {
                JobBody::Stream(items) => items
                    .iter()
                    .filter(|it| matches!(it, StreamItem::Msg(_)))
                    .count() as u64,
                JobBody::Child(_) => 0,
            })
            .sum::<u64>();
        let lib = m.lib(i);
        m.load_program(i, TenantScheduler::new(lib, &tp, jobs));
    }
    scheduled
}

/// What one [`tenant_mix`] run measured, aggregated machine-wide from
/// the per-tenant attribution (rx-queue-cache counters and
/// inject→deliver histograms in the NIU, scheduler occupancy in the
/// per-node reports).
#[derive(Debug, Clone, Copy)]
pub struct TenantMixOutcome {
    /// Time until every node's scheduler finished, ns.
    pub completion_ns: u64,
    /// Basic messages tenants completed through the shared tx muxes.
    pub sent_msgs: u64,
    /// Deliveries that found their logical rx queue bound to a hardware
    /// queue.
    pub rq_hits: u64,
    /// Deliveries whose logical queue was unbound (firmware path).
    pub rq_misses: u64,
    /// Messages diverted to the miss queue.
    pub diversions: u64,
    /// `rq_hits / (rq_hits + rq_misses)`, the S10 x-axis companion.
    pub hit_rate: f64,
    /// P99 inject→deliver latency over cache-hit deliveries, ns.
    pub hit_p99_ns: u64,
    /// P99 inject→deliver latency over cache-miss deliveries, ns.
    pub miss_p99_ns: u64,
    /// P99 over all tenant deliveries, ns — the S10 tail metric.
    pub p99_ns: u64,
    /// P99 over Latency-class tenants only, ns (the QoS-isolation
    /// subject).
    pub latency_class_p99_ns: u64,
    /// P99 over every other class, ns.
    pub other_class_p99_ns: u64,
    /// Protection violations the NIUs raised (the misbehaving tenants).
    pub tx_violations: u64,
    /// Hardware-slot rebinds the firmware performed servicing misses.
    pub rebinds: u64,
}

fn merge_hist(into: &mut Log2Histogram, h: &Log2Histogram) {
    for (a, b) in into.buckets.iter_mut().zip(&h.buckets) {
        *a += b;
    }
    into.summary.merge(&h.summary);
}

/// Aggregate a finished tenant-mix run. Split out of [`tenant_mix`] so
/// the bench harness and tests can re-measure the same machine after
/// driving it through different run modes.
pub fn measure_tenant_mix(m: &Machine) -> TenantMixOutcome {
    let tp = m.tenancy().expect("tenancy armed");
    let stats = m.stats();
    let completion_ns = (0..m.nodes.len() as u16)
        .map(|i| program_done_time(m, i).ns())
        .max()
        .expect("nodes");
    let (mut sent, mut hits, mut misses, mut div, mut viol, mut rebinds) = (0, 0, 0, 0, 0, 0);
    for node in &stats.nodes {
        viol += node.niu.violations;
        if let Some(tn) = &node.tenants {
            rebinds += tn.rebinds;
            for t in &tn.tenants {
                sent += t.sent_msgs;
                hits += t.rq_hits;
                misses += t.rq_misses;
                div += t.diversions;
            }
        }
    }
    // P99s come from merging the raw per-tenant histograms (bucket sums
    // are exact; per-tenant bucketed p99s would not compose).
    let mut hit_h = Log2Histogram::new();
    let mut miss_h = Log2Histogram::new();
    let mut all_h = Log2Histogram::new();
    let mut lat_h = Log2Histogram::new();
    let mut rest_h = Log2Histogram::new();
    for node in &m.nodes {
        if let Some(attr) = &node.niu.tenant {
            for t in 0..attr.count {
                let latency_class = tp.tenant_class(t) == TenantClass::Latency;
                for h in [
                    &attr.hit_latency[t as usize],
                    &attr.miss_latency[t as usize],
                ] {
                    merge_hist(&mut all_h, h);
                    merge_hist(
                        if latency_class {
                            &mut lat_h
                        } else {
                            &mut rest_h
                        },
                        h,
                    );
                }
                merge_hist(&mut hit_h, &attr.hit_latency[t as usize]);
                merge_hist(&mut miss_h, &attr.miss_latency[t as usize]);
            }
        }
    }
    let p99 = |h: &Log2Histogram| h.quantile(0.99).unwrap_or(0);
    TenantMixOutcome {
        completion_ns,
        sent_msgs: sent,
        rq_hits: hits,
        rq_misses: misses,
        diversions: div,
        hit_rate: if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        },
        hit_p99_ns: p99(&hit_h),
        miss_p99_ns: p99(&miss_h),
        p99_ns: p99(&all_h),
        latency_class_p99_ns: p99(&lat_h),
        other_class_p99_ns: p99(&rest_h),
        tx_violations: viol,
        rebinds,
    }
}

/// Build an `n`-node machine with `tenancy` armed, run the S10 job mix
/// to quiescence and aggregate the per-tenant attribution. The
/// EXPERIMENTS.md S10 sweep calls this with tenants/node from 4 to 256.
pub fn tenant_mix(
    params: SystemParams,
    n: usize,
    tenancy: TenancyParams,
    msgs_per_tenant: u32,
) -> TenantMixOutcome {
    let mut m = Machine::builder(n).params(params).tenants(tenancy).build();
    load_tenant_mix(&mut m, msgs_per_tenant);
    m.run_to_quiescence();
    measure_tenant_mix(&m)
}

// =========================================================================
// Shared-memory probes (experiment T2)
// =========================================================================

/// A single timed load or store, bracketed by markers.
pub struct Probe {
    addr: u64,
    write: bool,
    phase: u8,
}

impl Probe {
    /// A timed load of `addr`.
    pub fn load(addr: u64) -> Self {
        Probe {
            addr,
            write: false,
            phase: 0,
        }
    }

    /// A timed store to `addr`.
    pub fn store(addr: u64) -> Self {
        Probe {
            addr,
            write: true,
            phase: 0,
        }
    }
}

impl Program for Probe {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        match self.phase {
            0 => {
                self.phase = 1;
                env.emit(AppEventKind::Marker("probe-start"));
                if self.write {
                    Step::Store {
                        addr: self.addr,
                        data: StoreData::U64(0xD00D),
                    }
                } else {
                    Step::Load {
                        addr: self.addr,
                        bytes: 8,
                    }
                }
            }
            1 => {
                self.phase = 2;
                env.emit(AppEventKind::Marker("probe-end"));
                Step::Done
            }
            _ => Step::Done,
        }
    }
}

/// Latency of the `k`-th probe on node `i` (marker pair), ns.
pub fn probe_latency(m: &Machine, i: u16, k: usize) -> u64 {
    let starts: Vec<Time> = m
        .events(i)
        .iter()
        .filter(|e| e.kind == AppEventKind::Marker("probe-start"))
        .map(|e| e.at)
        .collect();
    let ends: Vec<Time> = m
        .events(i)
        .iter()
        .filter(|e| e.kind == AppEventKind::Marker("probe-end"))
        .map(|e| e.at)
        .collect();
    ends[k].since(starts[k])
}

/// NUMA load latency: `remote` selects a page homed on the other node.
pub fn numa_load_latency(params: SystemParams, remote: bool) -> u64 {
    let mut m = Machine::builder(2).params(params).build();
    let addr = params.map.numa_base + if remote { 0x1000 } else { 0 };
    m.load_program(0, Probe::load(addr));
    m.run_to_quiescence();
    probe_latency(&m, 0, 0)
}

/// NUMA store completion latency (posted; measures the bus handoff).
pub fn numa_store_latency(params: SystemParams, remote: bool) -> u64 {
    let mut m = Machine::builder(2).params(params).build();
    let addr = params.map.numa_base + if remote { 0x1000 } else { 0 };
    m.load_program(0, Probe::store(addr));
    m.run_to_quiescence();
    probe_latency(&m, 0, 0)
}

/// S-COMA latencies on a 2-node machine, for an address homed at node 1:
/// `(read miss 2-hop, read after grant with cold caches, write upgrade)`.
pub fn scoma_latencies(params: SystemParams) -> (u64, u64, u64) {
    let mut m = Machine::builder(2).params(params).build();
    let addr = params.map.scoma_base + 0x1000; // page 1 → home node 1
    m.nodes[1].mem.fill_pattern(addr, 32, 7);
    // Probe 1: read miss (2-hop protocol).
    m.load_program(0, Probe::load(addr));
    m.run_to_quiescence();
    let miss = probe_latency(&m, 0, 0);
    // Probe 2: read again with cold caches — clsSRAM hit, local DRAM.
    m.nodes[0].flush_caches();
    m.load_program(0, Probe::load(addr));
    m.run_to_quiescence();
    let hit = probe_latency(&m, 0, 1);
    // Probe 3: write (upgrade ReadOnly → ReadWrite).
    m.load_program(0, Probe::store(addr));
    m.run_to_quiescence();
    let upgrade = probe_latency(&m, 0, 2);
    (miss, hit, upgrade)
}

/// S-COMA 3-hop read: node 0 owns the line dirty, home is node 1, node 2
/// reads (recall path). Returns the reader's latency.
pub fn scoma_read_3hop(params: SystemParams) -> u64 {
    let mut m = Machine::builder(4).params(params).build();
    let addr = params.map.scoma_base + 0x1000; // home node 1
    m.nodes[1].mem.fill_pattern(addr, 32, 9);
    // Node 0 takes ownership by writing.
    m.load_program(0, Probe::store(addr));
    m.run_to_quiescence();
    // Node 2 reads: home must recall from node 0.
    m.load_program(2, Probe::load(addr));
    m.run_to_quiescence();
    probe_latency(&m, 2, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at most 255 rounds")]
    fn express_ping_pong_rejects_aliasing_round_counts() {
        // Regression: 256+ rounds used to truncate the round tag with
        // `as u8`, so round 256's Express tag collided with round 0's.
        let m = Machine::builder(2).build();
        let _ = PingPongExpress::new(&m.lib(0), 1, 256, true);
    }

    #[test]
    fn express_ping_pong_runs_at_the_tag_limit() {
        // The full 255-round budget works and every tag stays unique.
        let (ow, rtt) = express_ping_pong(SystemParams::default(), MAX_EXPRESS_ROUNDS);
        assert!(ow > 0 && rtt > ow);
    }

    #[test]
    fn transpose_moves_every_byte() {
        let (dur, bw) = all_to_all_transpose(SystemParams::default(), 4, 2, 64);
        assert!(dur > 0 && bw > 0.0);
    }

    #[test]
    fn hot_spot_counts_both_classes() {
        let out = hot_spot(SystemParams::default(), 4, 10, 4, 64);
        assert_eq!(out.hi_count, 4);
        assert!(out.hi_max_ns > 0);
        assert!(out.lo_max_ns > 0);
        // QoS unarmed: the credit machinery must stay silent.
        assert_eq!(out.credit_stalls, 0);
        assert_eq!(out.credit_stall_ns, 0);
    }

    #[test]
    fn tenant_mix_attributes_per_tenant() {
        let tp = TenancyParams {
            tenants_per_node: 4,
            confined: Some(3),
            ..TenancyParams::default()
        };
        let out = tenant_mix(SystemParams::default(), 4, tp, 8);
        assert!(out.sent_msgs > 0);
        assert!(out.rq_hits + out.rq_misses > 0);
        // Every logical queue starts unbound, so the cold first
        // delivery per tenant misses and the firmware rebinds a slot.
        assert!(out.rq_misses > 0);
        assert!(out.rebinds > 0);
        assert!(out.p99_ns > 0);
        // One confined tenant per node trips exactly one violation,
        // after which its queue is shut.
        assert_eq!(out.tx_violations, 4);
        assert!(out.hit_rate > 0.0 && out.hit_rate < 1.0);
    }

    #[test]
    fn hot_spot_with_qos_armed_reports_vc_stats() {
        let p = SystemParams {
            qos: Some(sv_arctic::QosParams {
                vcs: 2,
                credits_per_vc: 2,
                arbitration: sv_arctic::VcArbitration::Priority,
            }),
            ..Default::default()
        };
        let out = hot_spot(p, 4, 10, 4, 64);
        assert_eq!(out.hi_count, 4);
        assert!(out.hi_max_ns > 0);
    }
}
