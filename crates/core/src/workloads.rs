//! Multi-node workload generators and microbenchmark drivers.
//!
//! These functions build a machine, run a canonical traffic pattern and
//! return measurements. They back experiment tables T1 (message
//! microbenchmarks), T2 (shared-memory operation costs) and A3 (network
//! scaling), and double as heavyweight integration tests.

use crate::api::{BasicMsg, RecvBasic, RecvExpress, SendBasic, SendExpress};
use crate::app::{AppEventKind, Env, Program, Step, StoreData};
use crate::machine::{Machine, NodeLib};
use crate::metrics::MsgMicro;
use crate::params::SystemParams;
use sv_niu::msg::MsgHeader;
use sv_sim::Time;

// =========================================================================
// Ping-pong programs
// =========================================================================

#[derive(Debug, Clone, Copy, PartialEq)]
enum PpState {
    Send,
    SendPayload,
    SendPtr,
    Poll,
    CheckPoll,
    ReadBody,
    Collect,
    ConsumePtr,
}

/// Basic-message ping-pong (8-byte payload). The initiator sends first;
/// each side alternates send/receive for `iters` rounds.
pub struct PingPongBasic {
    lib: NodeLib,
    peer: u16,
    iters: u32,
    round: u32,
    initiator: bool,
    state: PpState,
    producer: u16,
    consumer: u16,
    producer_seen: u16,
}

impl PingPongBasic {
    /// Build one side of the ping-pong.
    pub fn new(lib: &NodeLib, peer: u16, iters: u32, initiator: bool) -> Self {
        PingPongBasic {
            lib: *lib,
            peer,
            iters,
            round: 0,
            initiator,
            state: if initiator {
                PpState::Send
            } else {
                PpState::Poll
            },
            producer: 0,
            consumer: 0,
            producer_seen: 0,
        }
    }
}

impl Program for PingPongBasic {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            match self.state {
                PpState::Send => {
                    if self.round >= self.iters {
                        return Step::Done;
                    }
                    let dest = self.lib.user_dest(self.peer);
                    let hdr = MsgHeader::basic(dest, 8);
                    let slot = self.lib.basic_tx.slot_off(self.producer);
                    self.state = PpState::SendPayload;
                    return Step::Store {
                        addr: self.lib.asram(slot),
                        data: StoreData::Bytes(hdr.encode().to_vec()),
                    };
                }
                PpState::SendPayload => {
                    let slot = self.lib.basic_tx.slot_off(self.producer);
                    self.state = PpState::SendPtr;
                    return Step::Store {
                        addr: self.lib.asram(slot + 8),
                        data: StoreData::U64(self.round as u64),
                    };
                }
                PpState::SendPtr => {
                    self.producer = self.producer.wrapping_add(1);
                    let q = self.lib.basic_tx.q;
                    // Initiator now waits for the echo; responder is done
                    // with this round.
                    self.state = if self.initiator {
                        PpState::Poll
                    } else {
                        self.round += 1;
                        PpState::Poll
                    };
                    if !self.initiator && self.round >= self.iters {
                        // Final echo sent; finish after the pointer update.
                        self.state = PpState::Send; // will return Done next
                        self.round = self.iters;
                    }
                    return Step::Store {
                        addr: self.lib.map.ptr_update_addr(false, q, self.producer),
                        data: StoreData::U64(0),
                    };
                }
                PpState::Poll => {
                    if self.consumer != self.producer_seen {
                        self.state = PpState::ReadBody;
                        continue;
                    }
                    self.state = PpState::CheckPoll;
                    return Step::Load {
                        addr: self.lib.asram(self.lib.basic_rx.shadow_off),
                        bytes: 8,
                    };
                }
                PpState::CheckPoll => {
                    self.producer_seen = env.last_load as u16;
                    if self.consumer == self.producer_seen {
                        self.state = PpState::Poll;
                        return Step::Compute(30);
                    }
                    self.state = PpState::ReadBody;
                }
                PpState::ReadBody => {
                    let slot = self.lib.basic_rx.slot_off(self.consumer);
                    self.state = PpState::Collect;
                    return Step::Load {
                        addr: self.lib.asram(slot + 8),
                        bytes: 8,
                    };
                }
                PpState::Collect => {
                    self.state = PpState::ConsumePtr;
                }
                PpState::ConsumePtr => {
                    self.consumer = self.consumer.wrapping_add(1);
                    let q = self.lib.basic_rx.q;
                    if self.initiator {
                        self.round += 1;
                        self.state = PpState::Send;
                    } else {
                        self.state = PpState::Send;
                    }
                    return Step::Store {
                        addr: self.lib.map.ptr_update_addr(true, q, self.consumer),
                        data: StoreData::U64(0),
                    };
                }
            }
        }
    }
}

/// Express-message ping-pong: one store to send, polling loads to
/// receive.
pub struct PingPongExpress {
    lib: NodeLib,
    peer: u16,
    iters: u32,
    round: u32,
    initiator: bool,
    waiting: bool,
    primed: bool,
}

impl PingPongExpress {
    /// Build one side.
    pub fn new(lib: &NodeLib, peer: u16, iters: u32, initiator: bool) -> Self {
        PingPongExpress {
            lib: *lib,
            peer,
            iters,
            round: 0,
            initiator,
            waiting: !initiator,
            primed: false,
        }
    }
}

impl Program for PingPongExpress {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        loop {
            if self.round >= self.iters {
                return Step::Done;
            }
            if self.waiting {
                if self.primed {
                    self.primed = false;
                    if sv_niu::msg::express::unpack_rx(env.last_load).is_none() {
                        return Step::Compute(30);
                    }
                    self.waiting = false;
                    if self.initiator {
                        self.round += 1;
                    }
                    continue;
                }
                self.primed = true;
                return Step::Load {
                    addr: self.lib.map.express_rx_addr(self.lib.express_rx_q),
                    bytes: 8,
                };
            }
            // Send.
            let dest = self.lib.express_dest(self.peer);
            self.waiting = true;
            if !self.initiator {
                self.round += 1;
            }
            return Step::Store {
                addr: self
                    .lib
                    .map
                    .express_tx_addr(self.lib.express_tx_q, dest, self.round as u8),
                data: StoreData::Bytes({ self.round }.to_le_bytes().to_vec()),
            };
        }
    }
}

// =========================================================================
// Measurement drivers
// =========================================================================

fn program_done_time(m: &Machine, node: u16) -> Time {
    m.event_time(node, |k| matches!(k, AppEventKind::ProgramDone))
        .expect("program finished")
}

/// Basic-message ping-pong: returns `(one-way ns, round-trip ns)`.
pub fn basic_ping_pong(params: SystemParams, iters: u32) -> (u64, u64) {
    let mut m = Machine::builder(2).params(params).build();
    m.load_program(0, PingPongBasic::new(&m.lib(0), 1, iters, true));
    m.load_program(1, PingPongBasic::new(&m.lib(1), 0, iters, false));
    m.run_to_quiescence();
    let total = program_done_time(&m, 0).ns();
    let rtt = total / iters as u64;
    (rtt / 2, rtt)
}

/// Express-message ping-pong: returns `(one-way ns, round-trip ns)`.
pub fn express_ping_pong(params: SystemParams, iters: u32) -> (u64, u64) {
    let mut m = Machine::builder(2).params(params).build();
    m.load_program(0, PingPongExpress::new(&m.lib(0), 1, iters, true));
    m.load_program(1, PingPongExpress::new(&m.lib(1), 0, iters, false));
    m.run_to_quiescence();
    let total = program_done_time(&m, 0).ns();
    let rtt = total / iters as u64;
    (rtt / 2, rtt)
}

/// One-way Basic message stream (optionally with TagOn attachments).
pub fn basic_stream(
    params: SystemParams,
    msgs: u32,
    payload_len: usize,
    tagon_len: Option<usize>,
) -> MsgMicro {
    let mut m = Machine::builder(2).params(params).build();
    let lib0 = m.lib(0);
    let items: Vec<BasicMsg> = (0..msgs)
        .map(|i| {
            let mut msg = BasicMsg::new(lib0.user_dest(1), vec![(i & 0xFF) as u8; payload_len]);
            if let Some(t) = tagon_len {
                msg = msg.with_tagon(vec![0xA5u8; t]);
            }
            msg
        })
        .collect();
    let per_msg_bytes = (payload_len + tagon_len.unwrap_or(0)) as u32;
    m.load_program(0, SendBasic::new(&lib0, items));
    m.load_program(1, RecvBasic::expecting(&m.lib(1), msgs as usize));
    m.run_to_quiescence();
    let dur = program_done_time(&m, 1).ns().max(1);
    MsgMicro {
        mechanism: match tagon_len {
            Some(t) => format!("basic+tagon{t}"),
            None => format!("basic-{payload_len}B"),
        },
        one_way_ns: dur / msgs as u64,
        round_trip_ns: 0,
        msg_rate_per_s: msgs as f64 / (dur as f64 / 1e9),
        bandwidth_mb_s: sv_sim::stats::mb_per_s(per_msg_bytes as u64 * msgs as u64, dur),
        payload_bytes: per_msg_bytes,
    }
}

/// One-way Express message stream.
pub fn express_stream(params: SystemParams, msgs: u32) -> MsgMicro {
    let mut m = Machine::builder(2).params(params).build();
    let lib0 = m.lib(0);
    let items: Vec<(u16, u8, u32)> = (0..msgs)
        .map(|i| (lib0.express_dest(1), (i & 0xFF) as u8, i))
        .collect();
    m.load_program(0, SendExpress::new(&lib0, items));
    m.load_program(1, RecvExpress::expecting(&m.lib(1), msgs as usize));
    m.run_to_quiescence();
    let dur = program_done_time(&m, 1).ns().max(1);
    MsgMicro {
        mechanism: "express".into(),
        one_way_ns: dur / msgs as u64,
        round_trip_ns: 0,
        msg_rate_per_s: msgs as f64 / (dur as f64 / 1e9),
        bandwidth_mb_s: sv_sim::stats::mb_per_s(5 * msgs as u64, dur),
        payload_bytes: 5,
    }
}

/// All-to-all Basic traffic on an `n`-node machine; returns
/// `(completion ns, aggregate payload MB/s)`.
pub fn all_to_all(params: SystemParams, n: usize, per_pair: u32, payload_len: usize) -> (u64, f64) {
    let mut m = Machine::builder(n).params(params).build();
    for i in 0..n as u16 {
        let lib = m.lib(i);
        let mut items = Vec::new();
        for round in 0..per_pair {
            for d in 0..n as u16 {
                if d != i {
                    items.push(BasicMsg::new(
                        lib.user_dest(d),
                        vec![(round & 0xFF) as u8; payload_len],
                    ));
                }
            }
        }
        m.load_program(
            i,
            crate::app::Seq::new(vec![
                Box::new(SendBasic::new(&lib, items)),
                Box::new(RecvBasic::expecting(&lib, per_pair as usize * (n - 1))),
            ]),
        );
    }
    m.run_to_quiescence();
    let dur = (0..n as u16)
        .map(|i| program_done_time(&m, i).ns())
        .max()
        .expect("nodes")
        .max(1);
    let total_bytes = (n * (n - 1)) as u64 * per_pair as u64 * payload_len as u64;
    (dur, sv_sim::stats::mb_per_s(total_bytes, dur))
}

// =========================================================================
// Shared-memory probes (experiment T2)
// =========================================================================

/// A single timed load or store, bracketed by markers.
pub struct Probe {
    addr: u64,
    write: bool,
    phase: u8,
}

impl Probe {
    /// A timed load of `addr`.
    pub fn load(addr: u64) -> Self {
        Probe {
            addr,
            write: false,
            phase: 0,
        }
    }

    /// A timed store to `addr`.
    pub fn store(addr: u64) -> Self {
        Probe {
            addr,
            write: true,
            phase: 0,
        }
    }
}

impl Program for Probe {
    fn step(&mut self, env: &mut Env<'_>) -> Step {
        match self.phase {
            0 => {
                self.phase = 1;
                env.emit(AppEventKind::Marker("probe-start"));
                if self.write {
                    Step::Store {
                        addr: self.addr,
                        data: StoreData::U64(0xD00D),
                    }
                } else {
                    Step::Load {
                        addr: self.addr,
                        bytes: 8,
                    }
                }
            }
            1 => {
                self.phase = 2;
                env.emit(AppEventKind::Marker("probe-end"));
                Step::Done
            }
            _ => Step::Done,
        }
    }
}

/// Latency of the `k`-th probe on node `i` (marker pair), ns.
pub fn probe_latency(m: &Machine, i: u16, k: usize) -> u64 {
    let starts: Vec<Time> = m
        .events(i)
        .iter()
        .filter(|e| e.kind == AppEventKind::Marker("probe-start"))
        .map(|e| e.at)
        .collect();
    let ends: Vec<Time> = m
        .events(i)
        .iter()
        .filter(|e| e.kind == AppEventKind::Marker("probe-end"))
        .map(|e| e.at)
        .collect();
    ends[k].since(starts[k])
}

/// NUMA load latency: `remote` selects a page homed on the other node.
pub fn numa_load_latency(params: SystemParams, remote: bool) -> u64 {
    let mut m = Machine::builder(2).params(params).build();
    let addr = params.map.numa_base + if remote { 0x1000 } else { 0 };
    m.load_program(0, Probe::load(addr));
    m.run_to_quiescence();
    probe_latency(&m, 0, 0)
}

/// NUMA store completion latency (posted; measures the bus handoff).
pub fn numa_store_latency(params: SystemParams, remote: bool) -> u64 {
    let mut m = Machine::builder(2).params(params).build();
    let addr = params.map.numa_base + if remote { 0x1000 } else { 0 };
    m.load_program(0, Probe::store(addr));
    m.run_to_quiescence();
    probe_latency(&m, 0, 0)
}

/// S-COMA latencies on a 2-node machine, for an address homed at node 1:
/// `(read miss 2-hop, read after grant with cold caches, write upgrade)`.
pub fn scoma_latencies(params: SystemParams) -> (u64, u64, u64) {
    let mut m = Machine::builder(2).params(params).build();
    let addr = params.map.scoma_base + 0x1000; // page 1 → home node 1
    m.nodes[1].mem.fill_pattern(addr, 32, 7);
    // Probe 1: read miss (2-hop protocol).
    m.load_program(0, Probe::load(addr));
    m.run_to_quiescence();
    let miss = probe_latency(&m, 0, 0);
    // Probe 2: read again with cold caches — clsSRAM hit, local DRAM.
    m.nodes[0].flush_caches();
    m.load_program(0, Probe::load(addr));
    m.run_to_quiescence();
    let hit = probe_latency(&m, 0, 1);
    // Probe 3: write (upgrade ReadOnly → ReadWrite).
    m.load_program(0, Probe::store(addr));
    m.run_to_quiescence();
    let upgrade = probe_latency(&m, 0, 2);
    (miss, hit, upgrade)
}

/// S-COMA 3-hop read: node 0 owns the line dirty, home is node 1, node 2
/// reads (recall path). Returns the reader's latency.
pub fn scoma_read_3hop(params: SystemParams) -> u64 {
    let mut m = Machine::builder(4).params(params).build();
    let addr = params.map.scoma_base + 0x1000; // home node 1
    m.nodes[1].mem.fill_pattern(addr, 32, 9);
    // Node 0 takes ownership by writing.
    m.load_program(0, Probe::store(addr));
    m.run_to_quiescence();
    // Node 2 reads: home must recall from node 0.
    m.load_program(2, Probe::load(addr));
    m.run_to_quiescence();
    probe_latency(&m, 2, 0)
}
