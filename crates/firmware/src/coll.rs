//! NIC-resident collectives: barrier, broadcast, reduce, all-reduce
//! sequenced entirely on the sP.
//!
//! The aP-driven collectives in `voyager::collectives` burn aP cycles
//! and bus crossings on every fan-in step; here the whole tree protocol
//! lives in firmware, the way Quadrics/Myrinet NIC-based collectives
//! ran theirs on the NIC processor. An aP's entire involvement is one
//! Basic message into its own service queue (COLL_START) and one
//! message out of its receive queue (COLL_RESULT); every intermediate
//! combine, fan-in wait and fan-out travels sP-to-sP as COLL_UP /
//! COLL_DOWN service messages — ordinary Basic traffic, so the
//! Go-Back-N reliable layer covers it under hostile fabrics.
//!
//! ## Tree shape
//!
//! The fan-in/fan-out tree is the Arctic fat tree's own 4-ary recursion
//! ([`sv_arctic::topology::RADIX`]): in rank space (rank = node rotated
//! by the root), rank `r` is a level-`k` leader iff `r % 4^k == 0`, and
//! its children are the other three level-`(k-1)` leaders of each
//! aligned 4-chunk it leads. With root 0 every child→parent hop stays
//! inside the smallest enclosing fat-tree subtree, so fan-in traffic
//! converges along the same subtrees the sharded run loop partitions
//! by. Depth is ⌈log₄ N⌉; a node combines at most `3·depth` fan-in
//! contributions.
//!
//! ## Sequencing
//!
//! Collectives carry a per-node sequence number assigned by the
//! firmware in COLL_START arrival order. Every participating aP issues
//! the same collectives in the same order (the usual MPI communicator
//! contract), so sequence numbers agree machine-wide and a fast
//! subtree's seq-`s+1` fan-in can overtake a slow sibling's seq-`s`
//! without confusion: group state is keyed by seq and created by
//! whichever message touches it first.

use crate::engine::{Firmware, Q_PROTO};
use crate::proto::{encode_coll_result, op, CollKind, CollMsg, CollOp, CollStart};
use bytes::Bytes;
use std::collections::BTreeMap;
use sv_arctic::topology::RADIX;
use sv_arctic::Priority;
use sv_niu::{LocalCmd, Niu};
use sv_sim::stats::Counter;

/// The widest child span of `rank`: the largest `4^k < size` such that
/// `rank` leads an aligned `4^(k+1)`-chunk, or `None` for a leaf.
fn top_span(r: usize, n: usize) -> Option<usize> {
    if n <= 1 || !r.is_multiple_of(RADIX) {
        return None;
    }
    let mut span = 1;
    while span * RADIX < n && r.is_multiple_of(span * RADIX * RADIX) {
        span *= RADIX;
    }
    Some(span)
}

/// Number of tree children of `rank` in a `size`-node collective.
pub fn n_children(rank: u16, size: u16) -> u16 {
    let (r, n) = (rank as usize, size as usize);
    let Some(mut span) = top_span(r, n) else {
        return 0;
    };
    let mut count = 0;
    loop {
        for j in 1..RADIX {
            if r + j * span < n {
                count += 1;
            }
        }
        if span == 1 {
            break;
        }
        span /= RADIX;
    }
    count as u16
}

/// The `idx`-th tree child of `rank`, or `None` past the end. The order
/// is deliberate: widest subtree first, so result fan-out reaches the
/// leaders with the most downstream work earliest and their subtrees'
/// distribution overlaps the remaining sends (latency pipelining; the
/// same order also retires the longest fan-in chains soonest).
pub fn child_at(rank: u16, size: u16, idx: u16) -> Option<u16> {
    let (r, n) = (rank as usize, size as usize);
    let mut span = top_span(r, n)?;
    let mut seen = 0;
    loop {
        for j in 1..RADIX {
            let c = r + j * span;
            if c < n {
                if seen == idx {
                    return Some(c as u16);
                }
                seen += 1;
            }
        }
        if span == 1 {
            break;
        }
        span /= RADIX;
    }
    None
}

/// The tree parent of nonzero `rank`: its leading multiple of the next
/// 4-power up.
pub fn parent_rank(rank: u16) -> u16 {
    debug_assert_ne!(rank, 0, "rank 0 is the tree root");
    let r = rank as usize;
    let mut span = 1;
    while r.is_multiple_of(span * RADIX) {
        span *= RADIX;
    }
    (r - r % (span * RADIX)) as u16
}

/// Placeholder root for group state created by a tree message before the
/// local COLL_START named the real one. Tree messages carry no root (14
/// bytes on the wire matters on the serialization-bound critical path);
/// contributions fold fine without it, and no tree *geometry* decision is
/// needed until the local start arrives.
pub const UNKNOWN_ROOT: u16 = u16::MAX;

/// One in-flight collective's group state on one node. All of it lives
/// on the sP; the aP never touches intermediate values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollState {
    /// Which collective.
    pub kind: CollKind,
    /// Reduction operator.
    pub op: CollOp,
    /// Root node, or [`UNKNOWN_ROOT`] until the local COLL_START.
    pub root: u16,
    /// Partial reduction over the local value and received children.
    pub acc: u64,
    /// Children contributions folded so far.
    pub kids_got: u16,
    /// The local aP has issued its COLL_START.
    pub local_in: bool,
    /// Logical queue for the COLL_RESULT (valid once `local_in`).
    pub notify_lq: u16,
    /// Fan-in contribution has been sent to the parent.
    pub up_sent: bool,
    /// Final result, once known at this node.
    pub down: Option<u64>,
    /// Next child index for result fan-out.
    pub fanout_next: u16,
    /// COLL_RESULT has been sent to the local aP.
    pub delivered: bool,
}

impl CollState {
    fn new(kind: CollKind, op: CollOp, root: u16) -> Self {
        CollState {
            kind,
            op,
            root,
            acc: op.identity(),
            kids_got: 0,
            local_in: false,
            notify_lq: 0,
            up_sent: false,
            down: None,
            fanout_next: 0,
            delivered: false,
        }
    }

    /// This node's rank in the root-rotated tree.
    fn rank(&self, node: u16, nodes: u16) -> u16 {
        (node + nodes - self.root % nodes) % nodes
    }

    /// Whether every expected contribution (local + children) is in.
    fn fanin_done(&self, rank: u16, nodes: u16) -> bool {
        match self.kind {
            CollKind::Bcast => true,
            _ => self.local_in && self.kids_got >= n_children(rank, nodes),
        }
    }

    /// Whether this node distributes the result to tree children.
    fn fans_out(&self) -> bool {
        !matches!(self.kind, CollKind::Reduce)
    }

    /// What the stepper could do right now, if anything.
    fn action(&self, node: u16, nodes: u16) -> Option<Action> {
        if self.root == UNKNOWN_ROOT {
            // Only tree messages have touched this collective so far; no
            // send or delivery is decidable until the local COLL_START
            // supplies the tree geometry.
            return None;
        }
        let rank = self.rank(node, nodes);
        if self.kind != CollKind::Bcast && rank != 0 && !self.up_sent {
            if self.fanin_done(rank, nodes) {
                return Some(Action::SendUp);
            }
        } else if self.kind != CollKind::Bcast
            && rank == 0
            && self.down.is_none()
            && self.fanin_done(rank, nodes)
        {
            return Some(Action::Complete);
        }
        if let Some(v) = self.down {
            if self.fans_out() && child_at(rank, nodes, self.fanout_next).is_some() {
                return Some(Action::FanOut(v));
            }
            if self.local_in && !self.delivered {
                return Some(Action::Deliver(v));
            }
        }
        None
    }

    /// Whether nothing more can ever happen to this state.
    fn terminal(&self, node: u16, nodes: u16) -> bool {
        let rank = self.rank(node, nodes);
        let fanout_done = !self.fans_out()
            || self.down.is_none()
            || child_at(rank, nodes, self.fanout_next).is_none();
        let up_done = rank == 0 || self.kind == CollKind::Bcast || self.up_sent;
        self.delivered && fanout_done && up_done && self.fanin_done(rank, nodes)
    }
}

/// The stepper's next move for one collective.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Fan-in complete at a non-root: push the partial up the tree.
    SendUp,
    /// Fan-in complete at the root: the accumulator is the result.
    Complete,
    /// Result known: send it to the next tree child.
    FanOut(u64),
    /// Result known and the local aP is waiting: deliver COLL_RESULT.
    Deliver(u64),
}

/// Collective service state + statistics.
#[derive(Debug, Default)]
pub struct CollService {
    /// Sequence number the next local COLL_START receives.
    pub next_seq: u32,
    /// In-flight collectives keyed by sequence number.
    pub states: BTreeMap<u32, CollState>,
    /// COLL_STARTs accepted from the local aP.
    pub started: Counter,
    /// Results delivered to the local aP.
    pub completed: Counter,
    /// Fan-in (COLL_UP) messages sent.
    pub ups_sent: Counter,
    /// Fan-out (COLL_DOWN) messages sent.
    pub downs_sent: Counter,
    /// Contributions that arrived while the fan-in was still incomplete
    /// (the wait depth the sP absorbed so the aPs did not have to).
    pub fanin_stalls: Counter,
    /// sP busy time attributed to collective handlers, ns.
    pub busy_ns: u64,
}

impl CollService {
    /// Whether any collective is still in flight on this node.
    pub fn has_pending(&self) -> bool {
        !self.states.is_empty()
    }

    /// Whether the stepper has something to do *now* (as opposed to
    /// waiting on future service-queue messages, which wake the
    /// firmware by themselves).
    pub fn has_actionable(&self, node: u16, nodes: u16) -> bool {
        self.states
            .values()
            .any(|st| st.action(node, nodes).is_some())
    }
}

impl Firmware {
    /// Charge a collective handler: ordinary sP occupancy, plus the
    /// attribution counter the S8 experiment reads.
    fn charge_coll(&mut self, cycle: u64, base: u64) {
        self.charge(cycle, base);
        self.coll.busy_ns += self.params.cost(base) * 15;
    }

    /// The local aP joined a collective (opcode COLL_START).
    pub(crate) fn coll_on_start(&mut self, cycle: u64, data: &Bytes, _niu: &mut Niu) {
        let Some(s) = CollStart::decode(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        if s.root >= self.cfg.nodes {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        }
        let seq = self.coll.next_seq;
        self.coll.next_seq = self.coll.next_seq.wrapping_add(1);
        let (node, nodes) = (self.cfg.node, self.cfg.nodes);
        let st = self
            .coll
            .states
            .entry(seq)
            .or_insert_with(|| CollState::new(s.kind, s.op, s.root));
        if st.kind != s.kind || st.op != s.op || st.local_in {
            // A child's earlier fan-in described a different collective
            // for this slot (or the aP started the same seq twice): the
            // group is inconsistent; refuse rather than corrupt it.
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        }
        // Tree messages carry no root; the local start supplies it. Any
        // contributions folded before now must fit this rank's child
        // count, or the slot saw traffic for some other group.
        st.root = s.root;
        let rank = st.rank(node, nodes);
        if st.kids_got > n_children(rank, nodes) {
            st.root = UNKNOWN_ROOT;
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        }
        self.coll.started.bump();
        st.local_in = true;
        st.notify_lq = s.notify_lq;
        match s.kind {
            CollKind::Bcast => {
                if rank == 0 {
                    st.down = Some(s.value);
                }
            }
            _ => {
                st.acc = st.op.apply(st.acc, s.value);
                if !st.fanin_done(rank, nodes) {
                    self.coll.fanin_stalls.bump();
                }
            }
        }
        self.charge_coll(cycle, self.params.coll_start_cycles);
    }

    /// A child's fan-in contribution arrived (opcode COLL_UP).
    pub(crate) fn coll_on_up(&mut self, cycle: u64, data: &Bytes, _niu: &mut Niu) {
        let Some(m) = CollMsg::decode(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        if m.opcode != op::COLL_UP || m.kind == CollKind::Bcast {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        }
        let (node, nodes) = (self.cfg.node, self.cfg.nodes);
        let st = self
            .coll
            .states
            .entry(m.seq)
            .or_insert_with(|| CollState::new(m.kind, m.op, UNKNOWN_ROOT));
        if st.kind != m.kind || st.op != m.op {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        }
        if st.root != UNKNOWN_ROOT {
            let rank = st.rank(node, nodes);
            if st.kids_got >= n_children(rank, nodes) {
                // More contributions than this rank has children: stale
                // or forged traffic for a finished fan-in.
                self.stats.proto_errors.bump();
                self.charge(cycle, self.params.dispatch_cycles);
                return;
            }
            st.kids_got += 1;
            st.acc = st.op.apply(st.acc, m.value);
            if !st.fanin_done(rank, nodes) {
                self.coll.fanin_stalls.bump();
            }
        } else {
            // No local start yet, so no child count to check against; the
            // bound is enforced when COLL_START supplies the geometry.
            st.kids_got = st.kids_got.saturating_add(1);
            st.acc = st.op.apply(st.acc, m.value);
            self.coll.fanin_stalls.bump();
        }
        self.charge_coll(cycle, self.params.coll_combine_cycles);
    }

    /// The parent's fan-out result arrived (opcode COLL_DOWN).
    pub(crate) fn coll_on_down(&mut self, cycle: u64, data: &Bytes, _niu: &mut Niu) {
        let Some(m) = CollMsg::decode(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        if m.opcode != op::COLL_DOWN || m.kind == CollKind::Reduce {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        }
        let st = self
            .coll
            .states
            .entry(m.seq)
            .or_insert_with(|| CollState::new(m.kind, m.op, UNKNOWN_ROOT));
        if st.kind != m.kind || st.op != m.op || st.down.is_some() {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        }
        st.down = Some(m.value);
        self.charge_coll(cycle, self.params.coll_combine_cycles);
    }

    /// Step the collective engine: one tree message or one delivery per
    /// engagement, lowest sequence number first. Returns whether work
    /// was done.
    pub(crate) fn step_coll(&mut self, cycle: u64, niu: &mut Niu) -> bool {
        if self.coll.states.is_empty() {
            return false;
        }
        if niu.sp().cmd_depth(Q_PROTO) > 40 {
            return false;
        }
        let (node, nodes) = (self.cfg.node, self.cfg.nodes);
        let svc_lq = self.cfg.svc_lq;
        let Some((&seq, _)) = self
            .coll
            .states
            .iter()
            .find(|(_, st)| st.action(node, nodes).is_some())
        else {
            return false;
        };
        let st = self.coll.states.get_mut(&seq).expect("state just found");
        let rank = st.rank(node, nodes);
        match st.action(node, nodes).expect("action just found") {
            Action::SendUp => {
                st.up_sent = true;
                let msg = CollMsg {
                    opcode: op::COLL_UP,
                    kind: st.kind,
                    op: st.op,
                    seq,
                    value: st.acc,
                };
                // A non-root Reduce participant is finished once its
                // subtree's partial is on the wire: complete it with a
                // zero value (only the root sees the reduction).
                if st.kind == CollKind::Reduce {
                    st.down = Some(0);
                }
                let parent = (parent_rank(rank) + st.root) % nodes;
                self.coll.ups_sent.bump();
                niu.sp().push_cmd(
                    Q_PROTO,
                    LocalCmd::SendDirect {
                        node: parent,
                        logical_q: svc_lq,
                        priority: Priority::High,
                        data: msg.encode(),
                        tagon: None,
                    },
                );
                self.charge_coll(cycle, self.params.coll_send_cycles);
            }
            Action::Complete => {
                // Root fan-in done: the accumulator is the result. For
                // a Reduce the root is also the only consumer.
                st.down = Some(st.acc);
                self.charge_coll(cycle, self.params.coll_combine_cycles);
            }
            Action::FanOut(v) => {
                let child = child_at(rank, nodes, st.fanout_next).expect("action said fan out");
                st.fanout_next += 1;
                let msg = CollMsg {
                    opcode: op::COLL_DOWN,
                    kind: st.kind,
                    op: st.op,
                    seq,
                    value: v,
                };
                let dst = (child + st.root) % nodes;
                self.coll.downs_sent.bump();
                niu.sp().push_cmd(
                    Q_PROTO,
                    LocalCmd::SendDirect {
                        node: dst,
                        logical_q: svc_lq,
                        priority: Priority::High,
                        data: msg.encode(),
                        tagon: None,
                    },
                );
                self.charge_coll(cycle, self.params.coll_send_cycles);
            }
            Action::Deliver(v) => {
                st.delivered = true;
                let (kind, lq) = (st.kind, st.notify_lq);
                self.coll.completed.bump();
                niu.sp().push_cmd(
                    Q_PROTO,
                    LocalCmd::SendDirect {
                        node,
                        logical_q: lq,
                        priority: Priority::Low,
                        data: encode_coll_result(kind, seq, v),
                        tagon: None,
                    },
                );
                self.charge_coll(cycle, self.params.coll_deliver_cycles);
            }
        }
        // Retire the state once nothing more can touch it; every tree
        // message it was owed has been consumed, so the seq can never
        // be resurrected by in-order traffic.
        if self.coll.states[&seq].terminal(node, nodes) {
            self.coll.states.remove(&seq);
        }
        true
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for CollState {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(self.kind as u8);
        w.u8(self.op as u8);
        w.u16(self.root);
        w.u64(self.acc);
        w.u16(self.kids_got);
        w.save(&self.local_in);
        w.u16(self.notify_lq);
        w.save(&self.up_sent);
        w.save(&self.down);
        w.u16(self.fanout_next);
        w.save(&self.delivered);
    }
}
impl StateLoad for CollState {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let kind = CollKind::from_u8(r.u8()?).ok_or(SnapshotError::Corrupt { offset: at })?;
        let op = CollOp::from_u8(r.u8()?).ok_or(SnapshotError::Corrupt { offset: at })?;
        Ok(CollState {
            kind,
            op,
            root: r.u16()?,
            acc: r.u64()?,
            kids_got: r.u16()?,
            local_in: r.load()?,
            notify_lq: r.u16()?,
            up_sent: r.load()?,
            down: r.load()?,
            fanout_next: r.u16()?,
            delivered: r.load()?,
        })
    }
}

impl StateSave for CollService {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.next_seq);
        w.save(&self.states);
        w.save(&self.started);
        w.save(&self.completed);
        w.save(&self.ups_sent);
        w.save(&self.downs_sent);
        w.save(&self.fanin_stalls);
        w.u64(self.busy_ns);
    }
}
impl StateLoad for CollService {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CollService {
            next_seq: r.u32()?,
            states: r.load()?,
            started: r.load()?,
            completed: r.load()?,
            ups_sent: r.load()?,
            downs_sent: r.load()?,
            fanin_stalls: r.load()?,
            busy_ns: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference child list, for checking the allocation-free walkers.
    fn children(rank: u16, size: u16) -> Vec<u16> {
        (0..).map_while(|i| child_at(rank, size, i)).collect()
    }

    #[test]
    fn tree_is_subtree_aligned() {
        // 16 nodes: rank 0 leads the whole tree, ranks 4/8/12 lead the
        // aligned 4-chunks, everyone else is a leaf. Enumeration is
        // widest-subtree-first (see `child_at`).
        assert_eq!(children(0, 16), vec![4, 8, 12, 1, 2, 3]);
        assert_eq!(children(4, 16), vec![5, 6, 7]);
        assert_eq!(children(12, 16), vec![13, 14, 15]);
        assert_eq!(children(5, 16), Vec::<u16>::new());
        assert_eq!(parent_rank(5), 4);
        assert_eq!(parent_rank(12), 0);
        assert_eq!(parent_rank(20), 16);
        // 64 nodes: the root leads at every level; chunk leaders first.
        assert_eq!(children(0, 64), vec![16, 32, 48, 4, 8, 12, 1, 2, 3]);
        assert_eq!(children(48, 64), vec![52, 56, 60, 49, 50, 51]);
        // Non-4-power sizes truncate cleanly.
        assert_eq!(children(0, 5), vec![4, 1, 2, 3]);
        assert_eq!(children(4, 5), Vec::<u16>::new());
    }

    #[test]
    fn every_rank_reaches_the_root() {
        for size in [1u16, 2, 3, 4, 5, 16, 17, 64, 200, 256] {
            for rank in 1..size {
                let mut r = rank;
                let mut hops = 0;
                while r != 0 {
                    let p = parent_rank(r);
                    assert!(p < r, "parents descend toward 0");
                    // The child must appear in its parent's child list.
                    assert!(
                        children(p, size).contains(&r),
                        "rank {r} missing from parent {p} (size {size})"
                    );
                    r = p;
                    hops += 1;
                    assert!(hops <= 8, "tree depth bounded by log4");
                }
            }
        }
    }

    #[test]
    fn child_counts_match_child_walks() {
        for size in [1u16, 4, 6, 16, 64, 100, 256] {
            let mut total = 0usize;
            for rank in 0..size {
                let kids = children(rank, size);
                assert_eq!(kids.len(), n_children(rank, size) as usize);
                total += kids.len();
            }
            // Every rank but 0 is someone's child exactly once.
            assert_eq!(total, size as usize - 1, "size {size}");
        }
    }
}
