//! The firmware dispatch engine.
//!
//! The sP runs a classic poll loop: check the aBIU→sBIU request queue,
//! then the service receive queue, then the miss queue, then step any
//! active transfer state machines — handling **one work item per
//! engagement** and charging its cost to the occupancy model. While a
//! handler's cost has not elapsed, the sP does nothing else; that
//! occupancy is precisely what distinguishes transfer approaches 2 and 3
//! in the paper's evaluation.

use crate::params::FwParams;
use crate::proto::op;
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use sv_niu::abiu::SpRequest;
use sv_niu::{LocalCmd, Niu, NiuInterrupt, QueueId};
use sv_sim::stats::{Counter, Occupancy};

/// Command queue the firmware uses for ordered service-queue work
/// (writes + consumer updates).
pub const Q_SVC: usize = 0;
/// Command queue used for protocol work (NUMA/S-COMA staging and sends).
pub const Q_PROTO: usize = 1;

/// sSRAM staging offsets (firmware scratch).
pub mod staging {
    /// NUMA read-reply composition (meta + data).
    pub const NUMA_READ: u32 = 0x1000;
    /// NUMA write landing.
    pub const NUMA_WRITE: u32 = 0x1040;
    /// S-COMA recall/writeback composition.
    pub const SCOMA_RECALL: u32 = 0x1080;
    /// S-COMA home writeback landing + grant source.
    pub const SCOMA_WB: u32 = 0x10C0;
    /// S-COMA home grant staging (clean grants).
    pub const SCOMA_GRANT: u32 = 0x1100;
}

/// aSRAM staging offsets (within `[96 KiB, 128 KiB)`, see `Ctrl::new`).
pub mod asram_staging {
    /// Approach-2 sender staging, one slot per command queue.
    pub const A2: [u32; 2] = [0x18000, 0x18800];
    /// Block-operation staging (approaches 3-5), one page.
    pub const BLOCK: u32 = 0x1A000;
}

/// Static firmware configuration (conventions shared by all nodes).
#[derive(Debug, Clone, Copy)]
pub struct FwConfig {
    /// This node's id.
    pub node: u16,
    /// Total nodes in the machine.
    pub nodes: u16,
    /// Hardware rx queue bound as the sP service queue.
    pub svc_q: QueueId,
    /// Logical queue number of every node's sP service queue.
    pub svc_lq: u16,
    /// Page size used for block-operation chunking and home interleave.
    pub page: u32,
}

impl FwConfig {
    /// Default conventions: service queue = hardware slot 0 = logical 0.
    pub fn new(node: u16, nodes: u16) -> Self {
        FwConfig {
            node,
            nodes,
            svc_q: QueueId(0),
            svc_lq: 0,
            page: 4096,
        }
    }

    /// Home node of a NUMA address (page-interleaved).
    pub fn numa_home(&self, addr: u64) -> u16 {
        ((addr >> 12) % self.nodes as u64) as u16
    }

    /// Home node of an S-COMA line (page-interleaved over the region).
    pub fn scoma_home(&self, line: u64) -> u16 {
        (((line * sv_membus::CACHE_LINE) >> 12) % self.nodes as u64) as u16
    }
}

/// Aggregate firmware statistics.
#[derive(Debug, Default)]
pub struct FwStats {
    /// Work items handled.
    pub handled: Counter,
    /// Svc msgs.
    pub svc_msgs: Counter,
    /// Miss msgs.
    pub miss_msgs: Counter,
    /// Violations seen.
    pub violations_seen: Counter,
    /// Malformed, stale, or otherwise protocol-inconsistent messages the
    /// firmware discarded instead of acting on (truncated payloads,
    /// unknown opcodes, state transitions for lines/transfers it does not
    /// know). A hardened firmware counts these and keeps running; it
    /// never panics on traffic it did not expect.
    pub proto_errors: Counter,
}

/// Per-tenant firmware state: the sP half of the tenancy subsystem. The
/// machine reserves a band of hardware rx slots for tenant traffic; the
/// firmware manages which tenant logical queues are resident in them
/// (LRU refill on every miss-queue service, the software-managed-TLB
/// discipline the paper's rx-queue cache implies) and drains arrivals
/// from resident slots into the software receive queues, so tenants are
/// *served* by the node rather than each polling an aP-mapped queue.
#[derive(Debug, Clone)]
pub struct FwTenant {
    /// First tenant logical rx queue (tenant `t` owns `lq_base + t`).
    pub lq_base: u16,
    /// Tenants on this node.
    pub count: u16,
    /// First hardware rx slot managed for tenant caching.
    pub slot_lo: u8,
    /// Last (inclusive) managed hardware rx slot.
    pub slot_hi: u8,
    /// Logical queue resident per managed slot; `u16::MAX` = unbound.
    pub slot_lq: Vec<u16>,
    /// LRU stamp per managed slot.
    pub slot_tick: Vec<u64>,
    /// Monotonic use counter feeding the LRU stamps.
    pub tick: u64,
    /// Round-robin cursor for draining resident slots.
    pub drain_rr: u8,
    /// Rebinds performed (queue-cache management work).
    pub rebinds: Counter,
    /// Messages drained from resident hardware slots, per tenant.
    pub drained: Vec<Counter>,
    /// Messages serviced via the miss queue, per tenant.
    pub miss_served: Vec<Counter>,
    /// Per-tenant residency pin: once bound, a pinned tenant's slot is
    /// exempt from LRU eviction (unless every slot is pinned). This is
    /// the QoS half of the queue cache — Latency-class tenants keep
    /// hardware delivery even when the namespace thrashes the pool.
    pub pinned: Vec<bool>,
}

impl FwTenant {
    /// Fresh tenant state managing hardware slots `slot_lo..=slot_hi`;
    /// `pinned[t]` marks tenant `t`'s queue eviction-exempt.
    pub fn new(lq_base: u16, count: u16, slot_lo: u8, slot_hi: u8, pinned: Vec<bool>) -> Self {
        let n = (slot_hi - slot_lo + 1) as usize;
        assert_eq!(pinned.len(), count as usize, "one pin flag per tenant");
        FwTenant {
            lq_base,
            count,
            slot_lo,
            slot_hi,
            slot_lq: vec![u16::MAX; n],
            slot_tick: vec![0; n],
            tick: 0,
            drain_rr: 0,
            rebinds: Counter::default(),
            drained: vec![Counter::default(); count as usize],
            miss_served: vec![Counter::default(); count as usize],
            pinned,
        }
    }

    /// Whether managed slot `i` currently holds a pinned tenant's queue.
    #[inline]
    fn slot_pinned(&self, i: usize) -> bool {
        self.tenant_of(self.slot_lq[i])
            .is_some_and(|t| self.pinned[t])
    }

    /// Which tenant owns logical queue `lq`, if any.
    #[inline]
    pub fn tenant_of(&self, lq: u16) -> Option<usize> {
        let t = lq.checked_sub(self.lq_base)?;
        (t < self.count).then_some(t as usize)
    }
}

/// One node's firmware.
#[derive(Debug)]
pub struct Firmware {
    /// Node configuration.
    pub cfg: FwConfig,
    /// Timing/geometry parameters.
    pub params: FwParams,
    busy_until: u64,
    /// Accumulated busy time.
    pub occupancy: Occupancy,
    /// Running statistics.
    pub stats: FwStats,
    /// Our cursor into the service queue (the CTRL consumer pointer is
    /// advanced by in-order RxPtrUpdate commands so slots are not
    /// recycled under pending bus writes).
    svc_ptr: u16,
    /// Block-transfer service state.
    pub xfer: crate::xfer::XferService,
    /// NUMA protocol state and statistics.
    pub numa: crate::numa::NumaService,
    /// S-COMA directory and statistics.
    pub scoma: crate::scoma::ScomaService,
    /// Software (DRAM-resident) receive queues fed by the miss queue.
    pub sw_rx: HashMap<u16, VecDeque<(u16, Bytes)>>,
    /// NIC-resident collective state and statistics.
    pub coll: crate::coll::CollService,
    /// Tenancy state; `None` unless the machine armed tenants at build.
    pub tenant: Option<FwTenant>,
}

impl Firmware {
    /// Firmware for one node.
    pub fn new(cfg: FwConfig, params: FwParams) -> Self {
        Firmware {
            cfg,
            params,
            busy_until: 0,
            occupancy: Occupancy::default(),
            stats: FwStats::default(),
            svc_ptr: 0,
            xfer: Default::default(),
            numa: Default::default(),
            scoma: Default::default(),
            sw_rx: HashMap::new(),
            coll: Default::default(),
            tenant: None,
        }
    }

    /// Arm tenancy: manage hardware rx slots `slot_lo..=slot_hi` as an
    /// LRU cache over the `count` tenant logical queues at `lq_base`,
    /// with `pinned[t]` exempting tenant `t` from eviction once bound.
    /// Called once at machine build time.
    pub fn arm_tenancy(
        &mut self,
        lq_base: u16,
        count: u16,
        slot_lo: u8,
        slot_hi: u8,
        pinned: Vec<bool>,
    ) {
        self.tenant = Some(FwTenant::new(lq_base, count, slot_lo, slot_hi, pinned));
    }

    /// Charge `base` cycles (after ablation scaling) of sP occupancy
    /// starting at `cycle`.
    pub(crate) fn charge(&mut self, cycle: u64, base: u64) {
        let c = self.params.cost(base);
        self.busy_until = cycle + c;
        // Anchored interval (66 MHz bus cycle ≈ 15 ns) so utilization can
        // be clipped to a run window even when a handler straddles its end.
        self.occupancy.busy_at(cycle * 15, c * 15);
        self.stats.handled.bump();
    }

    /// Whether the firmware is mid-handler at `cycle`.
    pub fn is_busy(&self, cycle: u64) -> bool {
        self.busy_until > cycle
    }

    /// Whether the firmware holds unfinished protocol/transfer state.
    pub fn has_work(&self, niu: &Niu) -> bool {
        self.xfer.has_work()
            || niu.sp_requests_pending() > 0
            || self.scoma.has_pending()
            || self.coll.has_pending()
            || self.svc_pending(niu)
            || self.tenant_slots_pending(niu)
    }

    /// Whether any tenant-managed hardware slot holds undrained messages.
    fn tenant_slots_pending(&self, niu: &Niu) -> bool {
        self.tenant.as_ref().is_some_and(|tn| {
            (tn.slot_lo..=tn.slot_hi)
                .any(|s| niu.ctrl.rx.get(s as usize).is_some_and(|q| q.pending() > 0))
        })
    }

    fn svc_pending(&self, niu: &Niu) -> bool {
        let q = &niu.ctrl.rx[self.cfg.svc_q.0 as usize];
        self.svc_ptr != q.producer
    }

    /// Earliest cycle >= `cycle` at which [`Firmware::tick`] can change
    /// state, or `None` when an engagement would be a pure no-op forever
    /// (absent external events). Used by the event-driven run loop;
    /// waking early is always safe, skipping a state-changing cycle is
    /// not, so every condition here is conservative.
    pub fn next_wake(&self, cycle: u64, niu: &Niu) -> Option<u64> {
        // Raised interrupt lines are drained on the very next engagement,
        // busy or not.
        if niu.interrupts_pending() {
            return Some(cycle);
        }
        let deep = niu.ctrl.cmdq[Q_SVC].len() > 48 || niu.ctrl.cmdq[Q_PROTO].len() > 48;
        let miss_q = niu.params.miss_queue_slot;
        let miss_pending =
            QueueId(miss_q as u8) != self.cfg.svc_q && niu.ctrl.rx[miss_q].pending() > 0;
        let work = niu.sp_requests_pending() > 0
            || self.svc_pending(niu)
            || miss_pending
            || self.tenant_slots_pending(niu)
            || self.xfer.has_work()
            // Collectives waiting on tree messages need no engagement
            // (arrival wakes us via svc_pending, like scoma); only ones
            // with a send/delivery ready demand a tick.
            || self.coll.has_actionable(self.cfg.node, self.cfg.nodes);
        // While the command queues are deep the firmware re-arms its
        // backpressure stall at every expiry — a state change the
        // event-driven loop must execute on the same cycles.
        if work || deep {
            Some(self.busy_until.max(cycle))
        } else {
            // Note `scoma.has_pending()` keeps `has_work()` true but
            // requires no engagement: it resolves via future service-queue
            // messages, which wake us through `svc_pending`.
            None
        }
    }

    /// One firmware engagement: poll sources in priority order, handle at
    /// most one item.
    pub fn tick(&mut self, cycle: u64, niu: &mut Niu) {
        // Interrupt lines are edge-triggered bookkeeping, free to drain.
        while let Some(int) = niu.pop_interrupt() {
            if let NiuInterrupt::TxViolation(_) = int {
                self.stats.violations_seen.bump();
            }
        }
        if self.busy_until > cycle {
            return;
        }
        // Handlers need room for the commands they push.
        if niu.sp().cmd_depth(Q_SVC) > 48 || niu.sp().cmd_depth(Q_PROTO) > 48 {
            self.busy_until = cycle + 4;
            return;
        }
        // 1. aBIU→sBIU requests (coherence misses, violations).
        if let Some(req) = niu.sp().pop_request() {
            self.handle_sp_request(cycle, req, niu);
            return;
        }
        // 2. Service queue messages.
        if self.step_service_queue(cycle, niu) {
            return;
        }
        // 3. Miss/overflow queue.
        if self.step_miss_queue(cycle, niu) {
            return;
        }
        // 4. Tenant traffic parked in resident hardware slots.
        if self.step_tenant_drain(cycle, niu) {
            return;
        }
        // 5. Active transfer state machines.
        if self.step_xfers(cycle, niu) {
            return;
        }
        // 6. Collective fan-in/fan-out progress.
        self.step_coll(cycle, niu);
    }

    fn handle_sp_request(&mut self, cycle: u64, req: SpRequest, niu: &mut Niu) {
        match req {
            SpRequest::NumaLoad { addr, .. } => self.numa_on_load_miss(cycle, addr, niu),
            SpRequest::NumaStore { addr, data } => self.numa_on_store(cycle, addr, data, niu),
            SpRequest::ScomaMiss { line, write } => {
                self.scoma_on_local_miss(cycle, line, write, niu)
            }
            SpRequest::Violation { .. } => {
                // OS policy decision; we record it and leave the queue
                // disabled (tests re-enable explicitly).
                self.charge(cycle, self.params.dispatch_cycles);
            }
            SpRequest::ReflectStore {
                peer,
                peer_addr,
                data,
            } => {
                // Firmware-mode reflective memory: ship the captured
                // store as a remote write.
                niu.sp().push_cmd(
                    Q_PROTO,
                    LocalCmd::SendRemoteCmd {
                        node: peer,
                        cmd: sv_niu::msg::RemoteCmdKind::WriteDram {
                            addr: peer_addr,
                            data,
                        },
                    },
                );
                self.charge(cycle, self.params.reflect_fw_cycles);
            }
        }
    }

    /// Process one service-queue message; returns whether one was handled.
    fn step_service_queue(&mut self, cycle: u64, niu: &mut Niu) -> bool {
        let svc_q = self.cfg.svc_q;
        let Some((src, _lq, data, sel, payload_addr)) = niu.sp().msg_at(svc_q, self.svc_ptr) else {
            return false;
        };
        self.stats.svc_msgs.bump();
        // An empty service message has no opcode byte at all. It used to
        // decode as opcode 0 via `unwrap_or(0)` — benign only for as long
        // as 0 stays unassigned in `proto::op`. Treat it as the protocol
        // error it is: count it, charge dispatch, free the slot, move on.
        let Some(opcode) = data.first().copied() else {
            self.stats.proto_errors.bump();
            self.svc_ptr = self.svc_ptr.wrapping_add(1);
            let ptr = self.svc_ptr;
            niu.sp().push_cmd(
                Q_SVC,
                LocalCmd::RxPtrUpdate {
                    q: svc_q,
                    consumer: ptr,
                },
            );
            self.charge(cycle, self.params.dispatch_cycles);
            return true;
        };
        // Most handlers copy what they need out of the slot, so the slot
        // can be freed immediately; XFER_DATA's bus write reads the slot
        // in place and frees it with an in-order pointer update.
        let needs_slot = opcode == op::XFER_DATA;
        self.svc_ptr = self.svc_ptr.wrapping_add(1);
        if !needs_slot {
            let ptr = self.svc_ptr;
            niu.sp().push_cmd(
                Q_SVC,
                LocalCmd::RxPtrUpdate {
                    q: svc_q,
                    consumer: ptr,
                },
            );
        }
        match opcode {
            op::XFER_REQ => self.xfer_on_request(cycle, &data, niu),
            op::XFER_DATA => {
                let ptr = self.svc_ptr;
                self.xfer_on_data(cycle, src, &data, sel, payload_addr, ptr, niu)
            }
            op::XFER_SETUP => self.xfer_on_setup(cycle, src, &data, niu),
            op::XFER_PAGE => self.xfer_on_page(cycle, src, &data, niu),
            op::XFER_GO => self.xfer_on_go(cycle, &data, niu),
            op::XFER_FLUSH => self.xfer_on_flush(cycle, &data, niu),
            op::NUMA_READ => self.numa_on_home_read(cycle, src, &data, niu),
            op::NUMA_WRITE => self.numa_on_home_write(cycle, &data, niu),
            op::NUMA_DATA => self.numa_on_data(cycle, &data, niu),
            op::SCOMA_READ => self.scoma_on_home_req(cycle, src, &data, false, niu),
            op::SCOMA_WRITE => self.scoma_on_home_req(cycle, src, &data, true, niu),
            op::SCOMA_RECALL => self.scoma_on_recall(cycle, src, &data, niu),
            op::SCOMA_WB => self.scoma_on_writeback(cycle, src, &data, niu),
            op::SCOMA_INV => self.scoma_on_inv(cycle, src, &data, niu),
            op::SCOMA_INV_ACK => self.scoma_on_inv_ack(cycle, &data, niu),
            op::COLL_START => self.coll_on_start(cycle, &data, niu),
            op::COLL_UP => self.coll_on_up(cycle, &data, niu),
            op::COLL_DOWN => self.coll_on_down(cycle, &data, niu),
            _ => {
                // Unknown opcode: drop with a dispatch charge.
                self.stats.proto_errors.bump();
                self.charge(cycle, self.params.dispatch_cycles);
            }
        }
        true
    }

    /// Service one diverted message from the miss/overflow queue into the
    /// software queues; returns whether one was handled.
    fn step_miss_queue(&mut self, cycle: u64, niu: &mut Niu) -> bool {
        let miss_q = QueueId(niu.params.miss_queue_slot as u8);
        if miss_q == self.cfg.svc_q {
            return false;
        }
        let Some((src, lq, data)) = niu.sp().read_msg(miss_q) else {
            return false;
        };
        self.stats.miss_msgs.bump();
        self.sw_rx.entry(lq).or_default().push_back((src, data));
        let mut cost = self.params.miss_service_cycles;
        if let Some(tn) = &mut self.tenant {
            if let Some(t) = tn.tenant_of(lq) {
                tn.miss_served[t].bump();
                // Complete the inject→deliver sample the NIU parked when
                // this message was written into the miss queue (keyed by
                // the slot index, i.e. the just-consumed pointer value).
                let slot_idx = niu.ctrl.rx[miss_q.0 as usize].consumer.wrapping_sub(1);
                if let Some(ta) = &mut niu.tenant {
                    if let Some((_, sent)) = ta.miss_meta.remove(&slot_idx) {
                        ta.miss_latency[t].record(cycle.saturating_sub(sent) * sv_niu::CYCLE_NS);
                    }
                }
                // Queue-cache management, the software-managed-TLB refill:
                // make the missed logical queue resident by evicting the
                // least-recently-used managed slot, so this tenant's next
                // arrivals take the hardware hit path.
                tn.tick += 1;
                let now = tn.tick;
                match niu.ctrl.rx_cache.peek(lq) {
                    Some(hw) => {
                        // Already resident (the miss predates a refill
                        // that has since happened): just touch its stamp.
                        if (tn.slot_lo..=tn.slot_hi).contains(&hw.0) {
                            tn.slot_tick[(hw.0 - tn.slot_lo) as usize] = now;
                        }
                    }
                    None => {
                        // LRU over the evictable slots: pinned-bound
                        // slots (Latency-class residents) are passed
                        // over so QoS tenants keep hardware delivery
                        // under thrash — unless every slot is pinned,
                        // in which case plain LRU is the only option.
                        let evictable = |tn: &FwTenant, i: usize| !tn.slot_pinned(i);
                        let all_pinned = (0..tn.slot_lq.len()).all(|i| !evictable(tn, i));
                        let mut victim = usize::MAX;
                        for i in 0..tn.slot_lq.len() {
                            if !all_pinned && !evictable(tn, i) {
                                continue;
                            }
                            if victim == usize::MAX || tn.slot_tick[i] < tn.slot_tick[victim] {
                                victim = i;
                            }
                        }
                        let hw = QueueId(tn.slot_lo + victim as u8);
                        if (hw.0 as usize) < niu.params.rx_queues {
                            tn.slot_lq[victim] = lq;
                            tn.slot_tick[victim] = now;
                            tn.rebinds.bump();
                            niu.sp().bind_rx_queue(lq, hw);
                            cost += self.params.dispatch_cycles;
                        }
                    }
                }
            }
        }
        self.charge(cycle, cost);
        true
    }

    /// Drain one message from a tenant-managed hardware slot into the
    /// software receive queues; returns whether one was handled. Resident
    /// tenants get hardware delivery (the cache-hit path, no divert), but
    /// the sP still moves payloads out so the 16-entry slots never back
    /// up into divert storms.
    fn step_tenant_drain(&mut self, cycle: u64, niu: &mut Niu) -> bool {
        let Some(tn) = self.tenant.as_mut() else {
            return false;
        };
        let n = tn.slot_lq.len();
        if n == 0 {
            return false;
        }
        for k in 0..n {
            let i = (tn.drain_rr as usize + k) % n;
            let hw = QueueId(tn.slot_lo + i as u8);
            let pending = niu
                .ctrl
                .rx
                .get(hw.0 as usize)
                .is_some_and(|q| q.pending() > 0);
            if !pending {
                continue;
            }
            let Some((src, lq, data)) = niu.sp().read_msg(hw) else {
                continue;
            };
            tn.drain_rr = ((i + 1) % n) as u8;
            tn.tick += 1;
            tn.slot_tick[i] = tn.tick;
            if let Some(t) = tn.tenant_of(lq) {
                tn.drained[t].bump();
            }
            self.sw_rx.entry(lq).or_default().push_back((src, data));
            self.charge(cycle, self.params.miss_service_cycles);
            return true;
        }
        false
    }

    /// Pop a message from a software (miss-serviced) queue. The caller
    /// (the aP library slow path) charges its own cost.
    pub fn sw_rx_pop(&mut self, lq: u16) -> Option<(u16, Bytes)> {
        self.sw_rx.get_mut(&lq)?.pop_front()
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for FwConfig {
    fn save(&self, w: &mut SnapWriter) {
        w.u16(self.node);
        w.u16(self.nodes);
        w.save(&self.svc_q);
        w.u16(self.svc_lq);
        w.u32(self.page);
    }
}
impl StateLoad for FwConfig {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let c = FwConfig {
            node: r.u16()?,
            nodes: r.u16()?,
            svc_q: r.load()?,
            svc_lq: r.u16()?,
            page: r.u32()?,
        };
        // Home interleave and page chunking divide by these.
        if c.nodes == 0 || c.page == 0 {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        Ok(c)
    }
}

impl StateSave for FwStats {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.handled);
        w.save(&self.svc_msgs);
        w.save(&self.miss_msgs);
        w.save(&self.violations_seen);
        w.save(&self.proto_errors);
    }
}
impl StateLoad for FwStats {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FwStats {
            handled: r.load()?,
            svc_msgs: r.load()?,
            miss_msgs: r.load()?,
            violations_seen: r.load()?,
            proto_errors: r.load()?,
        })
    }
}

impl StateSave for FwTenant {
    fn save(&self, w: &mut SnapWriter) {
        w.u16(self.lq_base);
        w.u16(self.count);
        w.u8(self.slot_lo);
        w.u8(self.slot_hi);
        w.save(&self.slot_lq);
        w.save(&self.slot_tick);
        w.u64(self.tick);
        w.u8(self.drain_rr);
        w.save(&self.rebinds);
        w.save(&self.drained);
        w.save(&self.miss_served);
        w.save(&self.pinned);
    }
}
impl StateLoad for FwTenant {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let tn = FwTenant {
            lq_base: r.u16()?,
            count: r.u16()?,
            slot_lo: r.u8()?,
            slot_hi: r.u8()?,
            slot_lq: r.load()?,
            slot_tick: r.load()?,
            tick: r.u64()?,
            drain_rr: r.u8()?,
            rebinds: r.load()?,
            drained: r.load()?,
            miss_served: r.load()?,
            pinned: r.load()?,
        };
        // The drain scan and miss refill index all five vectors by slot
        // or tenant; forged mismatched lengths would panic there.
        let slots = (tn.slot_hi as usize)
            .checked_sub(tn.slot_lo as usize)
            .map(|d| d + 1);
        if slots != Some(tn.slot_lq.len())
            || tn.slot_tick.len() != tn.slot_lq.len()
            || tn.drained.len() != tn.count as usize
            || tn.miss_served.len() != tn.count as usize
            || tn.pinned.len() != tn.count as usize
        {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        Ok(tn)
    }
}

impl StateSave for Firmware {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.cfg);
        w.save(&self.params);
        w.u64(self.busy_until);
        w.save(&self.occupancy);
        w.save(&self.stats);
        w.u16(self.svc_ptr);
        w.save(&self.xfer);
        w.save(&self.numa);
        w.save(&self.scoma);
        w.save(&self.sw_rx);
        w.save(&self.coll);
        w.save(&self.tenant);
    }
}
impl StateLoad for Firmware {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let fw = Firmware {
            cfg: r.load()?,
            params: r.load()?,
            busy_until: r.u64()?,
            occupancy: r.load()?,
            stats: r.load()?,
            svc_ptr: r.u16()?,
            xfer: r.load()?,
            numa: r.load()?,
            scoma: r.load()?,
            sw_rx: r.load()?,
            coll: r.load()?,
            tenant: r.load()?,
        };
        // Tree arithmetic divides by `nodes` and indexes by rank; a
        // forged snapshot must not smuggle an out-of-range root in. The
        // UNKNOWN_ROOT sentinel (state created by tree messages before
        // the local COLL_START) is legitimate mid-collective content.
        if fw
            .coll
            .states
            .values()
            .any(|s| s.root != crate::coll::UNKNOWN_ROOT && s.root >= fw.cfg.nodes)
        {
            return Err(SnapshotError::Corrupt { offset: r.offset() });
        }
        Ok(fw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homes_are_page_interleaved() {
        let cfg = FwConfig::new(0, 4);
        assert_eq!(cfg.numa_home(0x8000_0000), 0);
        assert_eq!(cfg.numa_home(0x8000_1000), 1);
        assert_eq!(cfg.numa_home(0x8000_4000), 0);
        // Lines 0..127 live on page 0 → home 0; 128.. → home 1.
        assert_eq!(cfg.scoma_home(0), 0);
        assert_eq!(cfg.scoma_home(127), 0);
        assert_eq!(cfg.scoma_home(128), 1);
    }

    #[test]
    fn charge_scales_and_accumulates() {
        let mut fw = Firmware::new(FwConfig::new(0, 2), FwParams::default().scaled(200));
        fw.charge(100, 10);
        assert!(fw.is_busy(119));
        assert!(!fw.is_busy(120));
        assert_eq!(fw.occupancy.busy_ns, 20 * 15);
        assert_eq!(fw.stats.handled.get(), 1);
    }
}
