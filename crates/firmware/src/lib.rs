#![warn(missing_docs)]
//! # sv-firmware — service-processor firmware
//!
//! The sP — the embedded 604 on the NIU — runs the firmware that gives
//! StarT-Voyager its flexibility: shared-memory protocols, DMA
//! orchestration, receive-queue miss handling, and the block-transfer
//! implementations the paper's experiments compare. This crate models
//! that firmware as an explicit event-handler machine with an **occupancy
//! cost model**: every handler charges sP cycles, and the accumulated
//! busy time is what the paper's discussion ("firmware engine occupancy
//! is extremely important and can strongly color experimental results")
//! is about.
//!
//! Modules:
//! - [`params`]: per-handler cost model (swept by ablation A4).
//! - [`proto`]: the wire formats of all firmware-to-firmware messages.
//! - [`engine`]: the dispatch loop — one work item per engagement, drawn
//!   from the aBIU→sBIU request queue, the sP service receive queue, the
//!   miss queue, and active transfer state machines.
//! - [`numa`]: home-based NUMA — remote loads/stores forwarded by the
//!   aBIU are satisfied by the home node's firmware.
//! - [`scoma`]: the S-COMA MSI directory protocol — local DRAM as an L3
//!   cache, clsSRAM states checked by the aBIU, misses resolved by homes
//!   with recalls/invalidations, data delivered by remote commands.
//! - [`xfer`]: block-transfer approaches 2–5 (approach 1 never enters
//!   firmware; it lives in the aP library).
//! - [`coll`]: NIC-resident collectives — barrier/broadcast/reduce/
//!   all-reduce fan-in and fan-out sequenced entirely on the sP over
//!   subtree-aligned fat-tree reduction trees.

pub mod coll;
pub mod engine;
pub mod numa;
pub mod params;
pub mod proto;
pub mod scoma;
pub mod xfer;

pub use engine::{Firmware, FwConfig, FwTenant};
pub use params::FwParams;
