//! NUMA firmware protocol.
//!
//! The default NUMA mechanism of the paper: the aBIU passes every aP bus
//! operation in the 1 GB NUMA region to the sP; firmware forwards it to
//! the home node, whose firmware performs the actual DRAM access through
//! the ordered command queue and (for loads) sends the data back. Loads
//! stall the aP via bus retries until the reply arrives; stores are
//! posted.
//!
//! Reply composition uses the staging pattern the hardware encourages:
//! write the message meta into sSRAM, BusRead the data beside it, then a
//! SendMsg that reads the completed message — all in one ordered queue.

use crate::engine::{staging, Firmware, Q_PROTO};
use crate::proto::{encode_addr_msg, op};
use bytes::Bytes;
use sv_arctic::Priority;
use sv_niu::msg::MsgHeader;
use sv_niu::{LocalCmd, Niu, SramSel};
use sv_sim::stats::Counter;

/// NUMA service statistics.
#[derive(Debug, Default)]
pub struct NumaService {
    /// Load misses.
    pub load_misses: Counter,
    /// Stores forwarded.
    pub stores_forwarded: Counter,
    /// Home reads.
    pub home_reads: Counter,
    /// Home writes.
    pub home_writes: Counter,
    /// Replies delivered.
    pub replies: Counter,
}

/// Layout of the 24-byte NUMA reply/write message:
/// `[op:u64][addr:u64][data:u64]`.
fn encode_meta(opcode: u8) -> u64 {
    opcode as u64
}

/// Decode a 24-byte `[op][addr][data]` message.
pub fn decode_numa24(b: &[u8]) -> Option<(u8, u64, u64)> {
    if b.len() < 24 {
        return None;
    }
    Some((
        b[0],
        u64::from_le_bytes(b[8..16].try_into().ok()?),
        u64::from_le_bytes(b[16..24].try_into().ok()?),
    ))
}

impl Firmware {
    /// Requester side: a NUMA load missed; ask the home node.
    pub(crate) fn numa_on_load_miss(&mut self, cycle: u64, addr: u64, niu: &mut Niu) {
        self.numa.load_misses.bump();
        let home = self.cfg.numa_home(addr);
        let svc_lq = self.cfg.svc_lq;
        niu.sp().push_cmd(
            Q_PROTO,
            LocalCmd::SendDirect {
                node: home,
                logical_q: svc_lq,
                priority: Priority::Low,
                data: encode_addr_msg(op::NUMA_READ, addr),
                tagon: None,
            },
        );
        self.charge(cycle, self.params.numa_req_cycles);
    }

    /// Requester side: forward a posted NUMA store to its home.
    pub(crate) fn numa_on_store(&mut self, cycle: u64, addr: u64, data: Bytes, niu: &mut Niu) {
        self.numa.stores_forwarded.bump();
        let home = self.cfg.numa_home(addr);
        let mut word = [0u8; 8];
        word[..data.len().min(8)].copy_from_slice(&data[..data.len().min(8)]);
        let mut msg = Vec::with_capacity(24);
        msg.extend_from_slice(&encode_meta(op::NUMA_WRITE).to_le_bytes());
        msg.extend_from_slice(&addr.to_le_bytes());
        msg.extend_from_slice(&word);
        let svc_lq = self.cfg.svc_lq;
        niu.sp().push_cmd(
            Q_PROTO,
            LocalCmd::SendDirect {
                node: home,
                logical_q: svc_lq,
                priority: Priority::Low,
                data: Bytes::from(msg),
                tagon: None,
            },
        );
        self.charge(cycle, self.params.numa_req_cycles);
    }

    /// Home side: service a read — fetch the word from home DRAM and
    /// reply with the data (high priority, so replies never deadlock
    /// behind requests).
    pub(crate) fn numa_on_home_read(&mut self, cycle: u64, src: u16, data: &Bytes, niu: &mut Niu) {
        let Some((_, addr)) = crate::proto::decode_addr_msg(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        self.numa.home_reads.bump();
        let st = staging::NUMA_READ;
        let svc_lq = self.cfg.svc_lq;
        let mut sp = niu.sp();
        sp.push_cmd(
            Q_PROTO,
            LocalCmd::WriteSramU64 {
                sram: SramSel::S,
                addr: st,
                data: encode_meta(op::NUMA_DATA),
            },
        );
        sp.push_cmd(
            Q_PROTO,
            LocalCmd::WriteSramU64 {
                sram: SramSel::S,
                addr: st + 8,
                data: addr,
            },
        );
        sp.push_cmd(
            Q_PROTO,
            LocalCmd::BusRead {
                dram_addr: addr & !7,
                sram: SramSel::S,
                sram_addr: st + 16,
                len: 8,
            },
        );
        sp.push_cmd(
            Q_PROTO,
            LocalCmd::SendMsg {
                header: MsgHeader::basic(0, 24),
                sram: SramSel::S,
                addr: st,
                raw_node: Some((src, svc_lq, Priority::High)),
            },
        );
        self.charge(cycle, self.params.numa_home_cycles);
    }

    /// Home side: land a posted store in home DRAM.
    pub(crate) fn numa_on_home_write(&mut self, cycle: u64, data: &Bytes, niu: &mut Niu) {
        let Some((_, addr, word)) = decode_numa24(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        self.numa.home_writes.bump();
        let st = staging::NUMA_WRITE;
        let mut sp = niu.sp();
        sp.push_cmd(
            Q_PROTO,
            LocalCmd::WriteSramU64 {
                sram: SramSel::S,
                addr: st,
                data: word,
            },
        );
        sp.push_cmd(
            Q_PROTO,
            LocalCmd::BusWrite {
                dram_addr: addr & !7,
                sram: SramSel::S,
                sram_addr: st,
                len: 8,
            },
        );
        self.charge(cycle, self.params.numa_home_cycles);
    }

    /// Requester side: the reply arrived; release the stalled aP load.
    pub(crate) fn numa_on_data(&mut self, cycle: u64, data: &Bytes, niu: &mut Niu) {
        let Some((_, addr, word)) = decode_numa24(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        self.numa.replies.bump();
        niu.sp()
            .numa_supply(addr, Bytes::copy_from_slice(&word.to_le_bytes()));
        self.charge(cycle, self.params.numa_req_cycles);
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for NumaService {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.load_misses);
        w.save(&self.stores_forwarded);
        w.save(&self.home_reads);
        w.save(&self.home_writes);
        w.save(&self.replies);
    }
}
impl StateLoad for NumaService {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(NumaService {
            load_misses: r.load()?,
            stores_forwarded: r.load()?,
            home_reads: r.load()?,
            home_writes: r.load()?,
            replies: r.load()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numa24_decode() {
        let mut b = Vec::new();
        b.extend_from_slice(&(op::NUMA_DATA as u64).to_le_bytes());
        b.extend_from_slice(&0x1234u64.to_le_bytes());
        b.extend_from_slice(&0x5678u64.to_le_bytes());
        assert_eq!(decode_numa24(&b), Some((op::NUMA_DATA, 0x1234, 0x5678)));
        assert_eq!(decode_numa24(&b[..10]), None);
    }
}
