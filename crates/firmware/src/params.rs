//! Firmware handler cost model.
//!
//! Costs are in 66 MHz bus cycles (15 ns) — the clock the node advances
//! everything on. The embedded 604 runs faster than the bus, but every
//! handler's work is dominated by uncached accesses to CTRL state and the
//! command queues, which run at bus speed; expressing handler costs in
//! bus cycles is therefore the honest unit. Defaults correspond to
//! handlers of a few dozen instructions plus a handful of uncached
//! accesses (hundreds of ns), consistent with contemporaneous firmware
//! NIs (FLASH's protocol processor, Typhoon). Ablation A4 sweeps a
//! scaling factor over everything.

use serde::{Deserialize, Serialize};

/// Per-handler sP costs, in bus cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FwParams {
    /// Poll + dequeue + dispatch for any work item.
    pub dispatch_cycles: u64,
    /// Parse a DMA/block-transfer request and set up transfer state.
    pub xfer_setup_cycles: u64,
    /// Approach 2 sender: issue the read+send command pair for one chunk.
    pub dma_chunk_cycles: u64,
    /// Approach 2 receiver: issue the write+free command pair for one chunk.
    pub dma_recv_chunk_cycles: u64,
    /// Issue one block operation (approaches 3-5, one per page).
    pub block_issue_cycles: u64,
    /// Approach 4 receiver: per-page clsSRAM range update.
    pub a4_page_cycles: u64,
    /// Requester-side NUMA forwarding (either direction).
    pub numa_req_cycles: u64,
    /// Home-side NUMA service (read or write).
    pub numa_home_cycles: u64,
    /// Requester-side S-COMA miss handling.
    pub scoma_miss_cycles: u64,
    /// Home-side S-COMA directory operation.
    pub scoma_home_cycles: u64,
    /// Owner/sharer-side recall or invalidation handling.
    pub scoma_recall_cycles: u64,
    /// Deliver a completion notification.
    pub notify_cycles: u64,
    /// Service one miss-queue (overflow) message into software queues.
    pub miss_service_cycles: u64,
    /// Forward one captured reflective-memory store (firmware mode).
    pub reflect_fw_cycles: u64,
    /// Per-dirty-line cost of a tracked-region flush (read + send + clear).
    pub flush_line_cycles: u64,
    /// clsSRAM lines scanned per cycle during a flush sweep.
    pub flush_scan_lines_per_cycle: u64,
    /// Accept a local COLL_START: allocate/merge group state, fold the
    /// local contribution.
    pub coll_start_cycles: u64,
    /// Fold one received fan-in/fan-out message into group state.
    pub coll_combine_cycles: u64,
    /// Issue one COLL_UP/COLL_DOWN tree message.
    pub coll_send_cycles: u64,
    /// Deliver a COLL_RESULT to the local aP.
    pub coll_deliver_cycles: u64,
    /// Multiplier applied to every cost (ablation knob; 100 = 1.0x).
    pub scale_percent: u64,
}

impl Default for FwParams {
    fn default() -> Self {
        FwParams {
            dispatch_cycles: 10,
            xfer_setup_cycles: 60,
            dma_chunk_cycles: 45,
            dma_recv_chunk_cycles: 45,
            block_issue_cycles: 25,
            a4_page_cycles: 35,
            numa_req_cycles: 25,
            numa_home_cycles: 40,
            scoma_miss_cycles: 30,
            scoma_home_cycles: 50,
            scoma_recall_cycles: 45,
            notify_cycles: 20,
            miss_service_cycles: 60,
            reflect_fw_cycles: 20,
            flush_line_cycles: 12,
            flush_scan_lines_per_cycle: 4,
            coll_start_cycles: 15,
            coll_combine_cycles: 12,
            coll_send_cycles: 10,
            coll_deliver_cycles: 12,
            scale_percent: 100,
        }
    }
}

impl FwParams {
    /// Apply the ablation scale to a base cost.
    #[inline]
    pub fn cost(&self, base: u64) -> u64 {
        (base * self.scale_percent).div_ceil(100)
    }

    /// A copy with every handler cost scaled by `percent`/100.
    pub fn scaled(mut self, percent: u64) -> Self {
        self.scale_percent = percent;
        self
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for FwParams {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.dispatch_cycles);
        w.u64(self.xfer_setup_cycles);
        w.u64(self.dma_chunk_cycles);
        w.u64(self.dma_recv_chunk_cycles);
        w.u64(self.block_issue_cycles);
        w.u64(self.a4_page_cycles);
        w.u64(self.numa_req_cycles);
        w.u64(self.numa_home_cycles);
        w.u64(self.scoma_miss_cycles);
        w.u64(self.scoma_home_cycles);
        w.u64(self.scoma_recall_cycles);
        w.u64(self.notify_cycles);
        w.u64(self.miss_service_cycles);
        w.u64(self.reflect_fw_cycles);
        w.u64(self.flush_line_cycles);
        w.u64(self.flush_scan_lines_per_cycle);
        w.u64(self.coll_start_cycles);
        w.u64(self.coll_combine_cycles);
        w.u64(self.coll_send_cycles);
        w.u64(self.coll_deliver_cycles);
        w.u64(self.scale_percent);
    }
}
impl StateLoad for FwParams {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FwParams {
            dispatch_cycles: r.u64()?,
            xfer_setup_cycles: r.u64()?,
            dma_chunk_cycles: r.u64()?,
            dma_recv_chunk_cycles: r.u64()?,
            block_issue_cycles: r.u64()?,
            a4_page_cycles: r.u64()?,
            numa_req_cycles: r.u64()?,
            numa_home_cycles: r.u64()?,
            scoma_miss_cycles: r.u64()?,
            scoma_home_cycles: r.u64()?,
            scoma_recall_cycles: r.u64()?,
            notify_cycles: r.u64()?,
            miss_service_cycles: r.u64()?,
            reflect_fw_cycles: r.u64()?,
            flush_line_cycles: r.u64()?,
            flush_scan_lines_per_cycle: r.u64()?,
            coll_start_cycles: r.u64()?,
            coll_combine_cycles: r.u64()?,
            coll_send_cycles: r.u64()?,
            coll_deliver_cycles: r.u64()?,
            scale_percent: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling() {
        let p = FwParams::default();
        assert_eq!(p.cost(40), 40);
        let fast = p.scaled(50);
        assert_eq!(fast.cost(40), 20);
        let slow = p.scaled(300);
        assert_eq!(slow.cost(40), 120);
        // Rounds up: a nonzero cost never becomes free.
        assert_eq!(p.scaled(1).cost(10), 1);
    }
}
