//! Firmware protocol message formats.
//!
//! Firmware-to-firmware traffic travels as ordinary messages into each
//! node's sP service queue; the first payload byte is an opcode. All
//! formats are genuinely encoded to bytes (they ride through SRAM slots),
//! with round-trip tests below.

use bytes::{BufMut, Bytes, BytesMut};

/// Opcode byte values.
pub mod op {
    /// X f e r  r e q.
    pub const XFER_REQ: u8 = 0x01;
    /// X f e r  d a t a.
    pub const XFER_DATA: u8 = 0x02;
    /// X f e r  s e t u p.
    pub const XFER_SETUP: u8 = 0x03;
    /// X f e r  p a g e.
    pub const XFER_PAGE: u8 = 0x04;
    /// X f e r  g o.
    pub const XFER_GO: u8 = 0x05;
    /// X f e r  f l u s h.
    pub const XFER_FLUSH: u8 = 0x06;
    /// N u m a  r e a d.
    pub const NUMA_READ: u8 = 0x10;
    /// N u m a  d a t a.
    pub const NUMA_DATA: u8 = 0x11;
    /// N u m a  w r i t e.
    pub const NUMA_WRITE: u8 = 0x12;
    /// S c o m a  r e a d.
    pub const SCOMA_READ: u8 = 0x20;
    /// S c o m a  w r i t e.
    pub const SCOMA_WRITE: u8 = 0x21;
    /// S c o m a  r e c a l l.
    pub const SCOMA_RECALL: u8 = 0x22;
    /// S c o m a  w b.
    pub const SCOMA_WB: u8 = 0x23;
    /// S c o m a  i n v.
    pub const SCOMA_INV: u8 = 0x24;
    /// S c o m a  i n v  a c k.
    pub const SCOMA_INV_ACK: u8 = 0x25;
    /// N o t i f y.
    pub const NOTIFY: u8 = 0x30;
    /// C o l l  s t a r t (aP → local sP: join a collective).
    pub const COLL_START: u8 = 0x40;
    /// C o l l  u p (child sP → parent sP: fan-in contribution).
    pub const COLL_UP: u8 = 0x41;
    /// C o l l  d o w n (parent sP → child sP: fan-out result).
    pub const COLL_DOWN: u8 = 0x42;
    /// C o l l  r e s u l t (sP → local aP: completion + value).
    pub const COLL_RESULT: u8 = 0x43;
}

/// Which collective a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    /// All nodes rendezvous; the result is always 0.
    Barrier = 0,
    /// The root's value is distributed to every node.
    Bcast = 1,
    /// Contributions reduce to the root; only the root sees the value.
    Reduce = 2,
    /// Contributions reduce, then the result fans back out to everyone.
    AllReduce = 3,
}

impl CollKind {
    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> Option<CollKind> {
        Some(match v {
            0 => CollKind::Barrier,
            1 => CollKind::Bcast,
            2 => CollKind::Reduce,
            3 => CollKind::AllReduce,
            _ => return None,
        })
    }
}

/// Reduction operator carried by collective messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    /// Wrapping addition.
    Sum = 0,
    /// Minimum.
    Min = 1,
    /// Maximum.
    Max = 2,
}

impl CollOp {
    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> Option<CollOp> {
        Some(match v {
            0 => CollOp::Sum,
            1 => CollOp::Min,
            2 => CollOp::Max,
            _ => return None,
        })
    }

    /// Fold one contribution into an accumulator.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            CollOp::Sum => a.wrapping_add(b),
            CollOp::Min => a.min(b),
            CollOp::Max => a.max(b),
        }
    }

    /// The fold's identity element (fresh accumulators start here).
    pub fn identity(self) -> u64 {
        match self {
            CollOp::Sum => 0,
            CollOp::Min => u64::MAX,
            CollOp::Max => 0,
        }
    }
}

/// An aP's request to join a collective (opcode COLL_START), sent as one
/// Basic message into the node's own service queue. The firmware assigns
/// the sequence number: every node issues its collectives in the same
/// order, so per-node counters agree machine-wide without the aP ever
/// naming one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollStart {
    /// Which collective.
    pub kind: CollKind,
    /// Reduction operator (ignored by Bcast).
    pub op: CollOp,
    /// Root node (0 for Barrier/AllReduce).
    pub root: u16,
    /// Logical queue that receives the COLL_RESULT message.
    pub notify_lq: u16,
    /// This node's contribution (the payload at the Bcast root).
    pub value: u64,
}

impl CollStart {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(op::COLL_START);
        b.put_u8(self.kind as u8);
        b.put_u8(self.op as u8);
        b.put_u8(0);
        b.put_u16_le(self.root);
        b.put_u16_le(self.notify_lq);
        b.put_u64_le(self.value);
        b.freeze()
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Option<CollStart> {
        if b.len() < 16 || b[0] != op::COLL_START {
            return None;
        }
        Some(CollStart {
            kind: CollKind::from_u8(b[1])?,
            op: CollOp::from_u8(b[2])?,
            root: u16::from_le_bytes([b[4], b[5]]),
            notify_lq: u16::from_le_bytes([b[6], b[7]]),
            value: u64::from_le_bytes(b[8..16].try_into().ok()?),
        })
    }
}

/// One sP-to-sP tree message (opcodes COLL_UP and COLL_DOWN).
///
/// Deliberately minimal — 14 payload bytes — because at scale the
/// collective's critical path is a chain of store-and-forward fat-tree
/// hops whose cost is dominated by wire serialization. Kind and
/// operator ride packed in one byte so a fast child's contribution can
/// still create (and fold into) group state at a parent whose own aP
/// has not started yet; the tree *geometry* (the root) is not carried,
/// since a node acts on a collective only after its local COLL_START
/// supplies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollMsg {
    /// COLL_UP or COLL_DOWN.
    pub opcode: u8,
    /// Which collective.
    pub kind: CollKind,
    /// Reduction operator.
    pub op: CollOp,
    /// Per-node collective sequence number.
    pub seq: u32,
    /// Partial reduction (UP) or final result (DOWN).
    pub value: u64,
}

impl CollMsg {
    /// Encode to payload bytes: opcode, packed kind/op, seq, value.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(14);
        b.put_u8(self.opcode);
        b.put_u8((self.kind as u8) | ((self.op as u8) << 4));
        b.put_u32_le(self.seq);
        b.put_u64_le(self.value);
        b.freeze()
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Option<CollMsg> {
        if b.len() < 14 || (b[0] != op::COLL_UP && b[0] != op::COLL_DOWN) {
            return None;
        }
        Some(CollMsg {
            opcode: b[0],
            kind: CollKind::from_u8(b[1] & 0x0f)?,
            op: CollOp::from_u8(b[1] >> 4)?,
            seq: u32::from_le_bytes(b[2..6].try_into().ok()?),
            value: u64::from_le_bytes(b[6..14].try_into().ok()?),
        })
    }
}

/// Completion message to the requesting aP's receive queue (opcode
/// COLL_RESULT): the collective's sequence number and final value.
pub fn encode_coll_result(kind: CollKind, seq: u32, value: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(16);
    b.put_u8(op::COLL_RESULT);
    b.put_u8(kind as u8);
    b.put_u16_le(0);
    b.put_u32_le(seq);
    b.put_u64_le(value);
    b.freeze()
}

/// Decode a collective completion; returns `(kind, seq, value)`.
pub fn decode_coll_result(b: &[u8]) -> Option<(CollKind, u32, u64)> {
    if b.len() < 16 || b[0] != op::COLL_RESULT {
        return None;
    }
    Some((
        CollKind::from_u8(b[1])?,
        u32::from_le_bytes(b[4..8].try_into().ok()?),
        u64::from_le_bytes(b[8..16].try_into().ok()?),
    ))
}

/// Which block-transfer implementation a request asks for (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// aPs move everything (never reaches firmware; listed for clarity).
    ApDirect = 1,
    /// sPs move the data with command-queue ops + TagOn messages.
    SpManaged = 2,
    /// Hardware block units.
    BlockHw = 3,
    /// Block units + optimistic early notification, sP-managed clsSRAM.
    OptimisticSp = 4,
    /// Block units + early notification, aBIU-managed clsSRAM.
    OptimisticHw = 5,
}

impl Approach {
    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> Option<Approach> {
        Some(match v {
            1 => Approach::ApDirect,
            2 => Approach::SpManaged,
            3 => Approach::BlockHw,
            4 => Approach::OptimisticSp,
            5 => Approach::OptimisticHw,
            _ => return None,
        })
    }
}

/// A block-transfer request from the local aP (opcode XFER_REQ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XferReq {
    /// Transfer approach (1-5).
    pub approach: Approach,
    /// Transfer identifier.
    pub xfer_id: u16,
    /// Source byte address.
    pub src_addr: u64,
    /// Destination byte address.
    pub dst_addr: u64,
    /// Length in bytes.
    pub len: u32,
    /// Destination node.
    pub dst_node: u16,
    /// Logical receive queue of the receiving job, for the completion
    /// notification.
    pub notify_lq: u16,
}

impl XferReq {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(28);
        b.put_u8(op::XFER_REQ);
        b.put_u8(self.approach as u8);
        b.put_u16_le(self.xfer_id);
        b.put_u64_le(self.src_addr);
        b.put_u64_le(self.dst_addr);
        b.put_u32_le(self.len);
        b.put_u16_le(self.dst_node);
        b.put_u16_le(self.notify_lq);
        b.freeze()
    }

    /// Decode from payload bytes (assumes opcode already checked).
    pub fn decode(b: &[u8]) -> Option<XferReq> {
        if b.len() < 28 || b[0] != op::XFER_REQ {
            return None;
        }
        Some(XferReq {
            approach: Approach::from_u8(b[1])?,
            xfer_id: u16::from_le_bytes([b[2], b[3]]),
            src_addr: u64::from_le_bytes(b[4..12].try_into().ok()?),
            dst_addr: u64::from_le_bytes(b[12..20].try_into().ok()?),
            len: u32::from_le_bytes(b[20..24].try_into().ok()?),
            dst_node: u16::from_le_bytes([b[24], b[25]]),
            notify_lq: u16::from_le_bytes([b[26], b[27]]),
        })
    }
}

/// Approach-2 data chunk header (opcode XFER_DATA); the chunk data rides
/// as TagOn bytes after this fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XferData {
    /// Transfer identifier.
    pub xfer_id: u16,
    /// Destination byte address.
    pub dst_addr: u64,
    /// Total transfer size, so the receiver can detect completion without
    /// relying on chunk ordering.
    pub total: u32,
    /// Logical queue that receives the completion notification.
    pub notify_lq: u16,
}

/// Encoded size of [`XferData`].
pub const XFER_DATA_LEN: usize = 18;

impl XferData {
    /// Encode (header only; TagOn data follows on the wire).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(XFER_DATA_LEN);
        b.put_u8(op::XFER_DATA);
        b.put_u8(0);
        b.put_u16_le(self.xfer_id);
        b.put_u64_le(self.dst_addr);
        b.put_u32_le(self.total);
        b.put_u16_le(self.notify_lq);
        b.freeze()
    }

    /// Decode the header; chunk data is `b[XFER_DATA_LEN..]`.
    pub fn decode(b: &[u8]) -> Option<XferData> {
        if b.len() < XFER_DATA_LEN || b[0] != op::XFER_DATA {
            return None;
        }
        Some(XferData {
            xfer_id: u16::from_le_bytes([b[2], b[3]]),
            dst_addr: u64::from_le_bytes(b[4..12].try_into().ok()?),
            total: u32::from_le_bytes(b[12..16].try_into().ok()?),
            notify_lq: u16::from_le_bytes([b[16], b[17]]),
        })
    }
}

/// Approach-4/5 receiver setup (opcode XFER_SETUP): prepare clsSRAM for
/// optimistic completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XferSetup {
    /// Transfer identifier.
    pub xfer_id: u16,
    /// Destination byte address.
    pub dst_addr: u64,
    /// Length in bytes.
    pub len: u32,
    /// Logical queue that receives the completion notification.
    pub notify_lq: u16,
    /// Approach 4 (sP-managed states) or 5 (aBIU-managed states).
    pub approach: u8,
}

impl XferSetup {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(20);
        b.put_u8(op::XFER_SETUP);
        b.put_u8(self.approach);
        b.put_u16_le(self.xfer_id);
        b.put_u64_le(self.dst_addr);
        b.put_u32_le(self.len);
        b.put_u16_le(self.notify_lq);
        b.put_u16_le(0);
        b.freeze()
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Option<XferSetup> {
        if b.len() < 20 || b[0] != op::XFER_SETUP {
            return None;
        }
        Some(XferSetup {
            approach: b[1],
            xfer_id: u16::from_le_bytes([b[2], b[3]]),
            dst_addr: u64::from_le_bytes(b[4..12].try_into().ok()?),
            len: u32::from_le_bytes(b[12..16].try_into().ok()?),
            notify_lq: u16::from_le_bytes([b[16], b[17]]),
        })
    }
}

/// Approach-4 per-page arrival marker (opcode XFER_PAGE), delivered on
/// the ordered remote-command stream *after* the page's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XferPage {
    /// Transfer identifier.
    pub xfer_id: u16,
    /// Target byte address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u32,
}

impl XferPage {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(op::XFER_PAGE);
        b.put_u8(0);
        b.put_u16_le(self.xfer_id);
        b.put_u64_le(self.addr);
        b.put_u32_le(self.len);
        b.freeze()
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Option<XferPage> {
        if b.len() < 16 || b[0] != op::XFER_PAGE {
            return None;
        }
        Some(XferPage {
            xfer_id: u16::from_le_bytes([b[2], b[3]]),
            addr: u64::from_le_bytes(b[4..12].try_into().ok()?),
            len: u32::from_le_bytes(b[12..16].try_into().ok()?),
        })
    }
}

/// A tracked-region flush request (opcode XFER_FLUSH, the "diff-ing"
/// extension): send only the clsSRAM-recorded dirty lines of
/// `[base, +len)` to `dst_addr` at `dst_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XferFlush {
    /// Transfer identifier.
    pub xfer_id: u16,
    /// Start of the tracked region (an S-COMA-region address).
    pub base: u64,
    /// Destination base address at the peer.
    pub dst_addr: u64,
    /// Length in bytes.
    pub len: u32,
    /// Destination node.
    pub dst_node: u16,
    /// Logical queue that receives the completion notification.
    pub notify_lq: u16,
}

impl XferFlush {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(28);
        b.put_u8(op::XFER_FLUSH);
        b.put_u8(0);
        b.put_u16_le(self.xfer_id);
        b.put_u64_le(self.base);
        b.put_u64_le(self.dst_addr);
        b.put_u32_le(self.len);
        b.put_u16_le(self.dst_node);
        b.put_u16_le(self.notify_lq);
        b.freeze()
    }

    /// Decode from payload bytes.
    pub fn decode(b: &[u8]) -> Option<XferFlush> {
        if b.len() < 28 || b[0] != op::XFER_FLUSH {
            return None;
        }
        Some(XferFlush {
            xfer_id: u16::from_le_bytes([b[2], b[3]]),
            base: u64::from_le_bytes(b[4..12].try_into().ok()?),
            dst_addr: u64::from_le_bytes(b[12..20].try_into().ok()?),
            len: u32::from_le_bytes(b[20..24].try_into().ok()?),
            dst_node: u16::from_le_bytes([b[24], b[25]]),
            notify_lq: u16::from_le_bytes([b[26], b[27]]),
        })
    }
}

/// A simple `(opcode, u64)` message used by NUMA reads and most S-COMA
/// traffic (the u64 is an address or line number).
pub fn encode_addr_msg(opcode: u8, addr: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(12);
    b.put_u8(opcode);
    b.put_u8(0);
    b.put_u16_le(0);
    b.put_u64_le(addr);
    b.freeze()
}

/// Decode an `(opcode, addr)` message.
pub fn decode_addr_msg(b: &[u8]) -> Option<(u8, u64)> {
    if b.len() < 12 {
        return None;
    }
    Some((b[0], u64::from_le_bytes(b[4..12].try_into().ok()?)))
}

/// An `(opcode, u64, u64)` message (NUMA data/write: address + data word;
/// S-COMA recall: line + requester).
pub fn encode_addr2_msg(opcode: u8, a: u64, b_: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(20);
    b.put_u8(opcode);
    b.put_u8(0);
    b.put_u16_le(0);
    b.put_u64_le(a);
    b.put_u64_le(b_);
    b.freeze()
}

/// Decode an `(opcode, a, b)` message.
pub fn decode_addr2_msg(b: &[u8]) -> Option<(u8, u64, u64)> {
    if b.len() < 20 {
        return None;
    }
    Some((
        b[0],
        u64::from_le_bytes(b[4..12].try_into().ok()?),
        u64::from_le_bytes(b[12..20].try_into().ok()?),
    ))
}

/// Completion notification to a job's receive queue (opcode NOTIFY).
pub fn encode_notify(xfer_id: u16) -> Bytes {
    let mut b = BytesMut::with_capacity(4);
    b.put_u8(op::NOTIFY);
    b.put_u8(0);
    b.put_u16_le(xfer_id);
    b.freeze()
}

/// Decode a notification; returns the transfer id.
pub fn decode_notify(b: &[u8]) -> Option<u16> {
    if b.len() < 4 || b[0] != op::NOTIFY {
        return None;
    }
    Some(u16::from_le_bytes([b[2], b[3]]))
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for XferReq {
    fn save(&self, w: &mut SnapWriter) {
        // Reuse the wire codec: one canonical byte layout.
        w.lp_bytes(&self.encode());
    }
}
impl StateLoad for XferReq {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let b = r.lp_bytes()?;
        XferReq::decode(b).ok_or(SnapshotError::Corrupt { offset: at })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xfer_req_roundtrip() {
        let r = XferReq {
            approach: Approach::BlockHw,
            xfer_id: 7,
            src_addr: 0x1000,
            dst_addr: 0x2000,
            len: 65536,
            dst_node: 3,
            notify_lq: 9,
        };
        assert_eq!(XferReq::decode(&r.encode()), Some(r));
    }

    #[test]
    fn xfer_req_rejects_garbage() {
        assert_eq!(XferReq::decode(&[0u8; 4]), None);
        let mut bad = XferReq {
            approach: Approach::SpManaged,
            xfer_id: 0,
            src_addr: 0,
            dst_addr: 0,
            len: 0,
            dst_node: 0,
            notify_lq: 0,
        }
        .encode()
        .to_vec();
        bad[1] = 99; // invalid approach byte
        assert_eq!(XferReq::decode(&bad), None);
    }

    #[test]
    fn xfer_data_roundtrip() {
        let d = XferData {
            xfer_id: 3,
            dst_addr: 0xABCD_EF00,
            total: 1 << 20,
            notify_lq: 4,
        };
        let enc = d.encode();
        assert_eq!(enc.len(), XFER_DATA_LEN);
        assert_eq!(XferData::decode(&enc), Some(d));
    }

    #[test]
    fn setup_and_page_roundtrip() {
        let s = XferSetup {
            xfer_id: 1,
            dst_addr: 0x4000_0000,
            len: 8192,
            notify_lq: 2,
            approach: 4,
        };
        assert_eq!(XferSetup::decode(&s.encode()), Some(s));
        let p = XferPage {
            xfer_id: 1,
            addr: 0x4000_1000,
            len: 4096,
        };
        assert_eq!(XferPage::decode(&p.encode()), Some(p));
    }

    #[test]
    fn xfer_flush_roundtrip() {
        let f = XferFlush {
            xfer_id: 5,
            base: 0x4000_2000,
            dst_addr: 0x30_0000,
            len: 64 * 1024,
            dst_node: 3,
            notify_lq: 1,
        };
        assert_eq!(XferFlush::decode(&f.encode()), Some(f));
        assert_eq!(XferFlush::decode(&[0u8; 8]), None);
    }

    #[test]
    fn addr_msgs_roundtrip() {
        let m = encode_addr_msg(op::SCOMA_READ, 42);
        assert_eq!(decode_addr_msg(&m), Some((op::SCOMA_READ, 42)));
        let m2 = encode_addr2_msg(op::NUMA_DATA, 0x100, 0xDEAD);
        assert_eq!(decode_addr2_msg(&m2), Some((op::NUMA_DATA, 0x100, 0xDEAD)));
    }

    #[test]
    fn notify_roundtrip() {
        assert_eq!(decode_notify(&encode_notify(99)), Some(99));
        assert_eq!(decode_notify(&[0u8; 2]), None);
    }

    #[test]
    fn coll_start_roundtrip() {
        let s = CollStart {
            kind: CollKind::AllReduce,
            op: CollOp::Min,
            root: 0,
            notify_lq: 1,
            value: u64::MAX - 3,
        };
        assert_eq!(CollStart::decode(&s.encode()), Some(s));
        assert_eq!(CollStart::decode(&[0u8; 8]), None);
        let mut bad = s.encode().to_vec();
        bad[1] = 9; // invalid kind byte
        assert_eq!(CollStart::decode(&bad), None);
        bad[1] = 0;
        bad[2] = 7; // invalid op byte
        assert_eq!(CollStart::decode(&bad), None);
    }

    #[test]
    fn coll_msg_roundtrip() {
        // Every (opcode, kind, op) combination survives the packed byte.
        for opcode in [op::COLL_UP, op::COLL_DOWN] {
            for kind_v in 0..4u8 {
                for op_v in 0..3u8 {
                    let m = CollMsg {
                        opcode,
                        kind: CollKind::from_u8(kind_v).unwrap(),
                        op: CollOp::from_u8(op_v).unwrap(),
                        seq: 0xDEAD_BEEF,
                        value: 1 << 63,
                    };
                    let wire = m.encode();
                    assert_eq!(wire.len(), 14, "tree messages stay at 14 bytes");
                    assert_eq!(CollMsg::decode(&wire), Some(m));
                }
            }
        }
        // A CollMsg must carry a tree opcode, not an arbitrary one.
        let mut stray = CollMsg {
            opcode: op::COLL_UP,
            kind: CollKind::Barrier,
            op: CollOp::Sum,
            seq: 0,
            value: 0,
        }
        .encode()
        .to_vec();
        stray[0] = op::COLL_RESULT;
        assert_eq!(CollMsg::decode(&stray), None);
        // An out-of-range packed operator is rejected, not misread.
        let mut bad_op = CollMsg {
            opcode: op::COLL_UP,
            kind: CollKind::Barrier,
            op: CollOp::Sum,
            seq: 0,
            value: 0,
        }
        .encode()
        .to_vec();
        bad_op[1] = 0x30; // op index 3: no such operator
        assert_eq!(CollMsg::decode(&bad_op), None);
    }

    #[test]
    fn coll_result_roundtrip() {
        let b = encode_coll_result(CollKind::Bcast, 5, 0xABCD);
        assert_eq!(decode_coll_result(&b), Some((CollKind::Bcast, 5, 0xABCD)));
        assert_eq!(decode_coll_result(&[0u8; 4]), None);
        // Not confused with a transfer notify.
        assert_eq!(decode_notify(&b), None);
    }

    #[test]
    fn coll_op_identity_and_apply() {
        for o in [CollOp::Sum, CollOp::Min, CollOp::Max] {
            assert_eq!(o.apply(o.identity(), 42), 42, "{o:?} identity");
            assert_eq!(CollOp::from_u8(o as u8), Some(o));
        }
        assert_eq!(CollOp::Sum.apply(u64::MAX, 2), 1, "wrapping sum");
        assert_eq!(CollOp::from_u8(3), None);
        for k in [
            CollKind::Barrier,
            CollKind::Bcast,
            CollKind::Reduce,
            CollKind::AllReduce,
        ] {
            assert_eq!(CollKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(CollKind::from_u8(4), None);
    }

    #[test]
    fn approach_codec() {
        for a in [
            Approach::ApDirect,
            Approach::SpManaged,
            Approach::BlockHw,
            Approach::OptimisticSp,
            Approach::OptimisticHw,
        ] {
            assert_eq!(Approach::from_u8(a as u8), Some(a));
        }
        assert_eq!(Approach::from_u8(0), None);
    }
}
