//! S-COMA firmware protocol.
//!
//! The paper's S-COMA mechanism lets a region of local DRAM act as a
//! level-3 cache of a global address space: the aBIU checks the clsSRAM
//! state of every aP bus operation in the region, retrying (ARTRY) the
//! operation and notifying the sP when the line is missing or held in
//! the wrong state. This module is the firmware half: a home-based MSI
//! directory protocol.
//!
//! - The *requester* marks the line Pending (so retries stop re-notifying)
//!   and sends a read or write request to the line's home.
//! - The *home* keeps a directory entry per line (semantically in home
//!   DRAM; costs charged per handler). Clean lines are granted straight
//!   from home memory; owned lines are **recalled** from their owner;
//!   shared lines are **invalidated** (with BusFlush forcing the sharer's
//!   aP caches to give the line up) before a write grant.
//! - Data grants travel as `WriteDramSetCls` remote commands on the
//!   high-priority network: the destination NIU lands the line in DRAM
//!   and flips the clsSRAM state with *no firmware on the critical
//!   receive path*, exactly the paper's design ("data supplied by a
//!   remote node for a pending read can be received via the remote
//!   command queue to avoid firmware execution on the return").
//! - Per-line transactions are serialized at the home: requests that
//!   arrive while one is pending queue behind it.

use crate::engine::{staging, Firmware, Q_PROTO};
use crate::proto::{encode_addr2_msg, encode_addr_msg, op};
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use sv_arctic::Priority;
use sv_membus::CACHE_LINE;
use sv_niu::msg::{MsgHeader, RemoteCmdKind};
use sv_niu::{ClsState, LocalCmd, Niu, SramSel};
use sv_sim::stats::Counter;

/// Directory state of one line at its home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// Only home memory holds the line.
    Uncached,
    /// Read-only copies at these nodes (home memory valid).
    Shared(Vec<u16>),
    /// One node holds the line writable (home memory stale).
    Owned(u16),
}

/// An in-flight transaction at the home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pending {
    /// The node that asked.
    pub requester: u16,
    /// Whether the access is a write.
    pub write: bool,
    /// Invalidation acks still outstanding.
    pub acks_left: u16,
    /// Requester already holds a read-only copy: grant by state change
    /// only, no data transfer.
    pub upgrade: bool,
}

/// Directory entry.
#[derive(Debug)]
pub struct DirEntry {
    /// clsSRAM state to set.
    pub state: DirState,
    /// In-flight transaction, if any.
    pub pending: Option<Pending>,
    /// Requests queued behind the pending transaction.
    pub waiting: VecDeque<(u16, bool)>,
}

impl Default for DirEntry {
    fn default() -> Self {
        DirEntry {
            state: DirState::Uncached,
            pending: None,
            waiting: VecDeque::new(),
        }
    }
}

/// S-COMA statistics.
#[derive(Debug, Default)]
pub struct ScomaStats {
    /// Local misses.
    pub local_misses: Counter,
    /// Home reads.
    pub home_reads: Counter,
    /// Home writes.
    pub home_writes: Counter,
    /// Owner recalls issued.
    pub recalls: Counter,
    /// Sharer invalidations issued.
    pub invals: Counter,
    /// Grants data.
    pub grants_data: Counter,
    /// Grants upgrade.
    pub grants_upgrade: Counter,
    /// Writebacks serviced.
    pub writebacks: Counter,
    /// Directory state transitions (every mutation of a line's
    /// [`DirState`], including sharer-set growth).
    pub transitions: Counter,
}

/// Per-node S-COMA service state.
#[derive(Debug, Default)]
pub struct ScomaService {
    /// Directory for lines homed here.
    pub dir: HashMap<u64, DirEntry>,
    /// Running statistics.
    pub stats: ScomaStats,
}

impl ScomaService {
    /// Whether any transaction is in flight or queued at this home.
    pub fn has_pending(&self) -> bool {
        self.dir
            .values()
            .any(|e| e.pending.is_some() || !e.waiting.is_empty())
    }
}

impl Firmware {
    fn line_addr(&self, niu: &Niu, line: u64) -> u64 {
        niu.map.scoma_base + line * CACHE_LINE
    }

    /// Requester side: the aBIU reported a state-check failure.
    pub(crate) fn scoma_on_local_miss(
        &mut self,
        cycle: u64,
        line: u64,
        write: bool,
        niu: &mut Niu,
    ) {
        self.scoma.stats.local_misses.bump();
        // Pending blocks further notifications (and stalls the aP's
        // retries without re-entering firmware).
        niu.sp().set_cls(line, ClsState::Pending);
        let home = self.cfg.scoma_home(line);
        let opcode = if write {
            op::SCOMA_WRITE
        } else {
            op::SCOMA_READ
        };
        let svc_lq = self.cfg.svc_lq;
        niu.sp().push_cmd(
            Q_PROTO,
            LocalCmd::SendDirect {
                node: home,
                logical_q: svc_lq,
                priority: Priority::Low,
                data: encode_addr_msg(opcode, line),
                tagon: None,
            },
        );
        self.charge(cycle, self.params.scoma_miss_cycles);
    }

    /// Home side: a read or write request arrived.
    pub(crate) fn scoma_on_home_req(
        &mut self,
        cycle: u64,
        src: u16,
        data: &Bytes,
        write: bool,
        niu: &mut Niu,
    ) {
        let Some((_, line)) = crate::proto::decode_addr_msg(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        if write {
            self.scoma.stats.home_writes.bump();
        } else {
            self.scoma.stats.home_reads.bump();
        }
        let busy = {
            let e = self.scoma.dir.entry(line).or_default();
            if e.pending.is_some() {
                e.waiting.push_back((src, write));
                true
            } else {
                false
            }
        };
        if !busy {
            self.scoma_dispatch(line, src, write, niu);
        }
        self.charge(cycle, self.params.scoma_home_cycles);
    }

    /// Start servicing one request for `line` (entry must not be pending).
    /// The entry is (re-)created on demand: a hardened home treats a
    /// request for an unknown line as a request for an uncached one.
    fn scoma_dispatch(&mut self, line: u64, src: u16, write: bool, niu: &mut Niu) {
        let state = self.scoma.dir.entry(line).or_default().state.clone();
        match state {
            DirState::Uncached => {
                self.scoma_grant_data(line, src, write, niu);
                self.scoma.stats.transitions.bump();
                self.scoma.dir.entry(line).or_default().state = if write {
                    DirState::Owned(src)
                } else {
                    DirState::Shared(vec![src])
                };
            }
            DirState::Shared(sharers) => {
                if !write {
                    self.scoma_grant_data(line, src, false, niu);
                    let e = self.scoma.dir.entry(line).or_default();
                    if let DirState::Shared(s) = &mut e.state {
                        if !s.contains(&src) {
                            s.push(src);
                            self.scoma.stats.transitions.bump();
                        }
                    }
                    return;
                }
                let upgrade = sharers.contains(&src);
                let others: Vec<u16> = sharers.iter().copied().filter(|&s| s != src).collect();
                if others.is_empty() {
                    if upgrade {
                        self.scoma_grant_upgrade(line, src, niu);
                    } else {
                        self.scoma_grant_data(line, src, true, niu);
                    }
                    self.scoma.stats.transitions.bump();
                    self.scoma.dir.entry(line).or_default().state = DirState::Owned(src);
                    return;
                }
                let svc_lq = self.cfg.svc_lq;
                for s in &others {
                    self.scoma.stats.invals.bump();
                    niu.sp().push_cmd(
                        Q_PROTO,
                        LocalCmd::SendDirect {
                            node: *s,
                            logical_q: svc_lq,
                            priority: Priority::Low,
                            data: encode_addr_msg(op::SCOMA_INV, line),
                            tagon: None,
                        },
                    );
                }
                self.scoma.dir.entry(line).or_default().pending = Some(Pending {
                    requester: src,
                    write: true,
                    acks_left: others.len() as u16,
                    upgrade,
                });
            }
            DirState::Owned(owner) => {
                if owner == src {
                    // The owner re-requesting: its DRAM copy is the valid
                    // one; grant by state change alone.
                    self.scoma_grant_upgrade_state(line, src, write, niu);
                    return;
                }
                self.scoma.stats.recalls.bump();
                let svc_lq = self.cfg.svc_lq;
                niu.sp().push_cmd(
                    Q_PROTO,
                    LocalCmd::SendDirect {
                        node: owner,
                        logical_q: svc_lq,
                        priority: Priority::Low,
                        data: encode_addr2_msg(op::SCOMA_RECALL, line, write as u64),
                        tagon: None,
                    },
                );
                self.scoma.dir.entry(line).or_default().pending = Some(Pending {
                    requester: src,
                    write,
                    acks_left: 0,
                    upgrade: false,
                });
            }
        }
    }

    /// Grant with data from home memory: BusRead the line into staging,
    /// then ship it with a state-setting remote write.
    fn scoma_grant_data(&mut self, line: u64, to: u16, write: bool, niu: &mut Niu) {
        self.scoma.stats.grants_data.bump();
        let addr = self.line_addr(niu, line);
        let st = staging::SCOMA_GRANT;
        let state = if write {
            ClsState::ReadWrite
        } else {
            ClsState::ReadOnly
        };
        let mut sp = niu.sp();
        sp.push_cmd(
            Q_PROTO,
            LocalCmd::BusRead {
                dram_addr: addr,
                sram: SramSel::S,
                sram_addr: st,
                len: CACHE_LINE as u32,
            },
        );
        sp.push_cmd(
            Q_PROTO,
            LocalCmd::SendRemoteWrite {
                node: to,
                remote_addr: addr,
                sram: SramSel::S,
                sram_addr: st,
                len: CACHE_LINE as u32,
                set_cls: Some(state),
            },
        );
    }

    /// Grant a write upgrade (requester already has the data): state
    /// change only.
    fn scoma_grant_upgrade(&mut self, line: u64, to: u16, niu: &mut Niu) {
        self.scoma.stats.grants_upgrade.bump();
        niu.sp().push_cmd(
            Q_PROTO,
            LocalCmd::SendRemoteCmd {
                node: to,
                cmd: RemoteCmdKind::SetCls {
                    line,
                    state: ClsState::ReadWrite.bits(),
                },
            },
        );
    }

    /// Grant to the current owner by state change (read or write).
    fn scoma_grant_upgrade_state(&mut self, line: u64, to: u16, write: bool, niu: &mut Niu) {
        self.scoma.stats.grants_upgrade.bump();
        let state = if write {
            ClsState::ReadWrite
        } else {
            ClsState::ReadOnly
        };
        niu.sp().push_cmd(
            Q_PROTO,
            LocalCmd::SendRemoteCmd {
                node: to,
                cmd: RemoteCmdKind::SetCls {
                    line,
                    state: state.bits(),
                },
            },
        );
    }

    /// Owner side: the home recalled a line we own.
    pub(crate) fn scoma_on_recall(&mut self, cycle: u64, home: u16, data: &Bytes, niu: &mut Niu) {
        let Some((_, line, write)) = crate::proto::decode_addr2_msg(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        let write = write != 0;
        self.scoma.stats.writebacks.bump();
        let addr = self.line_addr(niu, line);
        let st = staging::SCOMA_RECALL;
        let svc_lq = self.cfg.svc_lq;
        {
            let mut sp = niu.sp();
            // Force our aP caches to push any dirty data to local DRAM,
            // read the line, and ship it home — all ordered.
            sp.push_cmd(Q_PROTO, LocalCmd::BusFlush { addr });
            sp.push_cmd(
                Q_PROTO,
                LocalCmd::WriteSramU64 {
                    sram: SramSel::S,
                    addr: st,
                    data: op::SCOMA_WB as u64,
                },
            );
            sp.push_cmd(
                Q_PROTO,
                LocalCmd::WriteSramU64 {
                    sram: SramSel::S,
                    addr: st + 8,
                    data: line,
                },
            );
            sp.push_cmd(
                Q_PROTO,
                LocalCmd::BusRead {
                    dram_addr: addr,
                    sram: SramSel::S,
                    sram_addr: st + 16,
                    len: CACHE_LINE as u32,
                },
            );
            sp.push_cmd(
                Q_PROTO,
                LocalCmd::SendMsg {
                    header: MsgHeader::basic(0, 16 + CACHE_LINE as u8),
                    sram: SramSel::S,
                    addr: st,
                    raw_node: Some((home, svc_lq, Priority::High)),
                },
            );
            // Downgrade our copy.
            sp.set_cls(
                line,
                if write {
                    ClsState::Invalid
                } else {
                    ClsState::ReadOnly
                },
            );
        }
        self.charge(cycle, self.params.scoma_recall_cycles);
    }

    /// Home side: the owner's writeback arrived; land it in home memory
    /// and complete the pending request.
    pub(crate) fn scoma_on_writeback(
        &mut self,
        cycle: u64,
        owner: u16,
        data: &Bytes,
        niu: &mut Niu,
    ) {
        if data.len() < 16 + CACHE_LINE as usize {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        }
        let line = u64::from_le_bytes(data[8..16].try_into().expect("len checked"));
        let payload = &data[16..16 + CACHE_LINE as usize];
        let addr = self.line_addr(niu, line);
        let st = staging::SCOMA_WB;
        {
            let mut sp = niu.sp();
            // Land the payload in staging *through the ordered queue*: an
            // immediate write here would race a previous writeback's
            // still-queued SendRemoteWrite reading the same staging and
            // corrupt its grant.
            for (k, word) in payload.chunks(8).enumerate() {
                sp.push_cmd(
                    Q_PROTO,
                    LocalCmd::WriteSramU64 {
                        sram: SramSel::S,
                        addr: st + 8 * k as u32,
                        data: u64::from_le_bytes(word.try_into().expect("8-byte chunk")),
                    },
                );
            }
            sp.push_cmd(
                Q_PROTO,
                LocalCmd::BusWrite {
                    dram_addr: addr,
                    sram: SramSel::S,
                    sram_addr: st,
                    len: CACHE_LINE as u32,
                },
            );
        }
        let pend = self.scoma.dir.get_mut(&line).and_then(|e| e.pending.take());
        if let Some(p) = pend {
            self.scoma.stats.grants_data.bump();
            let state = if p.write {
                ClsState::ReadWrite
            } else {
                ClsState::ReadOnly
            };
            niu.sp().push_cmd(
                Q_PROTO,
                LocalCmd::SendRemoteWrite {
                    node: p.requester,
                    remote_addr: addr,
                    sram: SramSel::S,
                    sram_addr: st,
                    len: CACHE_LINE as u32,
                    set_cls: Some(state),
                },
            );
            self.scoma.stats.transitions.bump();
            let e = self.scoma.dir.entry(line).or_default();
            e.state = if p.write {
                DirState::Owned(p.requester)
            } else {
                DirState::Shared(vec![owner, p.requester])
            };
        } else {
            // Unsolicited writeback (no recall outstanding) — e.g. a
            // stale duplicate. The data landed in home memory above,
            // which is harmless (the owner's copy is authoritative), but
            // no grant follows; count the protocol inconsistency.
            self.stats.proto_errors.bump();
        }
        self.scoma_run_waiters(line, niu);
        self.charge(cycle, self.params.scoma_home_cycles);
    }

    /// Sharer side: invalidate our read-only copy and ack.
    pub(crate) fn scoma_on_inv(&mut self, cycle: u64, home: u16, data: &Bytes, niu: &mut Niu) {
        let Some((_, line)) = crate::proto::decode_addr_msg(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        let addr = self.line_addr(niu, line);
        let svc_lq = self.cfg.svc_lq;
        let mut sp = niu.sp();
        sp.push_cmd(Q_PROTO, LocalCmd::BusFlush { addr });
        sp.push_cmd(
            Q_PROTO,
            LocalCmd::SendDirect {
                node: home,
                logical_q: svc_lq,
                priority: Priority::High,
                data: encode_addr_msg(op::SCOMA_INV_ACK, line),
                tagon: None,
            },
        );
        sp.set_cls(line, ClsState::Invalid);
        self.charge(cycle, self.params.scoma_recall_cycles);
    }

    /// Home side: an invalidation ack arrived. Acks for lines with no
    /// entry, no pending transaction, or no acks outstanding are stale
    /// (e.g. a duplicate that slipped past the network's dedup, or a
    /// malformed message) — they are counted and dropped, never allowed
    /// to underflow the ack count or panic the home.
    pub(crate) fn scoma_on_inv_ack(&mut self, cycle: u64, data: &Bytes, niu: &mut Niu) {
        let Some((_, line)) = crate::proto::decode_addr_msg(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        let done = {
            let Some(p) = self
                .scoma
                .dir
                .get_mut(&line)
                .and_then(|e| e.pending.as_mut())
            else {
                self.stats.proto_errors.bump();
                self.charge(cycle, self.params.dispatch_cycles);
                return;
            };
            if p.acks_left == 0 {
                self.stats.proto_errors.bump();
                self.charge(cycle, self.params.dispatch_cycles);
                return;
            }
            p.acks_left -= 1;
            p.acks_left == 0
        };
        if done {
            let pend = self.scoma.dir.get_mut(&line).and_then(|e| e.pending.take());
            if let Some(p) = pend {
                if p.upgrade {
                    self.scoma_grant_upgrade(line, p.requester, niu);
                } else {
                    self.scoma_grant_data(line, p.requester, true, niu);
                }
                self.scoma.stats.transitions.bump();
                self.scoma.dir.entry(line).or_default().state = DirState::Owned(p.requester);
                self.scoma_run_waiters(line, niu);
            }
        }
        self.charge(cycle, self.params.scoma_home_cycles);
    }

    /// Dispatch queued requests for `line` until one blocks again.
    fn scoma_run_waiters(&mut self, line: u64, niu: &mut Niu) {
        loop {
            let next = {
                let Some(e) = self.scoma.dir.get_mut(&line) else {
                    break;
                };
                if e.pending.is_some() {
                    break;
                }
                e.waiting.pop_front()
            };
            let Some((src, write)) = next else {
                break;
            };
            self.scoma_dispatch(line, src, write, niu);
        }
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for DirState {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            DirState::Uncached => w.u8(0),
            DirState::Shared(nodes) => {
                w.u8(1);
                w.save(nodes);
            }
            DirState::Owned(node) => {
                w.u8(2);
                w.u16(*node);
            }
        }
    }
}
impl StateLoad for DirState {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => DirState::Uncached,
            1 => DirState::Shared(r.load()?),
            2 => DirState::Owned(r.u16()?),
            _ => return r.corrupt(),
        })
    }
}

impl StateSave for Pending {
    fn save(&self, w: &mut SnapWriter) {
        w.u16(self.requester);
        w.save(&self.write);
        w.u16(self.acks_left);
        w.save(&self.upgrade);
    }
}
impl StateLoad for Pending {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Pending {
            requester: r.u16()?,
            write: r.load()?,
            acks_left: r.u16()?,
            upgrade: r.load()?,
        })
    }
}

impl StateSave for DirEntry {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.state);
        w.save(&self.pending);
        w.save(&self.waiting);
    }
}
impl StateLoad for DirEntry {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DirEntry {
            state: r.load()?,
            pending: r.load()?,
            waiting: r.load()?,
        })
    }
}

impl StateSave for ScomaStats {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.local_misses);
        w.save(&self.home_reads);
        w.save(&self.home_writes);
        w.save(&self.recalls);
        w.save(&self.invals);
        w.save(&self.grants_data);
        w.save(&self.grants_upgrade);
        w.save(&self.writebacks);
        w.save(&self.transitions);
    }
}
impl StateLoad for ScomaStats {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ScomaStats {
            local_misses: r.load()?,
            home_reads: r.load()?,
            home_writes: r.load()?,
            recalls: r.load()?,
            invals: r.load()?,
            grants_data: r.load()?,
            grants_upgrade: r.load()?,
            writebacks: r.load()?,
            transitions: r.load()?,
        })
    }
}

impl StateSave for ScomaService {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.dir);
        w.save(&self.stats);
    }
}
impl StateLoad for ScomaService {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ScomaService {
            dir: r.load()?,
            stats: r.load()?,
        })
    }
}
