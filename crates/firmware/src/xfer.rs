//! Block-transfer firmware: approaches 2–5 of the paper's evaluation.
//!
//! | Approach | Sender side | Receiver side |
//! |---|---|---|
//! | 2 | firmware issues `BusRead` + TagOn `SendDirect` per chunk, alternating the two command queues for overlap | firmware issues `BusWrite` straight out of the receive slot + an in-order pointer update per chunk; completion notify after the queue quiesces |
//! | 3 | firmware issues one chained `Block(ReadTx)` per page; the hardware streams | none — data lands through the remote command queue; the notify rides the same ordered stream after the last page |
//! | 4 | as 3, but each page's `ReadTx` carries a page marker to the *receiver's sP*, which updates clsSRAM states as data arrives and notifies the job early at 25% | per-page `SetClsRange(ReadWrite)` + early notify |
//! | 5 | as 3 with `set_cls` delegated to the destination aBIU (`WriteDramSetCls`), early notify attached to the page crossing 25% | setup only (`SetClsRange(Pending)` + GO) |
//!
//! Approach 1 involves no firmware at all: the aP library packetizes into
//! Basic messages itself (see `voyager::blockxfer`).

use crate::engine::{asram_staging, Firmware, Q_PROTO, Q_SVC};
use crate::proto::{
    encode_addr_msg, encode_notify, op, Approach, XferData, XferPage, XferReq, XferSetup,
    XFER_DATA_LEN,
};
use bytes::Bytes;
use std::collections::HashMap;
use sv_arctic::Priority;
use sv_membus::CACHE_LINE;
use sv_niu::{BlockOp, ClsState, LocalCmd, Niu, SramSel};
use sv_sim::stats::Counter;

/// Approach-2 chunk size: the XferData header (18 B) plus the chunk must
/// fit the 88-byte packet payload.
pub const A2_CHUNK: u32 = 64;

/// Sender progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendPhase {
    /// Approaches 4/5: waiting for the receiver's GO after setup.
    WaitGo,
    Streaming,
}

/// One outbound transfer.
#[derive(Debug)]
pub struct SendXfer {
    /// The originating request.
    pub req: XferReq,
    /// Bytes sent so far.
    pub sent: u32,
    phase: SendPhase,
    /// Approach 2: which command queue takes the next chunk.
    toggle: usize,
    /// Approach 5: the early notify has been attached to a page.
    notify25_sent: bool,
}

/// One inbound transfer (approach 2 data tracking, approach 4 state
/// management).
#[derive(Debug)]
pub struct RecvXfer {
    /// Total transfer size in bytes.
    pub total: u32,
    /// Bytes received so far.
    pub received: u32,
    /// Logical queue that receives the completion notification.
    pub notify_lq: u16,
    /// Transfer approach (1-5).
    pub approach: u8,
    /// Whether the (early) notification has been delivered.
    pub notified: bool,
    /// Approach 2: all data seen; notify once the write queue quiesces.
    want_quiesce_notify: bool,
}

/// An active tracked-region flush (the diff-ing extension): a sweep over
/// the clsSRAM recording of `[base, +len)`, shipping only dirty lines.
#[derive(Debug)]
pub struct FlushXfer {
    /// Transfer identifier.
    pub xfer_id: u16,
    /// First clsSRAM line of the region.
    pub first_line: u64,
    /// Lines in the region.
    pub count: u64,
    /// Next line to examine.
    pub cursor: u64,
    /// Region base address.
    pub base: u64,
    /// Destination byte address.
    pub dst_addr: u64,
    /// Destination node.
    pub dst_node: u16,
    /// Logical queue that receives the completion notification.
    pub notify_lq: u16,
    /// Lines sent.
    pub lines_sent: u64,
}

/// Transfer service state + statistics.
#[derive(Debug, Default)]
pub struct XferService {
    sends: Vec<SendXfer>,
    recvs: HashMap<(u16, u16), RecvXfer>,
    flushes: Vec<FlushXfer>,
    rr: usize,
    /// Transfer requests accepted.
    pub requests: Counter,
    /// Completed sends.
    pub completed_sends: Counter,
    /// Chunks sent.
    pub chunks_sent: Counter,
    /// Pages issued.
    pub pages_issued: Counter,
    /// Completion notifications sent.
    pub notifies: Counter,
    /// Dirty lines shipped by tracked-region flushes.
    pub flush_lines_sent: Counter,
    /// Clean lines skipped by tracked-region flushes (the bytes diff-ing
    /// saved).
    pub flush_lines_skipped: Counter,
}

impl XferService {
    /// Whether any transfer is still in flight on this node.
    pub fn has_work(&self) -> bool {
        !self.sends.is_empty() || !self.recvs.is_empty() || !self.flushes.is_empty()
    }
}

impl Firmware {
    /// A local aP asked for a block transfer.
    pub(crate) fn xfer_on_request(&mut self, cycle: u64, data: &Bytes, niu: &mut Niu) {
        let Some(req) = XferReq::decode(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        // Malformed geometry is rejected, not asserted: a hardened
        // firmware survives a buggy (or adversarial) library.
        if req.src_addr % 8 != 0 || req.dst_addr % 8 != 0 || req.len % 8 != 0 {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        }
        self.xfer.requests.bump();
        let phase = match req.approach {
            Approach::SpManaged | Approach::BlockHw => SendPhase::Streaming,
            Approach::OptimisticSp | Approach::OptimisticHw => {
                if req.len % CACHE_LINE as u32 != 0 {
                    // Optimistic transfers are line-granular.
                    self.stats.proto_errors.bump();
                    self.charge(cycle, self.params.dispatch_cycles);
                    return;
                }
                let svc_lq = self.cfg.svc_lq;
                let setup = XferSetup {
                    xfer_id: req.xfer_id,
                    dst_addr: req.dst_addr,
                    len: req.len,
                    notify_lq: req.notify_lq,
                    approach: req.approach as u8,
                };
                niu.sp().push_cmd(
                    Q_PROTO,
                    LocalCmd::SendDirect {
                        node: req.dst_node,
                        logical_q: svc_lq,
                        priority: Priority::Low,
                        data: setup.encode(),
                        tagon: None,
                    },
                );
                SendPhase::WaitGo
            }
            Approach::ApDirect => {
                // Approach 1 never enters firmware; a request here is a
                // library bug.
                self.stats.proto_errors.bump();
                self.charge(cycle, self.params.dispatch_cycles);
                return;
            }
        };
        self.xfer.sends.push(SendXfer {
            req,
            sent: 0,
            phase,
            toggle: 0,
            notify25_sent: false,
        });
        self.charge(cycle, self.params.xfer_setup_cycles);
    }

    /// Approach 4/5 receiver: prepare the destination region.
    pub(crate) fn xfer_on_setup(&mut self, cycle: u64, src: u16, data: &Bytes, niu: &mut Niu) {
        let Some(s) = XferSetup::decode(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        let first = niu.map.scoma_line(s.dst_addr);
        let count = (s.len as u64) / CACHE_LINE;
        let svc_lq = self.cfg.svc_lq;
        let mut sp = niu.sp();
        sp.push_cmd(
            Q_PROTO,
            LocalCmd::SetClsRange {
                first,
                count,
                state: ClsState::Pending,
            },
        );
        // GO is ordered after the range update in the same queue, so the
        // sender can never race data ahead of the gating states.
        sp.push_cmd(
            Q_PROTO,
            LocalCmd::SendDirect {
                node: src,
                logical_q: svc_lq,
                priority: Priority::High,
                data: encode_addr_msg(op::XFER_GO, s.xfer_id as u64),
                tagon: None,
            },
        );
        if s.approach == Approach::OptimisticSp as u8 {
            self.xfer.recvs.insert(
                (src, s.xfer_id),
                RecvXfer {
                    total: s.len,
                    received: 0,
                    notify_lq: s.notify_lq,
                    approach: 4,
                    notified: false,
                    want_quiesce_notify: false,
                },
            );
        }
        self.charge(cycle, self.params.xfer_setup_cycles);
    }

    /// Approach 4/5 sender: receiver says go.
    pub(crate) fn xfer_on_go(&mut self, cycle: u64, data: &Bytes, niu: &mut Niu) {
        let _ = niu;
        if let Some((_, xfer_id)) = crate::proto::decode_addr_msg(data) {
            for s in &mut self.xfer.sends {
                if s.req.xfer_id == xfer_id as u16 && s.phase == SendPhase::WaitGo {
                    s.phase = SendPhase::Streaming;
                    break;
                }
            }
        } else {
            self.stats.proto_errors.bump();
        }
        self.charge(cycle, self.params.dispatch_cycles);
    }

    /// Approach 2 receiver: one data chunk arrived in the service queue.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn xfer_on_data(
        &mut self,
        cycle: u64,
        src: u16,
        data: &Bytes,
        sel: SramSel,
        payload_addr: u32,
        next_ptr: u16,
        niu: &mut Niu,
    ) {
        let svc_q = self.cfg.svc_q;
        let Some(hdr) = XferData::decode(data) else {
            // Still must free the slot.
            self.stats.proto_errors.bump();
            niu.sp().push_cmd(
                Q_SVC,
                LocalCmd::RxPtrUpdate {
                    q: svc_q,
                    consumer: next_ptr,
                },
            );
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        let chunk = (data.len() - XFER_DATA_LEN) as u32;
        let entry = self
            .xfer
            .recvs
            .entry((src, hdr.xfer_id))
            .or_insert(RecvXfer {
                total: hdr.total,
                received: 0,
                notify_lq: hdr.notify_lq,
                approach: 2,
                notified: false,
                want_quiesce_notify: false,
            });
        entry.received += chunk;
        if entry.received >= entry.total {
            entry.want_quiesce_notify = true;
        }
        // Write the chunk from the receive slot straight into DRAM, then
        // free the slot — ordered, so the buffer cannot be recycled under
        // the bus write.
        let mut sp = niu.sp();
        sp.push_cmd(
            Q_SVC,
            LocalCmd::BusWrite {
                dram_addr: hdr.dst_addr,
                sram: sel,
                sram_addr: payload_addr + XFER_DATA_LEN as u32,
                len: chunk,
            },
        );
        sp.push_cmd(
            Q_SVC,
            LocalCmd::RxPtrUpdate {
                q: svc_q,
                consumer: next_ptr,
            },
        );
        self.charge(cycle, self.params.dma_recv_chunk_cycles);
    }

    /// Approach 4 receiver: a page of data has landed (marker is ordered
    /// behind the data on the remote-command stream).
    pub(crate) fn xfer_on_page(&mut self, cycle: u64, src: u16, data: &Bytes, niu: &mut Niu) {
        let Some(p) = XferPage::decode(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        let first = niu.map.scoma_line(p.addr);
        let count = (p.len as u64) / CACHE_LINE;
        niu.sp().push_cmd(
            Q_PROTO,
            LocalCmd::SetClsRange {
                first,
                count,
                state: ClsState::ReadWrite,
            },
        );
        let node = self.cfg.node;
        let mut notify = None;
        let mut done = false;
        if let Some(entry) = self.xfer.recvs.get_mut(&(src, p.xfer_id)) {
            entry.received += p.len;
            if !entry.notified && entry.received as u64 * 4 >= entry.total as u64 {
                entry.notified = true;
                notify = Some((entry.notify_lq, p.xfer_id));
            }
            done = entry.received >= entry.total;
        }
        if let Some((lq, xid)) = notify {
            self.xfer.notifies.bump();
            // Ordered after the SetClsRange above: by the time the job
            // sees the notify, the early states are in place.
            niu.sp().push_cmd(
                Q_PROTO,
                LocalCmd::SendDirect {
                    node,
                    logical_q: lq,
                    priority: Priority::Low,
                    data: encode_notify(xid),
                    tagon: None,
                },
            );
        }
        if done {
            self.xfer.recvs.remove(&(src, p.xfer_id));
        }
        self.charge(cycle, self.params.a4_page_cycles);
    }

    /// A local aP requested a tracked-region flush.
    pub(crate) fn xfer_on_flush(&mut self, cycle: u64, data: &Bytes, niu: &mut Niu) {
        let Some(f) = crate::proto::XferFlush::decode(data) else {
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        };
        if !f.base.is_multiple_of(CACHE_LINE) || !(f.len as u64).is_multiple_of(CACHE_LINE) {
            // Flush regions must be line-aligned; reject rather than panic.
            self.stats.proto_errors.bump();
            self.charge(cycle, self.params.dispatch_cycles);
            return;
        }
        let first_line = niu.map.scoma_line(f.base);
        self.xfer.flushes.push(FlushXfer {
            xfer_id: f.xfer_id,
            first_line,
            count: f.len as u64 / CACHE_LINE,
            cursor: 0,
            base: f.base,
            dst_addr: f.dst_addr,
            dst_node: f.dst_node,
            notify_lq: f.notify_lq,
            lines_sent: 0,
        });
        self.charge(cycle, self.params.xfer_setup_cycles);
    }

    /// Make one unit of progress on an active flush; returns whether
    /// work was done.
    fn step_one_flush(&mut self, cycle: u64, niu: &mut Niu) -> bool {
        if self.xfer.flushes.is_empty() {
            return false;
        }
        if niu.sp().cmd_depth(Q_PROTO) > 40 {
            return false;
        }
        let scan_rate = self.params.flush_scan_lines_per_cycle.max(1);
        // Sweep clean lines until a dirty one (or the end) is found.
        let mut scanned = 0u64;
        let mut skipped = 0u64;
        let mut dirty: Option<u64> = None;
        {
            let f = &mut self.xfer.flushes[0];
            while f.cursor < f.count {
                let line = f.first_line + f.cursor;
                scanned += 1;
                if niu.clssram.get(line) == ClsState::ReadWrite {
                    dirty = Some(f.cursor);
                    break;
                }
                f.cursor += 1;
                skipped += 1;
                if scanned >= 16 * scan_rate {
                    break; // bounded work per engagement
                }
            }
        }
        self.xfer.flush_lines_skipped.add(skipped);
        let f = &mut self.xfer.flushes[0];
        match dirty {
            Some(off_lines) => {
                let off = off_lines * CACHE_LINE;
                let line = f.first_line + off_lines;
                let (node, src, dst) = (f.dst_node, f.base + off, f.dst_addr + off);
                f.cursor += 1;
                f.lines_sent += 1;
                self.xfer.flush_lines_sent.bump();
                let st = crate::engine::staging::SCOMA_GRANT;
                let mut sp = niu.sp();
                // Read the line (snoop-pushing any dirty cached copy),
                // ship it, and mark it clean — ordered.
                sp.push_cmd(
                    Q_PROTO,
                    LocalCmd::BusRead {
                        dram_addr: src,
                        sram: SramSel::S,
                        sram_addr: st,
                        len: CACHE_LINE as u32,
                    },
                );
                sp.push_cmd(
                    Q_PROTO,
                    LocalCmd::SendRemoteWrite {
                        node,
                        remote_addr: dst,
                        sram: SramSel::S,
                        sram_addr: st,
                        len: CACHE_LINE as u32,
                        set_cls: None,
                    },
                );
                sp.push_cmd(
                    Q_PROTO,
                    LocalCmd::SetCls {
                        line,
                        state: ClsState::Invalid,
                    },
                );
                self.charge(cycle, self.params.flush_line_cycles + scanned / scan_rate);
                true
            }
            None => {
                if f.cursor >= f.count {
                    // Sweep complete: notify the requesting job (ordered
                    // after the final line's commands in the same queue).
                    let (node, lq, xid) = (self.cfg.node, f.notify_lq, f.xfer_id);
                    self.xfer.flushes.remove(0);
                    self.xfer.notifies.bump();
                    niu.sp().push_cmd(
                        Q_PROTO,
                        LocalCmd::SendDirect {
                            node,
                            logical_q: lq,
                            priority: Priority::Low,
                            data: encode_notify(xid),
                            tagon: None,
                        },
                    );
                    self.charge(cycle, self.params.notify_cycles);
                } else {
                    // Scanned a clean stretch; charge the sweep.
                    self.charge(cycle, (scanned / scan_rate).max(1));
                }
                true
            }
        }
    }

    /// Step active transfers: one unit of progress per engagement.
    /// Returns whether work was done.
    pub(crate) fn step_xfers(&mut self, cycle: u64, niu: &mut Niu) -> bool {
        if self.step_one_flush(cycle, niu) {
            return true;
        }
        // Approach-2 completion notifies waiting for queue quiescence.
        let quiescent = niu.sp().cmd_quiescent(Q_SVC);
        if quiescent {
            let node = self.cfg.node;
            let mut fire = None;
            for (k, e) in self.xfer.recvs.iter_mut() {
                if e.want_quiesce_notify && !e.notified {
                    e.notified = true;
                    fire = Some((*k, e.notify_lq));
                    break;
                }
            }
            if let Some((k, lq)) = fire {
                self.xfer.notifies.bump();
                niu.sp().push_cmd(
                    Q_PROTO,
                    LocalCmd::SendDirect {
                        node,
                        logical_q: lq,
                        priority: Priority::Low,
                        data: encode_notify(k.1),
                        tagon: None,
                    },
                );
                self.xfer.recvs.remove(&k);
                self.charge(cycle, self.params.notify_cycles);
                return true;
            }
        }
        if self.xfer.sends.is_empty() {
            return false;
        }
        let n = self.xfer.sends.len();
        for k in 0..n {
            let i = (self.xfer.rr + k) % n;
            if self.step_one_send(cycle, i, niu) {
                self.xfer.rr = (i + 1) % n.max(1);
                return true;
            }
        }
        false
    }

    /// Try to make progress on send `i`; returns whether work was done.
    fn step_one_send(&mut self, cycle: u64, i: usize, niu: &mut Niu) -> bool {
        let (approach, phase, sent, total) = {
            let s = &self.xfer.sends[i];
            (s.req.approach, s.phase, s.sent, s.req.len)
        };
        if phase != SendPhase::Streaming {
            return false;
        }
        match approach {
            Approach::SpManaged => {
                let qi = self.xfer.sends[i].toggle;
                if niu.sp().cmd_depth(qi) > 40 {
                    return false;
                }
                let s = &mut self.xfer.sends[i];
                s.toggle ^= 1;
                let stage = asram_staging::A2[qi];
                let chunk = A2_CHUNK.min(total - sent);
                let hdr = XferData {
                    xfer_id: s.req.xfer_id,
                    dst_addr: s.req.dst_addr + sent as u64,
                    total,
                    notify_lq: s.req.notify_lq,
                };
                let (src_addr, dst_node) = (s.req.src_addr, s.req.dst_node);
                s.sent += chunk;
                let done = s.sent >= total;
                let svc_lq = self.cfg.svc_lq;
                let mut sp = niu.sp();
                sp.push_cmd(
                    qi,
                    LocalCmd::BusRead {
                        dram_addr: src_addr + sent as u64,
                        sram: SramSel::A,
                        sram_addr: stage,
                        len: chunk,
                    },
                );
                sp.push_cmd(
                    qi,
                    LocalCmd::SendDirect {
                        node: dst_node,
                        logical_q: svc_lq,
                        priority: Priority::Low,
                        data: hdr.encode(),
                        tagon: Some((SramSel::A, stage, chunk as u8)),
                    },
                );
                self.xfer.chunks_sent.bump();
                if done {
                    self.xfer.sends.remove(i);
                    self.xfer.completed_sends.bump();
                }
                self.charge(cycle, self.params.dma_chunk_cycles);
                true
            }
            Approach::BlockHw | Approach::OptimisticSp | Approach::OptimisticHw => {
                // One chained block operation per page; wait for the units.
                if niu.ctrl.block_read.is_some() || niu.ctrl.block_tx.is_some() {
                    return false;
                }
                if niu.sp().cmd_depth(Q_PROTO) > 40 {
                    return false;
                }
                let page = self.cfg.page;
                let svc_lq = self.cfg.svc_lq;
                let s = &mut self.xfer.sends[i];
                let page_len = page.min(total - sent);
                let last = sent + page_len >= total;
                let notify = match approach {
                    Approach::BlockHw => {
                        last.then(|| (s.req.notify_lq, encode_notify(s.req.xfer_id)))
                    }
                    Approach::OptimisticSp => Some((
                        svc_lq,
                        XferPage {
                            xfer_id: s.req.xfer_id,
                            addr: s.req.dst_addr + sent as u64,
                            len: page_len,
                        }
                        .encode(),
                    )),
                    Approach::OptimisticHw => {
                        let quarter = (total as u64).div_ceil(4);
                        if !s.notify25_sent && (sent + page_len) as u64 >= quarter {
                            s.notify25_sent = true;
                            Some((s.req.notify_lq, encode_notify(s.req.xfer_id)))
                        } else {
                            None
                        }
                    }
                    Approach::SpManaged | Approach::ApDirect => unreachable!(),
                };
                let set_cls = (approach == Approach::OptimisticHw).then_some(ClsState::ReadWrite);
                let op = BlockOp::ReadTx {
                    dram_addr: s.req.src_addr + sent as u64,
                    len: page_len,
                    sram_addr: asram_staging::BLOCK,
                    node: s.req.dst_node,
                    remote_addr: s.req.dst_addr + sent as u64,
                    set_cls,
                    notify,
                };
                s.sent += page_len;
                let done = s.sent >= total;
                niu.sp().push_cmd(Q_PROTO, LocalCmd::Block(op));
                self.xfer.pages_issued.bump();
                if done {
                    self.xfer.sends.remove(i);
                    self.xfer.completed_sends.bump();
                }
                self.charge(cycle, self.params.block_issue_cycles);
                true
            }
            Approach::ApDirect => false,
        }
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for SendPhase {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            SendPhase::WaitGo => 0,
            SendPhase::Streaming => 1,
        });
    }
}
impl StateLoad for SendPhase {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => SendPhase::WaitGo,
            1 => SendPhase::Streaming,
            _ => return r.corrupt(),
        })
    }
}

impl StateSave for SendXfer {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.req);
        w.u32(self.sent);
        w.save(&self.phase);
        w.usize_(self.toggle);
        w.save(&self.notify25_sent);
    }
}
impl StateLoad for SendXfer {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let s = SendXfer {
            req: r.load()?,
            sent: r.u32()?,
            phase: r.load()?,
            toggle: r.usize_()?,
            notify25_sent: r.load()?,
        };
        // The approach-2 toggle indexes the two command queues.
        if s.toggle > 1 {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        Ok(s)
    }
}

impl StateSave for RecvXfer {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.total);
        w.u32(self.received);
        w.u16(self.notify_lq);
        w.u8(self.approach);
        w.save(&self.notified);
        w.save(&self.want_quiesce_notify);
    }
}
impl StateLoad for RecvXfer {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RecvXfer {
            total: r.u32()?,
            received: r.u32()?,
            notify_lq: r.u16()?,
            approach: r.u8()?,
            notified: r.load()?,
            want_quiesce_notify: r.load()?,
        })
    }
}

impl StateSave for FlushXfer {
    fn save(&self, w: &mut SnapWriter) {
        w.u16(self.xfer_id);
        w.u64(self.first_line);
        w.u64(self.count);
        w.u64(self.cursor);
        w.u64(self.base);
        w.u64(self.dst_addr);
        w.u16(self.dst_node);
        w.u16(self.notify_lq);
        w.u64(self.lines_sent);
    }
}
impl StateLoad for FlushXfer {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FlushXfer {
            xfer_id: r.u16()?,
            first_line: r.u64()?,
            count: r.u64()?,
            cursor: r.u64()?,
            base: r.u64()?,
            dst_addr: r.u64()?,
            dst_node: r.u16()?,
            notify_lq: r.u16()?,
            lines_sent: r.u64()?,
        })
    }
}

impl StateSave for XferService {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.sends);
        w.save(&self.recvs);
        w.save(&self.flushes);
        w.usize_(self.rr);
        w.save(&self.requests);
        w.save(&self.completed_sends);
        w.save(&self.chunks_sent);
        w.save(&self.pages_issued);
        w.save(&self.notifies);
        w.save(&self.flush_lines_sent);
        w.save(&self.flush_lines_skipped);
    }
}
impl StateLoad for XferService {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(XferService {
            sends: r.load()?,
            recvs: r.load()?,
            flushes: r.load()?,
            rr: r.usize_()?,
            requests: r.load()?,
            completed_sends: r.load()?,
            chunks_sent: r.load()?,
            pages_issued: r.load()?,
            notifies: r.load()?,
            flush_lines_sent: r.load()?,
            flush_lines_skipped: r.load()?,
        })
    }
}
