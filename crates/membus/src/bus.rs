//! Split-transaction snoopy bus.
//!
//! The bus is advanced one 66 MHz bus cycle at a time by the owning node.
//! Protocol per transaction:
//!
//! 1. **Arbitration + address tenure** — one tenure at a time, FIFO among
//!    requests, lasting [`BusParams::addr_tenure_cycles`].
//! 2. **Snoop window** — at the tenure's final cycle the bus emits
//!    [`BusEvent::Snoop`]; the orchestrator shows the operation to every
//!    snooper (caches, aBIU, memory controller), merges their
//!    [`SnoopVerdict`]s and calls [`Bus::resolve_snoop`] *within the same
//!    cycle*, mirroring the wired-OR ARTRY/SHD lines of the 60X bus.
//! 3. **ARTRY** — the tenure is cancelled and automatically re-arbitrated
//!    after [`BusParams::retry_delay_cycles`] (the 604's behaviour; the
//!    retry loop consumes address bandwidth but no data bandwidth, which
//!    is exactly the cost S-COMA stalls impose on the real machine).
//! 4. **Data tenure** — data transfers are scheduled on the shared data
//!    bus in address-tenure order, starting no earlier than the supplier's
//!    latency allows, each occupying `beats + turnaround` cycles.
//!    [`BusEvent::Completed`] fires when the last beat lands.
//!
//! Address tenures pipeline with data tenures (split transaction), so a
//! burst-read stream saturates the data bus, not the address bus.

use crate::op::{BusOp, SnoopVerdict};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use sv_sim::stats::Counter;

/// Bus timing parameters, in bus cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusParams {
    /// Arbitration + address + snoop-response window.
    pub addr_tenure_cycles: u64,
    /// Delay before an ARTRY'd master re-requests.
    pub retry_delay_cycles: u64,
    /// Dead cycle between consecutive data tenures.
    pub data_turnaround_cycles: u64,
}

impl Default for BusParams {
    fn default() -> Self {
        BusParams {
            addr_tenure_cycles: 3,
            retry_delay_cycles: 4,
            data_turnaround_cycles: 1,
        }
    }
}

/// Events reported by [`Bus::tick`] / [`Bus::resolve_snoop`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BusEvent {
    /// The snoop window of this operation is open; the orchestrator must
    /// call [`Bus::resolve_snoop`] before the next tick.
    Snoop(BusOp),
    /// The operation was ARTRY'd and will re-arbitrate automatically.
    Retried(BusOp),
    /// The operation finished (last data beat, or end of the snoop window
    /// for address-only operations). The verdict is included so masters
    /// can see SHD (install Shared vs Exclusive).
    Completed(BusOp, SnoopVerdict),
}

/// Running bus statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BusStats {
    /// Address tenures started.
    pub tenures: Counter,
    /// ARTRY retries observed.
    pub retries: Counter,
    /// Transactions completed.
    pub completions: Counter,
    /// Busy data-bus cycles (beats only, excluding turnaround).
    pub data_cycles: u64,
    /// Total bytes moved on the data bus.
    pub data_bytes: u64,
}

/// The bus state machine. See module docs for the protocol.
#[derive(Debug)]
pub struct Bus {
    /// Timing/geometry parameters.
    pub params: BusParams,
    queue: VecDeque<BusOp>,
    retry_wait: Vec<(u64, BusOp)>,
    addr_phase: Option<(BusOp, u64)>,
    snoop_pending: bool,
    data_free: u64,
    inflight: VecDeque<(u64, BusOp, SnoopVerdict)>,
    /// Running statistics.
    pub stats: BusStats,
}

impl Bus {
    /// A bus with the given timing parameters.
    pub fn new(params: BusParams) -> Self {
        Bus {
            params,
            queue: VecDeque::new(),
            retry_wait: Vec::new(),
            addr_phase: None,
            snoop_pending: false,
            data_free: 0,
            inflight: VecDeque::new(),
            stats: BusStats::default(),
        }
    }

    /// Enqueue a transaction request (the master keeps its own outstanding
    /// limit; the bus accepts any number).
    pub fn request(&mut self, op: BusOp) {
        self.queue.push_back(op);
    }

    /// Whether any work (queued, retrying, in tenure, or in data phase)
    /// remains.
    pub fn busy(&self) -> bool {
        !self.queue.is_empty()
            || !self.retry_wait.is_empty()
            || self.addr_phase.is_some()
            || !self.inflight.is_empty()
    }

    /// Number of requests waiting for an address tenure.
    pub fn queued(&self) -> usize {
        self.queue.len() + self.retry_wait.len()
    }

    /// Earliest cycle >= `cycle` at which [`Bus::tick`] can change state
    /// (or emit an event), or `None` when the bus is idle. Ticking the bus
    /// at any cycle before the returned one is a pure no-op, so an
    /// event-driven run loop may skip those cycles; waking *earlier* than
    /// necessary is always safe.
    pub fn next_event_cycle(&self, cycle: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |c: u64| {
            let c = c.max(cycle);
            next = Some(next.map_or(c, |n: u64| n.min(c)));
        };
        for &(t, _) in &self.retry_wait {
            consider(t);
        }
        if let Some(&(end, _, _)) = self.inflight.front() {
            consider(end);
        }
        match self.addr_phase {
            Some((_, end)) => consider(end),
            // A queued request is promoted into its address tenure on the
            // very next tick.
            None if !self.queue.is_empty() => consider(cycle),
            None => {}
        }
        next
    }

    /// Advance to bus cycle `cycle`. Must be called with strictly
    /// increasing cycles; any [`BusEvent::Snoop`] emitted must be resolved
    /// via [`Bus::resolve_snoop`] before the next call.
    ///
    /// Convenience wrapper over [`Bus::tick_into`] that allocates a fresh
    /// event list; hot callers should reuse a scratch buffer instead.
    pub fn tick(&mut self, cycle: u64) -> Vec<BusEvent> {
        let mut out = Vec::new();
        self.tick_into(cycle, &mut out);
        out
    }

    /// [`Bus::tick`], appending events to a caller-reused buffer instead
    /// of allocating one (the steady-state path of the node tick loop).
    pub fn tick_into(&mut self, cycle: u64, out: &mut Vec<BusEvent>) {
        assert!(
            !self.snoop_pending,
            "previous snoop window was never resolved"
        );

        // Re-arm retried operations whose delay has elapsed.
        if !self.retry_wait.is_empty() {
            let mut i = 0;
            while i < self.retry_wait.len() {
                if self.retry_wait[i].0 <= cycle {
                    let (_, op) = self.retry_wait.remove(i);
                    self.queue.push_back(op);
                } else {
                    i += 1;
                }
            }
        }

        // Complete finished data tenures (in order).
        while let Some(&(end, op, verdict)) = self.inflight.front() {
            if end <= cycle {
                self.inflight.pop_front();
                self.stats.completions.bump();
                out.push(BusEvent::Completed(op, verdict));
            } else {
                break;
            }
        }

        // Address tenure progress.
        if let Some((op, end)) = self.addr_phase {
            if end <= cycle {
                self.snoop_pending = true;
                out.push(BusEvent::Snoop(op));
            }
        } else if let Some(op) = self.queue.pop_front() {
            self.stats.tenures.bump();
            self.addr_phase = Some((op, cycle + self.params.addr_tenure_cycles));
        }
    }

    /// Resolve the open snoop window with the merged verdict. Returns any
    /// immediately produced events (retry or address-only completion).
    ///
    /// Convenience wrapper over [`Bus::resolve_snoop_into`]; hot callers
    /// should reuse a scratch buffer instead.
    pub fn resolve_snoop(&mut self, cycle: u64, verdict: SnoopVerdict) -> Vec<BusEvent> {
        let mut out = Vec::new();
        self.resolve_snoop_into(cycle, verdict, &mut out);
        out
    }

    /// [`Bus::resolve_snoop`], appending events to a caller-reused buffer
    /// instead of allocating one.
    pub fn resolve_snoop_into(
        &mut self,
        cycle: u64,
        verdict: SnoopVerdict,
        out: &mut Vec<BusEvent>,
    ) {
        assert!(self.snoop_pending, "no snoop window open");
        self.snoop_pending = false;
        let (op, _) = self.addr_phase.take().expect("tenure present");

        if verdict.artry {
            self.stats.retries.bump();
            self.retry_wait
                .push((cycle + self.params.retry_delay_cycles, op));
            out.push(BusEvent::Retried(op));
            return;
        }

        let beats = op.beats();
        if beats == 0 {
            // Address-only operations complete with the snoop window.
            self.stats.completions.bump();
            out.push(BusEvent::Completed(op, verdict));
            return;
        }

        let start = self.data_free.max(cycle + verdict.supply_latency);
        let end = start + beats;
        self.data_free = end + self.params.data_turnaround_cycles;
        self.stats.data_cycles += beats;
        self.stats.data_bytes += op.bytes as u64;
        self.inflight.push_back((end, op, verdict));
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for BusParams {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.addr_tenure_cycles);
        w.u64(self.retry_delay_cycles);
        w.u64(self.data_turnaround_cycles);
    }
}
impl StateLoad for BusParams {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(BusParams {
            addr_tenure_cycles: r.u64()?,
            retry_delay_cycles: r.u64()?,
            data_turnaround_cycles: r.u64()?,
        })
    }
}

impl StateSave for BusStats {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.tenures);
        w.save(&self.retries);
        w.save(&self.completions);
        w.u64(self.data_cycles);
        w.u64(self.data_bytes);
    }
}
impl StateLoad for BusStats {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(BusStats {
            tenures: r.load()?,
            retries: r.load()?,
            completions: r.load()?,
            data_cycles: r.u64()?,
            data_bytes: r.u64()?,
        })
    }
}

impl StateSave for Bus {
    fn save(&self, w: &mut SnapWriter) {
        // Params are serialized with the machine's SystemParams, but the
        // bus keeps its own copy; snapshot it verbatim for fidelity.
        w.u64(self.params.addr_tenure_cycles);
        w.u64(self.params.retry_delay_cycles);
        w.u64(self.params.data_turnaround_cycles);
        w.save(&self.queue);
        w.save(&self.retry_wait);
        w.save(&self.addr_phase);
        w.save(&self.snoop_pending);
        w.u64(self.data_free);
        w.save(&self.inflight);
        w.save(&self.stats);
    }
}
impl StateLoad for Bus {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Bus {
            params: BusParams {
                addr_tenure_cycles: r.u64()?,
                retry_delay_cycles: r.u64()?,
                data_turnaround_cycles: r.u64()?,
            },
            queue: r.load()?,
            retry_wait: r.load()?,
            addr_phase: r.load()?,
            snoop_pending: r.load()?,
            data_free: r.u64()?,
            inflight: r.load()?,
            stats: r.load()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BusOpKind, MasterId};

    /// Drive the bus with a fixed snoop verdict until quiescent, returning
    /// completion times by tag.
    fn run(
        bus: &mut Bus,
        verdict: impl Fn(&BusOp) -> SnoopVerdict,
        max_cycles: u64,
    ) -> Vec<(u64, u64)> {
        let mut done = Vec::new();
        for c in 0..max_cycles {
            let evs = bus.tick(c);
            for ev in evs {
                match ev {
                    BusEvent::Snoop(op) => {
                        let evs2 = bus.resolve_snoop(c, verdict(&op));
                        for e in evs2 {
                            if let BusEvent::Completed(op, _) = e {
                                done.push((c, op.tag));
                            }
                        }
                    }
                    BusEvent::Completed(op, _) => done.push((c, op.tag)),
                    BusEvent::Retried(_) => {}
                }
            }
            if !bus.busy() {
                break;
            }
        }
        done
    }

    fn dram_verdict(latency: u64) -> impl Fn(&BusOp) -> SnoopVerdict {
        move |_| SnoopVerdict {
            artry: false,
            shared: false,
            supply_latency: latency,
        }
    }

    #[test]
    fn single_burst_read_timeline() {
        let mut bus = Bus::new(BusParams::default());
        bus.request(BusOp::burst(BusOpKind::Read, 0x1000, MasterId::Ap, 7));
        let done = run(&mut bus, dram_verdict(8), 100);
        assert_eq!(done.len(), 1);
        // Tenure starts cycle 0, snoop at cycle 3, data starts 3+8=11,
        // 4 beats end at 15, completion observed at tick 15.
        assert_eq!(done[0], (15, 7));
        assert_eq!(bus.stats.tenures.get(), 1);
        assert_eq!(bus.stats.data_bytes, 32);
    }

    #[test]
    fn address_only_completes_at_snoop() {
        let mut bus = Bus::new(BusParams::default());
        bus.request(BusOp::addr_only(BusOpKind::Kill, 0x40, MasterId::Ap, 1));
        let done = run(&mut bus, dram_verdict(0), 100);
        assert_eq!(done, vec![(3, 1)]);
    }

    #[test]
    fn pipelined_bursts_limited_by_data_bus() {
        // Many back-to-back line reads: steady state is one line per
        // (4 beats + 1 turnaround) = 5 cycles once DRAM latency is hidden.
        let mut bus = Bus::new(BusParams::default());
        for i in 0..10 {
            bus.request(BusOp::burst(BusOpKind::Read, i * 32, MasterId::Ap, i));
        }
        let done = run(&mut bus, dram_verdict(8), 300);
        assert_eq!(done.len(), 10);
        // Completion spacing in steady state: limited by the address bus
        // here (one tenure per 3-cycle window... data bus needs 5).
        let d9 = done[9].0;
        let d8 = done[8].0;
        assert_eq!(d9 - d8, 5, "steady-state line rate must be data-bus bound");
    }

    #[test]
    fn artry_requeues_and_eventually_completes() {
        // ARTRY the op twice, then let it pass.
        let mut bus = Bus::new(BusParams::default());
        bus.request(BusOp::burst(BusOpKind::Read, 0, MasterId::Ap, 3));
        let artry_left = std::cell::Cell::new(2);
        let done = run(
            &mut bus,
            move |_| {
                if artry_left.get() > 0 {
                    artry_left.set(artry_left.get() - 1);
                    SnoopVerdict::retry()
                } else {
                    SnoopVerdict::default()
                }
            },
            200,
        );
        assert_eq!(done.len(), 1);
        assert_eq!(bus.stats.retries.get(), 2);
        // Each retry costs tenure(3) + delay(4); two retries push the
        // final snoop to cycle 3 + 2*(4+1+3)... verify it completed late.
        assert!(done[0].0 > 15, "retries must delay completion: {:?}", done);
    }

    #[test]
    fn fifo_ordering_of_masters() {
        let mut bus = Bus::new(BusParams::default());
        bus.request(BusOp::burst(BusOpKind::Read, 0, MasterId::Ap, 0));
        bus.request(BusOp::burst(BusOpKind::Read, 64, MasterId::ABiu, 1));
        bus.request(BusOp::burst(BusOpKind::Read, 128, MasterId::Ap, 2));
        let done = run(&mut bus, dram_verdict(2), 200);
        let tags: Vec<u64> = done.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![0, 1, 2]);
    }

    #[test]
    fn single_beat_writes_are_cheap() {
        let mut bus = Bus::new(BusParams::default());
        bus.request(BusOp::single(
            BusOpKind::SingleWrite,
            0x10,
            8,
            MasterId::Ap,
            0,
        ));
        let done = run(&mut bus, dram_verdict(0), 50);
        // Snoop at 3, one beat ends at 4.
        assert_eq!(done[0].0, 4);
    }

    #[test]
    #[should_panic(expected = "never resolved")]
    fn unresolved_snoop_is_a_bug() {
        let mut bus = Bus::new(BusParams::default());
        bus.request(BusOp::burst(BusOpKind::Read, 0, MasterId::Ap, 0));
        for c in 0..10 {
            let _ = bus.tick(c); // never resolves the snoop window
        }
    }

    #[test]
    fn queued_counts_retries() {
        let mut bus = Bus::new(BusParams::default());
        bus.request(BusOp::burst(BusOpKind::Read, 0, MasterId::Ap, 0));
        assert_eq!(bus.queued(), 1);
        let evs = bus.tick(0);
        assert!(evs.is_empty());
        assert_eq!(bus.queued(), 0); // now in tenure
        assert!(bus.busy());
    }
}
