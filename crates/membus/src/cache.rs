//! Set-associative snoopy MESI cache.
//!
//! Used for the 604e's L1 data cache and the in-line L2. The cache is a
//! *timing and coherence-state* model: functional data lives in the
//! node's [`crate::dram::MemoryArray`] and is logically written through at
//! completion instants (the simulation is globally ordered, so
//! write-through functional data with MESI-governed timing is
//! indistinguishable from a writeback data model — while being far
//! simpler). What the MESI states govern is what the paper's experiments
//! measure: which accesses hit locally and which become bus transactions.
//!
//! Snoop behaviour on an external operation follows the 604 discipline,
//! with cache-to-cache supply modeled as a supplier latency rather than
//! an ARTRY-writeback-retry loop (timing-equivalent to first order, and
//! it keeps ARTRY free for its load-bearing role in S-COMA).

use crate::op::{line_of, Addr, BusOpKind, SnoopVerdict, CACHE_LINE};
use serde::{Deserialize, Serialize};
use sv_sim::stats::Counter;

/// MESI coherence states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mesi {
    /// Exclusive and dirty.
    Modified,
    /// Sole clean copy.
    Exclusive,
    /// Another agent holds the line (drives SHD).
    Shared,
    /// No valid copy.
    Invalid,
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Size bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cycles a snoop hit needs before this cache can supply a modified
    /// line to the bus.
    pub push_latency_cycles: u64,
}

impl CacheParams {
    /// 604e L1 data cache: 32 KB, 4-way.
    pub fn l1_604e() -> Self {
        CacheParams {
            size_bytes: 32 * 1024,
            ways: 4,
            push_latency_cycles: 2,
        }
    }

    /// 512 KB in-line L2 card, direct-mapped.
    pub fn l2_voyager() -> Self {
        CacheParams {
            size_bytes: 512 * 1024,
            ways: 1,
            push_latency_cycles: 3,
        }
    }

    fn sets(&self) -> usize {
        (self.size_bytes / CACHE_LINE) as usize / self.ways
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    state: Mesi,
    /// Larger = more recently used.
    lru: u64,
}

/// Per-cache statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses.
    pub misses: Counter,
    /// Lines evicted.
    pub evictions: Counter,
    /// Dirty evictions.
    pub dirty_evictions: Counter,
    /// Snoop hits.
    pub snoop_hits: Counter,
    /// Snoop pushes.
    pub snoop_pushes: Counter,
}

/// Outcome of snooping an external bus operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnoopOutcome {
    /// Merged snoop verdict.
    pub verdict: SnoopVerdict,
    /// A modified line was pushed out; the owning node should count a
    /// writeback (functional data is already in memory — see module docs).
    pub pushed_dirty: bool,
}

/// Sets per dirty-tracking chunk: deltas snapshot the way arrays in
/// groups of this many consecutive sets.
const CHUNK_SETS: usize = 64;

/// One level of snoopy MESI cache.
#[derive(Debug)]
pub struct SnoopyCache {
    /// Timing/geometry parameters.
    pub params: CacheParams,
    sets: Vec<Vec<Way>>,
    tick: u64,
    /// Running statistics.
    pub stats: CacheStats,
    /// Bitmap over [`CHUNK_SETS`]-set chunks: bit set = some way in the
    /// chunk changed since the last checkpoint cut. Runtime bookkeeping,
    /// never serialized; a fresh cache starts all-dirty.
    dirty_chunks: Vec<u64>,
    /// `tick` or `stats` changed since the last checkpoint cut.
    dirty_meta: bool,
}

impl SnoopyCache {
    /// An empty cache with the given geometry. Starts all-dirty: callers
    /// that swap in a fresh cache mid-run (e.g. a flush) must not be able
    /// to hide the replacement from delta snapshots.
    pub fn new(params: CacheParams) -> Self {
        let sets: Vec<Vec<Way>> = (0..params.sets())
            .map(|_| {
                (0..params.ways)
                    .map(|_| Way {
                        tag: u64::MAX,
                        state: Mesi::Invalid,
                        lru: 0,
                    })
                    .collect()
            })
            .collect();
        let words = sets.len().div_ceil(CHUNK_SETS).div_ceil(64);
        SnoopyCache {
            params,
            sets,
            tick: 0,
            stats: CacheStats::default(),
            dirty_chunks: vec![u64::MAX; words],
            dirty_meta: true,
        }
    }

    #[inline]
    fn index(&self, addr: Addr) -> (usize, u64) {
        let line = line_of(addr) / CACHE_LINE;
        let set = (line as usize) % self.sets.len();
        (set, line)
    }

    #[inline]
    fn mark_set(&mut self, set: usize) {
        let chunk = set / CHUNK_SETS;
        self.dirty_chunks[chunk / 64] |= 1u64 << (chunk % 64);
    }

    /// Current state of the line containing `addr`, without touching LRU.
    pub fn peek(&self, addr: Addr) -> Mesi {
        let (set, tag) = self.index(addr);
        self.sets[set]
            .iter()
            .find(|w| w.tag == tag && w.state != Mesi::Invalid)
            .map(|w| w.state)
            .unwrap_or(Mesi::Invalid)
    }

    /// Look up `addr`, updating LRU and hit/miss statistics.
    pub fn lookup(&mut self, addr: Addr) -> Mesi {
        self.tick += 1;
        self.dirty_meta = true;
        let (set, tag) = self.index(addr);
        let tick = self.tick;
        let mut hit = Mesi::Invalid;
        for w in &mut self.sets[set] {
            if w.tag == tag && w.state != Mesi::Invalid {
                w.lru = tick;
                hit = w.state;
                break;
            }
        }
        if hit != Mesi::Invalid {
            self.stats.hits.bump();
            self.mark_set(set);
            return hit;
        }
        self.stats.misses.bump();
        Mesi::Invalid
    }

    /// Change the state of a resident line (e.g. S→M after a Kill). No-op
    /// if the line is absent.
    pub fn set_state(&mut self, addr: Addr, state: Mesi) {
        let (set, tag) = self.index(addr);
        for i in 0..self.sets[set].len() {
            let w = &mut self.sets[set][i];
            if w.tag == tag && w.state != Mesi::Invalid {
                w.state = state;
                self.mark_set(set);
                return;
            }
        }
    }

    /// Install a line in `state`, evicting the LRU way if the set is full.
    /// Returns the evicted line `(addr, was_dirty)` if any.
    pub fn install(&mut self, addr: Addr, state: Mesi) -> Option<(Addr, bool)> {
        assert_ne!(state, Mesi::Invalid);
        self.tick += 1;
        self.dirty_meta = true;
        let (set, tag) = self.index(addr);
        self.mark_set(set);
        let tick = self.tick;
        let ways = &mut self.sets[set];
        // Already resident: just update.
        if let Some(w) = ways
            .iter_mut()
            .find(|w| w.tag == tag && w.state != Mesi::Invalid)
        {
            w.state = state;
            w.lru = tick;
            return None;
        }
        // Free way?
        if let Some(w) = ways.iter_mut().find(|w| w.state == Mesi::Invalid) {
            *w = Way {
                tag,
                state,
                lru: tick,
            };
            return None;
        }
        // Evict LRU.
        let victim = ways.iter_mut().min_by_key(|w| w.lru).expect("nonzero ways");
        let evicted_addr = victim.tag * CACHE_LINE;
        let dirty = victim.state == Mesi::Modified;
        *victim = Way {
            tag,
            state,
            lru: tick,
        };
        self.stats.evictions.bump();
        if dirty {
            self.stats.dirty_evictions.bump();
        }
        Some((evicted_addr, dirty))
    }

    /// Drop the line containing `addr`; returns whether it was dirty.
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let (set, tag) = self.index(addr);
        for i in 0..self.sets[set].len() {
            let w = &mut self.sets[set][i];
            if w.tag == tag && w.state != Mesi::Invalid {
                let dirty = w.state == Mesi::Modified;
                w.state = Mesi::Invalid;
                self.mark_set(set);
                return Some(dirty);
            }
        }
        None
    }

    /// React to an external bus operation (issued by another master).
    pub fn snoop(&mut self, kind: BusOpKind, addr: Addr) -> SnoopOutcome {
        let (set, tag) = self.index(addr);
        let push_latency = self.params.push_latency_cycles;
        let way = self.sets[set]
            .iter_mut()
            .find(|w| w.tag == tag && w.state != Mesi::Invalid);
        let Some(w) = way else {
            return SnoopOutcome::default();
        };
        self.stats.snoop_hits.bump();
        self.dirty_meta = true;
        // Inlined mark_set: `w` still borrows `self.sets`.
        let chunk = set / CHUNK_SETS;
        self.dirty_chunks[chunk / 64] |= 1u64 << (chunk % 64);
        let mut out = SnoopOutcome::default();
        match kind {
            BusOpKind::Read | BusOpKind::SingleRead => {
                if w.state == Mesi::Modified {
                    out.pushed_dirty = true;
                    out.verdict.supply_latency = push_latency;
                    self.stats.snoop_pushes.bump();
                }
                w.state = Mesi::Shared;
                out.verdict.shared = true;
            }
            BusOpKind::Rwitm | BusOpKind::Flush | BusOpKind::SingleWrite | BusOpKind::WriteLine => {
                if w.state == Mesi::Modified {
                    out.pushed_dirty = true;
                    out.verdict.supply_latency = push_latency;
                    self.stats.snoop_pushes.bump();
                }
                w.state = Mesi::Invalid;
            }
            BusOpKind::Kill => {
                // Kill is only legal when no other cache holds M; losing
                // dirty data here would be a protocol bug upstream.
                debug_assert_ne!(w.state, Mesi::Modified, "Kill hit a Modified line");
                w.state = Mesi::Invalid;
            }
            BusOpKind::Clean => {
                if w.state == Mesi::Modified {
                    out.pushed_dirty = true;
                    out.verdict.supply_latency = push_latency;
                    self.stats.snoop_pushes.bump();
                }
                w.state = Mesi::Shared;
                out.verdict.shared = true;
            }
        }
        out
    }

    /// Number of resident (non-invalid) lines; test/diagnostic helper.
    pub fn resident_lines(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|w| w.state != Mesi::Invalid)
            .count()
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for CacheParams {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.size_bytes);
        w.usize_(self.ways);
        w.u64(self.push_latency_cycles);
    }
}
impl StateLoad for CacheParams {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let p = CacheParams {
            size_bytes: r.u64()?,
            ways: r.usize_()?,
            push_latency_cycles: r.u64()?,
        };
        // The set computation divides by both; a geometry that yields
        // zero sets would panic on the first lookup.
        if p.ways == 0 || (p.size_bytes / CACHE_LINE) as usize / p.ways == 0 {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        Ok(p)
    }
}

impl StateSave for Mesi {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            Mesi::Modified => 0,
            Mesi::Exclusive => 1,
            Mesi::Shared => 2,
            Mesi::Invalid => 3,
        });
    }
}
impl StateLoad for Mesi {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        Ok(match r.u8()? {
            0 => Mesi::Modified,
            1 => Mesi::Exclusive,
            2 => Mesi::Shared,
            3 => Mesi::Invalid,
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        })
    }
}

impl StateSave for CacheStats {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.hits);
        w.save(&self.misses);
        w.save(&self.evictions);
        w.save(&self.dirty_evictions);
        w.save(&self.snoop_hits);
        w.save(&self.snoop_pushes);
    }
}
impl StateLoad for CacheStats {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CacheStats {
            hits: r.load()?,
            misses: r.load()?,
            evictions: r.load()?,
            dirty_evictions: r.load()?,
            snoop_hits: r.load()?,
            snoop_pushes: r.load()?,
        })
    }
}

impl StateSave for SnoopyCache {
    /// Geometry is rebuilt from params; only the resident ways (tag,
    /// state, LRU age) and the LRU tick are snapshotted.
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.tick);
        w.save(&self.stats);
        for set in &self.sets {
            for way in set {
                w.u64(way.tag);
                w.save(&way.state);
                w.u64(way.lru);
            }
        }
    }
}

impl SnoopyCache {
    /// Restore a cache snapshotted under the same geometry `params`.
    /// The result is conservatively all-dirty (inherited from
    /// [`SnoopyCache::new`]) until the next checkpoint cut.
    pub fn load_with_params(
        params: CacheParams,
        r: &mut SnapReader<'_>,
    ) -> Result<Self, SnapshotError> {
        let mut cache = SnoopyCache::new(params);
        cache.tick = r.u64()?;
        cache.stats = r.load()?;
        for set in &mut cache.sets {
            for way in set {
                way.tag = r.u64()?;
                way.state = r.load()?;
                way.lru = r.u64()?;
            }
        }
        Ok(cache)
    }

    /// Number of [`CHUNK_SETS`]-set chunks covering this geometry.
    fn chunk_count(&self) -> usize {
        self.sets.len().div_ceil(CHUNK_SETS)
    }

    /// True if anything (ways, tick, or stats) changed since the last
    /// checkpoint cut.
    pub fn has_dirty(&self) -> bool {
        self.dirty_meta || self.dirty_chunks.iter().any(|w| *w != 0)
    }

    /// Forget all dirty marks — called when a checkpoint cut captures the
    /// current contents.
    pub fn clear_dirty(&mut self) {
        self.dirty_meta = false;
        self.dirty_chunks.fill(0);
    }

    /// Emit the LRU tick, stats, and only the dirty chunks of the way
    /// array, in ascending chunk order (deterministic bytes).
    pub fn save_delta(&self, w: &mut SnapWriter) {
        w.u64(self.tick);
        w.save(&self.stats);
        let chunks: Vec<usize> = (0..self.chunk_count())
            .filter(|c| self.dirty_chunks[c / 64] & (1u64 << (c % 64)) != 0)
            .collect();
        w.usize_(chunks.len());
        for c in chunks {
            w.u64(c as u64);
            let lo = c * CHUNK_SETS;
            let hi = (lo + CHUNK_SETS).min(self.sets.len());
            for set in &self.sets[lo..hi] {
                for way in set {
                    w.u64(way.tag);
                    w.save(&way.state);
                    w.u64(way.lru);
                }
            }
        }
    }

    /// Apply a delta produced by [`SnoopyCache::save_delta`] under the
    /// same geometry. Applied chunks are re-marked dirty; callers clear
    /// the marks once the whole chain has been applied.
    pub fn apply_delta(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.tick = r.u64()?;
        self.stats = r.load()?;
        self.dirty_meta = true;
        let n = r.count()?;
        let chunks = self.chunk_count();
        for _ in 0..n {
            let at = r.offset();
            let c = r.u64()?;
            if c as usize >= chunks {
                return Err(SnapshotError::Corrupt { offset: at });
            }
            let c = c as usize;
            let lo = c * CHUNK_SETS;
            let hi = (lo + CHUNK_SETS).min(self.sets.len());
            for set in &mut self.sets[lo..hi] {
                for way in set {
                    way.tag = r.u64()?;
                    way.state = r.load()?;
                    way.lru = r.u64()?;
                }
            }
            self.dirty_chunks[c / 64] |= 1u64 << (c % 64);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SnoopyCache {
        // 8 sets x 2 ways x 32B = 512 B.
        SnoopyCache::new(CacheParams {
            size_bytes: 512,
            ways: 2,
            push_latency_cycles: 2,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0x100), Mesi::Invalid);
        c.install(0x100, Mesi::Exclusive);
        assert_eq!(c.lookup(0x100), Mesi::Exclusive);
        assert_eq!(c.lookup(0x11f), Mesi::Exclusive); // same line
        assert_eq!(c.stats.hits.get(), 2);
        assert_eq!(c.stats.misses.get(), 1);
    }

    #[test]
    fn lru_eviction_prefers_least_recent() {
        let mut c = small();
        // Set stride is 8 lines * 32 B = 256 B.
        c.install(0x000, Mesi::Exclusive);
        c.install(0x100, Mesi::Exclusive); // same set, second way
        c.lookup(0x000); // make 0x000 most recent
        let evicted = c.install(0x200, Mesi::Exclusive).expect("eviction");
        assert_eq!(evicted, (0x100, false));
        assert_eq!(c.peek(0x000), Mesi::Exclusive);
        assert_eq!(c.peek(0x100), Mesi::Invalid);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        c.install(0x000, Mesi::Modified);
        c.install(0x100, Mesi::Exclusive);
        let (addr, dirty) = c.install(0x200, Mesi::Exclusive).unwrap();
        assert_eq!(addr, 0x000);
        assert!(dirty);
        assert_eq!(c.stats.dirty_evictions.get(), 1);
    }

    #[test]
    fn snoop_read_demotes_and_supplies() {
        let mut c = small();
        c.install(0x40, Mesi::Modified);
        let o = c.snoop(BusOpKind::Read, 0x40);
        assert!(o.pushed_dirty);
        assert!(o.verdict.shared);
        assert_eq!(o.verdict.supply_latency, 2);
        assert_eq!(c.peek(0x40), Mesi::Shared);
        // Second read: shared, no push.
        let o2 = c.snoop(BusOpKind::Read, 0x40);
        assert!(!o2.pushed_dirty);
        assert!(o2.verdict.shared);
    }

    #[test]
    fn snoop_rwitm_invalidates() {
        let mut c = small();
        c.install(0x40, Mesi::Shared);
        let o = c.snoop(BusOpKind::Rwitm, 0x40);
        assert!(!o.pushed_dirty);
        assert_eq!(c.peek(0x40), Mesi::Invalid);
    }

    #[test]
    fn snoop_single_write_pushes_modified() {
        // The remote command queue writing into DRAM must flush the aP's
        // dirty copy first; the cache reacts to the snooped single write.
        let mut c = small();
        c.install(0x80, Mesi::Modified);
        let o = c.snoop(BusOpKind::SingleWrite, 0x84);
        assert!(o.pushed_dirty);
        assert_eq!(c.peek(0x80), Mesi::Invalid);
    }

    #[test]
    fn snoop_miss_is_silent() {
        let mut c = small();
        let o = c.snoop(BusOpKind::Read, 0x40);
        assert_eq!(o, SnoopOutcome::default());
        assert_eq!(c.stats.snoop_hits.get(), 0);
    }

    #[test]
    fn set_state_upgrade() {
        let mut c = small();
        c.install(0x40, Mesi::Shared);
        c.set_state(0x40, Mesi::Modified);
        assert_eq!(c.peek(0x40), Mesi::Modified);
        c.set_state(0x999999, Mesi::Modified); // absent: no-op
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small();
        c.install(0x40, Mesi::Modified);
        assert_eq!(c.invalidate(0x40), Some(true));
        assert_eq!(c.invalidate(0x40), None);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn reinstall_updates_in_place() {
        let mut c = small();
        c.install(0x40, Mesi::Shared);
        assert!(c.install(0x40, Mesi::Modified).is_none());
        assert_eq!(c.peek(0x40), Mesi::Modified);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn geometry_604e() {
        let l1 = SnoopyCache::new(CacheParams::l1_604e());
        assert_eq!(l1.sets.len(), 256);
        let l2 = SnoopyCache::new(CacheParams::l2_voyager());
        assert_eq!(l2.sets.len(), 16384);
    }
}
