//! DRAM timing model and functional memory contents.
//!
//! [`DramTimer`] models the memory controller as a single-ported resource
//! with a fixed first-access latency: concurrent accesses queue behind
//! each other. [`MemoryArray`] is the sparse byte store holding the
//! *functional* contents of a node's DRAM; it is also reused by the NIU
//! crate for SRAM contents.

use crate::op::Addr;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// DRAM timing parameters, in bus cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramParams {
    /// Cycles from snoop resolution to the first data beat.
    pub first_access_cycles: u64,
    /// Cycles the controller stays busy after starting an access (bank
    /// occupancy), independent of the data-bus transfer itself.
    pub occupancy_cycles: u64,
}

impl Default for DramParams {
    fn default() -> Self {
        DramParams {
            first_access_cycles: 8,
            occupancy_cycles: 6,
        }
    }
}

/// Memory-controller availability tracker.
#[derive(Debug, Default)]
pub struct DramTimer {
    busy_until: u64,
    /// Accesses performed.
    pub accesses: u64,
    /// Queue delay cycles.
    pub queue_delay_cycles: u64,
}

impl DramTimer {
    /// Supply latency (in cycles, relative to `cycle`) for an access
    /// arbitrated at `cycle`, accounting for controller occupancy.
    pub fn supply_latency(&mut self, cycle: u64, params: &DramParams) -> u64 {
        self.accesses += 1;
        let start = self.busy_until.max(cycle);
        self.queue_delay_cycles += start - cycle;
        self.busy_until = start + params.occupancy_cycles;
        (start - cycle) + params.first_access_cycles
    }
}

const PAGE: usize = 4096;

/// Sentinel for the "last page marked dirty" micro-cache: no page.
const NO_PAGE: u64 = u64::MAX;

/// Sparse byte-addressable memory. Unwritten bytes read as zero.
///
/// Every write also records the touched page in a dirty set so delta
/// snapshots can emit only pages changed since the last checkpoint cut.
/// The dirty set is runtime bookkeeping: it is never serialized, and a
/// loaded array starts conservatively all-dirty.
#[derive(Debug, Clone)]
pub struct MemoryArray {
    pages: HashMap<u64, Box<[u8; PAGE]>>,
    /// Pages written since the last [`MemoryArray::clear_dirty`].
    dirty: HashSet<u64>,
    /// Last page inserted into `dirty` — writes are bursty and page-local,
    /// so this skips the hash insert on the (hot) repeated-page case.
    last_dirty: u64,
}

impl Default for MemoryArray {
    fn default() -> Self {
        MemoryArray {
            pages: HashMap::new(),
            dirty: HashSet::new(),
            last_dirty: NO_PAGE,
        }
    }
}

impl MemoryArray {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        let mut a = addr;
        let mut off = 0;
        while off < buf.len() {
            let page = a / PAGE as u64;
            let po = (a % PAGE as u64) as usize;
            let n = (PAGE - po).min(buf.len() - off);
            match self.pages.get(&page) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[po..po + n]),
                None => buf[off..off + n].fill(0),
            }
            a += n as u64;
            off += n;
        }
    }

    /// Write `buf` starting at `addr`.
    pub fn write(&mut self, addr: Addr, buf: &[u8]) {
        let mut a = addr;
        let mut off = 0;
        while off < buf.len() {
            let page = a / PAGE as u64;
            let po = (a % PAGE as u64) as usize;
            let n = (PAGE - po).min(buf.len() - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE]));
            p[po..po + n].copy_from_slice(&buf[off..off + n]);
            if self.last_dirty != page {
                self.dirty.insert(page);
                self.last_dirty = page;
            }
            a += n as u64;
            off += n;
        }
    }

    /// Read a little-endian u64.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Read `len` bytes into a fresh vector.
    pub fn read_vec(&self, addr: Addr, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v);
        v
    }

    /// Fill `[addr, addr+len)` with a deterministic pattern derived from
    /// `seed` — used by tests and workloads to verify end-to-end transfers.
    pub fn fill_pattern(&mut self, addr: Addr, len: usize, seed: u64) {
        let mut buf = vec![0u8; len];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xFF51_AFD7_ED55_8CCD)
                >> 32) as u8;
        }
        self.write(addr, &buf);
    }

    /// Number of backing pages allocated so far.
    pub fn pages_allocated(&self) -> usize {
        self.pages.len()
    }

    /// True if any page has been written since the last
    /// [`MemoryArray::clear_dirty`].
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Forget all dirty marks — called when a checkpoint cut captures the
    /// current contents.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
        self.last_dirty = NO_PAGE;
    }

    /// Emit only dirty pages, in ascending index order so identical change
    /// sets produce identical delta bytes.
    pub fn save_delta(&self, w: &mut SnapWriter) {
        let mut idx: Vec<u64> = self
            .dirty
            .iter()
            .copied()
            .filter(|i| self.pages.contains_key(i))
            .collect();
        idx.sort_unstable();
        w.usize_(idx.len());
        for i in idx {
            w.u64(i);
            w.raw(&self.pages[&i][..]);
        }
    }

    /// Apply a delta produced by [`MemoryArray::save_delta`], overwriting
    /// the listed pages. Applied pages are re-marked dirty; callers clear
    /// the marks once the whole chain has been applied.
    pub fn apply_delta(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.count()?;
        for _ in 0..n {
            let i = r.u64()?;
            let at = r.offset();
            let body: [u8; PAGE] = r
                .take(PAGE)?
                .try_into()
                .map_err(|_| SnapshotError::Corrupt { offset: at })?;
            self.pages.insert(i, Box::new(body));
            self.dirty.insert(i);
        }
        self.last_dirty = NO_PAGE;
        Ok(())
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for DramParams {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.first_access_cycles);
        w.u64(self.occupancy_cycles);
    }
}
impl StateLoad for DramParams {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DramParams {
            first_access_cycles: r.u64()?,
            occupancy_cycles: r.u64()?,
        })
    }
}

impl StateSave for DramTimer {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.busy_until);
        w.u64(self.accesses);
        w.u64(self.queue_delay_cycles);
    }
}
impl StateLoad for DramTimer {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DramTimer {
            busy_until: r.u64()?,
            accesses: r.u64()?,
            queue_delay_cycles: r.u64()?,
        })
    }
}

impl StateSave for MemoryArray {
    /// Pages are written in ascending index order so identical memory
    /// images produce identical snapshot bytes.
    fn save(&self, w: &mut SnapWriter) {
        w.usize_(self.pages.len());
        let mut idx: Vec<u64> = self.pages.keys().copied().collect();
        idx.sort_unstable();
        for i in idx {
            w.u64(i);
            w.raw(&self.pages[&i][..]);
        }
    }
}
impl StateLoad for MemoryArray {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.count()?;
        let mut pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let i = r.u64()?;
            let at = r.offset();
            let body: [u8; PAGE] = r
                .take(PAGE)?
                .try_into()
                .map_err(|_| SnapshotError::Corrupt { offset: at })?;
            if pages.insert(i, Box::new(body)).is_some() {
                return Err(SnapshotError::Corrupt { offset: at });
            }
        }
        // Conservative: a freshly loaded array counts as all-dirty until
        // the next checkpoint cut clears it.
        let dirty = pages.keys().copied().collect();
        Ok(MemoryArray {
            pages,
            dirty,
            last_dirty: NO_PAGE,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let m = MemoryArray::new();
        let mut b = [0xAA; 16];
        m.read(0x1_0000, &mut b);
        assert_eq!(b, [0; 16]);
    }

    #[test]
    fn write_read_roundtrip_across_pages() {
        let mut m = MemoryArray::new();
        let data: Vec<u8> = (0..=255).collect();
        // Straddle a page boundary.
        m.write(4096 - 100, &data);
        assert_eq!(m.read_vec(4096 - 100, 256), data);
        assert_eq!(m.pages_allocated(), 2);
    }

    #[test]
    fn u64_accessors() {
        let mut m = MemoryArray::new();
        m.write_u64(8, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u64(8), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u64(0), 0);
    }

    #[test]
    fn pattern_is_deterministic_and_seed_sensitive() {
        let mut a = MemoryArray::new();
        let mut b = MemoryArray::new();
        a.fill_pattern(0, 64, 42);
        b.fill_pattern(0, 64, 42);
        assert_eq!(a.read_vec(0, 64), b.read_vec(0, 64));
        b.fill_pattern(0, 64, 43);
        assert_ne!(a.read_vec(0, 64), b.read_vec(0, 64));
    }

    #[test]
    fn dram_timer_queues_contending_accesses() {
        let p = DramParams::default();
        let mut t = DramTimer::default();
        // Back-to-back accesses at the same cycle: the second queues.
        assert_eq!(t.supply_latency(100, &p), 8);
        assert_eq!(t.supply_latency(100, &p), 8 + 6);
        assert_eq!(t.queue_delay_cycles, 6);
        // A later access after the controller freed sees base latency.
        assert_eq!(t.supply_latency(200, &p), 8);
        assert_eq!(t.accesses, 3);
    }
}
