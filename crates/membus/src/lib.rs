#![warn(missing_docs)]
//! # sv-membus — PowerPC 60X-style memory bus model
//!
//! StarT-Voyager plugs its NIU into the second processor slot of an
//! unmodified 604e SMP, so every communication mechanism in the paper is
//! ultimately a sequence of **coherent memory-bus transactions**. This
//! crate models that bus and the devices on it:
//!
//! - [`op`]: the bus operation vocabulary (burst reads, read-with-intent-
//!   to-modify, kills, uncached single-beat operations…), masters, and
//!   snoop verdicts including **ARTRY** (address retry) — the mechanism
//!   S-COMA leans on to stall the aP until remote data arrives.
//! - [`bus`]: a split-transaction, pipelined bus: one address tenure at a
//!   time, a snoop window resolved by the node orchestrator, and a shared
//!   data bus scheduled in address-tenure order. The bus is a pure
//!   timing/ordering machine; data movement is performed functionally by
//!   the orchestrator at completion instants.
//! - [`cache`]: set-associative snoopy MESI caches with LRU replacement,
//!   composed into the 604e's L1 + in-line L2 hierarchy by the core crate.
//! - [`dram`]: the memory controller timing model and [`dram::MemoryArray`],
//!   a sparse byte-addressable store used for functional data.
//!
//! Determinism: every structure here is advanced explicitly by the owning
//! node; there is no interior mutability and no hidden ordering.

pub mod bus;
pub mod cache;
pub mod dram;
pub mod op;

pub use bus::{Bus, BusEvent, BusParams, BusStats};
pub use cache::{CacheParams, Mesi, SnoopOutcome, SnoopyCache};
pub use dram::{DramParams, DramTimer, MemoryArray};
pub use op::{Addr, BusOp, BusOpKind, MasterId, SnoopVerdict, BEAT_BYTES, CACHE_LINE};
