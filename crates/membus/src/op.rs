//! Bus operation vocabulary.
//!
//! A pruned but faithful subset of the 60X transaction set — the
//! operations the StarT-Voyager mechanisms actually exercise. Addresses
//! are physical. Burst operations always move one 32-byte cache line;
//! single-beat operations move 1–8 bytes (uncached loads/stores, pointer
//! updates, Express messages).

use serde::{Deserialize, Serialize};

/// Physical address.
pub type Addr = u64;

/// Cache-line size in bytes (604e: 32 B lines).
pub const CACHE_LINE: u64 = 32;

/// Data-bus width in bytes (64-bit 60X data bus).
pub const BEAT_BYTES: u64 = 8;

/// Align an address down to its cache line.
#[inline]
pub fn line_of(addr: Addr) -> Addr {
    addr & !(CACHE_LINE - 1)
}

/// Identity of a bus master on one node's memory bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MasterId {
    /// The application processor (via its cache-miss machine).
    Ap,
    /// The NIU's aP-side bus interface unit, mastering on behalf of CTRL,
    /// the sP, or remote command-queue operations.
    ABiu,
}

/// Bus transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusOpKind {
    /// Burst read of a cache line (cacheable load miss).
    Read,
    /// Burst read with intent to modify (cacheable store miss).
    Rwitm,
    /// Address-only invalidate: upgrade S→M without data transfer.
    Kill,
    /// Burst write of a dirty line back to memory (castout / snoop push).
    WriteLine,
    /// Single-beat uncached read (1–8 bytes).
    SingleRead,
    /// Single-beat uncached write (1–8 bytes).
    SingleWrite,
    /// Address-only flush: force writeback + invalidate in all caches.
    Flush,
    /// Address-only clean: force writeback, leave shared.
    Clean,
}

impl BusOpKind {
    /// Whether this transaction carries data on the data bus.
    pub fn has_data(self) -> bool {
        !matches!(self, BusOpKind::Kill | BusOpKind::Flush | BusOpKind::Clean)
    }

    /// Whether the master *receives* data (reads) rather than drives it.
    pub fn is_read(self) -> bool {
        matches!(
            self,
            BusOpKind::Read | BusOpKind::Rwitm | BusOpKind::SingleRead
        )
    }

    /// Whether this is a burst (full cache line) transaction.
    pub fn is_burst(self) -> bool {
        matches!(
            self,
            BusOpKind::Read | BusOpKind::Rwitm | BusOpKind::WriteLine
        )
    }
}

/// One bus transaction request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusOp {
    /// Bus-operation kind.
    pub kind: BusOpKind,
    /// Target byte address.
    pub addr: Addr,
    /// Transfer size in bytes: [`CACHE_LINE`] for bursts, 1–8 for singles,
    /// 0 for address-only operations.
    pub bytes: u32,
    /// Issuing bus master.
    pub master: MasterId,
    /// Master-chosen tag returned on completion, so the master can match
    /// split-transaction completions to its outstanding requests.
    pub tag: u64,
}

impl BusOp {
    /// A burst transaction on the line containing `addr`.
    pub fn burst(kind: BusOpKind, addr: Addr, master: MasterId, tag: u64) -> Self {
        debug_assert!(kind.is_burst());
        BusOp {
            kind,
            addr: line_of(addr),
            bytes: CACHE_LINE as u32,
            master,
            tag,
        }
    }

    /// A single-beat transaction.
    pub fn single(kind: BusOpKind, addr: Addr, bytes: u32, master: MasterId, tag: u64) -> Self {
        debug_assert!(matches!(
            kind,
            BusOpKind::SingleRead | BusOpKind::SingleWrite
        ));
        debug_assert!(bytes >= 1 && bytes <= BEAT_BYTES as u32);
        BusOp {
            kind,
            addr,
            bytes,
            master,
            tag,
        }
    }

    /// An address-only transaction.
    pub fn addr_only(kind: BusOpKind, addr: Addr, master: MasterId, tag: u64) -> Self {
        debug_assert!(!kind.has_data());
        BusOp {
            kind,
            addr: line_of(addr),
            bytes: 0,
            master,
            tag,
        }
    }

    /// Number of data-bus beats this transfer occupies.
    pub fn beats(&self) -> u64 {
        if !self.kind.has_data() {
            0
        } else {
            (self.bytes as u64).div_ceil(BEAT_BYTES)
        }
    }
}

/// The combined snoop verdict for one address tenure, assembled by the
/// node orchestrator from every snooper's individual response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SnoopVerdict {
    /// Some snooper asserted ARTRY: the tenure is aborted and the master
    /// will re-arbitrate. (S-COMA's stall-until-data mechanism; also a
    /// cache holding the line Modified, which pushes it out first.)
    pub artry: bool,
    /// Some snooper holds the line Shared/Exclusive (drives SHD).
    pub shared: bool,
    /// Extra cycles before the data supplier can begin driving data
    /// (DRAM access latency, SRAM port latency, or castout-push delay).
    pub supply_latency: u64,
}

impl SnoopVerdict {
    /// Merge another snooper's response into the verdict (wired-OR, max
    /// of supplier latencies).
    pub fn merge(&mut self, other: SnoopVerdict) {
        self.artry |= other.artry;
        self.shared |= other.shared;
        self.supply_latency = self.supply_latency.max(other.supply_latency);
    }

    /// Convenience: an ARTRY verdict.
    pub fn retry() -> Self {
        SnoopVerdict {
            artry: true,
            ..Default::default()
        }
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for MasterId {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            MasterId::Ap => 0,
            MasterId::ABiu => 1,
        });
    }
}
impl StateLoad for MasterId {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        Ok(match r.u8()? {
            0 => MasterId::Ap,
            1 => MasterId::ABiu,
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        })
    }
}

impl StateSave for BusOpKind {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            BusOpKind::Read => 0,
            BusOpKind::Rwitm => 1,
            BusOpKind::Kill => 2,
            BusOpKind::WriteLine => 3,
            BusOpKind::SingleRead => 4,
            BusOpKind::SingleWrite => 5,
            BusOpKind::Flush => 6,
            BusOpKind::Clean => 7,
        });
    }
}
impl StateLoad for BusOpKind {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        Ok(match r.u8()? {
            0 => BusOpKind::Read,
            1 => BusOpKind::Rwitm,
            2 => BusOpKind::Kill,
            3 => BusOpKind::WriteLine,
            4 => BusOpKind::SingleRead,
            5 => BusOpKind::SingleWrite,
            6 => BusOpKind::Flush,
            7 => BusOpKind::Clean,
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        })
    }
}

impl StateSave for BusOp {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.kind);
        w.u64(self.addr);
        w.u32(self.bytes);
        w.save(&self.master);
        w.u64(self.tag);
    }
}
impl StateLoad for BusOp {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(BusOp {
            kind: r.load()?,
            addr: r.u64()?,
            bytes: r.u32()?,
            master: r.load()?,
            tag: r.u64()?,
        })
    }
}

impl StateSave for SnoopVerdict {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.artry);
        w.save(&self.shared);
        w.u64(self.supply_latency);
    }
}
impl StateLoad for SnoopVerdict {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SnoopVerdict {
            artry: r.load()?,
            shared: r.load()?,
            supply_latency: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(31), 0);
        assert_eq!(line_of(32), 32);
        assert_eq!(line_of(0x1234_5678), 0x1234_5660);
    }

    #[test]
    fn op_beats() {
        let r = BusOp::burst(BusOpKind::Read, 100, MasterId::Ap, 0);
        assert_eq!(r.addr, 96);
        assert_eq!(r.beats(), 4);
        let s = BusOp::single(BusOpKind::SingleWrite, 8, 4, MasterId::ABiu, 0);
        assert_eq!(s.beats(), 1);
        let k = BusOp::addr_only(BusOpKind::Kill, 64, MasterId::Ap, 0);
        assert_eq!(k.beats(), 0);
        assert!(!BusOpKind::Kill.has_data());
        assert!(BusOpKind::Rwitm.is_read() && BusOpKind::Rwitm.is_burst());
    }

    #[test]
    fn verdict_merge_is_wired_or() {
        let mut v = SnoopVerdict::default();
        v.merge(SnoopVerdict {
            artry: false,
            shared: true,
            supply_latency: 3,
        });
        v.merge(SnoopVerdict {
            artry: true,
            shared: false,
            supply_latency: 8,
        });
        assert!(v.artry && v.shared);
        assert_eq!(v.supply_latency, 8);
        assert!(SnoopVerdict::retry().artry);
    }
}
