//! The aP-side bus interface unit (aBIU).
//!
//! The aBIU sits between the aP's 604 bus and CTRL. In every bus cycle it
//! observes the current address tenure and decides — from the address map,
//! the clsSRAM state, and its pending tables — whether to ignore the
//! operation, claim and service it from SRAM, transform it into CTRL
//! commands (pointer updates, Express compose), retry it (ARTRY), or
//! forward it to the sP. It also *masters* the bus on behalf of CTRL:
//! block operations and remote commands become [`AbiuRequest`]s that the
//! node issues as real bus transactions.
//!
//! This module holds the aBIU's state and pure decision logic; the
//! side-effectful servicing lives in [`crate::niu`] where SRAM and CTRL
//! state are reachable.

use crate::addrmap::{AddressMap, Region};
use crate::sram::{ClsState, SramSel};
use bytes::Bytes;
use std::collections::{HashMap, HashSet, VecDeque};
use sv_membus::{BusOp, BusOpKind, MasterId, SnoopVerdict};
use sv_sim::stats::Counter;

/// How the aBIU reacts to an observed aP bus operation (classification
/// only; servicing happens at completion time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// Variant fields are named self-descriptively; the variants themselves
// are documented above each one.
#[allow(missing_docs)]
pub enum ClaimKind {
    /// Not ours; the memory controller or another agent handles it.
    Ignore,
    /// Claimed: serviced from SRAM (buffer window, shadow pointers).
    Sram { off: u32 },
    /// Claimed: a pointer-update store (all information in the address).
    PtrUpdate { is_rx: bool, q: u8, value: u16 },
    /// Claimed: Express transmit store.
    ExpressTx { q: u8, dest: u16, tag: u8 },
    /// Claimed: Express receive load.
    ExpressRx { q: u8 },
    /// Claimed NUMA operation (store captured / load supplied from the
    /// reply buffer).
    Numa,
    /// S-COMA / NUMA retry: the operation is ARTRY'd.
    Retry,
}

/// Functional data movement the node performs when an aBIU-mastered bus
/// operation completes.
#[derive(Debug, Clone, PartialEq)]
pub enum DataMove {
    /// Copy DRAM → SRAM (block read, command-queue BusRead).
    DramToSram {
        /// DRAM byte address.
        dram: u64,
        /// Which SRAM bank.
        sram: SramSel,
        /// SRAM byte address.
        sram_addr: u32,
        /// Length in bytes.
        len: u32,
    },
    /// Copy SRAM → DRAM (command-queue BusWrite).
    SramToDram {
        /// Which SRAM bank.
        sram: SramSel,
        /// SRAM byte address.
        sram_addr: u32,
        /// DRAM byte address.
        dram: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Write carried bytes into DRAM (remote command data landing).
    BytesToDram {
        /// Destination DRAM address.
        dram: u64,
        /// Bytes to write.
        data: Bytes,
    },
    /// No data movement (address-only operations).
    None,
}

/// A bus-master request from the NIU to the node: issue this operation on
/// the aP bus, perform `move_` when it completes, then hand `id` back via
/// `Niu::abiu_completed`.
#[derive(Debug, Clone, PartialEq)]
pub struct AbiuRequest {
    /// Request identifier.
    pub id: u64,
    /// Bus-operation kind.
    pub kind: BusOpKind,
    /// Target byte address.
    pub addr: u64,
    /// Size in bytes.
    pub bytes: u32,
    /// Functional data movement to perform at completion.
    pub move_: DataMove,
}

impl AbiuRequest {
    /// The bus operation this request issues.
    pub fn bus_op(&self) -> BusOp {
        match self.kind {
            BusOpKind::SingleRead | BusOpKind::SingleWrite => {
                BusOp::single(self.kind, self.addr, self.bytes, MasterId::ABiu, self.id)
            }
            k if k.is_burst() => BusOp::burst(k, self.addr, MasterId::ABiu, self.id),
            k => BusOp::addr_only(k, self.addr, MasterId::ABiu, self.id),
        }
    }
}

/// Requests the aBIU forwards to the sP through the aBIU→sBIU queue.
// Variant fields are named self-descriptively; the variants themselves
// are documented above each one.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum SpRequest {
    /// A NUMA-region load the sP must satisfy (aP is retrying meanwhile).
    NumaLoad { addr: u64, bytes: u32 },
    /// A NUMA-region store whose data the aBIU captured.
    NumaStore { addr: u64, data: Bytes },
    /// An S-COMA state-check failure: line missing or held in the wrong
    /// state for a write.
    ScomaMiss { line: u64, write: bool },
    /// A transmit-queue protection violation shut queue `q` down.
    Violation { q: u8 },
    /// A captured reflective-memory store to propagate (firmware mode;
    /// the enhanced-aBIU mode ships it without sP involvement).
    ReflectStore {
        peer: u16,
        peer_addr: u64,
        data: Bytes,
    },
}

/// A reflective-memory mapping (paper §5: Shrimp / Memory Channel
/// emulation): stores into `[local_off, +len)` of the reflective region
/// are propagated to `peer_base + (offset)` at `peer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReflectiveWindow {
    /// Offset of this window within the reflective region.
    pub local_off: u64,
    /// Length in bytes.
    pub len: u64,
    /// Peer node.
    pub peer: u16,
    /// Destination physical address of the window's first byte at `peer`.
    pub peer_base: u64,
}

/// A NUMA load the sP has not yet satisfied.
#[derive(Debug, Clone)]
struct NumaPending {
    data: Option<Bytes>,
}

/// aBIU statistics.
#[derive(Debug, Clone, Default)]
pub struct AbiuStats {
    /// Bus operations this unit claimed.
    pub claimed: Counter,
    /// ARTRY retries observed.
    pub retries: Counter,
    /// Scoma checks.
    pub scoma_checks: Counter,
    /// Scoma misses.
    pub scoma_misses: Counter,
    /// Numa loads.
    pub numa_loads: Counter,
    /// Numa stores.
    pub numa_stores: Counter,
    /// Express tx.
    pub express_tx: Counter,
    /// Express rx.
    pub express_rx: Counter,
}

/// aBIU state. Decision logic is pure; see module docs.
#[derive(Debug)]
pub struct ABiu {
    /// Physical address map.
    pub map: AddressMap,
    /// Whether the S-COMA state check is enabled.
    pub scoma_enabled: bool,
    /// Whether NUMA forwarding is enabled.
    pub numa_enabled: bool,
    /// Write-tracking mode (the "diff-ing" extension, paper §5): instead
    /// of gating S-COMA-region accesses, the aBIU *records* written
    /// lines in clsSRAM so firmware can later flush only the dirty ones.
    pub write_tracking: bool,
    /// Enhanced-aBIU reflective memory: captured stores are shipped as
    /// remote commands directly by hardware (no sP engagement).
    pub reflect_hw: bool,
    /// Configured reflective windows.
    pub reflect_windows: Vec<ReflectiveWindow>,
    /// Outstanding NUMA loads keyed by (8-byte-aligned) address.
    numa_pending: HashMap<u64, NumaPending>,
    /// S-COMA lines already reported to the sP (retry without re-notify —
    /// the paper's "configurable table that decides whether an operation
    /// is actually passed to the sP").
    scoma_notified: HashSet<u64>,
    /// Bus-master requests waiting to be picked up by the node.
    requests: VecDeque<AbiuRequest>,
    /// Requests issued but not yet completed.
    outstanding: usize,
    next_req_id: u64,
    /// Running statistics.
    pub stats: AbiuStats,
}

impl ABiu {
    /// An aBIU over the given address map.
    pub fn new(map: AddressMap) -> Self {
        ABiu {
            map,
            scoma_enabled: true,
            numa_enabled: true,
            write_tracking: false,
            reflect_hw: false,
            reflect_windows: Vec::new(),
            numa_pending: HashMap::new(),
            scoma_notified: HashSet::new(),
            requests: VecDeque::new(),
            outstanding: 0,
            next_req_id: 1,
            stats: AbiuStats::default(),
        }
    }

    /// Classify an aP-issued operation and produce the snoop-time verdict
    /// plus any sP notification. `cls` is the clsSRAM state of the line
    /// (read in parallel with the snoop, as in hardware).
    pub fn classify(
        &mut self,
        op: &BusOp,
        cls: Option<ClsState>,
    ) -> (ClaimKind, SnoopVerdict, Option<SpRequest>) {
        debug_assert_eq!(op.master, MasterId::Ap);
        match self.map.classify(op.addr) {
            Region::Dram => (ClaimKind::Ignore, SnoopVerdict::default(), None),
            Region::Hole => (ClaimKind::Ignore, SnoopVerdict::default(), None),
            // Reflective windows are local DRAM plus a store capture that
            // happens at completion time; the snoop itself is passive.
            Region::Reflect => (ClaimKind::Ignore, SnoopVerdict::default(), None),
            Region::Scoma => self.scoma_check(op, cls),
            Region::Numa => self.numa_check(op),
            Region::Asram(off) => {
                self.stats.claimed.bump();
                (
                    ClaimKind::Sram { off },
                    SnoopVerdict {
                        supply_latency: 0, // filled by Niu with params
                        ..Default::default()
                    },
                    None,
                )
            }
            Region::PtrUpdate { is_rx, q, value } => {
                self.stats.claimed.bump();
                (
                    ClaimKind::PtrUpdate { is_rx, q, value },
                    SnoopVerdict::default(),
                    None,
                )
            }
            Region::ExpressTx { q, dest, tag } => {
                self.stats.claimed.bump();
                (
                    ClaimKind::ExpressTx { q, dest, tag },
                    SnoopVerdict::default(),
                    None,
                )
            }
            Region::ExpressRx { q } => {
                self.stats.claimed.bump();
                (ClaimKind::ExpressRx { q }, SnoopVerdict::default(), None)
            }
        }
    }

    /// S-COMA: consult the clsSRAM state against the operation kind.
    fn scoma_check(
        &mut self,
        op: &BusOp,
        cls: Option<ClsState>,
    ) -> (ClaimKind, SnoopVerdict, Option<SpRequest>) {
        if !self.scoma_enabled {
            return (ClaimKind::Ignore, SnoopVerdict::default(), None);
        }
        self.stats.scoma_checks.bump();
        let state = cls.expect("clsSRAM state must accompany S-COMA ops");
        let line = self.map.scoma_line(op.addr);
        let write = matches!(
            op.kind,
            BusOpKind::Rwitm | BusOpKind::Kill | BusOpKind::SingleWrite | BusOpKind::WriteLine
        );
        let ok = match state {
            ClsState::ReadWrite => true,
            ClsState::ReadOnly => !write,
            ClsState::Invalid | ClsState::Pending => {
                // Castouts of lines the protocol already invalidated are
                // allowed to proceed (stale victim writebacks).
                op.kind == BusOpKind::WriteLine
            }
        };
        if ok {
            // Data is supplied by local DRAM; line no longer missing.
            self.scoma_notified.remove(&line);
            return (ClaimKind::Ignore, SnoopVerdict::default(), None);
        }
        self.stats.retries.bump();
        let notify = if state != ClsState::Pending && self.scoma_notified.insert(line) {
            self.stats.scoma_misses.bump();
            Some(SpRequest::ScomaMiss { line, write })
        } else {
            None
        };
        (ClaimKind::Retry, SnoopVerdict::retry(), notify)
    }

    /// NUMA: loads retry until the sP supplies data; stores are captured.
    fn numa_check(&mut self, op: &BusOp) -> (ClaimKind, SnoopVerdict, Option<SpRequest>) {
        if !self.numa_enabled {
            return (ClaimKind::Ignore, SnoopVerdict::default(), None);
        }
        match op.kind {
            BusOpKind::SingleRead | BusOpKind::Read | BusOpKind::Rwitm => {
                let key = op.addr & !7;
                match self.numa_pending.get(&key) {
                    Some(p) if p.data.is_some() => {
                        // Reply arrived: claim and supply.
                        (ClaimKind::Numa, SnoopVerdict::default(), None)
                    }
                    Some(_) => {
                        self.stats.retries.bump();
                        (ClaimKind::Retry, SnoopVerdict::retry(), None)
                    }
                    None => {
                        self.stats.retries.bump();
                        self.stats.numa_loads.bump();
                        self.numa_pending.insert(key, NumaPending { data: None });
                        (
                            ClaimKind::Retry,
                            SnoopVerdict::retry(),
                            Some(SpRequest::NumaLoad {
                                addr: key,
                                bytes: op.bytes.max(8),
                            }),
                        )
                    }
                }
            }
            BusOpKind::SingleWrite | BusOpKind::WriteLine => {
                // Stores are posted: captured at completion, forwarded then.
                self.stats.numa_stores.bump();
                (ClaimKind::Numa, SnoopVerdict::default(), None)
            }
            _ => (ClaimKind::Ignore, SnoopVerdict::default(), None),
        }
    }

    /// The sP supplies data for a pending NUMA load.
    pub fn numa_supply(&mut self, addr: u64, data: Bytes) {
        let key = addr & !7;
        if let Some(p) = self.numa_pending.get_mut(&key) {
            p.data = Some(data);
        }
    }

    /// Take the reply data for a completed NUMA load.
    pub fn numa_take(&mut self, addr: u64) -> Option<Bytes> {
        let key = addr & !7;
        match self.numa_pending.get(&key) {
            Some(p) if p.data.is_some() => self.numa_pending.remove(&key).and_then(|p| p.data),
            _ => None,
        }
    }

    /// Number of NUMA loads awaiting data.
    pub fn numa_pending_count(&self) -> usize {
        self.numa_pending.len()
    }

    /// Clear the S-COMA notified marker for `line` (called when the line's
    /// state becomes valid, so a later miss re-notifies).
    pub fn scoma_clear_notified(&mut self, line: u64) {
        self.scoma_notified.remove(&line);
    }

    /// Translate a reflective-region address to its mapped peer
    /// location, if any window covers it.
    pub fn reflect_lookup(&self, addr: u64) -> Option<(u16, u64)> {
        let off = addr.checked_sub(self.map.reflect_base)?;
        self.reflect_windows
            .iter()
            .find(|w| off >= w.local_off && off < w.local_off + w.len)
            .map(|w| (w.peer, w.peer_base + (off - w.local_off)))
    }

    // ---- bus mastering ----

    /// Enqueue a bus-master request; returns its id.
    pub fn push_request(&mut self, kind: BusOpKind, addr: u64, bytes: u32, move_: DataMove) -> u64 {
        let id = self.next_req_id;
        self.next_req_id += 1;
        self.requests.push_back(AbiuRequest {
            id,
            kind,
            addr,
            bytes,
            move_,
        });
        id
    }

    /// Pop the next request if the outstanding window allows.
    pub fn pop_request(&mut self, max_outstanding: usize) -> Option<AbiuRequest> {
        if self.outstanding >= max_outstanding {
            return None;
        }
        let r = self.requests.pop_front()?;
        self.outstanding += 1;
        Some(r)
    }

    /// Mark a mastered request complete.
    pub fn request_completed(&mut self) {
        debug_assert!(self.outstanding > 0);
        self.outstanding -= 1;
    }

    /// Requests waiting plus in flight.
    pub fn requests_pending(&self) -> usize {
        self.requests.len() + self.outstanding
    }

    /// In-flight mastered operations.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for DataMove {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            DataMove::DramToSram {
                dram,
                sram,
                sram_addr,
                len,
            } => {
                w.u8(0);
                w.u64(*dram);
                w.save(sram);
                w.u32(*sram_addr);
                w.u32(*len);
            }
            DataMove::SramToDram {
                sram,
                sram_addr,
                dram,
                len,
            } => {
                w.u8(1);
                w.save(sram);
                w.u32(*sram_addr);
                w.u64(*dram);
                w.u32(*len);
            }
            DataMove::BytesToDram { dram, data } => {
                w.u8(2);
                w.u64(*dram);
                w.save(data);
            }
            DataMove::None => w.u8(3),
        }
    }
}
impl StateLoad for DataMove {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        Ok(match r.u8()? {
            0 => DataMove::DramToSram {
                dram: r.u64()?,
                sram: r.load()?,
                sram_addr: r.u32()?,
                len: r.u32()?,
            },
            1 => DataMove::SramToDram {
                sram: r.load()?,
                sram_addr: r.u32()?,
                dram: r.u64()?,
                len: r.u32()?,
            },
            2 => DataMove::BytesToDram {
                dram: r.u64()?,
                data: r.load()?,
            },
            3 => DataMove::None,
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        })
    }
}

impl StateSave for AbiuRequest {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.id);
        w.save(&self.kind);
        w.u64(self.addr);
        w.u32(self.bytes);
        w.save(&self.move_);
    }
}
impl StateLoad for AbiuRequest {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(AbiuRequest {
            id: r.u64()?,
            kind: r.load()?,
            addr: r.u64()?,
            bytes: r.u32()?,
            move_: r.load()?,
        })
    }
}

impl StateSave for SpRequest {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            SpRequest::NumaLoad { addr, bytes } => {
                w.u8(0);
                w.u64(*addr);
                w.u32(*bytes);
            }
            SpRequest::NumaStore { addr, data } => {
                w.u8(1);
                w.u64(*addr);
                w.save(data);
            }
            SpRequest::ScomaMiss { line, write } => {
                w.u8(2);
                w.u64(*line);
                w.save(write);
            }
            SpRequest::Violation { q } => {
                w.u8(3);
                w.u8(*q);
            }
            SpRequest::ReflectStore {
                peer,
                peer_addr,
                data,
            } => {
                w.u8(4);
                w.u16(*peer);
                w.u64(*peer_addr);
                w.save(data);
            }
        }
    }
}
impl StateLoad for SpRequest {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        Ok(match r.u8()? {
            0 => SpRequest::NumaLoad {
                addr: r.u64()?,
                bytes: r.u32()?,
            },
            1 => SpRequest::NumaStore {
                addr: r.u64()?,
                data: r.load()?,
            },
            2 => SpRequest::ScomaMiss {
                line: r.u64()?,
                write: r.load()?,
            },
            3 => SpRequest::Violation { q: r.u8()? },
            4 => SpRequest::ReflectStore {
                peer: r.u16()?,
                peer_addr: r.u64()?,
                data: r.load()?,
            },
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        })
    }
}

impl StateSave for ReflectiveWindow {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.local_off);
        w.u64(self.len);
        w.u16(self.peer);
        w.u64(self.peer_base);
    }
}
impl StateLoad for ReflectiveWindow {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ReflectiveWindow {
            local_off: r.u64()?,
            len: r.u64()?,
            peer: r.u16()?,
            peer_base: r.u64()?,
        })
    }
}

impl StateSave for NumaPending {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.data);
    }
}
impl StateLoad for NumaPending {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(NumaPending { data: r.load()? })
    }
}

impl StateSave for AbiuStats {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.claimed);
        w.save(&self.retries);
        w.save(&self.scoma_checks);
        w.save(&self.scoma_misses);
        w.save(&self.numa_loads);
        w.save(&self.numa_stores);
        w.save(&self.express_tx);
        w.save(&self.express_rx);
    }
}
impl StateLoad for AbiuStats {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(AbiuStats {
            claimed: r.load()?,
            retries: r.load()?,
            scoma_checks: r.load()?,
            scoma_misses: r.load()?,
            numa_loads: r.load()?,
            numa_stores: r.load()?,
            express_tx: r.load()?,
            express_rx: r.load()?,
        })
    }
}

impl StateSave for ABiu {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.map);
        w.save(&self.scoma_enabled);
        w.save(&self.numa_enabled);
        w.save(&self.write_tracking);
        w.save(&self.reflect_hw);
        w.save(&self.reflect_windows);
        w.save(&self.numa_pending);
        w.save(&self.scoma_notified);
        w.save(&self.requests);
        w.usize_(self.outstanding);
        w.u64(self.next_req_id);
        w.save(&self.stats);
    }
}
impl StateLoad for ABiu {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ABiu {
            map: r.load()?,
            scoma_enabled: r.load()?,
            numa_enabled: r.load()?,
            write_tracking: r.load()?,
            reflect_hw: r.load()?,
            reflect_windows: r.load()?,
            numa_pending: r.load()?,
            scoma_notified: r.load()?,
            requests: r.load()?,
            outstanding: r.usize_()?,
            next_req_id: r.u64()?,
            stats: r.load()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abiu() -> ABiu {
        ABiu::new(AddressMap::default())
    }

    fn ap_read(addr: u64) -> BusOp {
        BusOp::burst(BusOpKind::Read, addr, MasterId::Ap, 0)
    }

    fn ap_store(addr: u64) -> BusOp {
        BusOp::single(BusOpKind::SingleWrite, addr, 8, MasterId::Ap, 0)
    }

    #[test]
    fn dram_ignored() {
        let mut a = abiu();
        let (c, v, n) = a.classify(&ap_read(0x1000), None);
        assert_eq!(c, ClaimKind::Ignore);
        assert!(!v.artry);
        assert!(n.is_none());
    }

    #[test]
    fn scoma_hit_proceeds() {
        let mut a = abiu();
        let (c, v, n) = a.classify(&ap_read(0x4000_0000), Some(ClsState::ReadOnly));
        assert_eq!(c, ClaimKind::Ignore);
        assert!(!v.artry);
        assert!(n.is_none());
    }

    #[test]
    fn scoma_read_miss_notifies_once_then_keeps_retrying() {
        let mut a = abiu();
        let (c, v, n) = a.classify(&ap_read(0x4000_0000), Some(ClsState::Invalid));
        assert_eq!(c, ClaimKind::Retry);
        assert!(v.artry);
        assert_eq!(
            n,
            Some(SpRequest::ScomaMiss {
                line: 0,
                write: false
            })
        );
        // Retry of the same line: no second notification.
        let (_, v2, n2) = a.classify(&ap_read(0x4000_0000), Some(ClsState::Invalid));
        assert!(v2.artry);
        assert!(n2.is_none());
        assert_eq!(a.stats.scoma_misses.get(), 1);
    }

    #[test]
    fn scoma_write_to_readonly_is_upgrade_miss() {
        let mut a = abiu();
        let op = BusOp::burst(BusOpKind::Rwitm, 0x4000_0020, MasterId::Ap, 0);
        let (c, _, n) = a.classify(&op, Some(ClsState::ReadOnly));
        assert_eq!(c, ClaimKind::Retry);
        assert_eq!(
            n,
            Some(SpRequest::ScomaMiss {
                line: 1,
                write: true
            })
        );
    }

    #[test]
    fn scoma_pending_never_renotifies() {
        let mut a = abiu();
        let (c, _, n) = a.classify(&ap_read(0x4000_0000), Some(ClsState::Pending));
        assert_eq!(c, ClaimKind::Retry);
        assert!(n.is_none());
    }

    #[test]
    fn scoma_castout_of_invalidated_line_proceeds() {
        let mut a = abiu();
        let op = BusOp::burst(BusOpKind::WriteLine, 0x4000_0000, MasterId::Ap, 0);
        let (c, v, _) = a.classify(&op, Some(ClsState::Invalid));
        assert_eq!(c, ClaimKind::Ignore);
        assert!(!v.artry);
    }

    #[test]
    fn numa_load_retries_until_supplied() {
        let mut a = abiu();
        let op = BusOp::single(BusOpKind::SingleRead, 0x8000_0100, 8, MasterId::Ap, 0);
        let (c, v, n) = a.classify(&op, None);
        assert_eq!(c, ClaimKind::Retry);
        assert!(v.artry);
        assert!(matches!(
            n,
            Some(SpRequest::NumaLoad {
                addr: 0x8000_0100,
                ..
            })
        ));
        // Still pending: retry without renotify.
        let (_, _, n2) = a.classify(&op, None);
        assert!(n2.is_none());
        // Supply and retry again: claimed.
        a.numa_supply(0x8000_0100, Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8]));
        let (c3, v3, _) = a.classify(&op, None);
        assert_eq!(c3, ClaimKind::Numa);
        assert!(!v3.artry);
        assert_eq!(a.numa_take(0x8000_0100).unwrap().len(), 8);
        assert_eq!(a.numa_pending_count(), 0);
    }

    #[test]
    fn numa_store_is_posted() {
        let mut a = abiu();
        let (c, v, n) = a.classify(&ap_store(0x8000_0200), None);
        assert_eq!(c, ClaimKind::Numa);
        assert!(!v.artry);
        assert!(n.is_none());
        assert_eq!(a.stats.numa_stores.get(), 1);
    }

    #[test]
    fn niu_window_claims() {
        let mut a = abiu();
        let m = a.map;
        let (c, _, _) = a.classify(&ap_store(m.ptr_update_addr(false, 3, 17)), None);
        assert_eq!(
            c,
            ClaimKind::PtrUpdate {
                is_rx: false,
                q: 3,
                value: 17
            }
        );
        let (c, _, _) = a.classify(&ap_store(m.express_tx_addr(1, 42, 7)), None);
        assert_eq!(
            c,
            ClaimKind::ExpressTx {
                q: 1,
                dest: 42,
                tag: 7
            }
        );
        let op = BusOp::single(
            BusOpKind::SingleRead,
            m.express_rx_addr(2),
            8,
            MasterId::Ap,
            0,
        );
        let (c, _, _) = a.classify(&op, None);
        assert_eq!(c, ClaimKind::ExpressRx { q: 2 });
        let (c, _, _) = a.classify(&ap_store(m.asram_addr(0x100)), None);
        assert_eq!(c, ClaimKind::Sram { off: 0x100 });
    }

    #[test]
    fn request_window_limits_outstanding() {
        let mut a = abiu();
        for i in 0..6u64 {
            a.push_request(BusOpKind::SingleWrite, i * 8, 8, DataMove::None);
        }
        assert_eq!(a.requests_pending(), 6);
        assert!(a.pop_request(2).is_some());
        assert!(a.pop_request(2).is_some());
        assert!(a.pop_request(2).is_none(), "window full");
        a.request_completed();
        assert!(a.pop_request(2).is_some());
        assert_eq!(a.outstanding(), 2);
        assert_eq!(a.requests_pending(), 5);
    }

    #[test]
    fn disabled_mechanisms_ignore() {
        let mut a = abiu();
        a.scoma_enabled = false;
        a.numa_enabled = false;
        let (c, _, _) = a.classify(&ap_read(0x4000_0000), Some(ClsState::Invalid));
        assert_eq!(c, ClaimKind::Ignore);
        let (c, _, _) = a.classify(&ap_read(0x8000_0000), None);
        assert_eq!(c, ClaimKind::Ignore);
    }
}
