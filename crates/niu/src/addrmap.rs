//! The node's physical address map, as seen by the aP and decoded by the
//! aBIU on every bus operation.
//!
//! | Range | Owner | Purpose |
//! |---|---|---|
//! | `0 .. dram_len` | memory controller | ordinary DRAM |
//! | `scoma_base .. +scoma_len` | memory controller (data) + aBIU (clsSRAM check) | S-COMA region: local DRAM used as an L3 cache of global lines |
//! | `numa_base .. +numa_len` | aBIU | NUMA region: operations forwarded to the sP |
//! | `niu_base + ASRAM_OFF` | aBIU | aSRAM window: message buffers, pointer shadows |
//! | `niu_base + PTR_OFF` | aBIU | queue-pointer updates — all information is encoded in the *address* of the store |
//! | `niu_base + EXPRESS_TX_OFF` | aBIU | Express transmit: one store composes and launches a message |
//! | `niu_base + EXPRESS_RX_OFF` | aBIU | Express receive: one load pops a message |
//!
//! The map decides which agent claims an operation; region sizes are
//! configurable per machine.

use serde::{Deserialize, Serialize};

/// Offsets within the NIU window.
pub const ASRAM_OFF: u64 = 0x0000_0000;
/// Pointer-update region offset.
pub const PTR_OFF: u64 = 0x0100_0000;
/// Express transmit region offset. The region spans `[q:2][dest:16]
/// [tag:8][align:3]` = 2^29 bytes so a single store can address any
/// destination the 16-bit translation namespace can name; machines at
/// or below 256 nodes only ever touch the bottom of it.
pub const EXPRESS_TX_OFF: u64 = 0x0300_0000;
/// Express receive region offset.
pub const EXPRESS_RX_OFF: u64 = EXPRESS_TX_OFF + (1 << 29);
/// Size of the whole NIU window.
pub const NIU_WIN_LEN: u64 = 0x4000_0000;

/// What region an address falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// Variant fields are named self-descriptively; the variants themselves
// are documented above each one.
#[allow(missing_docs)]
pub enum Region {
    /// Ordinary DRAM, owned by the memory controller.
    Dram,
    /// S-COMA region: local DRAM gated by the clsSRAM state check.
    Scoma,
    /// NUMA region: operations forwarded to the sP.
    Numa,
    /// aSRAM window; carries the offset into aSRAM.
    Asram(u32),
    /// Pointer update; carries `(is_rx, queue, value)` decoded from the
    /// address.
    PtrUpdate { is_rx: bool, q: u8, value: u16 },
    /// Express transmit; carries `(queue, dest, tag)`.
    ExpressTx { q: u8, dest: u16, tag: u8 },
    /// Express receive; carries the hardware queue index.
    ExpressRx { q: u8 },
    /// Reflective-memory window (Shrimp / Memory Channel emulation,
    /// paper §5): reads are local DRAM; stores are written through the
    /// bus, captured by the aBIU, and propagated to the mapped peer.
    Reflect,
    /// Address hit no mapped region.
    Hole,
}

/// The address map of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    /// Bytes of ordinary DRAM starting at address 0.
    pub dram_len: u64,
    /// Base of the S-COMA region.
    pub scoma_base: u64,
    /// Size of the S-COMA region, bytes.
    pub scoma_len: u64,
    /// Base of the NUMA region.
    pub numa_base: u64,
    /// Size of the NUMA region, bytes.
    pub numa_len: u64,
    /// Base of the memory-mapped NIU window.
    pub niu_base: u64,
    /// Base of the reflective-memory region.
    pub reflect_base: u64,
    /// Size of the reflective-memory region, bytes.
    pub reflect_len: u64,
}

impl Default for AddressMap {
    fn default() -> Self {
        AddressMap {
            dram_len: 512 << 20,
            scoma_base: 0x4000_0000,
            scoma_len: 256 << 20,
            numa_base: 0x8000_0000,
            numa_len: 1 << 30,
            niu_base: 0xF000_0000,
            reflect_base: 0xE000_0000,
            reflect_len: 16 << 20,
        }
    }
}

impl AddressMap {
    /// Encode a pointer-update store address: everything CTRL needs is in
    /// the address, so the store carries no meaningful data.
    pub fn ptr_update_addr(&self, is_rx: bool, q: u8, value: u16) -> u64 {
        self.niu_base
            + PTR_OFF
            + (((is_rx as u64) << 23) | ((q as u64 & 0xF) << 19) | ((value as u64) << 3))
    }

    /// Encode an Express-transmit store address.
    pub fn express_tx_addr(&self, q: u8, dest: u16, tag: u8) -> u64 {
        self.niu_base
            + EXPRESS_TX_OFF
            + (((q as u64 & 0b11) << 27) | crate::msg::express::tx_offset(dest, tag))
    }

    /// Encode an Express-receive load address.
    pub fn express_rx_addr(&self, q: u8) -> u64 {
        self.niu_base + EXPRESS_RX_OFF + ((q as u64 & 0xF) << 3)
    }

    /// Address of aSRAM offset `off` in the aP's view.
    pub fn asram_addr(&self, off: u32) -> u64 {
        self.niu_base + ASRAM_OFF + off as u64
    }

    /// Classify a physical address.
    pub fn classify(&self, addr: u64) -> Region {
        if addr < self.dram_len {
            return Region::Dram;
        }
        if addr >= self.scoma_base && addr < self.scoma_base + self.scoma_len {
            return Region::Scoma;
        }
        if addr >= self.numa_base && addr < self.numa_base + self.numa_len {
            return Region::Numa;
        }
        if addr >= self.reflect_base && addr < self.reflect_base + self.reflect_len {
            return Region::Reflect;
        }
        if addr >= self.niu_base && addr < self.niu_base + NIU_WIN_LEN {
            let off = addr - self.niu_base;
            return match off {
                o if o < PTR_OFF => Region::Asram(o as u32),
                o if o < EXPRESS_TX_OFF => {
                    let bits = o - PTR_OFF;
                    Region::PtrUpdate {
                        is_rx: (bits >> 23) & 1 != 0,
                        q: ((bits >> 19) & 0xF) as u8,
                        value: ((bits >> 3) & 0xFFFF) as u16,
                    }
                }
                o if o < EXPRESS_RX_OFF => {
                    let bits = o - EXPRESS_TX_OFF;
                    let q = ((bits >> 27) & 0b11) as u8;
                    let (dest, tag) = crate::msg::express::decode_tx_offset(bits & ((1 << 27) - 1));
                    Region::ExpressTx { q, dest, tag }
                }
                o if o < EXPRESS_RX_OFF + 0x100 => Region::ExpressRx {
                    q: (((o - EXPRESS_RX_OFF) >> 3) & 0xF) as u8,
                },
                _ => Region::Hole,
            };
        }
        Region::Hole
    }

    /// Whether the memory controller supplies data for `addr` (DRAM, the
    /// S-COMA region, and reflective windows — all backed by local DRAM).
    pub fn is_memory_backed(&self, addr: u64) -> bool {
        matches!(
            self.classify(addr),
            Region::Dram | Region::Scoma | Region::Reflect
        )
    }

    /// clsSRAM line index for an S-COMA address.
    pub fn scoma_line(&self, addr: u64) -> u64 {
        debug_assert!(matches!(self.classify(addr), Region::Scoma));
        (addr - self.scoma_base) / sv_membus::CACHE_LINE
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for AddressMap {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.dram_len);
        w.u64(self.scoma_base);
        w.u64(self.scoma_len);
        w.u64(self.numa_base);
        w.u64(self.numa_len);
        w.u64(self.niu_base);
        w.u64(self.reflect_base);
        w.u64(self.reflect_len);
    }
}
impl StateLoad for AddressMap {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        let m = AddressMap {
            dram_len: r.u64()?,
            scoma_base: r.u64()?,
            scoma_len: r.u64()?,
            numa_base: r.u64()?,
            numa_len: r.u64()?,
            niu_base: r.u64()?,
            reflect_base: r.u64()?,
            reflect_len: r.u64()?,
        };
        // `classify` computes `base + len` for every region on every bus
        // operation; a forged map that wraps the address space would
        // panic there (debug) or misclassify everything (release).
        let spans = [
            (m.scoma_base, m.scoma_len),
            (m.numa_base, m.numa_len),
            (m.reflect_base, m.reflect_len),
            (m.niu_base, NIU_WIN_LEN),
        ];
        if spans.iter().any(|&(b, l)| b.checked_add(l).is_none()) {
            return Err(SnapshotError::Corrupt { offset: at });
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_basic_regions() {
        let m = AddressMap::default();
        assert_eq!(m.classify(0x1000), Region::Dram);
        assert_eq!(m.classify(0x4000_0000), Region::Scoma);
        assert_eq!(m.classify(0x8000_0000), Region::Numa);
        assert_eq!(m.classify(0x3000_0000), Region::Hole);
        assert!(m.is_memory_backed(0x4000_0040));
        assert!(!m.is_memory_backed(0x8000_0000));
    }

    #[test]
    fn ptr_update_roundtrip() {
        let m = AddressMap::default();
        for is_rx in [false, true] {
            for q in [0u8, 7, 15] {
                for v in [0u16, 1, 0xFFFF] {
                    let a = m.ptr_update_addr(is_rx, q, v);
                    match m.classify(a) {
                        Region::PtrUpdate {
                            is_rx: r,
                            q: qq,
                            value,
                        } => {
                            assert_eq!((r, qq, value), (is_rx, q, v));
                        }
                        other => panic!("misclassified as {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn express_tx_roundtrip() {
        let m = AddressMap::default();
        // Both a legacy-range destination and one past the old 10-bit
        // field (a wide-machine Express class base) must round-trip.
        for dest in [300u16, 2 * 4096 + 300] {
            let a = m.express_tx_addr(2, dest, 0xAB);
            match m.classify(a) {
                Region::ExpressTx { q, dest: d, tag } => {
                    assert_eq!((q, d, tag), (2, dest, 0xAB));
                }
                other => panic!("misclassified as {other:?}"),
            }
        }
    }

    #[test]
    fn express_rx_roundtrip() {
        let m = AddressMap::default();
        match m.classify(m.express_rx_addr(9)) {
            Region::ExpressRx { q } => assert_eq!(q, 9),
            other => panic!("misclassified as {other:?}"),
        }
    }

    #[test]
    fn asram_window() {
        let m = AddressMap::default();
        assert_eq!(m.classify(m.asram_addr(0x4F00)), Region::Asram(0x4F00));
    }

    #[test]
    fn reflect_region() {
        let m = AddressMap::default();
        assert_eq!(m.classify(0xE000_0000), Region::Reflect);
        assert_eq!(m.classify(0xE100_0000 - 1), Region::Reflect);
        assert_eq!(m.classify(0xE100_0000), Region::Hole);
        assert!(m.is_memory_backed(0xE000_1000));
    }

    #[test]
    fn scoma_line_index() {
        let m = AddressMap::default();
        assert_eq!(m.scoma_line(0x4000_0000), 0);
        assert_eq!(m.scoma_line(0x4000_0000 + 32 * 7 + 5), 7);
    }
}
