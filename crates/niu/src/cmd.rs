//! Command vocabulary of the NIU's ordered command queues.
//!
//! The sP (and, through extension FSMs, the BIUs) drives the NIU by
//! pushing [`LocalCmd`]s into one of CTRL's two **local command queues**.
//! Commands in one queue are issued and completed in order — the paper
//! calls this out as "very useful for shared-memory protocol processing" —
//! with the sole exception of [`LocalCmd::Block`] operations, which issue
//! in order but complete asynchronously in a dedicated functional unit.
//!
//! The **remote command queue** holds [`crate::msg::RemoteCmdKind`]s that
//! arrived from the network; its engine executes them FIFO, issuing aP
//! bus operations through the aBIU to land data in DRAM (and, with the
//! approach-5 extension, to update clsSRAM states) with no processor
//! involvement on the receiving side.

use crate::msg::{MsgHeader, RemoteCmdKind};
use crate::queues::QueueId;
use crate::sram::{ClsState, SramSel};
use bytes::Bytes;
use sv_arctic::Priority;

/// Re-exported for convenience: the remote-command payload.
pub use crate::msg::RemoteCmdKind as RemoteCommand;

/// A block operation executed by the NIU's hardware block units.
#[derive(Debug, Clone, PartialEq)]
// Variant fields are named self-descriptively; the variants themselves
// are documented above each one.
#[allow(missing_docs)]
pub enum BlockOp {
    /// Block-read unit: copy `[dram_addr, +len)` of local DRAM into aSRAM
    /// at `sram_addr`, via burst reads on the aP bus. Limited to one
    /// aligned page per operation, as in the hardware.
    Read {
        /// DRAM byte address.
        dram_addr: u64,
        /// SRAM byte address.
        sram_addr: u32,
        /// Length in bytes.
        len: u32,
    },
    /// Block-transmit unit: packetize `[sram_addr, +len)` of aSRAM into
    /// remote-write commands addressed to `[remote_addr, +len)` of node
    /// `node`'s DRAM.
    Tx {
        /// SRAM byte address.
        sram_addr: u32,
        /// Length in bytes.
        len: u32,
        /// Destination node.
        node: u16,
        /// Destination DRAM address at the remote node.
        remote_addr: u64,
        /// Approach-5 extension: ask the destination aBIU to set the
        /// covering clsSRAM lines to this state after each chunk lands.
        set_cls: Option<ClsState>,
        /// Optional completion notification delivered into the given
        /// logical receive queue at the destination *after* the data
        /// (same ordered remote-command stream).
        notify: Option<(u16, Bytes)>,
    },
    /// The chained form ("these two block operations can be chained"):
    /// stream DRAM → aSRAM → network, with the transmit side consuming
    /// lines as the read side lands them. This is transfer approach 3.
    ReadTx {
        /// DRAM byte address.
        dram_addr: u64,
        /// Length in bytes.
        len: u32,
        /// Staging base in aSRAM.
        sram_addr: u32,
        /// Destination node.
        node: u16,
        /// Destination DRAM address at the remote node.
        remote_addr: u64,
        /// Optional clsSRAM state to apply after the data lands.
        set_cls: Option<ClsState>,
        /// Optional completion notification (logical queue, payload).
        notify: Option<(u16, Bytes)>,
    },
}

impl BlockOp {
    /// Transfer length in bytes.
    pub fn len(&self) -> u32 {
        match self {
            BlockOp::Read { len, .. } | BlockOp::Tx { len, .. } | BlockOp::ReadTx { len, .. } => {
                *len
            }
        }
    }

    /// Whether the operation moves zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Commands accepted by the local command queues.
#[derive(Debug, Clone, PartialEq)]
// Variant fields are named self-descriptively; the variants themselves
// are documented above each one.
#[allow(missing_docs)]
pub enum LocalCmd {
    /// Write 8 bytes into an SRAM bank (through CTRL, over the IBus).
    WriteSramU64 { sram: SramSel, addr: u32, data: u64 },
    /// Copy between/within SRAM banks over the IBus.
    CopySram {
        /// Source node.
        src: (SramSel, u32),
        /// Destination.
        dst: (SramSel, u32),
        /// Length in bytes.
        len: u32,
    },
    /// aP bus read: DRAM → SRAM, issued line-by-line through the aBIU.
    BusRead {
        /// DRAM byte address.
        dram_addr: u64,
        /// Which SRAM bank.
        sram: SramSel,
        /// SRAM byte address.
        sram_addr: u32,
        /// Length in bytes.
        len: u32,
    },
    /// aP bus write: SRAM → DRAM.
    BusWrite {
        /// DRAM byte address.
        dram_addr: u64,
        /// Which SRAM bank.
        sram: SramSel,
        /// SRAM byte address.
        sram_addr: u32,
        /// Length in bytes.
        len: u32,
    },
    /// Transmit a message whose body sits in SRAM at `addr` (header per
    /// `header`). Firmware's equivalent of a software send; `raw_node`
    /// bypasses translation (privileged), otherwise `header.dest` is
    /// translated.
    SendMsg {
        /// Message header.
        header: MsgHeader,
        /// Which SRAM bank.
        sram: SramSel,
        /// Target byte address.
        addr: u32,
        /// Physical destination override (privileged; bypasses translation).
        raw_node: Option<(u16, u16, Priority)>,
    },
    /// Transmit a message carried inline (firmware-composed). Charged the
    /// same IBus/engine costs as [`LocalCmd::SendMsg`].
    SendDirect {
        /// Physical destination node (firmware traffic is privileged).
        node: u16,
        /// Logical receive queue at the destination.
        logical_q: u16,
        /// Network priority class.
        priority: Priority,
        /// Payload bytes.
        data: Bytes,
        /// Optional TagOn pickup: CTRL appends `[addr, +len)` from `sram`.
        tagon: Option<(SramSel, u32, u8)>,
    },
    /// Transmit a remote command to another node's remote command queue.
    SendRemoteCmd { node: u16, cmd: RemoteCmdKind },
    /// Transmit a remote *write* whose data is read from SRAM when the
    /// command executes — after any earlier bus reads in the same queue
    /// have landed their data (the in-order property firmware protocols
    /// build on). Becomes `WriteDram` or `WriteDramSetCls` on the wire.
    SendRemoteWrite {
        /// Destination node.
        node: u16,
        /// Destination DRAM address at the remote node.
        remote_addr: u64,
        /// Which SRAM bank.
        sram: SramSel,
        /// SRAM byte address.
        sram_addr: u32,
        /// Length in bytes.
        len: u32,
        /// Optional clsSRAM state to apply after the data lands.
        set_cls: Option<ClsState>,
    },
    /// Issue an address-only Flush on the aP bus (forces the aP caches to
    /// write back and invalidate a line — used by coherence recalls).
    BusFlush { addr: u64 },
    /// Hand an operation to a block unit (issues in order, completes
    /// asynchronously; the queue does not wait).
    Block(BlockOp),
    /// Set one clsSRAM line state.
    SetCls { line: u64, state: ClsState },
    /// Set a contiguous range of clsSRAM line states (block-operation
    /// support for transfer approaches 4/5).
    SetClsRange {
        /// First clsSRAM line.
        first: u64,
        /// Number of lines.
        count: u64,
        /// clsSRAM state to set.
        state: ClsState,
    },
    /// Update a transmit queue's producer pointer (launches messages).
    TxPtrUpdate { q: QueueId, producer: u16 },
    /// Update a receive queue's consumer pointer (frees buffer space).
    RxPtrUpdate { q: QueueId, consumer: u16 },
    /// Bind a logical receive queue into a hardware slot (receive-queue
    /// cache management, privileged).
    BindRxQueue { logical: u16, hw: QueueId },
    /// Enable or disable a transmit queue (recovery after a protection
    /// shutdown, scheduling).
    SetTxEnabled { q: QueueId, enabled: bool },
}

impl LocalCmd {
    /// Rough classification used for statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            LocalCmd::WriteSramU64 { .. } => "write_sram",
            LocalCmd::CopySram { .. } => "copy_sram",
            LocalCmd::BusRead { .. } => "bus_read",
            LocalCmd::BusWrite { .. } => "bus_write",
            LocalCmd::SendMsg { .. } => "send_msg",
            LocalCmd::SendDirect { .. } => "send_direct",
            LocalCmd::SendRemoteCmd { .. } => "send_remote_cmd",
            LocalCmd::SendRemoteWrite { .. } => "send_remote_write",
            LocalCmd::BusFlush { .. } => "bus_flush",
            LocalCmd::Block(_) => "block",
            LocalCmd::SetCls { .. } => "set_cls",
            LocalCmd::SetClsRange { .. } => "set_cls_range",
            LocalCmd::TxPtrUpdate { .. } => "tx_ptr",
            LocalCmd::RxPtrUpdate { .. } => "rx_ptr",
            LocalCmd::BindRxQueue { .. } => "bind_rxq",
            LocalCmd::SetTxEnabled { .. } => "set_tx_enabled",
        }
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for BlockOp {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            BlockOp::Read {
                dram_addr,
                sram_addr,
                len,
            } => {
                w.u8(0);
                w.u64(*dram_addr);
                w.u32(*sram_addr);
                w.u32(*len);
            }
            BlockOp::Tx {
                sram_addr,
                len,
                node,
                remote_addr,
                set_cls,
                notify,
            } => {
                w.u8(1);
                w.u32(*sram_addr);
                w.u32(*len);
                w.u16(*node);
                w.u64(*remote_addr);
                w.save(set_cls);
                w.save(notify);
            }
            BlockOp::ReadTx {
                dram_addr,
                len,
                sram_addr,
                node,
                remote_addr,
                set_cls,
                notify,
            } => {
                w.u8(2);
                w.u64(*dram_addr);
                w.u32(*len);
                w.u32(*sram_addr);
                w.u16(*node);
                w.u64(*remote_addr);
                w.save(set_cls);
                w.save(notify);
            }
        }
    }
}
impl StateLoad for BlockOp {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        Ok(match r.u8()? {
            0 => BlockOp::Read {
                dram_addr: r.u64()?,
                sram_addr: r.u32()?,
                len: r.u32()?,
            },
            1 => BlockOp::Tx {
                sram_addr: r.u32()?,
                len: r.u32()?,
                node: r.u16()?,
                remote_addr: r.u64()?,
                set_cls: r.load()?,
                notify: r.load()?,
            },
            2 => BlockOp::ReadTx {
                dram_addr: r.u64()?,
                len: r.u32()?,
                sram_addr: r.u32()?,
                node: r.u16()?,
                remote_addr: r.u64()?,
                set_cls: r.load()?,
                notify: r.load()?,
            },
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        })
    }
}

impl StateSave for LocalCmd {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            LocalCmd::WriteSramU64 { sram, addr, data } => {
                w.u8(0);
                w.save(sram);
                w.u32(*addr);
                w.u64(*data);
            }
            LocalCmd::CopySram { src, dst, len } => {
                w.u8(1);
                w.save(src);
                w.save(dst);
                w.u32(*len);
            }
            LocalCmd::BusRead {
                dram_addr,
                sram,
                sram_addr,
                len,
            } => {
                w.u8(2);
                w.u64(*dram_addr);
                w.save(sram);
                w.u32(*sram_addr);
                w.u32(*len);
            }
            LocalCmd::BusWrite {
                dram_addr,
                sram,
                sram_addr,
                len,
            } => {
                w.u8(3);
                w.u64(*dram_addr);
                w.save(sram);
                w.u32(*sram_addr);
                w.u32(*len);
            }
            LocalCmd::SendMsg {
                header,
                sram,
                addr,
                raw_node,
            } => {
                w.u8(4);
                w.save(header);
                w.save(sram);
                w.u32(*addr);
                w.save(raw_node);
            }
            LocalCmd::SendDirect {
                node,
                logical_q,
                priority,
                data,
                tagon,
            } => {
                w.u8(5);
                w.u16(*node);
                w.u16(*logical_q);
                w.save(priority);
                w.save(data);
                w.save(tagon);
            }
            LocalCmd::SendRemoteCmd { node, cmd } => {
                w.u8(6);
                w.u16(*node);
                w.save(cmd);
            }
            LocalCmd::SendRemoteWrite {
                node,
                remote_addr,
                sram,
                sram_addr,
                len,
                set_cls,
            } => {
                w.u8(7);
                w.u16(*node);
                w.u64(*remote_addr);
                w.save(sram);
                w.u32(*sram_addr);
                w.u32(*len);
                w.save(set_cls);
            }
            LocalCmd::BusFlush { addr } => {
                w.u8(8);
                w.u64(*addr);
            }
            LocalCmd::Block(op) => {
                w.u8(9);
                w.save(op);
            }
            LocalCmd::SetCls { line, state } => {
                w.u8(10);
                w.u64(*line);
                w.save(state);
            }
            LocalCmd::SetClsRange {
                first,
                count,
                state,
            } => {
                w.u8(11);
                w.u64(*first);
                w.u64(*count);
                w.save(state);
            }
            LocalCmd::TxPtrUpdate { q, producer } => {
                w.u8(12);
                w.save(q);
                w.u16(*producer);
            }
            LocalCmd::RxPtrUpdate { q, consumer } => {
                w.u8(13);
                w.save(q);
                w.u16(*consumer);
            }
            LocalCmd::BindRxQueue { logical, hw } => {
                w.u8(14);
                w.u16(*logical);
                w.save(hw);
            }
            LocalCmd::SetTxEnabled { q, enabled } => {
                w.u8(15);
                w.save(q);
                w.save(enabled);
            }
        }
    }
}
impl StateLoad for LocalCmd {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let at = r.offset();
        Ok(match r.u8()? {
            0 => LocalCmd::WriteSramU64 {
                sram: r.load()?,
                addr: r.u32()?,
                data: r.u64()?,
            },
            1 => LocalCmd::CopySram {
                src: r.load()?,
                dst: r.load()?,
                len: r.u32()?,
            },
            2 => LocalCmd::BusRead {
                dram_addr: r.u64()?,
                sram: r.load()?,
                sram_addr: r.u32()?,
                len: r.u32()?,
            },
            3 => LocalCmd::BusWrite {
                dram_addr: r.u64()?,
                sram: r.load()?,
                sram_addr: r.u32()?,
                len: r.u32()?,
            },
            4 => LocalCmd::SendMsg {
                header: r.load()?,
                sram: r.load()?,
                addr: r.u32()?,
                raw_node: r.load()?,
            },
            5 => LocalCmd::SendDirect {
                node: r.u16()?,
                logical_q: r.u16()?,
                priority: r.load()?,
                data: r.load()?,
                tagon: r.load()?,
            },
            6 => LocalCmd::SendRemoteCmd {
                node: r.u16()?,
                cmd: r.load()?,
            },
            7 => LocalCmd::SendRemoteWrite {
                node: r.u16()?,
                remote_addr: r.u64()?,
                sram: r.load()?,
                sram_addr: r.u32()?,
                len: r.u32()?,
                set_cls: r.load()?,
            },
            8 => LocalCmd::BusFlush { addr: r.u64()? },
            9 => LocalCmd::Block(r.load()?),
            10 => LocalCmd::SetCls {
                line: r.u64()?,
                state: r.load()?,
            },
            11 => LocalCmd::SetClsRange {
                first: r.u64()?,
                count: r.u64()?,
                state: r.load()?,
            },
            12 => LocalCmd::TxPtrUpdate {
                q: r.load()?,
                producer: r.u16()?,
            },
            13 => LocalCmd::RxPtrUpdate {
                q: r.load()?,
                consumer: r.u16()?,
            },
            14 => LocalCmd::BindRxQueue {
                logical: r.u16()?,
                hw: r.load()?,
            },
            15 => LocalCmd::SetTxEnabled {
                q: r.load()?,
                enabled: r.load()?,
            },
            _ => return Err(SnapshotError::Corrupt { offset: at }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_len() {
        let b = BlockOp::Read {
            dram_addr: 0,
            sram_addr: 0,
            len: 4096,
        };
        assert_eq!(b.len(), 4096);
        assert!(!b.is_empty());
        let t = BlockOp::Tx {
            sram_addr: 0,
            len: 0,
            node: 1,
            remote_addr: 0,
            set_cls: None,
            notify: None,
        };
        assert!(t.is_empty());
    }

    #[test]
    fn kind_names_cover_commands() {
        let c = LocalCmd::SetCls {
            line: 0,
            state: ClsState::ReadWrite,
        };
        assert_eq!(c.kind_name(), "set_cls");
        let c = LocalCmd::SendRemoteCmd {
            node: 1,
            cmd: RemoteCmdKind::SetCls { line: 0, state: 2 },
        };
        assert_eq!(c.kind_name(), "send_remote_cmd");
    }
}
