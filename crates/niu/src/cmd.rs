//! Command vocabulary of the NIU's ordered command queues.
//!
//! The sP (and, through extension FSMs, the BIUs) drives the NIU by
//! pushing [`LocalCmd`]s into one of CTRL's two **local command queues**.
//! Commands in one queue are issued and completed in order — the paper
//! calls this out as "very useful for shared-memory protocol processing" —
//! with the sole exception of [`LocalCmd::Block`] operations, which issue
//! in order but complete asynchronously in a dedicated functional unit.
//!
//! The **remote command queue** holds [`crate::msg::RemoteCmdKind`]s that
//! arrived from the network; its engine executes them FIFO, issuing aP
//! bus operations through the aBIU to land data in DRAM (and, with the
//! approach-5 extension, to update clsSRAM states) with no processor
//! involvement on the receiving side.

use crate::msg::{MsgHeader, RemoteCmdKind};
use crate::queues::QueueId;
use crate::sram::{ClsState, SramSel};
use bytes::Bytes;
use sv_arctic::Priority;

/// Re-exported for convenience: the remote-command payload.
pub use crate::msg::RemoteCmdKind as RemoteCommand;

/// A block operation executed by the NIU's hardware block units.
#[derive(Debug, Clone, PartialEq)]
// Variant fields are named self-descriptively; the variants themselves
// are documented above each one.
#[allow(missing_docs)]
pub enum BlockOp {
    /// Block-read unit: copy `[dram_addr, +len)` of local DRAM into aSRAM
    /// at `sram_addr`, via burst reads on the aP bus. Limited to one
    /// aligned page per operation, as in the hardware.
    Read {
        /// DRAM byte address.
        dram_addr: u64,
        /// SRAM byte address.
        sram_addr: u32,
        /// Length in bytes.
        len: u32,
    },
    /// Block-transmit unit: packetize `[sram_addr, +len)` of aSRAM into
    /// remote-write commands addressed to `[remote_addr, +len)` of node
    /// `node`'s DRAM.
    Tx {
        /// SRAM byte address.
        sram_addr: u32,
        /// Length in bytes.
        len: u32,
        /// Destination node.
        node: u16,
        /// Destination DRAM address at the remote node.
        remote_addr: u64,
        /// Approach-5 extension: ask the destination aBIU to set the
        /// covering clsSRAM lines to this state after each chunk lands.
        set_cls: Option<ClsState>,
        /// Optional completion notification delivered into the given
        /// logical receive queue at the destination *after* the data
        /// (same ordered remote-command stream).
        notify: Option<(u16, Bytes)>,
    },
    /// The chained form ("these two block operations can be chained"):
    /// stream DRAM → aSRAM → network, with the transmit side consuming
    /// lines as the read side lands them. This is transfer approach 3.
    ReadTx {
        /// DRAM byte address.
        dram_addr: u64,
        /// Length in bytes.
        len: u32,
        /// Staging base in aSRAM.
        sram_addr: u32,
        /// Destination node.
        node: u16,
        /// Destination DRAM address at the remote node.
        remote_addr: u64,
        /// Optional clsSRAM state to apply after the data lands.
        set_cls: Option<ClsState>,
        /// Optional completion notification (logical queue, payload).
        notify: Option<(u16, Bytes)>,
    },
}

impl BlockOp {
    /// Transfer length in bytes.
    pub fn len(&self) -> u32 {
        match self {
            BlockOp::Read { len, .. } | BlockOp::Tx { len, .. } | BlockOp::ReadTx { len, .. } => {
                *len
            }
        }
    }

    /// Whether the operation moves zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Commands accepted by the local command queues.
#[derive(Debug, Clone, PartialEq)]
// Variant fields are named self-descriptively; the variants themselves
// are documented above each one.
#[allow(missing_docs)]
pub enum LocalCmd {
    /// Write 8 bytes into an SRAM bank (through CTRL, over the IBus).
    WriteSramU64 { sram: SramSel, addr: u32, data: u64 },
    /// Copy between/within SRAM banks over the IBus.
    CopySram {
        /// Source node.
        src: (SramSel, u32),
        /// Destination.
        dst: (SramSel, u32),
        /// Length in bytes.
        len: u32,
    },
    /// aP bus read: DRAM → SRAM, issued line-by-line through the aBIU.
    BusRead {
        /// DRAM byte address.
        dram_addr: u64,
        /// Which SRAM bank.
        sram: SramSel,
        /// SRAM byte address.
        sram_addr: u32,
        /// Length in bytes.
        len: u32,
    },
    /// aP bus write: SRAM → DRAM.
    BusWrite {
        /// DRAM byte address.
        dram_addr: u64,
        /// Which SRAM bank.
        sram: SramSel,
        /// SRAM byte address.
        sram_addr: u32,
        /// Length in bytes.
        len: u32,
    },
    /// Transmit a message whose body sits in SRAM at `addr` (header per
    /// `header`). Firmware's equivalent of a software send; `raw_node`
    /// bypasses translation (privileged), otherwise `header.dest` is
    /// translated.
    SendMsg {
        /// Message header.
        header: MsgHeader,
        /// Which SRAM bank.
        sram: SramSel,
        /// Target byte address.
        addr: u32,
        /// Physical destination override (privileged; bypasses translation).
        raw_node: Option<(u16, u16, Priority)>,
    },
    /// Transmit a message carried inline (firmware-composed). Charged the
    /// same IBus/engine costs as [`LocalCmd::SendMsg`].
    SendDirect {
        /// Physical destination node (firmware traffic is privileged).
        node: u16,
        /// Logical receive queue at the destination.
        logical_q: u16,
        /// Network priority class.
        priority: Priority,
        /// Payload bytes.
        data: Bytes,
        /// Optional TagOn pickup: CTRL appends `[addr, +len)` from `sram`.
        tagon: Option<(SramSel, u32, u8)>,
    },
    /// Transmit a remote command to another node's remote command queue.
    SendRemoteCmd { node: u16, cmd: RemoteCmdKind },
    /// Transmit a remote *write* whose data is read from SRAM when the
    /// command executes — after any earlier bus reads in the same queue
    /// have landed their data (the in-order property firmware protocols
    /// build on). Becomes `WriteDram` or `WriteDramSetCls` on the wire.
    SendRemoteWrite {
        /// Destination node.
        node: u16,
        /// Destination DRAM address at the remote node.
        remote_addr: u64,
        /// Which SRAM bank.
        sram: SramSel,
        /// SRAM byte address.
        sram_addr: u32,
        /// Length in bytes.
        len: u32,
        /// Optional clsSRAM state to apply after the data lands.
        set_cls: Option<ClsState>,
    },
    /// Issue an address-only Flush on the aP bus (forces the aP caches to
    /// write back and invalidate a line — used by coherence recalls).
    BusFlush { addr: u64 },
    /// Hand an operation to a block unit (issues in order, completes
    /// asynchronously; the queue does not wait).
    Block(BlockOp),
    /// Set one clsSRAM line state.
    SetCls { line: u64, state: ClsState },
    /// Set a contiguous range of clsSRAM line states (block-operation
    /// support for transfer approaches 4/5).
    SetClsRange {
        /// First clsSRAM line.
        first: u64,
        /// Number of lines.
        count: u64,
        /// clsSRAM state to set.
        state: ClsState,
    },
    /// Update a transmit queue's producer pointer (launches messages).
    TxPtrUpdate { q: QueueId, producer: u16 },
    /// Update a receive queue's consumer pointer (frees buffer space).
    RxPtrUpdate { q: QueueId, consumer: u16 },
    /// Bind a logical receive queue into a hardware slot (receive-queue
    /// cache management, privileged).
    BindRxQueue { logical: u16, hw: QueueId },
    /// Enable or disable a transmit queue (recovery after a protection
    /// shutdown, scheduling).
    SetTxEnabled { q: QueueId, enabled: bool },
}

impl LocalCmd {
    /// Rough classification used for statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            LocalCmd::WriteSramU64 { .. } => "write_sram",
            LocalCmd::CopySram { .. } => "copy_sram",
            LocalCmd::BusRead { .. } => "bus_read",
            LocalCmd::BusWrite { .. } => "bus_write",
            LocalCmd::SendMsg { .. } => "send_msg",
            LocalCmd::SendDirect { .. } => "send_direct",
            LocalCmd::SendRemoteCmd { .. } => "send_remote_cmd",
            LocalCmd::SendRemoteWrite { .. } => "send_remote_write",
            LocalCmd::BusFlush { .. } => "bus_flush",
            LocalCmd::Block(_) => "block",
            LocalCmd::SetCls { .. } => "set_cls",
            LocalCmd::SetClsRange { .. } => "set_cls_range",
            LocalCmd::TxPtrUpdate { .. } => "tx_ptr",
            LocalCmd::RxPtrUpdate { .. } => "rx_ptr",
            LocalCmd::BindRxQueue { .. } => "bind_rxq",
            LocalCmd::SetTxEnabled { .. } => "set_tx_enabled",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_len() {
        let b = BlockOp::Read {
            dram_addr: 0,
            sram_addr: 0,
            len: 4096,
        };
        assert_eq!(b.len(), 4096);
        assert!(!b.is_empty());
        let t = BlockOp::Tx {
            sram_addr: 0,
            len: 0,
            node: 1,
            remote_addr: 0,
            set_cls: None,
            notify: None,
        };
        assert!(t.is_empty());
    }

    #[test]
    fn kind_names_cover_commands() {
        let c = LocalCmd::SetCls {
            line: 0,
            state: ClsState::ReadWrite,
        };
        assert_eq!(c.kind_name(), "set_cls");
        let c = LocalCmd::SendRemoteCmd {
            node: 1,
            cmd: RemoteCmdKind::SetCls { line: 0, state: 2 },
        };
        assert_eq!(c.kind_name(), "send_remote_cmd");
    }
}
