//! CTRL ASIC state: queues, command queues, block units, the IBus.
//!
//! This module holds the *data* of the core NIU layer; the engine logic
//! that needs simultaneous access to CTRL, the SRAMs and the aBIU lives
//! in [`crate::niu`]. CTRL-local decision logic (transmit arbitration,
//! IBus accounting) is implemented here so it can be unit-tested in
//! isolation.

use crate::cmd::LocalCmd;
use crate::msg::RemoteCmdKind;
use crate::params::NiuParams;
use crate::queues::{QueueBuffer, QueueId, RxQueue, TxQueue};
use crate::sram::SramSel;
use crate::translate::{RxQueueCache, XlateTable};
use bytes::Bytes;
use std::collections::HashSet;
use std::collections::VecDeque;
use sv_sim::stats::Counter;

/// The IBus: the NIU's single internal data path. Every transfer between
/// SRAM, CTRL, the TxU/RxU and the bus interfaces serializes here.
#[derive(Debug, Default)]
pub struct IBus {
    free_at: u64,
    /// Total busy cycles (utilization numerator).
    pub busy_cycles: u64,
    /// Number of transactions.
    pub transactions: Counter,
}

impl IBus {
    /// Acquire the IBus at `cycle` for `cycles` cycles; returns the cycle
    /// at which the transfer finishes.
    pub fn acquire(&mut self, cycle: u64, cycles: u64) -> u64 {
        let start = self.free_at.max(cycle);
        self.free_at = start + cycles;
        self.busy_cycles += cycles;
        self.transactions.bump();
        self.free_at
    }

    /// First cycle at which the IBus is free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }
}

/// Block-read unit state: streams DRAM lines into aSRAM via aP-bus burst
/// reads.
#[derive(Debug)]
pub struct BlockReadState {
    /// DRAM-side address of the stream.
    pub dram: u64,
    /// SRAM byte address.
    pub sram_addr: u32,
    /// Total transfer size in bytes.
    pub total: u32,
    /// Bytes whose bus reads have been issued.
    pub issued: u32,
    /// Bytes landed in aSRAM (bus completes in order).
    pub completed: u32,
    /// Whether a chained block-transmit consumes this stream.
    pub chained: bool,
}

/// Block-transmit unit state: packetizes aSRAM into remote-write commands.
#[derive(Debug)]
pub struct BlockTxState {
    /// SRAM byte address.
    pub sram_addr: u32,
    /// Total transfer size in bytes.
    pub total: u32,
    /// Bytes sent so far.
    pub sent: u32,
    /// Destination node.
    pub node: u16,
    /// Destination DRAM address at the remote node.
    pub remote_addr: u64,
    /// Optional clsSRAM state to apply after the data lands.
    pub set_cls: Option<crate::sram::ClsState>,
    /// Optional completion notification (logical queue, payload).
    pub notify: Option<(u16, Bytes)>,
    /// Bytes available in aSRAM (== `total` for an unchained transmit;
    /// advanced by block-read completions when chained).
    pub watermark: u32,
}

/// Per-command-queue in-order gate: ids of aBIU operations the current
/// command must see completed before the next command may start.
#[derive(Debug, Default)]
pub struct CmdWait {
    /// Outstanding bus-operation ids.
    pub ids: HashSet<u64>,
}

/// CTRL statistics.
#[derive(Debug, Default)]
pub struct CtrlStats {
    /// Msgs launched.
    pub msgs_launched: Counter,
    /// Msgs delivered.
    pub msgs_delivered: Counter,
    /// Msgs diverted.
    pub msgs_diverted: Counter,
    /// Msgs dropped.
    pub msgs_dropped: Counter,
    /// Remote cmds.
    pub remote_cmds: Counter,
    /// Cmds executed.
    pub cmds_executed: Counter,
    /// Protection violations observed.
    pub violations: Counter,
    /// Tagon bytes.
    pub tagon_bytes: u64,
    /// Transmit arbitrations won over a lower-priority pending queue
    /// (ties broken round-robin are not "wins").
    pub tx_priority_wins: Counter,
    /// Block-transmit data chunks packetized (DMA chain steps).
    pub dma_chain_steps: Counter,
}

/// The CTRL ASIC.
#[derive(Debug)]
pub struct Ctrl {
    /// Transmit queues.
    pub tx: Vec<TxQueue>,
    /// Receive queues.
    pub rx: Vec<RxQueue>,
    /// Destination translation table.
    pub xlate: XlateTable,
    /// Rx cache.
    pub rx_cache: RxQueueCache,
    /// The NIU-internal IBus.
    pub ibus: IBus,

    /// Two ordered local command queues.
    pub cmdq: [VecDeque<LocalCmd>; 2],
    /// Cmd busy.
    pub cmd_busy: [u64; 2],
    /// Cmd wait.
    pub cmd_wait: [CmdWait; 2],

    /// Remote command queue: `(source node, command)`.
    pub remote_q: VecDeque<(u16, RemoteCmdKind)>,
    /// Remote busy.
    pub remote_busy: u64,
    /// Remote writes in flight on the aP bus (Notify commands wait for
    /// zero — the completion scoreboard).
    pub remote_writes_outstanding: usize,

    /// Tx busy.
    pub tx_busy: u64,
    /// Rx busy.
    pub rx_busy: u64,
    /// Blocktx busy.
    pub blocktx_busy: u64,

    /// Block read.
    pub block_read: Option<BlockReadState>,
    /// Block tx.
    pub block_tx: Option<BlockTxState>,

    /// Round-robin pointer for transmit arbitration ties.
    rr_next: usize,
    /// Running statistics.
    pub stats: CtrlStats,
}

impl Ctrl {
    /// CTRL with `params.tx_queues`/`params.rx_queues` unconfigured queues.
    ///
    /// Default buffer carving of the 128 KiB aSRAM: tx queue `i` occupies
    /// `[i * 4096, +4096)` (32 entries of 96 B), rx queue `i` occupies
    /// `[64 KiB + i * 2048, +2048)` (16 entries), leaving
    /// `[96 KiB, 128 KiB)` for firmware staging and pointer shadows.
    /// Higher layers re-point buffers as they wish (sP-serviced queues
    /// live in sSRAM).
    pub fn new(params: &NiuParams) -> Self {
        let tx = (0..params.tx_queues)
            .map(|i| {
                TxQueue::new(QueueBuffer {
                    sram: SramSel::A,
                    base: (i * 4096) as u32,
                    entries: 32,
                    entry_bytes: 96,
                })
            })
            .collect();
        let rx = (0..params.rx_queues)
            .map(|i| {
                RxQueue::new(QueueBuffer {
                    sram: SramSel::A,
                    base: (64 * 1024 + i * 2048) as u32,
                    entries: 16,
                    entry_bytes: 96,
                })
            })
            .collect();
        Ctrl {
            tx,
            rx,
            xlate: XlateTable::new(1024),
            rx_cache: RxQueueCache::new(params.logical_rx_queues, params.rx_queues),
            ibus: IBus::default(),
            cmdq: [VecDeque::new(), VecDeque::new()],
            cmd_busy: [0; 2],
            cmd_wait: [CmdWait::default(), CmdWait::default()],
            remote_q: VecDeque::new(),
            remote_busy: 0,
            remote_writes_outstanding: 0,
            tx_busy: 0,
            rx_busy: 0,
            blocktx_busy: 0,
            block_read: None,
            block_tx: None,
            rr_next: 0,
            stats: CtrlStats::default(),
        }
    }

    /// Transmit arbitration: among enabled queues with pending messages,
    /// pick the highest priority; break ties round-robin. Returns the
    /// queue index and advances the round-robin pointer.
    pub fn pick_tx_queue(&mut self) -> Option<usize> {
        let n = self.tx.len();
        // One pass finds the best priority and whether any lower-priority
        // queue is being passed over (a contested arbitration).
        let mut best_prio = 0u8;
        let mut candidates = 0usize;
        let mut at_best = 0usize;
        for q in &self.tx {
            if q.enabled && q.pending() > 0 {
                candidates += 1;
                if at_best == 0 || q.priority > best_prio {
                    best_prio = q.priority;
                    at_best = 1;
                } else if q.priority == best_prio {
                    at_best += 1;
                }
            }
        }
        if candidates == 0 {
            return None;
        }
        for k in 0..n {
            let i = (self.rr_next + k) % n;
            let q = &self.tx[i];
            if q.enabled && q.pending() > 0 && q.priority == best_prio {
                self.rr_next = (i + 1) % n;
                if candidates > at_best {
                    self.stats.tx_priority_wins.bump();
                }
                return Some(i);
            }
        }
        None
    }

    /// Whether any engine has queued work (used by the machine to decide
    /// quiescence; engine busy-untils do not matter once queues drain).
    pub fn has_work(&self) -> bool {
        self.tx.iter().any(|q| q.enabled && q.pending() > 0)
            || !self.cmdq[0].is_empty()
            || !self.cmdq[1].is_empty()
            || !self.cmd_wait[0].ids.is_empty()
            || !self.cmd_wait[1].ids.is_empty()
            || !self.remote_q.is_empty()
            || self.remote_writes_outstanding > 0
            || self.block_read.is_some()
            || self.block_tx.is_some()
    }

    /// Convenience accessor used by tests and the sP port.
    pub fn rx_queue(&self, q: QueueId) -> &RxQueue {
        &self.rx[q.0 as usize]
    }

    /// Mutable accessor.
    pub fn rx_queue_mut(&mut self, q: QueueId) -> &mut RxQueue {
        &mut self.rx[q.0 as usize]
    }

    /// Convenience accessor.
    pub fn tx_queue(&self, q: QueueId) -> &TxQueue {
        &self.tx[q.0 as usize]
    }

    /// Mutable accessor.
    pub fn tx_queue_mut(&mut self, q: QueueId) -> &mut TxQueue {
        &mut self.tx[q.0 as usize]
    }
}

use sv_sim::ckpt::{SnapReader, SnapWriter, SnapshotError, StateLoad, StateSave};

impl StateSave for IBus {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.free_at);
        w.u64(self.busy_cycles);
        w.save(&self.transactions);
    }
}
impl StateLoad for IBus {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(IBus {
            free_at: r.u64()?,
            busy_cycles: r.u64()?,
            transactions: r.load()?,
        })
    }
}

impl StateSave for BlockReadState {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.dram);
        w.u32(self.sram_addr);
        w.u32(self.total);
        w.u32(self.issued);
        w.u32(self.completed);
        w.save(&self.chained);
    }
}
impl StateLoad for BlockReadState {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(BlockReadState {
            dram: r.u64()?,
            sram_addr: r.u32()?,
            total: r.u32()?,
            issued: r.u32()?,
            completed: r.u32()?,
            chained: r.load()?,
        })
    }
}

impl StateSave for BlockTxState {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.sram_addr);
        w.u32(self.total);
        w.u32(self.sent);
        w.u16(self.node);
        w.u64(self.remote_addr);
        w.save(&self.set_cls);
        w.save(&self.notify);
        w.u32(self.watermark);
    }
}
impl StateLoad for BlockTxState {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(BlockTxState {
            sram_addr: r.u32()?,
            total: r.u32()?,
            sent: r.u32()?,
            node: r.u16()?,
            remote_addr: r.u64()?,
            set_cls: r.load()?,
            notify: r.load()?,
            watermark: r.u32()?,
        })
    }
}

impl StateSave for CmdWait {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.ids);
    }
}
impl StateLoad for CmdWait {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CmdWait { ids: r.load()? })
    }
}

impl StateSave for CtrlStats {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.msgs_launched);
        w.save(&self.msgs_delivered);
        w.save(&self.msgs_diverted);
        w.save(&self.msgs_dropped);
        w.save(&self.remote_cmds);
        w.save(&self.cmds_executed);
        w.save(&self.violations);
        w.u64(self.tagon_bytes);
        w.save(&self.tx_priority_wins);
        w.save(&self.dma_chain_steps);
    }
}
impl StateLoad for CtrlStats {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CtrlStats {
            msgs_launched: r.load()?,
            msgs_delivered: r.load()?,
            msgs_diverted: r.load()?,
            msgs_dropped: r.load()?,
            remote_cmds: r.load()?,
            cmds_executed: r.load()?,
            violations: r.load()?,
            tagon_bytes: r.u64()?,
            tx_priority_wins: r.load()?,
            dma_chain_steps: r.load()?,
        })
    }
}

impl StateSave for Ctrl {
    fn save(&self, w: &mut SnapWriter) {
        w.save(&self.tx);
        w.save(&self.rx);
        w.save(&self.xlate);
        w.save(&self.rx_cache);
        w.save(&self.ibus);
        w.save(&self.cmdq[0]);
        w.save(&self.cmdq[1]);
        w.u64(self.cmd_busy[0]);
        w.u64(self.cmd_busy[1]);
        w.save(&self.cmd_wait[0]);
        w.save(&self.cmd_wait[1]);
        w.save(&self.remote_q);
        w.u64(self.remote_busy);
        w.usize_(self.remote_writes_outstanding);
        w.u64(self.tx_busy);
        w.u64(self.rx_busy);
        w.u64(self.blocktx_busy);
        w.save(&self.block_read);
        w.save(&self.block_tx);
        w.usize_(self.rr_next);
        w.save(&self.stats);
    }
}
impl StateLoad for Ctrl {
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let c = Ctrl {
            tx: r.load()?,
            rx: r.load()?,
            xlate: r.load()?,
            rx_cache: r.load()?,
            ibus: r.load()?,
            cmdq: [r.load()?, r.load()?],
            cmd_busy: [r.u64()?, r.u64()?],
            cmd_wait: [r.load()?, r.load()?],
            remote_q: r.load()?,
            remote_busy: r.u64()?,
            remote_writes_outstanding: r.usize_()?,
            tx_busy: r.u64()?,
            rx_busy: r.u64()?,
            blocktx_busy: r.u64()?,
            block_read: r.load()?,
            block_tx: r.load()?,
            rr_next: r.usize_()?,
            stats: r.load()?,
        };
        // `pick_tx_queue` reduces rr_next modulo tx.len(), so any value
        // is safe there, but an empty tx list with rr_next use would
        // still be fine (candidates == 0 exits first). No further
        // cross-validation needed.
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibus_serializes() {
        let mut ib = IBus::default();
        assert_eq!(ib.acquire(10, 5), 15);
        // Second transfer at the same instant queues behind the first.
        assert_eq!(ib.acquire(10, 3), 18);
        // Later transfer after it frees starts immediately.
        assert_eq!(ib.acquire(30, 2), 32);
        assert_eq!(ib.busy_cycles, 10);
        assert_eq!(ib.transactions.get(), 3);
        assert_eq!(ib.free_at(), 32);
    }

    #[test]
    fn arbitration_priority_then_round_robin() {
        let p = NiuParams::default();
        let mut c = Ctrl::new(&p);
        c.tx[2].producer = 1;
        c.tx[5].producer = 1;
        c.tx[9].producer = 1;
        c.tx[5].priority = 3;
        assert_eq!(c.pick_tx_queue(), Some(5), "highest priority wins");
        assert_eq!(c.stats.tx_priority_wins.get(), 1, "contested pick");
        c.tx[5].consumer = 1; // drain it
                              // 2 and 9 tie at priority 0: round robin from after last pick (6).
        assert_eq!(c.pick_tx_queue(), Some(9));
        assert_eq!(c.stats.tx_priority_wins.get(), 1, "ties are not wins");
        c.tx[2].producer = 2; // still pending
        c.tx[9].producer = 2;
        assert_eq!(c.pick_tx_queue(), Some(2), "rr pointer wrapped past 9");
    }

    #[test]
    fn disabled_queues_never_arbitrate() {
        let p = NiuParams::default();
        let mut c = Ctrl::new(&p);
        c.tx[0].producer = 1;
        c.tx[0].enabled = false;
        assert_eq!(c.pick_tx_queue(), None);
    }

    #[test]
    fn has_work_tracks_queues() {
        let p = NiuParams::default();
        let mut c = Ctrl::new(&p);
        assert!(!c.has_work());
        c.cmdq[1].push_back(LocalCmd::SetTxEnabled {
            q: QueueId(0),
            enabled: true,
        });
        assert!(c.has_work());
        c.cmdq[1].clear();
        c.remote_writes_outstanding = 1;
        assert!(c.has_work());
    }
}
