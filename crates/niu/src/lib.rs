#![warn(missing_docs)]
//! # sv-niu — the StarT-Voyager Network Interface Unit
//!
//! The NIU occupies the second processor slot of each node's 604e SMP and
//! is the paper's central artifact. This crate models its entire internal
//! structure:
//!
//! | Hardware | Module | Role |
//! |---|---|---|
//! | CTRL ASIC | [`ctrl`] | core NIU (layer 2): 16 tx / 16 rx hardware queues, two ordered local command queues, a remote command queue, destination translation & protection, receive-queue caching with a miss queue, transmit-priority arbitration, block-read / block-transmit units, IBus arbitration |
//! | aBIU FPGA | [`abiu`] | layer 1, aP side: watches every aP bus operation, services the memory-mapped NIU regions (message buffers, pointer updates, Express compose/receive), performs the clsSRAM S-COMA state check, forwards NUMA traffic to the sP, and masters the aP bus on behalf of CTRL |
//! | sBIU FPGA + sP | [`SpPort`] on [`Niu`] | layer 1, sP side: the immediate-command interface and command-queue access the firmware crate drives |
//! | aSRAM / sSRAM | [`sram`] | dual-ported message buffer memories (one port on a 604 bus, one on the IBus) |
//! | clsSRAM | [`sram::ClsSram`] | per-cache-line S-COMA state bits, read on every aP bus operation |
//! | TxU / RxU | FIFOs in [`Niu`] | staging to/from the Arctic network |
//!
//! ## Modeling approach
//!
//! The NIU is advanced on the 66 MHz bus clock by the owning node. Each
//! internal engine (tx, rx, the two command queues, the remote-command
//! engine, the two block units) is a state machine guarded by a
//! `busy_until` cycle; every piece of data that moves inside the NIU
//! crosses the **IBus**, a single serializing resource — exactly the
//! contention structure the paper describes ("the IBus … is a critical
//! resource"). Costs are parameterized in [`params::NiuParams`].
//!
//! Interaction with the node is explicit and synchronous:
//! - the node shows the NIU every aP bus operation (snoop + completion),
//! - the NIU emits aP bus-master requests ([`abiu::AbiuRequest`]) that the
//!   node issues on the bus and completes with functional data movement,
//! - the NIU emits network packets and consumes arrivals through the
//!   TxU/RxU FIFOs,
//! - the sP (firmware crate) manipulates the NIU through [`SpPort`].

pub mod abiu;
pub mod addrmap;
pub mod cmd;
pub mod ctrl;
pub mod msg;
pub mod niu;
pub mod params;
pub mod queues;
pub mod sram;
pub mod translate;

pub use abiu::{AbiuRequest, ClaimKind, DataMove};
pub use addrmap::AddressMap;
pub use cmd::{BlockOp, LocalCmd, RemoteCommand};
pub use msg::{MsgFlags, MsgHeader, NetPayload};
pub use niu::{Niu, NiuInterrupt, SpPort, TenantAttr, CYCLE_NS};
pub use params::NiuParams;
pub use queues::{QueueId, RxFullPolicy, RxService};
pub use sram::{ClsSram, ClsState, Sram, SramSel};
